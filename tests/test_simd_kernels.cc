#include "lsh/simd.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "lsh/zorder.h"
#include "ppc/lsh_histograms_predictor.h"
#include "stats/streaming_histogram.h"

namespace ppc {
namespace simd {
namespace {

/// Restores the dispatch tier on scope exit so a test that forces the
/// scalar tier cannot leak it into later tests.
class ScopedTier {
 public:
  explicit ScopedTier(bool force_scalar) {
    if (force_scalar) {
      ::setenv("PPC_DISABLE_AVX2", "1", 1);
    } else {
      ::unsetenv("PPC_DISABLE_AVX2");
    }
    ReinitializeDispatchForTest();
  }
  ~ScopedTier() {
    ::unsetenv("PPC_DISABLE_AVX2");
    ReinitializeDispatchForTest();
  }
};

TEST(SimdDispatchTest, EnvVariableForcesScalarTier) {
  {
    ScopedTier scalar(/*force_scalar=*/true);
    EXPECT_EQ(ActiveTier(), Tier::kScalar);
    EXPECT_STREQ(TierName(ActiveTier()), "scalar");
  }
  // With the variable cleared the tier tracks the CPU's actual support.
  ScopedTier native(/*force_scalar=*/false);
  EXPECT_EQ(ActiveTier(),
            CpuSupportsAvx2() ? Tier::kAvx2 : Tier::kScalar);
}

TEST(SimdDispatchTest, ExplicitZeroDoesNotDisable) {
  ::setenv("PPC_DISABLE_AVX2", "0", 1);
  ReinitializeDispatchForTest();
  EXPECT_EQ(ActiveTier(),
            CpuSupportsAvx2() ? Tier::kAvx2 : Tier::kScalar);
  ::unsetenv("PPC_DISABLE_AVX2");
  ReinitializeDispatchForTest();
}

/// Bit-identity harness for ApplyBatch: run both tiers on the same inputs
/// and require byte-for-byte equal output buffers. Batch sizes straddle
/// the 4-point vector width (1, 3, 4, 5, 7, 8, 64, 65) so lane blocks,
/// tails, and the 1-point degenerate case are all exercised.
void ExpectApplyBatchBitIdentical(size_t r, size_t s, size_t count,
                                  Rng* rng) {
  std::vector<double> projections(s * r);
  std::vector<double> shifts(s);
  for (double& v : projections) v = rng->Gaussian();
  for (double& v : shifts) v = rng->Uniform(-1.0, 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(r));
  std::vector<double> points(count * r);
  for (double& v : points) v = rng->Uniform();
  std::vector<double> scalar(count * s, 0.0);
  std::vector<double> avx2(count * s, 1.0);
  ApplyBatchScalar(projections.data(), shifts.data(), scale, r, s,
                   points.data(), count, scalar.data());
  ApplyBatchAvx2(projections.data(), shifts.data(), scale, r, s,
                 points.data(), count, avx2.data());
  ASSERT_EQ(std::memcmp(scalar.data(), avx2.data(),
                        scalar.size() * sizeof(double)),
            0)
      << "r=" << r << " s=" << s << " count=" << count;
}

TEST(SimdKernelTest, ApplyBatchTiersBitIdenticalOnRandomBatches) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(2026);
  for (const size_t r : {1u, 2u, 3u, 5u, 8u}) {
    for (const size_t count : {1u, 3u, 4u, 5u, 7u, 8u, 64u, 65u}) {
      ExpectApplyBatchBitIdentical(r, r, count, &rng);
      ExpectApplyBatchBitIdentical(r, 2, count, &rng);
    }
  }
}

TEST(SimdKernelTest, ApplyBatchTiersAgreeOnNonFiniteInputs) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const size_t r = 2, s = 2, count = 5;
  std::vector<double> projections = {0.5, -1.25, 2.0, 0.125};
  std::vector<double> shifts = {0.25, -0.5};
  std::vector<double> points(count * r, 0.5);
  points[0] = std::numeric_limits<double>::quiet_NaN();
  points[3] = std::numeric_limits<double>::infinity();
  points[4] = -std::numeric_limits<double>::infinity();
  points[7] = 0.0;
  points[8] = 1.0;
  std::vector<double> scalar(count * s), avx2(count * s);
  ApplyBatchScalar(projections.data(), shifts.data(), 0.7, r, s,
                   points.data(), count, scalar.data());
  ApplyBatchAvx2(projections.data(), shifts.data(), 0.7, r, s,
                 points.data(), count, avx2.data());
  // memcmp (not EXPECT_EQ): NaN outputs must have identical bit patterns
  // too, and NaN != NaN would pass EXPECT_NE-style checks silently.
  EXPECT_EQ(std::memcmp(scalar.data(), avx2.data(),
                        scalar.size() * sizeof(double)),
            0);
}

/// Builds a randomized probe table with a mix of spread buckets and
/// zero-width point masses, in ascending position order.
struct ProbeTable {
  std::vector<double> left, right, count, centroid;
  size_t size() const { return left.size(); }
};

ProbeTable RandomProbe(size_t buckets, Rng* rng) {
  ProbeTable t;
  double pos = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    const bool point_mass = rng->Uniform() < 0.3;
    const double width = point_mass ? 0.0 : rng->Uniform(0.001, 0.05);
    t.left.push_back(pos);
    t.right.push_back(pos + width);
    t.count.push_back(rng->Uniform(0.0, 50.0));
    t.centroid.push_back(pos + width * 0.5);
    pos += width + rng->Uniform(0.0, 0.02);
  }
  return t;
}

TEST(SimdKernelTest, HistogramRangeCountTiersBitIdentical) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(777);
  for (const size_t buckets : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 40u}) {
    ProbeTable t = RandomProbe(buckets, &rng);
    for (int q = 0; q < 50; ++q) {
      double lo = rng.Uniform(-0.1, 1.1);
      double hi = lo + rng.Uniform(0.0, 0.4);
      if (q % 7 == 0) std::swap(lo, hi);  // inverted → both return 0
      const double scalar =
          HistogramRangeCountScalar(t.left.data(), t.right.data(),
                                    t.count.data(), t.centroid.data(),
                                    t.size(), lo, hi);
      const double avx2 =
          HistogramRangeCountAvx2(t.left.data(), t.right.data(),
                                  t.count.data(), t.centroid.data(),
                                  t.size(), lo, hi);
      uint64_t sbits, abits;
      std::memcpy(&sbits, &scalar, sizeof(sbits));
      std::memcpy(&abits, &avx2, sizeof(abits));
      EXPECT_EQ(sbits, abits) << "buckets=" << buckets << " lo=" << lo
                              << " hi=" << hi;
    }
  }
}

TEST(SimdKernelTest, HistogramRangeCountTiersAgreeOnNaNBounds) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(31);
  ProbeTable t = RandomProbe(9, &rng);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {nan, 0.5}, {0.1, nan}, {nan, nan}}) {
    EXPECT_EQ(HistogramRangeCountScalar(t.left.data(), t.right.data(),
                                        t.count.data(), t.centroid.data(),
                                        t.size(), lo, hi),
              0.0);
    EXPECT_EQ(HistogramRangeCountAvx2(t.left.data(), t.right.data(),
                                      t.count.data(), t.centroid.data(),
                                      t.size(), lo, hi),
              0.0);
  }
}

TEST(SimdKernelTest, HistogramRangeCountCostTiersBitIdentical) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(4041);
  for (const size_t buckets : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 40u}) {
    ProbeTable t = RandomProbe(buckets, &rng);
    std::vector<double> cost(buckets);
    for (double& v : cost) v = rng.Uniform(0.0, 200.0);
    for (int q = 0; q < 50; ++q) {
      double lo = rng.Uniform(-0.1, 1.1);
      double hi = lo + rng.Uniform(0.0, 0.4);
      if (q % 7 == 0) std::swap(lo, hi);  // inverted → both return (0, 0)
      double sc, scost, ac, acost;
      HistogramRangeCountCostScalar(t.left.data(), t.right.data(),
                                    t.count.data(), cost.data(),
                                    t.centroid.data(), t.size(), lo, hi, &sc,
                                    &scost);
      HistogramRangeCountCostAvx2(t.left.data(), t.right.data(),
                                  t.count.data(), cost.data(),
                                  t.centroid.data(), t.size(), lo, hi, &ac,
                                  &acost);
      uint64_t a, b;
      std::memcpy(&a, &sc, sizeof(a));
      std::memcpy(&b, &ac, sizeof(b));
      EXPECT_EQ(a, b) << "count: buckets=" << buckets << " lo=" << lo
                      << " hi=" << hi;
      std::memcpy(&a, &scost, sizeof(a));
      std::memcpy(&b, &acost, sizeof(b));
      EXPECT_EQ(a, b) << "cost: buckets=" << buckets << " lo=" << lo
                      << " hi=" << hi;
    }
  }
}

TEST(SimdKernelTest, HistogramRangeCountCostTiersAgreeOnNaNBounds) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(67);
  ProbeTable t = RandomProbe(9, &rng);
  std::vector<double> cost(t.size(), 3.5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {nan, 0.5}, {0.1, nan}, {nan, nan}}) {
    double sc, scost, ac, acost;
    HistogramRangeCountCostScalar(t.left.data(), t.right.data(),
                                  t.count.data(), cost.data(),
                                  t.centroid.data(), t.size(), lo, hi, &sc,
                                  &scost);
    HistogramRangeCountCostAvx2(t.left.data(), t.right.data(), t.count.data(),
                                cost.data(), t.centroid.data(), t.size(), lo,
                                hi, &ac, &acost);
    EXPECT_EQ(sc, 0.0);
    EXPECT_EQ(scost, 0.0);
    EXPECT_EQ(ac, 0.0);
    EXPECT_EQ(acost, 0.0);
  }
}

TEST(SimdKernelTest, CostKernelReproducesHistogramEstimates) {
  // The combined kernel replaces the per-interval EstimateCount +
  // EstimateAverageCost pair on the cost path; feeding it ExportProbe +
  // ExportProbeCosts tables must reproduce both estimates bit for bit on
  // both tiers (count directly, average cost as cost/count).
  Rng rng(19);
  StreamingHistogram hist(16);
  for (int i = 0; i < 500; ++i) {
    hist.Insert(rng.Uniform(), rng.Uniform(0.0, 10.0));
  }
  const size_t b = hist.bucket_count();
  std::vector<double> probe(5 * b);
  hist.ExportProbe(probe.data(), probe.data() + b, probe.data() + 2 * b,
                   probe.data() + 4 * b);
  hist.ExportProbeCosts(probe.data() + 3 * b);
  for (int q = 0; q < 200; ++q) {
    const double lo = rng.Uniform(-0.05, 1.0);
    const double hi = lo + rng.Uniform(0.0, 0.3);
    const double oracle_count = hist.EstimateCount(lo, hi);
    const double oracle_avg = hist.EstimateAverageCost(lo, hi);
    for (const bool scalar : {true, false}) {
      double c, cost;
      if (scalar) {
        HistogramRangeCountCostScalar(probe.data(), probe.data() + b,
                                      probe.data() + 2 * b,
                                      probe.data() + 3 * b,
                                      probe.data() + 4 * b, b, lo, hi, &c,
                                      &cost);
      } else {
        HistogramRangeCountCost(probe.data(), probe.data() + b,
                                probe.data() + 2 * b, probe.data() + 3 * b,
                                probe.data() + 4 * b, b, lo, hi, &c, &cost);
      }
      EXPECT_EQ(oracle_count, c);
      EXPECT_EQ(oracle_avg, c > 0.0 ? cost / c : 0.0);
    }
  }
}

/// Query bounds for the across-queries kernels: mostly ordinary ranges,
/// with inverted and NaN-bound lanes mixed in so the lane masking is
/// exercised at every position in a 4-lane block.
std::vector<double> RandomBounds(size_t queries, Rng* rng) {
  std::vector<double> bounds(2 * queries);
  for (size_t q = 0; q < queries; ++q) {
    double lo = rng->Uniform(-0.1, 1.1);
    double hi = lo + rng->Uniform(0.0, 0.4);
    if (q % 5 == 3) std::swap(lo, hi);
    if (q % 7 == 2) lo = std::numeric_limits<double>::quiet_NaN();
    if (q % 11 == 6) hi = std::numeric_limits<double>::quiet_NaN();
    bounds[2 * q] = lo;
    bounds[2 * q + 1] = hi;
  }
  return bounds;
}

TEST(SimdKernelTest, HistogramRangeCountManyTiersBitIdentical) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(808);
  for (const size_t buckets : {1u, 3u, 8u, 40u}) {
    ProbeTable t = RandomProbe(buckets, &rng);
    for (const size_t queries : {1u, 3u, 4u, 5u, 7u, 32u, 33u}) {
      const std::vector<double> bounds = RandomBounds(queries, &rng);
      std::vector<double> scalar(queries, -1.0), avx2(queries, -2.0);
      HistogramRangeCountManyScalar(t.left.data(), t.right.data(),
                                    t.count.data(), t.centroid.data(),
                                    t.size(), bounds.data(), queries,
                                    scalar.data());
      HistogramRangeCountManyAvx2(t.left.data(), t.right.data(),
                                  t.count.data(), t.centroid.data(), t.size(),
                                  bounds.data(), queries, avx2.data());
      ASSERT_EQ(std::memcmp(scalar.data(), avx2.data(),
                            queries * sizeof(double)),
                0)
          << "buckets=" << buckets << " queries=" << queries;
      // The many-query scalar tier must itself match the single-query
      // kernel, query by query.
      for (size_t q = 0; q < queries; ++q) {
        EXPECT_EQ(scalar[q],
                  HistogramRangeCountScalar(
                      t.left.data(), t.right.data(), t.count.data(),
                      t.centroid.data(), t.size(), bounds[2 * q],
                      bounds[2 * q + 1]));
      }
    }
  }
}

TEST(SimdKernelTest, HistogramRangeCountCostManyTiersBitIdentical) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(909);
  for (const size_t buckets : {1u, 3u, 8u, 40u}) {
    ProbeTable t = RandomProbe(buckets, &rng);
    std::vector<double> cost(buckets);
    for (double& v : cost) v = rng.Uniform(0.0, 200.0);
    for (const size_t queries : {1u, 4u, 5u, 32u, 33u}) {
      const std::vector<double> bounds = RandomBounds(queries, &rng);
      std::vector<double> sc(queries), scost(queries), ac(queries),
          acost(queries);
      HistogramRangeCountCostManyScalar(
          t.left.data(), t.right.data(), t.count.data(), cost.data(),
          t.centroid.data(), t.size(), bounds.data(), queries, sc.data(),
          scost.data());
      HistogramRangeCountCostManyAvx2(
          t.left.data(), t.right.data(), t.count.data(), cost.data(),
          t.centroid.data(), t.size(), bounds.data(), queries, ac.data(),
          acost.data());
      ASSERT_EQ(std::memcmp(sc.data(), ac.data(), queries * sizeof(double)),
                0)
          << "counts: buckets=" << buckets << " queries=" << queries;
      ASSERT_EQ(
          std::memcmp(scost.data(), acost.data(), queries * sizeof(double)),
          0)
          << "costs: buckets=" << buckets << " queries=" << queries;
    }
  }
}

TEST(SimdKernelTest, CellIndexBatchTiersBitIdentical) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(515);
  for (const size_t n : {1u, 3u, 4u, 5u, 7u, 64u, 129u}) {
    std::vector<double> y(n);
    for (size_t k = 0; k < n; ++k) {
      y[k] = rng.Uniform(-3.0, 3.0);  // straddles the clamp on both ends
    }
    if (n >= 4) {
      y[0] = std::numeric_limits<double>::quiet_NaN();
      y[1] = std::numeric_limits<double>::infinity();
      y[2] = -std::numeric_limits<double>::infinity();
      y[3] = -0.0;
    }
    std::vector<double> scalar(n, 1.0), avx2(n, 2.0);
    CellIndexBatchScalar(y.data(), n, -1.5, 3.0, 1024.0, 1023.0,
                         scalar.data());
    CellIndexBatchAvx2(y.data(), n, -1.5, 3.0, 1024.0, 1023.0, avx2.data());
    // memcmp: NaN inputs must yield the same bit pattern on both tiers.
    ASSERT_EQ(std::memcmp(scalar.data(), avx2.data(), n * sizeof(double)), 0)
        << "n=" << n;
  }
}

TEST(SimdKernelTest, InterleavePdepMatchesScalarBitLoop) {
  // pdep is pure integer scatter, so native and forced-scalar dispatch
  // must produce the same Morton code for every cell tuple.
  Rng rng(2222);
  for (const auto& [dims, bits] :
       std::vector<std::pair<int, int>>{{1, 16}, {2, 15}, {3, 10}, {5, 7}}) {
    ZOrderCurve curve(dims, bits);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint32_t> cells(static_cast<size_t>(dims));
      for (uint32_t& c : cells) {
        c = static_cast<uint32_t>(rng.Uniform() * 4294967295.0);
      }
      uint64_t native, scalar;
      {
        ScopedTier tier(/*force_scalar=*/false);
        native = curve.Interleave(cells.data());
      }
      {
        ScopedTier tier(/*force_scalar=*/true);
        scalar = curve.Interleave(cells.data());
      }
      EXPECT_EQ(native, scalar) << "dims=" << dims << " bits=" << bits;
    }
  }
}

TEST(SimdKernelTest, KernelReproducesStreamingHistogramEstimateCount) {
  // The probe-table kernel exists to replace per-point EstimateCount
  // calls; feeding it ExportProbe's table must reproduce EstimateCount
  // bit for bit on both tiers.
  Rng rng(9);
  StreamingHistogram hist(16);
  for (int i = 0; i < 500; ++i) {
    hist.Insert(rng.Uniform(), rng.Uniform(0.0, 10.0));
  }
  const size_t b = hist.bucket_count();
  std::vector<double> probe(4 * b);
  hist.ExportProbe(probe.data(), probe.data() + b, probe.data() + 2 * b,
                   probe.data() + 3 * b);
  for (int q = 0; q < 200; ++q) {
    const double lo = rng.Uniform(-0.05, 1.0);
    const double hi = lo + rng.Uniform(0.0, 0.3);
    const double oracle = hist.EstimateCount(lo, hi);
    const double scalar = HistogramRangeCountScalar(
        probe.data(), probe.data() + b, probe.data() + 2 * b,
        probe.data() + 3 * b, b, lo, hi);
    const double dispatched = HistogramRangeCount(
        probe.data(), probe.data() + b, probe.data() + 2 * b,
        probe.data() + 3 * b, b, lo, hi);
    EXPECT_EQ(oracle, scalar);
    EXPECT_EQ(oracle, dispatched);
  }
}

TEST(SimdKernelTest, PredictorAnswersIdenticallyUnderForcedScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  // End-to-end gate: the full predictor — transforms, Z-order, histogram
  // probes, median — answers every batch query with identical bits
  // whichever tier the dispatcher picked.
  LshHistogramsPredictor::Config config;
  config.dimensions = 3;
  config.seed = 4242;
  LshHistogramsPredictor predictor(config);
  Rng rng(55);
  for (int i = 0; i < 400; ++i) {
    LabeledPoint point;
    point.coords = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    point.plan = 1 + (i % 3);
    point.cost = rng.Uniform(1.0, 5.0);
    predictor.Insert(point);
  }
  const size_t count = 37;
  std::vector<double> queries(count * 3);
  for (double& v : queries) v = rng.Uniform();

  std::vector<Prediction> avx2, scalar;
  {
    ScopedTier native(/*force_scalar=*/false);
    avx2 = predictor.PredictBatch(queries.data(), count);
  }
  {
    ScopedTier forced(/*force_scalar=*/true);
    scalar = predictor.PredictBatch(queries.data(), count);
  }
  ASSERT_EQ(avx2.size(), count);
  ASSERT_EQ(scalar.size(), count);
  for (size_t p = 0; p < count; ++p) {
    EXPECT_EQ(avx2[p].plan, scalar[p].plan) << "point " << p;
    EXPECT_EQ(avx2[p].confidence, scalar[p].confidence) << "point " << p;
    EXPECT_EQ(avx2[p].estimated_cost, scalar[p].estimated_cost)
        << "point " << p;
  }
}

}  // namespace
}  // namespace simd
}  // namespace ppc
