#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ppc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NearbySeedsDecorrelated) {
  // SplitMix64 seeding should decorrelate seed and seed+1.
  Rng a(1000), b(1001);
  double mean_diff = 0.0;
  for (int i = 0; i < 1000; ++i) {
    mean_diff += std::abs(a.Uniform() - b.Uniform());
  }
  mean_diff /= 1000.0;
  // |U - V| for independent uniforms has mean 1/3.
  EXPECT_NEAR(mean_diff, 1.0 / 3.0, 0.05);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.UniformInt(uint64_t{10})];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(37);
  std::vector<int> v(20);
  for (int i = 0; i < 20; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace ppc
