#include "optimizer/plan_evaluator.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

class PlanEvaluatorTest : public ::testing::Test {
 protected:
  PlanEvaluatorTest() : optimizer_(&SmallTpch()) {}
  Optimizer optimizer_;
};

TEST_F(PlanEvaluatorTest, ReplayMatchesOptimizerEstimateAtSamePoint) {
  for (const char* name : {"Q1", "Q3", "Q5"}) {
    const QueryTemplate tmpl = EvaluationTemplate(name);
    auto prep = optimizer_.Prepare(tmpl).value();
    std::vector<double> sel(static_cast<size_t>(tmpl.ParameterDegree()),
                            0.37);
    auto opt = optimizer_.Optimize(prep, sel).value();
    auto eval =
        EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *opt.plan, sel);
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    EXPECT_NEAR(eval.value().cost, opt.estimated_cost,
                opt.estimated_cost * 1e-9)
        << name;
    EXPECT_NEAR(eval.value().rows, opt.estimated_rows,
                opt.estimated_rows * 1e-9)
        << name;
  }
}

TEST_F(PlanEvaluatorTest, OptimalPlanIsCheapestAmongCandidates) {
  // The plan the optimizer picks at point x must replay at x no more
  // expensively than plans picked elsewhere — the defining property the
  // whole PPC premise rests on.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  const std::vector<double> x = {0.3, 0.3};
  auto optimal = optimizer_.Optimize(prep, x).value();
  for (const std::vector<double>& other :
       {std::vector<double>{0.01, 0.01}, {0.9, 0.9}, {0.05, 0.95}}) {
    auto foreign = optimizer_.Optimize(prep, other).value();
    auto replay =
        EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *foreign.plan, x);
    ASSERT_TRUE(replay.ok());
    EXPECT_GE(replay.value().cost, optimal.estimated_cost * (1.0 - 1e-9));
  }
}

TEST_F(PlanEvaluatorTest, StalePlanCostlierAwayFromItsRegion) {
  const QueryTemplate tmpl = EvaluationTemplate("Q2");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto low_plan = optimizer_.Optimize(prep, {0.001, 0.001}).value();
  auto high_plan = optimizer_.Optimize(prep, {0.95, 0.95}).value();
  if (low_plan.plan_id == high_plan.plan_id) {
    GTEST_SKIP() << "plan space degenerate at this scale";
  }
  const std::vector<double> x = {0.95, 0.95};
  const double stale =
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *low_plan.plan, x)
          .value()
          .cost;
  EXPECT_GT(stale, high_plan.estimated_cost);
}

TEST_F(PlanEvaluatorTest, CostSmoothWithinRegion) {
  // Plan cost predictability (Assumption 2): small moves in the plan space
  // produce small relative cost changes for a fixed plan.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto opt = optimizer_.Optimize(prep, {0.5, 0.5}).value();
  const double base =
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *opt.plan,
                          {0.5, 0.5})
          .value()
          .cost;
  const double nearby =
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *opt.plan,
                          {0.52, 0.52})
          .value()
          .cost;
  EXPECT_LT(std::abs(nearby - base) / base, 0.25);
}

TEST_F(PlanEvaluatorTest, ArityMismatchRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto opt = optimizer_.Optimize(prep, {0.5, 0.5}).value();
  EXPECT_FALSE(
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *opt.plan, {0.5})
          .ok());
}

TEST_F(PlanEvaluatorTest, ForeignTableRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto plan = MakeSeqScan("customer", {});
  EXPECT_FALSE(
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *plan, {0.5, 0.5})
          .ok());
}

TEST_F(PlanEvaluatorTest, StandaloneInlInnerRejected) {
  // An index scan whose index column is a join column (an INL inner) has no
  // driving parameter and cannot be priced standalone.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto plan = MakeIndexScan("lineitem", "l_suppkey", {1});
  EXPECT_FALSE(
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *plan, {0.5, 0.5})
          .ok());
}

TEST_F(PlanEvaluatorTest, CartesianPlanRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  // A hash join between supplier and supplier misses the join edge.
  auto plan = MakeJoin(JoinMethod::kHashJoin, 0, MakeSeqScan("supplier", {}),
                       MakeSeqScan("supplier", {}));
  EXPECT_FALSE(
      EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *plan, {0.5, 0.5})
          .ok());
}

}  // namespace
}  // namespace ppc
