#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <memory>

namespace ppc {
namespace {

std::unique_ptr<Table> MakeTable(const std::string& name, int rows) {
  TableDef def{name,
               {{"k", ColumnType::kInt64}, {"v", ColumnType::kDouble}},
               {"k"},
               {}};
  auto table = std::make_unique<Table>(def);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        table->AppendRow({static_cast<double>(i), i * 0.5}).ok());
  }
  return table;
}

TEST(CatalogTest, AddAndGetTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 10)).ok());
  ASSERT_TRUE(catalog.GetTable("t1").ok());
  EXPECT_EQ(catalog.GetTable("t1").value()->row_count(), 10u);
  EXPECT_EQ(catalog.TableRows("t1"), 10u);
  EXPECT_EQ(catalog.TableRows("absent"), 0u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 1)).ok());
  EXPECT_EQ(catalog.AddTable(MakeTable("t1", 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, GetMissingTableFails) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, AddIndexValidatesTableAndColumn) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 5)).ok());
  EXPECT_TRUE(catalog.AddIndex({"i1", "t1", "k", true}).ok());
  EXPECT_EQ(catalog.AddIndex({"i2", "zzz", "k", false}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.AddIndex({"i3", "t1", "zzz", false}).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(catalog.HasIndex("t1", "k"));
  EXPECT_FALSE(catalog.HasIndex("t1", "v"));
}

TEST(CatalogTest, AnalyzeComputesStats) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 100)).ok());
  EXPECT_FALSE(catalog.GetColumnStats("t1", "k").ok());  // not analyzed yet
  catalog.AnalyzeAll(8);
  auto stats = catalog.GetColumnStats("t1", "k");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()->row_count, 100u);
  EXPECT_EQ(stats.value()->distinct_count, 100u);
  EXPECT_EQ(stats.value()->min, 0.0);
  EXPECT_EQ(stats.value()->max, 99.0);
}

TEST(CatalogTest, StatsForMissingColumnFail) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 10)).ok());
  catalog.AnalyzeAll();
  EXPECT_FALSE(catalog.GetColumnStats("t1", "zzz").ok());
  EXPECT_FALSE(catalog.GetColumnStats("zzz", "k").ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("bb", 1)).ok());
  ASSERT_TRUE(catalog.AddTable(MakeTable("aa", 1)).ok());
  const std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aa");
  EXPECT_EQ(names[1], "bb");
}

TEST(ColumnStatsTest, SelectivityAndQuantileConsistent) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t1", 1000)).ok());
  catalog.AnalyzeAll(32);
  const ColumnStats& stats = *catalog.GetColumnStats("t1", "k").value();
  for (double f : {0.1, 0.5, 0.9}) {
    const double v = stats.ValueAtSelectivity(f);
    EXPECT_NEAR(stats.SelectivityLeq(v), f, 0.02) << "f=" << f;
  }
}

}  // namespace
}  // namespace ppc
