#include <gtest/gtest.h>

#include <memory>

#include "clustering/approximate_lsh_predictor.h"
#include "clustering/density_predictor.h"
#include "clustering/kmeans_predictor.h"
#include "clustering/naive_grid_predictor.h"
#include "clustering/single_linkage_predictor.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/metrics.h"
#include "test_util.h"

namespace ppc {
namespace {

using testutil::HalfSpaceBoundaryDistance;
using testutil::HalfSpacePlan;
using testutil::QuadrantPlan;
using testutil::SamplePoints;

enum class Kind {
  kKMeans,
  kSingleLinkage,
  kDensity,
  kNaive,
  kApproximateLsh,
  kLshHistograms,
};

std::unique_ptr<PlanPredictor> MakePredictor(
    Kind kind, const std::vector<LabeledPoint>& sample, double radius,
    double gamma) {
  switch (kind) {
    case Kind::kKMeans: {
      KMeansPredictor::Config cfg;
      cfg.clusters_per_plan = 40;
      cfg.radius = radius;
      return std::make_unique<KMeansPredictor>(cfg, sample);
    }
    case Kind::kSingleLinkage: {
      SingleLinkagePredictor::Config cfg;
      cfg.radius = radius;
      return std::make_unique<SingleLinkagePredictor>(cfg, sample);
    }
    case Kind::kDensity: {
      DensityPredictor::Config cfg;
      cfg.radius = radius;
      cfg.confidence_threshold = gamma;
      return std::make_unique<DensityPredictor>(cfg, sample);
    }
    case Kind::kNaive: {
      NaiveGridPredictor::Config cfg;
      cfg.dimensions = 2;
      cfg.bucket_budget = 1024;
      cfg.radius = radius;
      cfg.confidence_threshold = gamma;
      return std::make_unique<NaiveGridPredictor>(cfg, sample);
    }
    case Kind::kApproximateLsh: {
      ApproximateLshPredictor::Config cfg;
      cfg.dimensions = 2;
      cfg.transform_count = 5;
      cfg.radius = radius;
      cfg.confidence_threshold = gamma;
      return std::make_unique<ApproximateLshPredictor>(cfg, sample);
    }
    case Kind::kLshHistograms: {
      LshHistogramsPredictor::Config cfg;
      cfg.dimensions = 2;
      cfg.transform_count = 5;
      cfg.histogram_buckets = 60;
      cfg.radius = radius;
      cfg.confidence_threshold = gamma;
      return std::make_unique<LshHistogramsPredictor>(cfg, sample);
    }
  }
  return nullptr;
}

class PredictorTest : public ::testing::TestWithParam<Kind> {};

TEST_P(PredictorTest, HighPrecisionDeepInsideRegions) {
  Rng rng(1);
  auto sample = SamplePoints(2, 1500, HalfSpacePlan, &rng);
  auto predictor = MakePredictor(GetParam(), sample, 0.08, 0.5);
  MetricsAccumulator metrics;
  Rng test_rng(2);
  int tested = 0;
  while (tested < 300) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    if (HalfSpaceBoundaryDistance(x) < 0.15) continue;  // deep points only
    ++tested;
    metrics.Record(predictor->Predict(x).plan, HalfSpacePlan(x));
  }
  EXPECT_GT(metrics.Precision(), 0.95) << predictor->Name();
  EXPECT_GT(metrics.Recall(), 0.6) << predictor->Name();
}

TEST_P(PredictorTest, OnlineInsertImprovesCoverage) {
  auto predictor =
      MakePredictor(GetParam(), {}, 0.1, 0.5);
  // Empty predictor answers NULL.
  EXPECT_FALSE(predictor->Predict({0.2, 0.2}).has_value());
  Rng rng(3);
  for (const LabeledPoint& p : SamplePoints(2, 800, HalfSpacePlan, &rng)) {
    predictor->Insert(p);
  }
  MetricsAccumulator metrics;
  Rng test_rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {test_rng.Uniform() * 0.3,
                             test_rng.Uniform() * 0.3};  // deep in plan 1
    metrics.Record(predictor->Predict(x).plan, 1);
  }
  EXPECT_GT(metrics.Recall(), 0.5) << predictor->Name();
  EXPECT_GT(metrics.Precision(), 0.95) << predictor->Name();
}

TEST_P(PredictorTest, SpaceBytesPositiveOncePopulated) {
  Rng rng(5);
  auto sample = SamplePoints(2, 200, HalfSpacePlan, &rng);
  auto predictor = MakePredictor(GetParam(), sample, 0.1, 0.5);
  predictor->Predict({0.5, 0.5});  // force lazy builds
  EXPECT_GT(predictor->SpaceBytes(), 0u) << predictor->Name();
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorTest,
                         ::testing::Values(Kind::kKMeans, Kind::kSingleLinkage,
                                           Kind::kDensity, Kind::kNaive,
                                           Kind::kApproximateLsh,
                                           Kind::kLshHistograms));

class ConfidenceGatedTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ConfidenceGatedTest, HighGammaAbstainsNearBoundary) {
  Rng rng(7);
  auto sample = SamplePoints(2, 2000, HalfSpacePlan, &rng);
  auto strict = MakePredictor(GetParam(), sample, 0.1, 0.95);
  auto lax = MakePredictor(GetParam(), sample, 0.1, 0.3);
  Rng test_rng(8);
  int strict_answers = 0, lax_answers = 0, trials = 0;
  while (trials < 300) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    if (HalfSpaceBoundaryDistance(x) > 0.03) continue;  // boundary points
    ++trials;
    if (strict->Predict(x).has_value()) ++strict_answers;
    if (lax->Predict(x).has_value()) ++lax_answers;
  }
  EXPECT_LT(strict_answers, lax_answers)
      << "gamma should suppress boundary predictions";
}

TEST_P(ConfidenceGatedTest, PrecisionRecallTradeoffWithGamma) {
  Rng rng(9);
  auto sample = SamplePoints(2, 2000, HalfSpacePlan, &rng);
  auto strict = MakePredictor(GetParam(), sample, 0.1, 0.9);
  auto lax = MakePredictor(GetParam(), sample, 0.1, 0.1);
  MetricsAccumulator strict_m, lax_m;
  Rng test_rng(10);
  for (int i = 0; i < 600; ++i) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    strict_m.Record(strict->Predict(x).plan, HalfSpacePlan(x));
    lax_m.Record(lax->Predict(x).plan, HalfSpacePlan(x));
  }
  EXPECT_GE(strict_m.Precision(), lax_m.Precision() - 0.01);
  EXPECT_LE(strict_m.Recall(), lax_m.Recall() + 0.01);
}

INSTANTIATE_TEST_SUITE_P(DensityFamily, ConfidenceGatedTest,
                         ::testing::Values(Kind::kDensity, Kind::kNaive,
                                           Kind::kApproximateLsh,
                                           Kind::kLshHistograms));

TEST(DensityPredictorTest, FourPlanQuadrants) {
  Rng rng(11);
  auto sample = SamplePoints(2, 2000, QuadrantPlan, &rng);
  DensityPredictor::Config cfg;
  cfg.radius = 0.08;
  cfg.confidence_threshold = 0.5;
  DensityPredictor predictor(cfg, sample);
  EXPECT_EQ(predictor.Predict({0.2, 0.2}).plan, 1u);
  EXPECT_EQ(predictor.Predict({0.8, 0.2}).plan, 2u);
  EXPECT_EQ(predictor.Predict({0.2, 0.8}).plan, 3u);
  EXPECT_EQ(predictor.Predict({0.8, 0.8}).plan, 4u);
}

TEST(DensityPredictorTest, ReportsEstimatedCost) {
  Rng rng(13);
  auto sample = SamplePoints(2, 1000, HalfSpacePlan, &rng);
  DensityPredictor::Config cfg;
  cfg.radius = 0.1;
  cfg.confidence_threshold = 0.5;
  DensityPredictor predictor(cfg, sample);
  const auto pred = predictor.Predict({0.2, 0.2});
  ASSERT_TRUE(pred.has_value());
  // Plan 1's synthetic cost near (0.2, 0.2) is ~104.
  EXPECT_NEAR(pred.estimated_cost, 104.0, 5.0);
}

TEST(DensityPredictorTest, EmptyNeighborhoodIsNull) {
  Rng rng(17);
  std::vector<LabeledPoint> corner = {{{0.05, 0.05}, 1, 1.0}};
  DensityPredictor::Config cfg;
  cfg.radius = 0.05;
  DensityPredictor predictor(cfg, corner);
  EXPECT_FALSE(predictor.Predict({0.9, 0.9}).has_value());
}

TEST(KMeansPredictorTest, RadiusGatesDistantPredictions) {
  std::vector<LabeledPoint> sample = {{{0.1, 0.1}, 1, 1.0},
                                      {{0.12, 0.1}, 1, 1.0}};
  KMeansPredictor::Config cfg;
  cfg.clusters_per_plan = 2;
  cfg.radius = 0.05;
  KMeansPredictor predictor(cfg, sample);
  EXPECT_TRUE(predictor.Predict({0.1, 0.1}).has_value());
  EXPECT_FALSE(predictor.Predict({0.5, 0.5}).has_value());
}

TEST(SingleLinkagePredictorTest, NearestNeighborLabel) {
  std::vector<LabeledPoint> sample = {{{0.2, 0.2}, 1, 5.0},
                                      {{0.8, 0.8}, 2, 9.0}};
  SingleLinkagePredictor::Config cfg;
  cfg.radius = 0.5;
  SingleLinkagePredictor predictor(cfg, sample);
  EXPECT_EQ(predictor.Predict({0.3, 0.3}).plan, 1u);
  EXPECT_EQ(predictor.Predict({0.7, 0.7}).plan, 2u);
  EXPECT_FALSE(predictor.Predict({0.2, 0.9}).has_value());  // > radius
}

TEST(SingleLinkagePredictorTest, SensitiveToOutliers) {
  // One mislabeled outlier flips predictions around it — the weakness the
  // paper contrasts against density-based clustering.
  Rng rng(19);
  auto sample = SamplePoints(2, 500, HalfSpacePlan, &rng);
  sample.push_back({{0.1, 0.1}, 2, 1.0});  // outlier: plan 2 deep in plan 1
  SingleLinkagePredictor::Config slc;
  slc.radius = 0.2;
  SingleLinkagePredictor linkage(slc, sample);
  DensityPredictor::Config dc;
  dc.radius = 0.1;
  dc.confidence_threshold = 0.5;
  DensityPredictor density(dc, sample);
  // Exactly at the outlier, single linkage parrots it; density overrules.
  EXPECT_EQ(linkage.Predict({0.1, 0.1}).plan, 2u);
  EXPECT_EQ(density.Predict({0.1, 0.1}).plan, 1u);
}

TEST(NaiveGridPredictorTest, BudgetControlsResolution) {
  NaiveGridPredictor::Config cfg;
  cfg.dimensions = 2;
  cfg.bucket_budget = 100;
  NaiveGridPredictor predictor(cfg);
  EXPECT_EQ(predictor.cells_per_dim(), 10u);
  EXPECT_EQ(CellsPerDimForBudget(1000, 3), 10u);
  EXPECT_EQ(CellsPerDimForBudget(7, 3), 1u);
}

TEST(ApproximateLshPredictorTest, MedianRobustToOneBadGrid) {
  // With 5 transforms, a single unlucky bucket alignment cannot flip the
  // median-based density estimate; check boundary precision beats NAIVE's
  // on a coarse budget.
  Rng rng(23);
  auto sample = SamplePoints(2, 3000, HalfSpacePlan, &rng);
  NaiveGridPredictor::Config ncfg;
  ncfg.dimensions = 2;
  ncfg.bucket_budget = 64;  // deliberately coarse: 8x8
  ncfg.radius = 0.05;
  ncfg.confidence_threshold = 0.7;
  NaiveGridPredictor naive(ncfg, sample);
  ApproximateLshPredictor::Config acfg;
  acfg.dimensions = 2;
  acfg.transform_count = 7;
  acfg.bits_per_dim = 3;  // same 8 cells per axis
  acfg.radius = 0.05;
  acfg.confidence_threshold = 0.7;
  ApproximateLshPredictor lsh(acfg, sample);

  MetricsAccumulator naive_m, lsh_m;
  Rng test_rng(29);
  for (int i = 0; i < 800; ++i) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    naive_m.Record(naive.Predict(x).plan, HalfSpacePlan(x));
    lsh_m.Record(lsh.Predict(x).plan, HalfSpacePlan(x));
  }
  EXPECT_GE(lsh_m.Precision(), naive_m.Precision());
}

TEST(ApproximateLshPredictorTest, SpaceIsTTimesNaive) {
  ApproximateLshPredictor::Config cfg;
  cfg.dimensions = 2;
  cfg.transform_count = 5;
  cfg.bits_per_dim = 4;
  ApproximateLshPredictor predictor(cfg);
  predictor.Insert({{0.5, 0.5}, 1, 1.0});
  // 5 grids x 1 plan x 16^2 cells x 8 bytes.
  EXPECT_EQ(predictor.SpaceBytes(), 5u * 256u * 8u);
}

}  // namespace
}  // namespace ppc
