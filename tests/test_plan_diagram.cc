#include "workload/plan_diagram.h"

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::QuadrantPlan;
using testutil::SmallTpch;

TEST(PlanDiagramTest, SinglePlanSpace) {
  auto stats = AnalyzePlanSpace(
      [](const std::vector<double>&) -> PlanId { return 42; }, 2, 1000,
      0.05, 1);
  EXPECT_EQ(stats.distinct_plans, 1u);
  EXPECT_EQ(stats.largest_region_fraction, 1.0);
  EXPECT_EQ(stats.gini, 0.0);
  EXPECT_EQ(stats.entropy_bits, 0.0);
  EXPECT_EQ(stats.boundary_fraction, 0.0);
  EXPECT_EQ(stats.PlansCoveringFraction(0.99), 1u);
}

TEST(PlanDiagramTest, HalfSpaceMetrics) {
  auto stats = AnalyzePlanSpace(HalfSpacePlan, 2, 5000, 0.05, 2);
  EXPECT_EQ(stats.distinct_plans, 2u);
  EXPECT_NEAR(stats.largest_region_fraction, 0.5, 0.03);
  EXPECT_NEAR(stats.entropy_bits, 1.0, 0.02);  // two equal halves: 1 bit
  EXPECT_NEAR(stats.gini, 0.0, 0.05);          // equal areas
  // Boundary length sqrt(2) in the unit square; pairs at distance h
  // straddle it with probability ~ 2*h*len*E|cos| / area ~ 0.045 at 0.05.
  EXPECT_GT(stats.boundary_fraction, 0.01);
  EXPECT_LT(stats.boundary_fraction, 0.10);
}

TEST(PlanDiagramTest, QuadrantMetrics) {
  auto stats = AnalyzePlanSpace(QuadrantPlan, 2, 5000, 0.02, 3);
  EXPECT_EQ(stats.distinct_plans, 4u);
  EXPECT_NEAR(stats.entropy_bits, 2.0, 0.02);
  EXPECT_EQ(stats.PlansCoveringFraction(1.0), 4u);
  EXPECT_LE(stats.PlansCoveringFraction(0.5), 2u);
}

TEST(PlanDiagramTest, SkewedRegionsRaiseGini) {
  // Plan 1 covers 90% of the space, nine slivers split the rest.
  auto skewed = [](const std::vector<double>& x) -> PlanId {
    if (x[0] < 0.9) return 1;
    return 2 + static_cast<PlanId>(x[1] * 9.0);
  };
  auto balanced_stats = AnalyzePlanSpace(QuadrantPlan, 2, 5000, 0.05, 4);
  auto skewed_stats = AnalyzePlanSpace(skewed, 2, 5000, 0.05, 4);
  EXPECT_GT(skewed_stats.gini, balanced_stats.gini + 0.2);
  EXPECT_GT(skewed_stats.largest_region_fraction, 0.85);
}

TEST(PlanDiagramTest, BoundaryFractionGrowsWithDistance) {
  const auto near = AnalyzePlanSpace(HalfSpacePlan, 2, 4000, 0.01, 5);
  const auto far = AnalyzePlanSpace(HalfSpacePlan, 2, 4000, 0.2, 5);
  EXPECT_GT(far.boundary_fraction, near.boundary_fraction);
}

TEST(PlanDiagramTest, DeterministicForSeed) {
  const auto a = AnalyzePlanSpace(QuadrantPlan, 2, 1000, 0.05, 7);
  const auto b = AnalyzePlanSpace(QuadrantPlan, 2, 1000, 0.05, 7);
  EXPECT_EQ(a.distinct_plans, b.distinct_plans);
  EXPECT_EQ(a.gini, b.gini);
  EXPECT_EQ(a.boundary_fraction, b.boundary_fraction);
}

TEST(PlanDiagramTest, RealOptimizerDiagram) {
  Optimizer optimizer(&SmallTpch());
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer.Prepare(tmpl).value();
  auto stats = AnalyzePlanSpace(
      [&](const std::vector<double>& x) {
        return optimizer.Optimize(prep, x).value().plan_id;
      },
      2, 2000, 0.04, 11);
  EXPECT_GE(stats.distinct_plans, 3u);
  // Assumption 1's complement: boundary fraction must be small.
  EXPECT_LT(stats.boundary_fraction, 0.15);
  EXPECT_GT(stats.largest_region_fraction, 0.3);
}

}  // namespace
}  // namespace ppc
