#include "stats/equi_depth_histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppc {
namespace {

std::vector<double> Sequence(int n) {
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
  return v;
}

TEST(EquiDepthHistogramTest, EmptyInput) {
  auto h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.SelectivityLeq(1.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(EquiDepthHistogramTest, SelectivityAtBounds) {
  auto h = EquiDepthHistogram::Build(Sequence(100), 10);
  EXPECT_EQ(h.SelectivityLeq(-1.0), 0.0);
  EXPECT_EQ(h.SelectivityLeq(99.0), 1.0);
  EXPECT_EQ(h.SelectivityLeq(1000.0), 1.0);
}

TEST(EquiDepthHistogramTest, UniformSelectivityIsLinear) {
  auto h = EquiDepthHistogram::Build(Sequence(1000), 16);
  for (double v : {100.0, 250.0, 500.0, 900.0}) {
    EXPECT_NEAR(h.SelectivityLeq(v), v / 999.0, 0.02) << v;
  }
}

TEST(EquiDepthHistogramTest, SelectivityMonotone) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Gaussian(50.0, 15.0));
  auto h = EquiDepthHistogram::Build(values, 12);
  double prev = -1.0;
  for (double v = 0.0; v <= 100.0; v += 1.0) {
    const double s = h.SelectivityLeq(v);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
}

TEST(EquiDepthHistogramTest, GeqIsComplement) {
  auto h = EquiDepthHistogram::Build(Sequence(100), 8);
  for (double v : {10.0, 50.0, 90.0}) {
    EXPECT_NEAR(h.SelectivityLeq(v) + h.SelectivityGeq(v), 1.0, 1e-9);
  }
}

TEST(EquiDepthHistogramTest, RangeSelectivity) {
  auto h = EquiDepthHistogram::Build(Sequence(1000), 16);
  EXPECT_NEAR(h.SelectivityRange(250.0, 750.0), 0.5, 0.03);
  EXPECT_EQ(h.SelectivityRange(700.0, 300.0), 0.0);  // inverted range
  EXPECT_NEAR(h.SelectivityRange(-100.0, 2000.0), 1.0, 1e-9);
}

TEST(EquiDepthHistogramTest, QuantileRoundTrip) {
  auto h = EquiDepthHistogram::Build(Sequence(1000), 20);
  for (double f : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double v = h.Quantile(f);
    EXPECT_NEAR(h.SelectivityLeq(v), f, 0.02) << "f=" << f;
  }
}

TEST(EquiDepthHistogramTest, QuantileClampsFraction) {
  auto h = EquiDepthHistogram::Build(Sequence(100), 8);
  EXPECT_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(1.5), h.Quantile(1.0));
  EXPECT_EQ(h.Quantile(1.0), 99.0);
}

TEST(EquiDepthHistogramTest, HeavyDuplicatesDoNotBreakBuild) {
  std::vector<double> values(500, 7.0);
  for (int i = 0; i < 100; ++i) values.push_back(10.0 + i);
  auto h = EquiDepthHistogram::Build(values, 10);
  EXPECT_EQ(h.row_count(), 600u);
  // ~83% of values are <= 7.
  EXPECT_NEAR(h.SelectivityLeq(7.0), 500.0 / 600.0, 0.1);
  EXPECT_EQ(h.SelectivityLeq(200.0), 1.0);
}

TEST(EquiDepthHistogramTest, AllValuesIdentical) {
  std::vector<double> values(100, 42.0);
  auto h = EquiDepthHistogram::Build(values, 8);
  EXPECT_EQ(h.SelectivityLeq(41.0), 0.0);
  EXPECT_EQ(h.SelectivityLeq(42.0), 1.0);
  EXPECT_EQ(h.Quantile(0.5), 42.0);
}

TEST(EquiDepthHistogramTest, SkewedDataBucketsAdapt) {
  // Equi-depth buckets should be narrow where data is dense.
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(rng.Uniform(0.0, 1.0));
  for (int i = 0; i < 100; ++i) values.push_back(rng.Uniform(1.0, 100.0));
  auto h = EquiDepthHistogram::Build(values, 10);
  // 90% of mass below 1.0.
  EXPECT_NEAR(h.SelectivityLeq(1.0), 0.9, 0.03);
  // Median well inside the dense region.
  EXPECT_LT(h.Quantile(0.5), 1.0);
}

TEST(EquiDepthHistogramTest, BucketCountRespectsRequest) {
  auto h = EquiDepthHistogram::Build(Sequence(1000), 16);
  EXPECT_LE(h.bucket_count(), 17u);
  EXPECT_GE(h.bucket_count(), 8u);
}

TEST(EquiDepthHistogramTest, MinMax) {
  auto h = EquiDepthHistogram::Build({5.0, 1.0, 9.0, 3.0}, 4);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 9.0);
}

}  // namespace
}  // namespace ppc
