#include "plan/plan_node.h"

#include <gtest/gtest.h>

#include "plan/fingerprint.h"

namespace ppc {
namespace {

std::unique_ptr<PlanNode> SampleJoinPlan() {
  auto left = MakeIndexScan("orders", "o_date", {0});
  auto right = MakeSeqScan("lineitem", {1});
  auto join = MakeJoin(JoinMethod::kHashJoin, 0, std::move(left),
                       std::move(right));
  return MakeAggregate(std::move(join));
}

TEST(PlanNodeTest, MethodNames) {
  EXPECT_STREQ(ScanMethodName(ScanMethod::kSeqScan), "SeqScan");
  EXPECT_STREQ(ScanMethodName(ScanMethod::kIndexScan), "IndexScan");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kHashJoin), "HashJoin");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kIndexNestedLoop),
               "IndexNestedLoopJoin");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kSortMergeJoin), "SortMergeJoin");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kBlockNestedLoop),
               "BlockNestedLoopJoin");
}

TEST(PlanNodeTest, ConstructorsPopulateFields) {
  auto scan = MakeIndexScan("t", "c", {0, 2});
  EXPECT_EQ(scan->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(scan->scan_method, ScanMethod::kIndexScan);
  EXPECT_EQ(scan->table, "t");
  EXPECT_EQ(scan->index_column, "c");
  EXPECT_EQ(scan->param_predicates, (std::vector<int>{0, 2}));
}

TEST(PlanNodeTest, OperatorCount) {
  EXPECT_EQ(SampleJoinPlan()->OperatorCount(), 4u);
  EXPECT_EQ(MakeSeqScan("t", {})->OperatorCount(), 1u);
}

TEST(PlanNodeTest, TablesInScanOrder) {
  const auto tables = SampleJoinPlan()->Tables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "orders");
  EXPECT_EQ(tables[1], "lineitem");
}

TEST(PlanNodeTest, CloneIsDeepAndEqualStructure) {
  auto plan = SampleJoinPlan();
  plan->est_cost = 42.0;
  auto clone = plan->Clone();
  EXPECT_EQ(CanonicalPlanString(*plan), CanonicalPlanString(*clone));
  EXPECT_EQ(clone->est_cost, 42.0);
  // Mutating the clone must not affect the original.
  clone->left->left->table = "customer";
  EXPECT_NE(CanonicalPlanString(*plan), CanonicalPlanString(*clone));
}

TEST(FingerprintTest, StableAcrossClones) {
  auto plan = SampleJoinPlan();
  EXPECT_EQ(PlanFingerprint(*plan), PlanFingerprint(*plan->Clone()));
}

TEST(FingerprintTest, IgnoresEstimates) {
  auto a = SampleJoinPlan();
  auto b = SampleJoinPlan();
  b->est_cost = 999.0;
  b->left->est_rows = 123.0;
  EXPECT_EQ(PlanFingerprint(*a), PlanFingerprint(*b));
}

TEST(FingerprintTest, SensitiveToJoinMethod) {
  auto a = SampleJoinPlan();
  auto b = SampleJoinPlan();
  b->left->join_method = JoinMethod::kSortMergeJoin;
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
}

TEST(FingerprintTest, SensitiveToScanMethod) {
  auto a = MakeSeqScan("t", {0});
  auto b = MakeIndexScan("t", "c", {0});
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
}

TEST(FingerprintTest, SensitiveToChildOrder) {
  auto a = MakeJoin(JoinMethod::kHashJoin, 0, MakeSeqScan("x", {}),
                    MakeSeqScan("y", {}));
  auto b = MakeJoin(JoinMethod::kHashJoin, 0, MakeSeqScan("y", {}),
                    MakeSeqScan("x", {}));
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
}

TEST(FingerprintTest, SensitiveToPredicatePlacement) {
  auto a = MakeSeqScan("t", {0});
  auto b = MakeSeqScan("t", {1});
  auto c = MakeSeqScan("t", {});
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*b));
  EXPECT_NE(PlanFingerprint(*a), PlanFingerprint(*c));
}

TEST(FingerprintTest, NeverReturnsNullId) {
  EXPECT_NE(PlanFingerprint(*MakeSeqScan("t", {})), kNullPlanId);
}

TEST(FingerprintTest, CanonicalStringIsReadable) {
  const std::string repr = CanonicalPlanString(*SampleJoinPlan());
  EXPECT_NE(repr.find("Aggregate"), std::string::npos);
  EXPECT_NE(repr.find("HashJoin"), std::string::npos);
  EXPECT_NE(repr.find("IndexScan(orders via o_date"), std::string::npos);
  EXPECT_NE(repr.find("SeqScan(lineitem"), std::string::npos);
}

TEST(FingerprintTest, PrintPlanIsIndentedTree) {
  const std::string printed = PrintPlan(*SampleJoinPlan());
  EXPECT_NE(printed.find("Aggregate"), std::string::npos);
  EXPECT_NE(printed.find("  HashJoin"), std::string::npos);
  EXPECT_NE(printed.find("    IndexScan orders"), std::string::npos);
}

}  // namespace
}  // namespace ppc
