#include "exec/row_executor.h"

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "plan/fingerprint.h"
#include "test_util.h"
#include "workload/selectivity_mapper.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

/// Ground truth for Q1-style two-table join via brute force.
uint64_t BruteForceQ1(double s_date_max, double l_partkey_max) {
  const Table& supplier = *SmallTpch().GetTable("supplier").value();
  const Table& lineitem = *SmallTpch().GetTable("lineitem").value();
  const Column& s_key = *supplier.FindColumn("s_suppkey").value();
  const Column& s_date = *supplier.FindColumn("s_date").value();
  const Column& l_supp = *lineitem.FindColumn("l_suppkey").value();
  const Column& l_part = *lineitem.FindColumn("l_partkey").value();
  uint64_t count = 0;
  for (size_t s = 0; s < supplier.row_count(); ++s) {
    if (s_date.AsDouble(s) > s_date_max) continue;
    for (size_t l = 0; l < lineitem.row_count(); ++l) {
      if (l_part.AsDouble(l) > l_partkey_max) continue;
      if (l_supp.AsDouble(l) == s_key.AsDouble(s)) ++count;
    }
  }
  return count;
}

TEST(RowExecutorTest, OptimalPlanMatchesBruteForce) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl).value();
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  const std::vector<double> point = {0.5, 0.4};
  auto instance = mapper.ToInstance(point).value();
  auto sels = mapper.ToPlanSpacePoint(instance).value();
  auto opt = optimizer.Optimize(prep, sels).value();

  RowExecutor executor(&SmallTpch());
  auto stats = executor.Execute(tmpl, *opt.plan, instance.param_values);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().output_rows,
            BruteForceQ1(instance.param_values[0], instance.param_values[1]));
}

TEST(RowExecutorTest, AllJoinMethodsProduceIdenticalResults) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.6, 0.3}).value();

  auto make_plan = [](JoinMethod method) {
    return MakeAggregate(MakeJoin(method, 0, MakeSeqScan("supplier", {0}),
                                  MakeSeqScan("lineitem", {1})));
  };
  const uint64_t expected =
      executor.Execute(tmpl, *make_plan(JoinMethod::kHashJoin),
                       instance.param_values)
          .value()
          .output_rows;
  EXPECT_GT(expected, 0u);
  for (JoinMethod method :
       {JoinMethod::kBlockNestedLoop, JoinMethod::kSortMergeJoin}) {
    EXPECT_EQ(executor
                  .Execute(tmpl, *make_plan(method), instance.param_values)
                  .value()
                  .output_rows,
              expected)
        << JoinMethodName(method);
  }
}

TEST(RowExecutorTest, OptimizerChosenPlansAgreeAcrossPlanSpace) {
  // Whatever plan the optimizer picks at different points, executing it at
  // a fixed instance must give identical results (plans are semantically
  // equivalent).
  const QueryTemplate tmpl = EvaluationTemplate("Q2");
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl).value();
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.4, 0.5}).value();

  uint64_t expected = 0;
  bool first = true;
  for (const auto& point : std::vector<std::vector<double>>{
           {0.01, 0.01}, {0.4, 0.5}, {0.95, 0.95}, {0.05, 0.9}}) {
    auto opt = optimizer.Optimize(prep, point).value();
    auto stats = executor.Execute(tmpl, *opt.plan, instance.param_values);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (first) {
      expected = stats.value().output_rows;
      first = false;
    } else {
      EXPECT_EQ(stats.value().output_rows, expected);
    }
  }
}

TEST(RowExecutorTest, ThreeWayJoinExecutes) {
  const QueryTemplate tmpl = EvaluationTemplate("Q3");
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl).value();
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.8, 0.8, 0.8}).value();
  auto opt = optimizer.Optimize(
      prep, mapper.ToPlanSpacePoint(instance).value()).value();
  auto stats = executor.Execute(tmpl, *opt.plan, instance.param_values);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().output_rows, 0u);
  EXPECT_GT(stats.value().rows_processed, stats.value().output_rows);
}

TEST(RowExecutorTest, CardinalityEstimateTracksActual) {
  // The optimizer's cardinality model should be within an order of
  // magnitude of reality for independent predicates.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl).value();
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.7, 0.6}).value();
  auto sels = mapper.ToPlanSpacePoint(instance).value();
  auto opt = optimizer.Optimize(prep, sels).value();
  const double actual = static_cast<double>(
      executor.Execute(tmpl, *opt.plan, instance.param_values)
          .value()
          .output_rows);
  ASSERT_GT(actual, 0.0);
  EXPECT_LT(opt.estimated_rows / actual, 10.0);
  EXPECT_GT(opt.estimated_rows / actual, 0.1);
}

TEST(RowExecutorTest, SelectiveFilterReducesOutput) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto plan = MakeAggregate(MakeJoin(JoinMethod::kHashJoin, 0,
                                     MakeSeqScan("supplier", {0}),
                                     MakeSeqScan("lineitem", {1})));
  auto wide = mapper.ToInstance({1.0, 1.0}).value();
  auto narrow = mapper.ToInstance({0.1, 0.1}).value();
  const uint64_t wide_rows =
      executor.Execute(tmpl, *plan, wide.param_values).value().output_rows;
  const uint64_t narrow_rows =
      executor.Execute(tmpl, *plan, narrow.param_values).value().output_rows;
  EXPECT_LT(narrow_rows, wide_rows);
}

TEST(RowExecutorTest, IndexNestedLoopJoinExecutes) {
  // An INL plan (index-scan inner keyed on the join column) must produce
  // the same result as a hash join.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.5, 0.4}).value();

  auto hash_plan = MakeAggregate(MakeJoin(JoinMethod::kHashJoin, 0,
                                          MakeSeqScan("supplier", {0}),
                                          MakeSeqScan("lineitem", {1})));
  auto inl_plan = MakeAggregate(
      MakeJoin(JoinMethod::kIndexNestedLoop, 0, MakeSeqScan("supplier", {0}),
               MakeIndexScan("lineitem", "l_suppkey", {1})));
  const uint64_t expected =
      executor.Execute(tmpl, *hash_plan, instance.param_values)
          .value()
          .output_rows;
  EXPECT_EQ(executor.Execute(tmpl, *inl_plan, instance.param_values)
                .value()
                .output_rows,
            expected);
}

TEST(RowExecutorTest, OptimizerInlPlansExecuteCorrectly) {
  // Find a point where the optimizer actually picks an INL join and
  // execute that exact plan.
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl).value();
  RowExecutor executor(&SmallTpch());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  Rng rng(911);
  bool found_inl = false;
  for (int i = 0; i < 200 && !found_inl; ++i) {
    const std::vector<double> point = {rng.Uniform(), rng.Uniform()};
    auto opt = optimizer.Optimize(prep, point).value();
    const std::string repr = CanonicalPlanString(*opt.plan);
    if (repr.find("IndexNestedLoopJoin") == std::string::npos) continue;
    found_inl = true;
    auto instance = mapper.ToInstance(point).value();
    auto stats = executor.Execute(tmpl, *opt.plan, instance.param_values);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // Cross-check against a hash-join execution of the same query.
    auto reference = MakeAggregate(MakeJoin(JoinMethod::kHashJoin, 0,
                                            MakeSeqScan("supplier", {0}),
                                            MakeSeqScan("lineitem", {1})));
    EXPECT_EQ(stats.value().output_rows,
              executor.Execute(tmpl, *reference, instance.param_values)
                  .value()
                  .output_rows);
  }
  EXPECT_TRUE(found_inl)
      << "no INL plan found in 200 probes; plan space degenerate?";
}

TEST(RowExecutorTest, ParamArityMismatchRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  RowExecutor executor(&SmallTpch());
  auto plan = MakeSeqScan("supplier", {0});
  EXPECT_FALSE(executor.Execute(tmpl, *plan, {1.0}).ok());
}

TEST(RowExecutorTest, CartesianPlanRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  RowExecutor executor(&SmallTpch());
  auto plan = MakeJoin(JoinMethod::kHashJoin, 0, MakeSeqScan("supplier", {}),
                       MakeSeqScan("supplier", {}));
  // Both sides cover 'supplier'; no crossing edge exists.
  EXPECT_FALSE(executor.Execute(tmpl, *plan, {3000.0, 400.0}).ok());
}

}  // namespace
}  // namespace ppc
