#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

TEST(CostModelTest, PagesRoundUpAndFloorAtOne) {
  CostModel cm;
  EXPECT_EQ(cm.Pages(1.0, 8.0), 1.0);
  EXPECT_EQ(cm.Pages(1024.0, 8.0), 1.0);
  EXPECT_EQ(cm.Pages(1025.0, 8.0), 2.0);
  EXPECT_EQ(cm.Pages(0.0, 64.0), 1.0);
}

TEST(CostModelTest, SeqScanGrowsWithRows) {
  CostModel cm;
  const double small = cm.SeqScanCost(1000.0, 64.0, 1);
  const double large = cm.SeqScanCost(100000.0, 64.0, 1);
  EXPECT_GT(large, small * 50.0);
}

TEST(CostModelTest, SeqScanGrowsWithPredicates) {
  CostModel cm;
  EXPECT_GT(cm.SeqScanCost(10000.0, 64.0, 5),
            cm.SeqScanCost(10000.0, 64.0, 0));
}

TEST(CostModelTest, IndexScanMonotoneInSelectivity) {
  CostModel cm;
  double prev = cm.IndexScanCost(100000.0, 64.0, 0.0001, 0);
  for (double sel : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    const double cost = cm.IndexScanCost(100000.0, 64.0, sel, 0);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModelTest, IndexBeatsSeqScanOnlyAtLowSelectivity) {
  CostModel cm;
  const double rows = 100000.0, width = 64.0;
  const double seq = cm.SeqScanCost(rows, width, 1);
  EXPECT_LT(cm.IndexScanCost(rows, width, 0.0001, 0), seq);
  EXPECT_GT(cm.IndexScanCost(rows, width, 0.9, 0), seq);
}

TEST(CostModelTest, IndexSeqCrossoverExists) {
  // There must be a selectivity where the best access path flips — this is
  // what creates access-path boundaries in plan diagrams.
  CostModel cm;
  const double rows = 50000.0, width = 64.0;
  const double seq = cm.SeqScanCost(rows, width, 1);
  bool index_wins_somewhere = false, seq_wins_somewhere = false;
  for (double sel = 1e-5; sel <= 1.0; sel *= 2.0) {
    if (cm.IndexScanCost(rows, width, sel, 0) < seq) {
      index_wins_somewhere = true;
    } else {
      seq_wins_somewhere = true;
    }
  }
  EXPECT_TRUE(index_wins_somewhere);
  EXPECT_TRUE(seq_wins_somewhere);
}

TEST(CostModelTest, HashJoinLinearInInputs) {
  CostModel cm;
  const double base = cm.HashJoinCost(1000.0, 1000.0);
  EXPECT_NEAR(cm.HashJoinCost(2000.0, 2000.0), 2.0 * base, base * 0.01);
}

TEST(CostModelTest, BlockNestedLoopSuperLinear) {
  CostModel cm;
  const double small = cm.BlockNestedLoopCost(1000.0, 1000.0, 64.0);
  const double large = cm.BlockNestedLoopCost(10000.0, 10000.0, 64.0);
  EXPECT_GT(large, small * 50.0);  // ~quadratic CPU term dominates
}

TEST(CostModelTest, HashBeatsBnlOnLargeInputs) {
  CostModel cm;
  EXPECT_LT(cm.HashJoinCost(50000.0, 50000.0),
            cm.BlockNestedLoopCost(50000.0, 50000.0, 64.0));
}

TEST(CostModelTest, IndexNestedLoopWinsForTinyOuter) {
  CostModel cm;
  const double inner_rows = 100000.0, width = 64.0;
  // 3 outer rows: 3 probes beat building a hash table on 100k rows
  // (which also requires scanning the inner: add its seq-scan cost).
  const double inl = cm.IndexNestedLoopCost(3.0, inner_rows, width, 1.0);
  const double hash = cm.SeqScanCost(inner_rows, width, 0) +
                      cm.HashJoinCost(3.0, inner_rows);
  EXPECT_LT(inl, hash);
}

TEST(CostModelTest, HashWinsForLargeOuter) {
  CostModel cm;
  const double inner_rows = 100000.0, width = 64.0;
  const double inl =
      cm.IndexNestedLoopCost(50000.0, inner_rows, width, 1.0);
  const double hash = cm.SeqScanCost(inner_rows, width, 0) +
                      cm.HashJoinCost(50000.0, inner_rows);
  EXPECT_GT(inl, hash);
}

TEST(CostModelTest, SortMergeIncludesSortCost) {
  CostModel cm;
  const double merge_only = cm.SortMergeCost(1.0, 1.0);
  const double with_sort = cm.SortMergeCost(100000.0, 100000.0);
  EXPECT_GT(with_sort, merge_only);
  // n log n growth: doubling input grows cost by more than 2x the linear
  // part alone would.
  EXPECT_GT(cm.SortMergeCost(200000.0, 200000.0), 2.0 * with_sort);
}

TEST(CostModelTest, AggregateLinear) {
  CostModel cm;
  EXPECT_NEAR(cm.AggregateCost(2000.0), 2.0 * cm.AggregateCost(1000.0),
              1e-9);
}

TEST(CostModelTest, CostsNonNegative) {
  CostModel cm;
  EXPECT_GE(cm.IndexScanCost(100.0, 8.0, 0.0, 0), 0.0);
  EXPECT_GE(cm.SortMergeCost(0.0, 0.0), 0.0);
  EXPECT_GE(cm.IndexProbeCost(100.0, 8.0, 0.0), 0.0);
}

TEST(CostModelTest, ParamsArePropagated) {
  CostModelParams params;
  params.seq_page_cost = 100.0;
  CostModel expensive(params);
  CostModel cheap;
  EXPECT_GT(expensive.SeqScanCost(10000.0, 64.0, 0),
            cheap.SeqScanCost(10000.0, 64.0, 0));
}

}  // namespace
}  // namespace ppc
