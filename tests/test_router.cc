#include "server/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/client.h"
#include "server/hash_ring.h"
#include "server/server.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::JsonValidator;
using testutil::SmallTpch;

// ---------------------------------------------------------------------
// HashRing unit tests.
// ---------------------------------------------------------------------

std::vector<std::string> SyntheticKeys(int count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (int i = 0; i < count; ++i) keys.push_back("Q" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, OwnershipIsDeterministicAcrossInsertionOrder) {
  const std::vector<HashRing::Node> nodes = {
      {"10.0.0.1", 9001}, {"10.0.0.2", 9002}, {"10.0.0.3", 9003}};
  HashRing forward;
  for (const auto& n : nodes) forward.Add(n);
  HashRing reverse;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) reverse.Add(*it);
  for (const std::string& key : SyntheticKeys(500)) {
    auto a = forward.Owner(key);
    auto b = reverse.Owner(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().Address(), b.value().Address()) << key;
  }
}

TEST(HashRingTest, VnodesSpreadOwnershipAcrossNodes) {
  HashRing ring(/*vnodes_per_node=*/64);
  ring.Add({"10.0.0.1", 9001});
  ring.Add({"10.0.0.2", 9002});
  ring.Add({"10.0.0.3", 9003});
  std::map<std::string, int> owned;
  const auto keys = SyntheticKeys(3000);
  for (const std::string& key : keys) {
    owned[ring.Owner(key).value().Address()]++;
  }
  ASSERT_EQ(owned.size(), 3u) << "every node must own some keys";
  for (const auto& [address, count] : owned) {
    // With 64 vnodes each, no node should fall below ~1/3 of fair share.
    EXPECT_GT(count, static_cast<int>(keys.size()) / 9) << address;
  }
}

TEST(HashRingTest, RemovalOnlyMovesTheRemovedNodesKeys) {
  HashRing ring;
  const HashRing::Node a{"10.0.0.1", 9001};
  const HashRing::Node b{"10.0.0.2", 9002};
  const HashRing::Node c{"10.0.0.3", 9003};
  ring.Add(a);
  ring.Add(b);
  ring.Add(c);
  const auto keys = SyntheticKeys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) {
    before[key] = ring.Owner(key).value().Address();
  }
  ASSERT_TRUE(ring.Remove(c));
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string after = ring.Owner(key).value().Address();
    if (before[key] == c.Address()) {
      ++moved;
      EXPECT_NE(after, c.Address());
    } else {
      // The defining consistent-hashing property: keys on surviving
      // nodes never move when some *other* node leaves.
      EXPECT_EQ(after, before[key]) << key;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, AddIsIdempotentAndRemoveReportsAbsence) {
  HashRing ring;
  const HashRing::Node a{"10.0.0.1", 9001};
  ring.Add(a);
  ring.Add(a);
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_TRUE(ring.Remove(a));
  EXPECT_FALSE(ring.Remove(a));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Owner("Q1").status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// Replica placement (DESIGN.md §18).
// ---------------------------------------------------------------------

TEST(HashRingTest, ReplicaIsAlwaysADistinctShard) {
  // With few nodes and many vnodes per node, runs of *adjacent* vnodes
  // belonging to the same backend are common on the ring — exactly the
  // collision the successor walk must skip past. Exercise node counts
  // from 2 up and both sparse and dense vnode settings.
  for (const int vnodes : {1, 64, 256}) {
    for (int node_count = 2; node_count <= 5; ++node_count) {
      HashRing ring(vnodes);
      for (int i = 0; i < node_count; ++i) {
        ring.Add({"10.0.0." + std::to_string(i + 1),
                  static_cast<uint16_t>(9001 + i)});
      }
      for (const std::string& key : SyntheticKeys(2000)) {
        const auto placement = ring.PlacementFor(key);
        ASSERT_TRUE(placement.ok());
        ASSERT_TRUE(placement.value().has_replica)
            << key << " with " << node_count << " nodes";
        EXPECT_FALSE(placement.value().replica == placement.value().primary)
            << key;
        // The primary leg of the placement must agree with Owner().
        EXPECT_EQ(placement.value().primary.Address(),
                  ring.Owner(key).value().Address())
            << key;
      }
    }
  }
}

TEST(HashRingTest, SingleNodeRingHasNoReplica) {
  HashRing ring;
  ring.Add({"10.0.0.1", 9001});
  const auto placement = ring.PlacementFor("Q1");
  ASSERT_TRUE(placement.ok());
  EXPECT_FALSE(placement.value().has_replica);
  EXPECT_EQ(placement.value().primary.Address(), "10.0.0.1:9001");
  HashRing empty;
  EXPECT_EQ(empty.PlacementFor("Q1").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HashRingTest, PlacementIsDeterministicAcrossRebuilds) {
  const std::vector<HashRing::Node> nodes = {{"10.0.0.1", 9001},
                                             {"10.0.0.2", 9002},
                                             {"10.0.0.3", 9003},
                                             {"10.0.0.4", 9004}};
  HashRing forward;
  for (const auto& n : nodes) forward.Add(n);
  HashRing reverse;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) reverse.Add(*it);
  // A third rebuild that churns through add/remove before converging on
  // the same set — placement must be a pure function of the final set.
  HashRing churned;
  churned.Add({"10.9.9.9", 1234});
  for (const auto& n : nodes) churned.Add(n);
  ASSERT_TRUE(churned.Remove({"10.9.9.9", 1234}));
  for (const std::string& key : SyntheticKeys(1000)) {
    const auto a = forward.PlacementFor(key);
    const auto b = reverse.PlacementFor(key);
    const auto c = churned.PlacementFor(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(a.value().primary.Address(), b.value().primary.Address());
    EXPECT_EQ(a.value().replica.Address(), b.value().replica.Address());
    EXPECT_EQ(a.value().primary.Address(), c.value().primary.Address());
    EXPECT_EQ(a.value().replica.Address(), c.value().replica.Address());
  }
}

TEST(HashRingTest, PlacementMovementStaysNearOneOverNOnAddAndRemove) {
  const auto keys = SyntheticKeys(4000);
  // Adding a 5th node should re-home roughly 1/5 of the primaries; the
  // wide tolerance absorbs vnode-placement variance without letting a
  // broken ring (all keys move, or none do) slip through.
  HashRing ring;
  for (int i = 0; i < 4; ++i) {
    ring.Add({"10.0.0." + std::to_string(i + 1),
              static_cast<uint16_t>(9001 + i)});
  }
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) {
    before[key] = ring.PlacementFor(key).value().primary.Address();
  }
  const HashRing::Node fifth{"10.0.0.5", 9005};
  ring.Add(fifth);
  int moved_on_add = 0;
  for (const std::string& key : keys) {
    const auto placement = ring.PlacementFor(key).value();
    if (placement.primary.Address() != before[key]) {
      ++moved_on_add;
      // Keys only ever move *to* the new node on an add.
      EXPECT_TRUE(placement.primary == fifth) << key;
    }
  }
  const double add_fraction =
      static_cast<double>(moved_on_add) / static_cast<double>(keys.size());
  EXPECT_GT(add_fraction, 0.10);
  EXPECT_LT(add_fraction, 0.35);

  // Removing it again restores the 4-node placement exactly, so the
  // movement fraction on remove equals the fraction the node owned.
  ASSERT_TRUE(ring.Remove(fifth));
  int moved_on_remove = 0;
  for (const std::string& key : keys) {
    if (ring.PlacementFor(key).value().primary.Address() != before[key]) {
      ++moved_on_remove;
    }
  }
  EXPECT_EQ(moved_on_remove, 0)
      << "removal must restore the prior placement bit for bit";
}

// ---------------------------------------------------------------------
// Router end-to-end tests (two in-process shards behind a router).
// ---------------------------------------------------------------------

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

struct TemplateSpec {
  const char* name;
  int dims;
};

/// Every evaluation template, so placement-sensitive tests always find
/// work on both shards regardless of where the ephemeral-port ring puts
/// each template.
constexpr TemplateSpec kTemplates[] = {
    {"Q0", 2}, {"Q1", 2}, {"Q2", 2}, {"Q3", 3}, {"Q4", 3},
    {"Q5", 4}, {"Q6", 4}, {"Q7", 5}, {"Q8", 6}};

std::vector<double> PointFor(const std::string& name) {
  for (const TemplateSpec& spec : kTemplates) {
    if (name == spec.name) return std::vector<double>(spec.dims, 0.5);
  }
  return {};
}

class RouterTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 2;

  void SetUp() override {
    for (int i = 0; i < kShards; ++i) {
      frameworks_[i] =
          std::make_unique<PpcFramework>(&SmallTpch(), ServingConfig());
      for (const TemplateSpec& spec : kTemplates) {
        ASSERT_TRUE(frameworks_[i]
                        ->RegisterTemplate(EvaluationTemplate(spec.name))
                        .ok());
      }
      shards_[i] = std::make_unique<PlanServer>(frameworks_[i].get(),
                                                PlanServer::Config{});
      ASSERT_TRUE(shards_[i]->Start().ok());
    }
  }

  void StartRouter(std::vector<int> backend_indices = {0, 1}) {
    PlanRouter::Config config;
    config.idle_poll_ms = 10;
    // Keep these tests deterministic: no background prober, so breaker
    // state moves only on the passive failures each test provokes. The
    // full health model (probes, rejoin, replication) is exercised by
    // tests/test_cluster_failover.cc.
    config.probe_interval_ms = 0;
    for (int i : backend_indices) {
      config.backends.push_back(ShardNode(i));
    }
    router_ = std::make_unique<PlanRouter>(config);
    ASSERT_TRUE(router_->Start().ok());
    ASSERT_GT(router_->port(), 0);
  }

  HashRing::Node ShardNode(int i) const {
    return HashRing::Node{"127.0.0.1", shards_[i]->port()};
  }

  /// The shard index the router's ring assigns `name` to — computed with
  /// an identical local ring (placement is a pure function of the
  /// backend set).
  int OwnerIndex(const std::string& name) const {
    HashRing ring;
    for (int i = 0; i < kShards; ++i) ring.Add(ShardNode(i));
    const auto owner = ring.Owner(name);
    for (int i = 0; i < kShards; ++i) {
      if (owner.value() == ShardNode(i)) return i;
    }
    return -1;
  }

  Status ConnectClient(PpcClient* client) {
    return client->Connect("127.0.0.1", router_->port());
  }

  uint64_t ShardCounter(int i, const std::string& name) {
    return frameworks_[i]->metrics().counter(name).value();
  }

  // A shard replies *before* bumping its request counters (the recorded
  // latency deliberately covers the response write), so reading the
  // counter right after the client's reply races the increment by a few
  // microseconds. Poll briefly before asserting exact counts.
  uint64_t AwaitShardCounter(int i, const std::string& name,
                             uint64_t at_least) {
    for (int spin = 0; spin < 2000; ++spin) {
      const uint64_t value = ShardCounter(i, name);
      if (value >= at_least) return value;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ShardCounter(i, name);
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    for (auto& shard : shards_) {
      if (shard != nullptr) shard->Stop();
    }
  }

  std::unique_ptr<PpcFramework> frameworks_[kShards];
  std::unique_ptr<PlanServer> shards_[kShards];
  std::unique_ptr<PlanRouter> router_;
};

TEST_F(RouterTest, PingAndMetricsAreAnsweredLocally) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(JsonValidator::Valid(metrics.value())) << metrics.value();
  EXPECT_NE(metrics.value().find("\"router\""), std::string::npos);
  EXPECT_NE(metrics.value().find("\"shards\""), std::string::npos);
  // Both shard payloads are spliced in, keyed by address, with the
  // health fields wrapped around each.
  for (int i = 0; i < kShards; ++i) {
    EXPECT_NE(metrics.value().find(ShardNode(i).Address()),
              std::string::npos);
  }
  EXPECT_NE(metrics.value().find("\"up\":true"), std::string::npos);
  EXPECT_NE(metrics.value().find("\"breaker_state\":\"closed\""),
            std::string::npos);
}

TEST_F(RouterTest, RoutesEveryRequestForATemplateToOneShard) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Drive learning for both templates straight through the router.
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(client.Execute("Q1", x).ok());
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x = {0.5, 0.5, 0.5};
    ASSERT_TRUE(client.Execute("Q3", x).ok());
  }

  // Every EXECUTE for a template landed on its owning shard, none on the
  // other — the property that keeps per-template learning coherent.
  const int q1_owner = OwnerIndex("Q1");
  const int q3_owner = OwnerIndex("Q3");
  ASSERT_GE(q1_owner, 0);
  ASSERT_GE(q3_owner, 0);
  uint64_t expected[kShards] = {};
  expected[q1_owner] += 300;
  expected[q3_owner] += 50;
  for (int i = 0; i < kShards; ++i) {
    EXPECT_EQ(AwaitShardCounter(i, "server.requests.execute", expected[i]),
              expected[i])
        << "shard " << i;
  }

  // The warmed template predicts through the router exactly as it would
  // shard-direct.
  auto predicted = client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_NE(predicted.value().plan, kNullPlanId);
  EXPECT_GE(predicted.value().confidence, 0.8);

  // Batches route like scalars.
  auto batch = client.PredictBatch("Q1", {0.5, 0.5, 0.51, 0.49}, 2);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().size(), 2u);
}

TEST_F(RouterTest, SnapshotMessagesAreRefusedAtTheRouter) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_EQ(client.FetchSnapshot().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.ApplySnapshot("ignored").status().code(),
            StatusCode::kInvalidArgument);
  // The refusal is an answer, not a connection drop.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(RouterTest, UnknownTemplateErrorsRelayVerbatim) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto missing = client.Predict("Q999", {0.5, 0.5});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound)
      << missing.status().ToString();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(RouterTest, ShardLossFailsOverToReplicaAndTopologyRemoveRehomes) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Shard ports are ephemeral, so ring placement differs run to run;
  // find a template homed on each shard (with 9 templates and 64 vnodes
  // per node an empty shard is a sub-percent accident — skip then).
  std::string lost_template, surviving_template;
  const int victim = OwnerIndex(kTemplates[0].name);
  for (const TemplateSpec& spec : kTemplates) {
    (OwnerIndex(spec.name) == victim ? lost_template : surviving_template) =
        spec.name;
  }
  if (lost_template.empty() || surviving_template.empty()) {
    GTEST_SKIP() << "ring placement put every template on one shard";
  }

  shards_[victim]->Stop();

  // The victim's templates keep answering: with two shards on the ring,
  // the survivor is every template's replica, so the router fails the
  // PREDICT over to it (cold for this template, so it may abstain — but
  // it answers instead of surfacing the dead shard as INTERNAL).
  auto lost = client.Predict(lost_template, PointFor(lost_template));
  EXPECT_TRUE(lost.ok()) << lost.status().ToString();
  // An EXECUTE fails over too, and carries the FAILED_OVER flag so the
  // client knows its corrective feedback landed off the home shard.
  auto failed_over = client.Execute(lost_template, PointFor(lost_template));
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();
  EXPECT_TRUE(failed_over.value().failed_over);
  // The surviving shard's own templates serve primary-side, unflagged,
  // through the same router connection.
  auto direct =
      client.Execute(surviving_template, PointFor(surviving_template));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_FALSE(direct.value().failed_over);
  EXPECT_TRUE(client.Ping().ok());

  // Draining the dead shard from the ring re-homes its templates onto
  // the survivor.
  auto removed = client.Topology(wire::TopologyOp::kRemove, "127.0.0.1",
                                 shards_[victim]->port());
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_EQ(router_->backend_count(), 1u);
  auto rehomed = client.Predict(lost_template, PointFor(lost_template));
  EXPECT_TRUE(rehomed.ok()) << rehomed.status().ToString();

  // Removing an address that is not on the ring is NotFound.
  EXPECT_EQ(client
                .Topology(wire::TopologyOp::kRemove, "127.0.0.1",
                          shards_[victim]->port())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(RouterTest, TopologyAddBringsAJoiningShardIntoRotation) {
  StartRouter({0});  // start with one backend
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_EQ(router_->backend_count(), 1u);

  // Everything routes to shard 0 while it is alone on the ring.
  ASSERT_TRUE(client.Execute("Q1", {0.5, 0.5}).ok());
  ASSERT_TRUE(client.Execute("Q3", {0.5, 0.5, 0.5}).ok());
  EXPECT_EQ(AwaitShardCounter(0, "server.requests.execute", 2u), 2u);

  auto added = client.Topology(wire::TopologyOp::kAdd, "127.0.0.1",
                               shards_[1]->port());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 2u);

  // With both shards on the ring, traffic follows the two-node placement.
  ASSERT_TRUE(client.Execute("Q1", {0.5, 0.5}).ok());
  ASSERT_TRUE(client.Execute("Q3", {0.5, 0.5, 0.5}).ok());
  const int q1_owner = OwnerIndex("Q1");
  const int q3_owner = OwnerIndex("Q3");
  const uint64_t expected_joined =
      (q1_owner == 1 ? 1u : 0u) + (q3_owner == 1 ? 1u : 0u);
  EXPECT_EQ(
      AwaitShardCounter(1, "server.requests.execute", expected_joined),
      expected_joined);
}

TEST_F(RouterTest, ConcurrentClientsRouteWithoutInterference) {
  StartRouter();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 60;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PpcClient client;
      if (!ConnectClient(&client).ok()) {
        ++failures;
        return;
      }
      Rng rng(100 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const bool use_q1 = (i + t) % 2 == 0;
        std::vector<double> x =
            use_q1 ? std::vector<double>{rng.Uniform(), rng.Uniform()}
                   : std::vector<double>{rng.Uniform(), rng.Uniform(),
                                         rng.Uniform()};
        if (!client.Execute(use_q1 ? "Q1" : "Q3", x).ok()) ++failures;
        if (i % 10 == 0 && !client.Ping().ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Conservation: every execute landed on exactly one shard. Wait on
  // either counter to flush the in-flight increments, then sum.
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads * kQueriesPerThread);
  uint64_t sum = 0;
  for (int spin = 0; spin < 2000 && sum < kTotal; ++spin) {
    sum = ShardCounter(0, "server.requests.execute") +
          ShardCounter(1, "server.requests.execute");
    if (sum < kTotal) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(sum, kTotal);
}

TEST_F(RouterTest, ShutdownOverTheWireDrainsTheRouter) {
  StartRouter();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Shutdown().ok());
  router_->Wait();
  EXPECT_FALSE(router_->running());
  // The shards are untouched — the router drains, the fleet stays up.
  PpcClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", shards_[0]->port()).ok());
  EXPECT_TRUE(direct.Ping().ok());
}

}  // namespace
}  // namespace ppc
