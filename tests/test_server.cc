#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/client.h"
#include "server/net_util.h"
#include "server/wire_protocol.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::JsonValidator;
using testutil::SmallTpch;

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

/// Framework with Q1 (2-dim) and Q3 (3-dim) registered; `warm_queries`
/// executions around (0.5, 0.5) make Q1 confidently predictable.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    framework_ = std::make_unique<PpcFramework>(&SmallTpch(), ServingConfig());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q1")).ok());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q3")).ok());
  }

  void WarmQ1(int warm_queries) {
    Rng rng(7);
    for (int i = 0; i < warm_queries; ++i) {
      std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                               0.5 + rng.Uniform(-0.02, 0.02)};
      ASSERT_TRUE(framework_->ExecuteAtPoint("Q1", x).ok());
    }
  }

  /// Starts a server on an ephemeral port and returns a connected client.
  void StartServer(PlanServer::Config config = {}) {
    server_ = std::make_unique<PlanServer>(framework_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(server_->running());
    ASSERT_GT(server_->port(), 0);
  }

  Status ConnectClient(PpcClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<PpcFramework> framework_;
  std::unique_ptr<PlanServer> server_;
};

TEST_F(ServerTest, StartPingStop) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, StartIsRejectedTwice) {
  StartServer();
  EXPECT_FALSE(server_->Start().ok());
}

TEST_F(ServerTest, PredictRoundTrip) {
  WarmQ1(300);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto result = client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The framework RNG is seeded, so the warmed cluster predicts
  // deterministically.
  EXPECT_NE(result.value().plan, kNullPlanId);
  EXPECT_GE(result.value().confidence, 0.8);

  // A cold region yields the NULL plan, still with an OK transport status.
  auto cold = client.Predict("Q3", {0.9, 0.9, 0.9});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().plan, kNullPlanId);
}

TEST_F(ServerTest, BatchPredictionsAgreeWithScalarPointForPoint) {
  WarmQ1(300);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Points spanning the warmed cluster and cold regions, so the batch
  // covers both confident predictions and abstentions.
  Rng rng(23);
  constexpr uint32_t kDims = 2;
  constexpr int kPoints = 48;
  std::vector<double> flat;
  for (int i = 0; i < kPoints; ++i) {
    if (i % 3 == 0) {
      // Far corner, well outside the warmed cluster's support.
      flat.push_back(0.02 + rng.Uniform(0.0, 0.02));
      flat.push_back(0.96 + rng.Uniform(0.0, 0.02));
    } else {
      flat.push_back(0.5 + rng.Uniform(-0.03, 0.03));
      flat.push_back(0.5 + rng.Uniform(-0.03, 0.03));
    }
  }

  auto batch = client.PredictBatch("Q1", flat, kDims);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), static_cast<size_t>(kPoints));

  bool saw_hit = false;
  for (int i = 0; i < kPoints; ++i) {
    std::vector<double> x(flat.begin() + i * kDims,
                          flat.begin() + (i + 1) * kDims);
    auto scalar = client.Predict("Q1", x);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_EQ(batch.value()[i].plan, scalar.value().plan) << "point " << i;
    EXPECT_EQ(batch.value()[i].confidence, scalar.value().confidence)
        << "point " << i;
    EXPECT_EQ(batch.value()[i].cache_hit, scalar.value().cache_hit)
        << "point " << i;
    saw_hit |= batch.value()[i].plan != kNullPlanId;
  }
  // The comparison only bites if the batch contains real predictions.
  EXPECT_TRUE(saw_hit);

  // An unwarmed template abstains on every point: the batch answer is a
  // full row of NULL plans, not an error (DESIGN.md §13).
  auto cold = client.PredictBatch("Q3", {0.9, 0.9, 0.9, 0.1, 0.2, 0.3}, 3);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().size(), 2u);
  for (const auto& answer : cold.value()) {
    EXPECT_EQ(answer.plan, kNullPlanId);
    EXPECT_EQ(answer.confidence, 0.0);
    EXPECT_FALSE(answer.cache_hit);
  }
}

TEST_F(ServerTest, BatchSemanticErrorsAreAllOrNothing) {
  WarmQ1(100);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  auto unknown = client.PredictBatch("NoSuchTemplate", {0.5, 0.5}, 2);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto bad_arity = client.PredictBatch("Q1", {0.5, 0.5, 0.5}, 3);
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  auto bad_coord = client.PredictBatch("Q1", {0.5, 0.5, 0.5, 1e308 * 10}, 2);
  EXPECT_FALSE(bad_coord.ok());
  EXPECT_EQ(bad_coord.status().code(), StatusCode::kInvalidArgument);

  // The connection survives batch-level rejections.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.PredictBatch("Q1", {0.5, 0.5}, 2).ok());
}

TEST_F(ServerTest, MicrobatchedPredictsMatchUnbatchedAnswers) {
  WarmQ1(300);

  // Gate the single worker so a burst of pipelined PREDICTs piles up in
  // the queue; on release the worker drains them as one micro-batch.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 64;
  config.max_microbatch = 16;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto gate = client.SendPing();
  ASSERT_TRUE(gate.ok());
  while (entered.load() == 0) std::this_thread::yield();

  Rng rng(29);
  std::vector<uint64_t> ids;
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 12; ++i) {
    const double spread = (i % 3 == 0) ? 0.45 : 0.03;
    points.push_back({0.5 + rng.Uniform(-spread, spread),
                      0.5 + rng.Uniform(-spread, spread)});
    auto id = client.SendPredict("Q1", points.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  while (server_->queued_requests() < 12) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  ASSERT_TRUE(client.Wait(gate.value()).ok());
  std::vector<wire::Response> responses;
  for (uint64_t id : ids) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().ok());
    responses.push_back(response.value());
  }

  // Micro-batched answers must be indistinguishable from scalar ones.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto scalar = client.Predict("Q1", points[i]);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(responses[i].predict.plan, scalar.value().plan) << "point " << i;
    EXPECT_EQ(responses[i].predict.confidence, scalar.value().confidence)
        << "point " << i;
  }

  // The queue really was drained as micro-batches, not one-at-a-time.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("server.microbatches"), std::string::npos);
  EXPECT_NE(metrics.value().find("server.microbatched_predicts"),
            std::string::npos);
  EXPECT_GT(framework_->metrics().counter("server.microbatches").value(), 0u);
  EXPECT_GE(
      framework_->metrics().counter("server.microbatched_predicts").value(),
      12u);
}

TEST_F(ServerTest, ExecuteRoundTripFeedsTheOnlineLoop) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  Rng rng(11);
  bool saw_prediction = false;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = client.Execute("Q1", x);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NE(report.value().executed_plan, kNullPlanId);
    EXPECT_GT(report.value().execution_cost, 0.0);
    saw_prediction |= report.value().used_prediction;
  }
  // EXECUTE runs the full feedback path, so the predictor must have
  // learned the cluster over 200 queries.
  EXPECT_TRUE(saw_prediction);
}

TEST_F(ServerTest, SemanticErrorsKeepTheConnectionOpen) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  auto unknown = client.Predict("NoSuchTemplate", {0.5, 0.5});
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto bad_arity = client.Predict("Q1", {0.5});
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  auto bad_coord = client.Execute("Q1", {0.5, 1e308 * 10});  // +inf
  EXPECT_FALSE(bad_coord.ok());
  EXPECT_EQ(bad_coord.status().code(), StatusCode::kInvalidArgument);

  // The connection survives semantic errors.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Predict("Q1", {0.5, 0.5}).ok());
}

TEST_F(ServerTest, MetricsRoundTripsValidJson) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Predict("Q1", {0.5, 0.5}).ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(JsonValidator::Valid(metrics.value())) << metrics.value();
  for (const char* key :
       {"server.requests.ping", "server.requests.predict",
        "server.connections.accepted", "server.predict_us"}) {
    EXPECT_NE(metrics.value().find(key), std::string::npos) << key;
  }
}

TEST_F(ServerTest, PipelinedRequestsResolveOutOfOrder) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = (i % 2 == 0) ? client.SendPing()
                           : client.SendPredict("Q1", {0.5, 0.5});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Collect in reverse to force the client to park early responses.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto response = client.Wait(*it);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().id, *it);
    EXPECT_TRUE(response.value().ok());
  }
}

TEST_F(ServerTest, ConcurrentClientsEachGetTheirOwnAnswers) {
  WarmQ1(200);
  StartServer();
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, t, &failures] {
      PpcClient client;
      if (!ConnectClient(&client).ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(100 + t);
      for (int i = 0; i < kRequestsEach; ++i) {
        Status status;
        switch (rng.UniformInt(uint64_t{3})) {
          case 0:
            status = client.Ping();
            break;
          case 1:
            status = client.Predict("Q1", {0.5, 0.5}).status();
            break;
          default:
            status = client
                         .Execute("Q3", {0.4 + rng.Uniform(-0.02, 0.02),
                                         0.4 + rng.Uniform(-0.02, 0.02),
                                         0.4 + rng.Uniform(-0.02, 0.02)})
                         .status();
            break;
        }
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, BackpressureAnswersBusyWhenTheQueueIsFull) {
  // One worker held inside the dispatch hook + a capacity-1 queue makes
  // overflow deterministic: request 1 is in the worker, request 2 fills
  // the queue, requests 3+ must bounce with BUSY from the IO thread.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 1;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto first = client.SendPing();
  ASSERT_TRUE(first.ok());
  while (entered.load() == 0) std::this_thread::yield();

  auto second = client.SendPing();  // fills the queue
  ASSERT_TRUE(second.ok());
  std::vector<uint64_t> bounced;
  for (int i = 0; i < 4; ++i) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    bounced.push_back(id.value());
  }
  // The BUSY bounces come back from the IO thread while the worker is
  // still held, so they can be collected before releasing it.
  for (uint64_t id : bounced) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, wire::WireStatus::kBusy);
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (uint64_t id : {first.value(), second.value()}) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().ok());
  }
}

TEST_F(ServerTest, GracefulShutdownDrainsAdmittedRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 16;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> ids;
  auto first = client.SendPing();
  ASSERT_TRUE(first.ok());
  ids.push_back(first.value());
  while (entered.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    auto id = client.SendPredict("Q1", {0.5, 0.5});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // SendPredict returns once the bytes are written, which is before the IO
  // thread has necessarily admitted them — wait for that, so the drain
  // guarantee below is exercised deterministically.
  while (server_->queued_requests() < 5) std::this_thread::yield();

  // Initiate the drain while five requests sit in the queue, then let the
  // worker run: every admitted request must still get its response.
  server_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (uint64_t id : ids) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response.value().ok());
  }
  server_->Wait();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, ShutdownRequestAcksThenDrains) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server_->Wait();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, MalformedPayloadGetsErrorFrameThenClose) {
  StartServer();

  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // A well-framed payload that decodes to nothing: unknown type 0xEE.
  const std::string payload = "\xEE garbage";
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame(reinterpret_cast<const char*>(&length), sizeof(length));
  frame += payload;
  ASSERT_TRUE(net::SendAll(fd.value(), frame.data(), frame.size()));

  // Expect exactly one error frame (kInvalid / id 0 / BAD_REQUEST)…
  wire::FrameBuffer frames;
  std::string reply_payload;
  char buffer[512];
  bool got_frame = false;
  bool got_eof = false;
  while (!got_eof) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(received.ok());
    if (received.value() == 0) {
      got_eof = true;  // …then the server must drop the connection.
      break;
    }
    frames.Append(buffer, received.value());
    auto next = frames.Next(&reply_payload);
    ASSERT_TRUE(next.ok());
    if (next.value()) {
      got_frame = true;
      auto response = wire::DecodeResponse(reply_payload);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response.value().type, wire::MessageType::kInvalid);
      EXPECT_EQ(response.value().id, 0u);
      EXPECT_EQ(response.value().status, wire::WireStatus::kBadRequest);
    }
  }
  EXPECT_TRUE(got_frame);
  ::close(fd.value());

  // The server itself survives misbehaving clients.
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, FramingViolationClosesTheConnection) {
  StartServer();
  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  const uint32_t huge = 1u << 30;  // above max_frame_bytes
  ASSERT_TRUE(net::SendAll(fd.value(), reinterpret_cast<const char*>(&huge),
                           sizeof(huge)));
  // Drain until EOF; the server answers with one error frame and closes.
  char buffer[512];
  while (true) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(received.ok());
    if (received.value() == 0) break;
  }
  ::close(fd.value());

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ConnectionsAboveTheLimitAreRefused) {
  PlanServer::Config config;
  config.max_connections = 1;
  StartServer(config);

  PpcClient first;
  ASSERT_TRUE(ConnectClient(&first).ok());
  ASSERT_TRUE(first.Ping().ok());

  // The second connection is accepted at the TCP level and immediately
  // closed by the server, so its first round trip fails.
  PpcClient second;
  ASSERT_TRUE(ConnectClient(&second).ok());
  EXPECT_FALSE(second.Ping().ok());

  // Closing the first frees the slot for a new client.
  first.Close();
  PpcClient third;
  Status status = Status::Internal("never connected");
  for (int attempt = 0; attempt < 100; ++attempt) {
    third.Close();
    if (!ConnectClient(&third).ok()) continue;
    status = third.Ping();
    if (status.ok()) break;
    // The IO thread may not have reaped the first connection yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace ppc
