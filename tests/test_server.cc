#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/client.h"
#include "server/failpoints.h"
#include "server/net_util.h"
#include "server/wire_protocol.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::JsonValidator;
using testutil::SmallTpch;

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

/// Framework with Q1 (2-dim) and Q3 (3-dim) registered; `warm_queries`
/// executions around (0.5, 0.5) make Q1 confidently predictable.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    framework_ = std::make_unique<PpcFramework>(&SmallTpch(), ServingConfig());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q1")).ok());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q3")).ok());
  }

  void WarmQ1(int warm_queries) {
    Rng rng(7);
    for (int i = 0; i < warm_queries; ++i) {
      std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                               0.5 + rng.Uniform(-0.02, 0.02)};
      ASSERT_TRUE(framework_->ExecuteAtPoint("Q1", x).ok());
    }
  }

  /// Starts a server on an ephemeral port and returns a connected client.
  void StartServer(PlanServer::Config config = {}) {
    server_ = std::make_unique<PlanServer>(framework_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(server_->running());
    ASSERT_GT(server_->port(), 0);
  }

  Status ConnectClient(PpcClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  void TearDown() override {
    // Robustness tests arm process-global failpoints; never leak one into
    // the next test (or into the server teardown below).
    failpoints::DisarmAll();
    if (server_ != nullptr) server_->Stop();
  }

  uint64_t Counter(const std::string& name) {
    return framework_->metrics().counter(name).value();
  }

  std::unique_ptr<PpcFramework> framework_;
  std::unique_ptr<PlanServer> server_;
};

TEST_F(ServerTest, StartPingStop) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, StartIsRejectedTwice) {
  StartServer();
  EXPECT_FALSE(server_->Start().ok());
}

TEST_F(ServerTest, PredictRoundTrip) {
  WarmQ1(300);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto result = client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The framework RNG is seeded, so the warmed cluster predicts
  // deterministically.
  EXPECT_NE(result.value().plan, kNullPlanId);
  EXPECT_GE(result.value().confidence, 0.8);

  // A cold region yields the NULL plan, still with an OK transport status.
  auto cold = client.Predict("Q3", {0.9, 0.9, 0.9});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().plan, kNullPlanId);
}

TEST_F(ServerTest, BatchPredictionsAgreeWithScalarPointForPoint) {
  WarmQ1(300);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Points spanning the warmed cluster and cold regions, so the batch
  // covers both confident predictions and abstentions.
  Rng rng(23);
  constexpr uint32_t kDims = 2;
  constexpr int kPoints = 48;
  std::vector<double> flat;
  for (int i = 0; i < kPoints; ++i) {
    if (i % 3 == 0) {
      // Far corner, well outside the warmed cluster's support.
      flat.push_back(0.02 + rng.Uniform(0.0, 0.02));
      flat.push_back(0.96 + rng.Uniform(0.0, 0.02));
    } else {
      flat.push_back(0.5 + rng.Uniform(-0.03, 0.03));
      flat.push_back(0.5 + rng.Uniform(-0.03, 0.03));
    }
  }

  auto batch = client.PredictBatch("Q1", flat, kDims);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), static_cast<size_t>(kPoints));

  bool saw_hit = false;
  for (int i = 0; i < kPoints; ++i) {
    std::vector<double> x(flat.begin() + i * kDims,
                          flat.begin() + (i + 1) * kDims);
    auto scalar = client.Predict("Q1", x);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_EQ(batch.value()[i].plan, scalar.value().plan) << "point " << i;
    EXPECT_EQ(batch.value()[i].confidence, scalar.value().confidence)
        << "point " << i;
    EXPECT_EQ(batch.value()[i].cache_hit, scalar.value().cache_hit)
        << "point " << i;
    saw_hit |= batch.value()[i].plan != kNullPlanId;
  }
  // The comparison only bites if the batch contains real predictions.
  EXPECT_TRUE(saw_hit);

  // An unwarmed template abstains on every point: the batch answer is a
  // full row of NULL plans, not an error (DESIGN.md §13).
  auto cold = client.PredictBatch("Q3", {0.9, 0.9, 0.9, 0.1, 0.2, 0.3}, 3);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().size(), 2u);
  for (const auto& answer : cold.value()) {
    EXPECT_EQ(answer.plan, kNullPlanId);
    EXPECT_EQ(answer.confidence, 0.0);
    EXPECT_FALSE(answer.cache_hit);
  }
}

TEST_F(ServerTest, BatchSemanticErrorsAreAllOrNothing) {
  WarmQ1(100);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  auto unknown = client.PredictBatch("NoSuchTemplate", {0.5, 0.5}, 2);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto bad_arity = client.PredictBatch("Q1", {0.5, 0.5, 0.5}, 3);
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  auto bad_coord = client.PredictBatch("Q1", {0.5, 0.5, 0.5, 1e308 * 10}, 2);
  EXPECT_FALSE(bad_coord.ok());
  EXPECT_EQ(bad_coord.status().code(), StatusCode::kInvalidArgument);

  // The connection survives batch-level rejections.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.PredictBatch("Q1", {0.5, 0.5}, 2).ok());
}

TEST_F(ServerTest, MicrobatchedPredictsMatchUnbatchedAnswers) {
  WarmQ1(300);

  // Gate the single worker so a burst of pipelined PREDICTs piles up in
  // the queue; on release the worker drains them as one micro-batch.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 64;
  config.max_microbatch = 16;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto gate = client.SendPing();
  ASSERT_TRUE(gate.ok());
  while (entered.load() == 0) std::this_thread::yield();

  Rng rng(29);
  std::vector<uint64_t> ids;
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 12; ++i) {
    const double spread = (i % 3 == 0) ? 0.45 : 0.03;
    points.push_back({0.5 + rng.Uniform(-spread, spread),
                      0.5 + rng.Uniform(-spread, spread)});
    auto id = client.SendPredict("Q1", points.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  while (server_->queued_requests() < 12) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  ASSERT_TRUE(client.Wait(gate.value()).ok());
  std::vector<wire::Response> responses;
  for (uint64_t id : ids) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().ok());
    responses.push_back(response.value());
  }

  // Micro-batched answers must be indistinguishable from scalar ones.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto scalar = client.Predict("Q1", points[i]);
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(responses[i].predict.plan, scalar.value().plan) << "point " << i;
    EXPECT_EQ(responses[i].predict.confidence, scalar.value().confidence)
        << "point " << i;
  }

  // The queue really was drained as micro-batches, not one-at-a-time.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("server.microbatches"), std::string::npos);
  EXPECT_NE(metrics.value().find("server.microbatched_predicts"),
            std::string::npos);
  EXPECT_GT(framework_->metrics().counter("server.microbatches").value(), 0u);
  EXPECT_GE(
      framework_->metrics().counter("server.microbatched_predicts").value(),
      12u);
}

TEST_F(ServerTest, ExecuteRoundTripFeedsTheOnlineLoop) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  Rng rng(11);
  bool saw_prediction = false;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = client.Execute("Q1", x);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NE(report.value().executed_plan, kNullPlanId);
    EXPECT_GT(report.value().execution_cost, 0.0);
    saw_prediction |= report.value().used_prediction;
  }
  // EXECUTE runs the full feedback path, so the predictor must have
  // learned the cluster over 200 queries.
  EXPECT_TRUE(saw_prediction);
}

TEST_F(ServerTest, SemanticErrorsKeepTheConnectionOpen) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  auto unknown = client.Predict("NoSuchTemplate", {0.5, 0.5});
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  auto bad_arity = client.Predict("Q1", {0.5});
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  auto bad_coord = client.Execute("Q1", {0.5, 1e308 * 10});  // +inf
  EXPECT_FALSE(bad_coord.ok());
  EXPECT_EQ(bad_coord.status().code(), StatusCode::kInvalidArgument);

  // The connection survives semantic errors.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Predict("Q1", {0.5, 0.5}).ok());
}

TEST_F(ServerTest, MetricsRoundTripsValidJson) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Predict("Q1", {0.5, 0.5}).ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(JsonValidator::Valid(metrics.value())) << metrics.value();
  for (const char* key :
       {"server.requests.ping", "server.requests.predict",
        "server.connections.accepted", "server.predict_us"}) {
    EXPECT_NE(metrics.value().find(key), std::string::npos) << key;
  }
}

TEST_F(ServerTest, PipelinedRequestsResolveOutOfOrder) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = (i % 2 == 0) ? client.SendPing()
                           : client.SendPredict("Q1", {0.5, 0.5});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Collect in reverse to force the client to park early responses.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto response = client.Wait(*it);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().id, *it);
    EXPECT_TRUE(response.value().ok());
  }
}

TEST_F(ServerTest, ConcurrentClientsEachGetTheirOwnAnswers) {
  WarmQ1(200);
  StartServer();
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, t, &failures] {
      PpcClient client;
      if (!ConnectClient(&client).ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(100 + t);
      for (int i = 0; i < kRequestsEach; ++i) {
        Status status;
        switch (rng.UniformInt(uint64_t{3})) {
          case 0:
            status = client.Ping();
            break;
          case 1:
            status = client.Predict("Q1", {0.5, 0.5}).status();
            break;
          default:
            status = client
                         .Execute("Q3", {0.4 + rng.Uniform(-0.02, 0.02),
                                         0.4 + rng.Uniform(-0.02, 0.02),
                                         0.4 + rng.Uniform(-0.02, 0.02)})
                         .status();
            break;
        }
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, BackpressureAnswersBusyWhenTheQueueIsFull) {
  // One worker held inside the dispatch hook + a capacity-1 queue makes
  // overflow deterministic: request 1 is in the worker, request 2 fills
  // the queue, requests 3+ must bounce with BUSY from the IO thread.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 1;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto first = client.SendPing();
  ASSERT_TRUE(first.ok());
  while (entered.load() == 0) std::this_thread::yield();

  auto second = client.SendPing();  // fills the queue
  ASSERT_TRUE(second.ok());
  std::vector<uint64_t> bounced;
  for (int i = 0; i < 4; ++i) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    bounced.push_back(id.value());
  }
  // The BUSY bounces come back from the IO thread while the worker is
  // still held, so they can be collected before releasing it.
  for (uint64_t id : bounced) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, wire::WireStatus::kBusy);
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (uint64_t id : {first.value(), second.value()}) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().ok());
  }
}

TEST_F(ServerTest, GracefulShutdownDrainsAdmittedRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 16;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> ids;
  auto first = client.SendPing();
  ASSERT_TRUE(first.ok());
  ids.push_back(first.value());
  while (entered.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    auto id = client.SendPredict("Q1", {0.5, 0.5});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // SendPredict returns once the bytes are written, which is before the IO
  // thread has necessarily admitted them — wait for that, so the drain
  // guarantee below is exercised deterministically.
  while (server_->queued_requests() < 5) std::this_thread::yield();

  // Initiate the drain while five requests sit in the queue, then let the
  // worker run: every admitted request must still get its response.
  server_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (uint64_t id : ids) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response.value().ok());
  }
  server_->Wait();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, ShutdownRequestAcksThenDrains) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server_->Wait();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, MalformedPayloadGetsErrorFrameThenClose) {
  StartServer();

  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // A well-framed payload that decodes to nothing: unknown type 0xEE.
  const std::string payload = "\xEE garbage";
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame(reinterpret_cast<const char*>(&length), sizeof(length));
  frame += payload;
  ASSERT_TRUE(net::SendAll(fd.value(), frame.data(), frame.size()));

  // Expect exactly one error frame (kInvalid / id 0 / BAD_REQUEST)…
  wire::FrameBuffer frames;
  std::string reply_payload;
  char buffer[512];
  bool got_frame = false;
  bool got_eof = false;
  while (!got_eof) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(received.ok());
    if (received.value() == 0) {
      got_eof = true;  // …then the server must drop the connection.
      break;
    }
    frames.Append(buffer, received.value());
    auto next = frames.Next(&reply_payload);
    ASSERT_TRUE(next.ok());
    if (next.value()) {
      got_frame = true;
      auto response = wire::DecodeResponse(reply_payload);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response.value().type, wire::MessageType::kInvalid);
      EXPECT_EQ(response.value().id, 0u);
      EXPECT_EQ(response.value().status, wire::WireStatus::kBadRequest);
    }
  }
  EXPECT_TRUE(got_frame);
  ::close(fd.value());

  // The server itself survives misbehaving clients.
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, FramingViolationClosesTheConnection) {
  StartServer();
  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  const uint32_t huge = 1u << 30;  // above max_frame_bytes
  ASSERT_TRUE(net::SendAll(fd.value(), reinterpret_cast<const char*>(&huge),
                           sizeof(huge)));
  // Drain until EOF; the server answers with one error frame and closes.
  char buffer[512];
  while (true) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(received.ok());
    if (received.value() == 0) break;
  }
  ::close(fd.value());

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ConnectionsAboveTheLimitAreRefused) {
  PlanServer::Config config;
  config.max_connections = 1;
  StartServer(config);

  PpcClient first;
  ASSERT_TRUE(ConnectClient(&first).ok());
  ASSERT_TRUE(first.Ping().ok());

  // The second connection is accepted at the TCP level and immediately
  // closed by the server, so its first round trip fails.
  PpcClient second;
  ASSERT_TRUE(ConnectClient(&second).ok());
  EXPECT_FALSE(second.Ping().ok());

  // Closing the first frees the slot for a new client.
  first.Close();
  PpcClient third;
  Status status = Status::Internal("never connected");
  for (int attempt = 0; attempt < 100; ++attempt) {
    third.Close();
    if (!ConnectClient(&third).ok()) continue;
    status = third.Ping();
    if (status.ok()) break;
    // The IO thread may not have reaped the first connection yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(ServerTest, IdleTimeoutClosesSilentConnections) {
  PlanServer::Config config;
  config.idle_timeout_ms = 100;
  config.read_deadline_ms = 0;  // isolate the idle path
  StartServer(config);

  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // Send nothing. The server must explain (one TIMEOUT error frame) and
  // close well within the test deadline (100 ms timeout + wheel tick).
  wire::FrameBuffer frames;
  std::string payload;
  char buffer[512];
  bool got_timeout_frame = false;
  bool got_eof = false;
  const net::Deadline deadline = net::Deadline::AfterMs(5000);
  while (!got_eof && !deadline.expired()) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer),
                                  net::Deadline::AfterMs(1000));
    ASSERT_TRUE(received.ok()) << received.status().ToString();
    if (received.value() == 0) {
      got_eof = true;
      break;
    }
    frames.Append(buffer, received.value());
    auto next = frames.Next(&payload);
    ASSERT_TRUE(next.ok());
    if (next.value()) {
      auto response = wire::DecodeResponse(payload);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response.value().status, wire::WireStatus::kTimeout);
      got_timeout_frame = true;
    }
  }
  ::close(fd.value());
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(got_timeout_frame);
  EXPECT_GE(Counter("server.timeouts.idle"), 1u);
  EXPECT_EQ(Counter("server.timeouts.read"), 0u);

  // A live connection is unaffected as long as it keeps talking.
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ReadDeadlineClosesSlowLorisFrames) {
  PlanServer::Config config;
  config.idle_timeout_ms = 0;  // isolate the per-frame path
  config.read_deadline_ms = 100;
  StartServer(config);

  auto fd = net::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // Declare a 64-byte frame but deliver only three bytes of it — the
  // classic slow-loris shape. The frame deadline must fire even though
  // the connection is not idle in the TCP sense.
  const uint32_t declared = 64;
  std::string partial(reinterpret_cast<const char*>(&declared),
                      sizeof(declared));
  partial += "abc";
  ASSERT_TRUE(net::SendAll(fd.value(), partial.data(), partial.size()));

  bool got_eof = false;
  char buffer[512];
  const net::Deadline deadline = net::Deadline::AfterMs(5000);
  while (!deadline.expired()) {
    auto received = net::RecvSome(fd.value(), buffer, sizeof(buffer),
                                  net::Deadline::AfterMs(1000));
    ASSERT_TRUE(received.ok()) << received.status().ToString();
    if (received.value() == 0) {
      got_eof = true;
      break;
    }
  }
  ::close(fd.value());
  EXPECT_TRUE(got_eof);
  EXPECT_GE(Counter("server.timeouts.read"), 1u);
  EXPECT_EQ(Counter("server.timeouts.idle"), 0u);
}

TEST_F(ServerTest, WriteDeadlineCutsOffAStuckResponse) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.write_deadline_ms = 100;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(config);

  PpcClient::Options options;
  options.call_deadline_ms = 500;  // bound the Wait below
  PpcClient client(options);
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto id = client.SendPing();
  ASSERT_TRUE(id.ok());
  while (entered.load() == 0) std::this_thread::yield();

  // With the worker parked we can arm an EAGAIN storm on every send();
  // releasing the worker then makes its response write spin against the
  // 100 ms write deadline instead of reaching the wire.
  failpoints::Config storm;
  storm.kind = failpoints::Kind::kEagain;
  failpoints::Arm(failpoints::Site::kSend, storm);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  auto response = client.Wait(id.value());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);

  const net::Deadline deadline = net::Deadline::AfterMs(5000);
  while (Counter("server.timeouts.write") == 0 && !deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(Counter("server.timeouts.write"), 1u);
  failpoints::DisarmAll();

  // The server stays healthy for new clients once the storm is over.
  PpcClient fresh;
  ASSERT_TRUE(ConnectClient(&fresh).ok());
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(ServerTest, ShedLadderAbstainsUnderPressureThenRecovers) {
  WarmQ1(200);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 4;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> pings;
  auto gate = client.SendPing();
  ASSERT_TRUE(gate.ok());
  pings.push_back(gate.value());
  while (entered.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    pings.push_back(id.value());
  }
  while (server_->queued_requests() < 4) std::this_thread::yield();

  // Each admission attempt against the full queue feeds occupancy 1.0
  // into the EWMA; a handful of them walks the ladder to the top rung.
  for (int i = 0;
       i < 64 && server_->shed_level() < net::ShedController::kAbstainPredict;
       ++i) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    pings.push_back(id.value());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server_->shed_level(), net::ShedController::kAbstainPredict);

  // At the abstain rung a PREDICT is answered immediately from the IO
  // thread with the predictor's abstain shape: OK status, NULL plan.
  auto predict_id = client.SendPredict("Q1", {0.5, 0.5});
  ASSERT_TRUE(predict_id.ok());
  auto abstain = client.Wait(predict_id.value());
  ASSERT_TRUE(abstain.ok()) << abstain.status().ToString();
  EXPECT_TRUE(abstain.value().ok());
  EXPECT_EQ(abstain.value().type, wire::MessageType::kPredict);
  EXPECT_EQ(abstain.value().predict.plan, kNullPlanId);
  EXPECT_EQ(abstain.value().predict.confidence, 0.0);
  EXPECT_GE(Counter("server.shed.enter_no_microbatch"), 1u);
  EXPECT_GE(Counter("server.shed.enter_abstain"), 1u);
  EXPECT_GE(Counter("server.shed.abstained_predicts"), 1u);

  // Release the worker; every ping resolves (admitted ones OK, bounced
  // ones BUSY) — shedding never silently drops a request.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  size_t busy = 0;
  for (uint64_t id : pings) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().status == wire::WireStatus::kBusy) {
      ++busy;
    } else {
      EXPECT_TRUE(response.value().ok());
    }
  }
  EXPECT_GE(busy, 1u);

  // With the queue drained, light traffic decays the EWMA and the ladder
  // steps back down to normal service.
  for (int i = 0;
       i < 100 && server_->shed_level() != net::ShedController::kNormal;
       ++i) {
    ASSERT_TRUE(client.Ping().ok());
  }
  EXPECT_EQ(server_->shed_level(), net::ShedController::kNormal);
  EXPECT_GE(Counter("server.shed.recovered"), 1u);

  // And PREDICT answers come from the real predictor again.
  auto real = client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(real.ok()) << real.status().ToString();
  EXPECT_NE(real.value().plan, kNullPlanId);
}

TEST_F(ServerTest, ShutdownSweepAnswersRequestsLeftOnTheWire) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 16;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  std::vector<uint64_t> admitted;
  auto gate = client.SendPing();
  ASSERT_TRUE(gate.ok());
  admitted.push_back(gate.value());
  while (entered.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 2; ++i) {
    auto id = client.SendPredict("Q1", {0.5, 0.5});
    ASSERT_TRUE(id.ok());
    admitted.push_back(id.value());
  }
  while (server_->queued_requests() < 2) std::this_thread::yield();

  // Start the drain, give the IO thread a moment to stop reading, then
  // put three more requests on the wire. They can never be admitted —
  // the sweep must still answer each one instead of dropping it.
  server_->Shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<uint64_t> late;
  for (int i = 0; i < 3; ++i) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    late.push_back(id.value());
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server_->Wait();
  EXPECT_FALSE(server_->running());

  for (uint64_t id : admitted) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response.value().ok());
  }
  for (uint64_t id : late) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, wire::WireStatus::kShuttingDown);
  }
  EXPECT_GE(Counter("server.shutdown.swept"), 1u);
}

TEST_F(ServerTest, ClientRetriesBusyWithBackoffUntilAdmitted) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  PlanServer::Config config;
  config.worker_threads = 1;
  config.queue_capacity = 1;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(config);

  PpcClient::Options options;
  options.retry.max_attempts = 50;
  options.retry.initial_backoff_ms = 1;
  options.retry.max_backoff_ms = 20;
  PpcClient client(options);
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto gate = client.SendPing();
  ASSERT_TRUE(gate.ok());
  while (entered.load() == 0) std::this_thread::yield();
  auto filler = client.SendPing();  // occupies the single queue slot
  ASSERT_TRUE(filler.ok());
  while (server_->queued_requests() < 1) std::this_thread::yield();

  // The sync Ping now bounces BUSY; a delayed release lets the retry loop
  // land it. The seeded backoff stream makes the schedule reproducible.
  std::thread releaser([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  EXPECT_TRUE(client.Ping().ok());
  releaser.join();
  EXPECT_GE(client.transport_stats().busy_retries, 1u);

  for (uint64_t id : {gate.value(), filler.value()}) {
    auto response = client.Wait(id);
    ASSERT_TRUE(response.ok());
  }
}

TEST_F(ServerTest, ClientReconnectsAfterConnectionLoss) {
  StartServer();
  PpcClient::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  PpcClient client(options);
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Sever the transport behind the client's back; the next synchronous
  // call must reconnect transparently instead of failing.
  client.Close();
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.connected());
  EXPECT_GE(client.transport_stats().reconnects, 1u);
}

TEST_F(ServerTest, ClientCallDeadlineBoundsASilentServer) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  PlanServer::Config config;
  config.worker_threads = 1;
  config.pre_dispatch_hook = [&](wire::MessageType) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(config);

  PpcClient::Options options;
  options.call_deadline_ms = 100;
  PpcClient client(options);
  ASSERT_TRUE(ConnectClient(&client).ok());
  const auto start = std::chrono::steady_clock::now();
  Status status = client.Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(client.transport_stats().deadlines_exceeded, 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST_F(ServerTest, SnapshotOverWireWarmStartsASecondServer) {
  WarmQ1(300);
  StartServer();

  // A fresh follower: same config and templates, zero training.
  PpcFramework follower(&SmallTpch(), ServingConfig());
  ASSERT_TRUE(follower.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(follower.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  PlanServer follower_server(&follower, {});
  ASSERT_TRUE(follower_server.Start().ok());

  PpcClient leader_client;
  ASSERT_TRUE(ConnectClient(&leader_client).ok());
  auto blob = leader_client.FetchSnapshot();
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_FALSE(blob.value().empty());
  EXPECT_GE(Counter("server.replication.snapshots_served"), 1u);
  EXPECT_GE(Counter("server.replication.snapshot_bytes"),
            blob.value().size());

  auto leader_answer = leader_client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(leader_answer.ok());
  ASSERT_NE(leader_answer.value().plan, kNullPlanId);

  PpcClient follower_client;
  ASSERT_TRUE(
      follower_client.Connect("127.0.0.1", follower_server.port()).ok());
  auto cold = follower_client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().plan, kNullPlanId) << "follower should start cold";

  auto applied = follower_client.ApplySnapshot(blob.value());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value(), 2u) << "both templates warm-started";
  EXPECT_GE(follower.metrics().counter("server.replication.applies").value(),
            1u);

  // Warm-started, the follower answers exactly like the leader — no
  // cold-learning phase.
  auto warm = follower_client.Predict("Q1", {0.5, 0.5});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().plan, leader_answer.value().plan);
  EXPECT_DOUBLE_EQ(warm.value().confidence,
                   leader_answer.value().confidence);
  follower_server.Stop();
}

TEST_F(ServerTest, SnapshotApplyRejectsCorruptBlobOverWire) {
  WarmQ1(100);
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto blob = client.FetchSnapshot();
  ASSERT_TRUE(blob.ok());
  std::string corrupted = blob.value();
  corrupted[corrupted.size() / 2] ^= 0x40;
  auto applied = client.ApplySnapshot(corrupted);
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_GE(Counter("server.replication.apply_failures"), 1u);
  // A rejected blob must not poison the connection or the server.
  EXPECT_TRUE(client.Ping().ok());
  auto ok_applied = client.ApplySnapshot(blob.value());
  EXPECT_TRUE(ok_applied.ok()) << ok_applied.status().ToString();
}

TEST_F(ServerTest, TopologyOnAShardIsBadRequest) {
  StartServer();
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  auto result = client.Topology(wire::TopologyOp::kAdd, "127.0.0.1", 9000);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());
}

/// Chaos: mixed traffic against randomly armed failpoints for ~2 seconds
/// (override with PPC_CHAOS_SECONDS). The invariants are liveness ones:
/// every client call returns within its deadline, nothing crashes or
/// wedges, and after DisarmAll the server serves clean traffic and emits
/// coherent metrics. Runs under ASan and TSan via the `chaos` ctest label.
TEST_F(ServerTest, ChaosMixedTrafficSurvivesRandomFaults) {
  WarmQ1(150);
  PlanServer::Config config;
  config.worker_threads = 2;
  config.queue_capacity = 16;
  config.idle_timeout_ms = 2000;
  config.read_deadline_ms = 500;
  config.write_deadline_ms = 500;
  StartServer(config);

  double seconds = 2.0;
  if (const char* env = std::getenv("PPC_CHAOS_SECONDS")) {
    seconds = std::max(0.5, std::atof(env));
  }
  uint64_t seed = 20260805;
  if (const char* env = std::getenv("PPC_CHAOS_SEED")) {
    seed = static_cast<uint64_t>(std::atoll(env));
  }
  const auto stop_at =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
  std::atomic<bool> stop{false};

  // The saboteur: arm a random site with a random bounded fault, let it
  // bite for a few tens of milliseconds, sometimes disarm, repeat.
  std::thread saboteur([&stop, seed]() {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto site = static_cast<failpoints::Site>(rng.UniformInt(
          static_cast<uint64_t>(failpoints::Site::kSiteCount)));
      failpoints::Config fault;
      switch (site) {
        case failpoints::Site::kRecv:
        case failpoints::Site::kSend: {
          constexpr failpoints::Kind kIoKinds[] = {
              failpoints::Kind::kShortIo, failpoints::Kind::kEagain,
              failpoints::Kind::kEintr, failpoints::Kind::kError,
              failpoints::Kind::kTruncate, failpoints::Kind::kStallMs};
          fault.kind = kIoKinds[rng.UniformInt(uint64_t{6})];
          fault.arg = fault.kind == failpoints::Kind::kStallMs
                          ? 1 + static_cast<uint32_t>(rng.UniformInt(3))
                          : 1 + static_cast<uint32_t>(rng.UniformInt(8));
          break;
        }
        case failpoints::Site::kAccept:
          fault.kind = rng.Bernoulli(0.5) ? failpoints::Kind::kError
                                          : failpoints::Kind::kStallMs;
          fault.arg = 1 + static_cast<uint32_t>(rng.UniformInt(10));
          break;
        case failpoints::Site::kEnqueue:
          fault.kind = failpoints::Kind::kError;
          break;
        case failpoints::Site::kDispatch:
        default:
          fault.kind = failpoints::Kind::kStallMs;
          fault.arg = 1 + static_cast<uint32_t>(rng.UniformInt(30));
          break;
      }
      fault.probability_permille =
          30 + static_cast<uint32_t>(rng.UniformInt(150));
      fault.budget = 1 + static_cast<int64_t>(rng.UniformInt(64));
      fault.seed = rng.UniformInt(uint64_t{1} << 32);
      failpoints::Arm(site, fault);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(10 + rng.UniformInt(uint64_t{30})));
      if (rng.Bernoulli(0.5)) failpoints::Disarm(site);
    }
    failpoints::DisarmAll();
  });

  // The victims: resilient clients that keep issuing mixed traffic. Any
  // status is acceptable under chaos; what is NOT acceptable is a call
  // that never returns or a crash.
  std::atomic<uint64_t> completed_calls{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([this, t, stop_at, &completed_calls]() {
      PpcClient::Options options;
      options.call_deadline_ms = 1000;
      options.retry.max_attempts = 3;
      options.retry.initial_backoff_ms = 1;
      options.retry.max_backoff_ms = 8;
      options.retry.seed = 900 + static_cast<uint64_t>(t);
      PpcClient client(options);
      Rng rng(7000 + static_cast<uint64_t>(t));
      while (std::chrono::steady_clock::now() < stop_at) {
        if (!client.connected() && !ConnectClient(&client).ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        switch (rng.UniformInt(uint64_t{4})) {
          case 0:
            (void)client.Ping();
            break;
          case 1:
            (void)client.Predict("Q1", {0.5 + rng.Uniform(-0.05, 0.05),
                                        0.5 + rng.Uniform(-0.05, 0.05)});
            break;
          case 2:
            (void)client.PredictBatch(
                "Q1", {0.5, 0.5, 0.52, 0.48, 0.1, 0.9}, 2);
            break;
          default:
            (void)client.Execute("Q3", {0.4, 0.4, 0.4});
            break;
        }
        completed_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  saboteur.join();
  failpoints::DisarmAll();
  EXPECT_GT(completed_calls.load(), 0u);

  // After the storm: a fresh client must get clean service again (the
  // shed EWMA may need a few admissions to decay).
  PpcClient::Options options;
  options.call_deadline_ms = 2000;
  options.retry.max_attempts = 5;
  options.retry.initial_backoff_ms = 5;
  PpcClient fresh(options);
  Status ping = Status::Internal("never pinged");
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (!fresh.connected() && !ConnectClient(&fresh).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    ping = fresh.Ping();
    if (ping.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(ping.ok()) << ping.ToString();

  // And the metrics pipeline is still coherent: valid JSON carrying the
  // robustness instruments.
  auto metrics = fresh.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(JsonValidator::Valid(metrics.value()));
  for (const char* key :
       {"server.timeouts.idle", "server.timeouts.read",
        "server.timeouts.write", "server.shed.enter_no_microbatch",
        "server.shed.abstained_predicts", "server.shutdown.swept"}) {
    EXPECT_NE(metrics.value().find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace ppc
