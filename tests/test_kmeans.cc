#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace ppc {
namespace {

std::vector<std::vector<double>> TwoBlobs(Rng* rng, int per_blob) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < per_blob; ++i) {
    points.push_back({rng->Gaussian(0.2, 0.02), rng->Gaussian(0.2, 0.02)});
    points.push_back({rng->Gaussian(0.8, 0.02), rng->Gaussian(0.8, 0.02)});
  }
  return points;
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  auto result = KMeans({}, 3, &rng);
  EXPECT_TRUE(result.centroids.empty());
  EXPECT_TRUE(result.assignment.empty());
}

TEST(KMeansTest, ZeroClustersRequested) {
  Rng rng(1);
  auto result = KMeans({{0.5, 0.5}}, 0, &rng);
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeansTest, FindsTwoSeparatedBlobs) {
  Rng rng(3);
  auto points = TwoBlobs(&rng, 100);
  auto result = KMeans(points, 2, &rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  // One centroid near (0.2, 0.2), the other near (0.8, 0.8).
  const bool first_low = result.centroids[0][0] < 0.5;
  const auto& low = result.centroids[first_low ? 0 : 1];
  const auto& high = result.centroids[first_low ? 1 : 0];
  EXPECT_NEAR(low[0], 0.2, 0.05);
  EXPECT_NEAR(low[1], 0.2, 0.05);
  EXPECT_NEAR(high[0], 0.8, 0.05);
  EXPECT_NEAR(high[1], 0.8, 0.05);
}

TEST(KMeansTest, AssignmentMatchesNearestCentroid) {
  Rng rng(5);
  auto points = TwoBlobs(&rng, 50);
  auto result = KMeans(points, 2, &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t assigned = static_cast<size_t>(result.assignment[i]);
    const double own =
        SquaredDistance(points[i], result.centroids[assigned]);
    for (const auto& c : result.centroids) {
      EXPECT_LE(own, SquaredDistance(points[i], c) + 1e-9);
    }
  }
}

TEST(KMeansTest, MoreClustersThanPoints) {
  Rng rng(7);
  std::vector<std::vector<double>> points = {{0.1, 0.1}, {0.9, 0.9}};
  auto result = KMeans(points, 10, &rng);
  EXPECT_LE(result.centroids.size(), 2u);
  EXPECT_EQ(result.assignment.size(), 2u);
}

TEST(KMeansTest, IdenticalPointsCollapse) {
  Rng rng(9);
  std::vector<std::vector<double>> points(20, {0.5, 0.5});
  auto result = KMeans(points, 4, &rng);
  ASSERT_GE(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 0.5, 1e-9);
}

TEST(KMeansTest, DeterministicForSameRngState) {
  Rng ra(11), rb(11);
  Rng data(13);
  auto points = TwoBlobs(&data, 30);
  auto a = KMeans(points, 3, &ra);
  auto b = KMeans(points, 3, &rb);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, ReducesWithinClusterVariance) {
  Rng rng(17);
  auto points = TwoBlobs(&rng, 100);
  auto result = KMeans(points, 2, &rng);
  // Total within-cluster distance must beat a single global centroid.
  std::vector<double> global(2, 0.0);
  for (const auto& p : points) {
    global[0] += p[0];
    global[1] += p[1];
  }
  global[0] /= static_cast<double>(points.size());
  global[1] /= static_cast<double>(points.size());
  double within = 0.0, single = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    within += SquaredDistance(
        points[i],
        result.centroids[static_cast<size_t>(result.assignment[i])]);
    single += SquaredDistance(points[i], global);
  }
  EXPECT_LT(within, 0.1 * single);
}

}  // namespace
}  // namespace ppc
