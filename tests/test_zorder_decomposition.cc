#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "lsh/zorder.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/metrics.h"
#include "test_util.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SamplePoints;

/// Ground truth: the exact set of Morton codes of cells in the box.
std::set<uint64_t> BruteForceCodes(const ZOrderCurve& curve,
                                   const std::vector<uint32_t>& lo,
                                   const std::vector<uint32_t>& hi) {
  std::set<uint64_t> codes;
  std::vector<uint32_t> cell = lo;
  for (;;) {
    codes.insert(curve.Interleave(cell));
    size_t d = 0;
    for (; d < cell.size(); ++d) {
      if (cell[d] < hi[d]) {
        ++cell[d];
        break;
      }
      cell[d] = lo[d];
    }
    if (d == cell.size()) break;
  }
  return codes;
}

/// Codes covered by an interval list.
std::set<uint64_t> CoveredCodes(const ZOrderCurve& curve,
                                const std::vector<ZInterval>& intervals) {
  const double denom = std::ldexp(1.0, curve.total_bits());
  std::set<uint64_t> codes;
  for (const ZInterval& interval : intervals) {
    const auto z0 = static_cast<uint64_t>(std::llround(interval.lo * denom));
    const auto z1 = static_cast<uint64_t>(std::llround(interval.hi * denom));
    for (uint64_t z = z0; z < z1; ++z) codes.insert(z);
  }
  return codes;
}

TEST(ZOrderDecompositionTest, FullDomainIsOneInterval) {
  ZOrderCurve curve(2, 3);
  auto intervals = curve.DecomposeBox({0, 0}, {7, 7}, 100);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].lo, 0.0);
  EXPECT_EQ(intervals[0].hi, 1.0);
}

TEST(ZOrderDecompositionTest, SingleCell) {
  ZOrderCurve curve(2, 3);
  auto intervals = curve.DecomposeBox({3, 5}, {3, 5}, 100);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_NEAR(intervals[0].width(), 1.0 / 64.0, 1e-12);
  EXPECT_NEAR(intervals[0].lo, curve.Linearize({3, 5}), 1e-12);
}

TEST(ZOrderDecompositionTest, ExactCoverageMatchesBruteForce) {
  ZOrderCurve curve(2, 4);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> lo(2), hi(2);
    for (size_t d = 0; d < 2; ++d) {
      lo[d] = static_cast<uint32_t>(rng.UniformInt(uint64_t{16}));
      hi[d] = static_cast<uint32_t>(rng.UniformInt(uint64_t{16}));
      if (lo[d] > hi[d]) std::swap(lo[d], hi[d]);
    }
    const auto intervals = curve.DecomposeBox(lo, hi, 10000);
    EXPECT_EQ(CoveredCodes(curve, intervals),
              BruteForceCodes(curve, lo, hi))
        << "box [" << lo[0] << "," << hi[0] << "]x[" << lo[1] << ","
        << hi[1] << "]";
  }
}

TEST(ZOrderDecompositionTest, ExactCoverageThreeDims) {
  ZOrderCurve curve(3, 3);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> lo(3), hi(3);
    for (size_t d = 0; d < 3; ++d) {
      lo[d] = static_cast<uint32_t>(rng.UniformInt(uint64_t{8}));
      hi[d] = static_cast<uint32_t>(rng.UniformInt(uint64_t{8}));
      if (lo[d] > hi[d]) std::swap(lo[d], hi[d]);
    }
    const auto intervals = curve.DecomposeBox(lo, hi, 10000);
    EXPECT_EQ(CoveredCodes(curve, intervals),
              BruteForceCodes(curve, lo, hi));
  }
}

TEST(ZOrderDecompositionTest, IntervalsSortedAndDisjoint) {
  ZOrderCurve curve(2, 5);
  auto intervals = curve.DecomposeBox({3, 7}, {19, 24}, 10000);
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_LT(intervals[i].lo, intervals[i].hi);
    if (i > 0) {
      EXPECT_GT(intervals[i].lo, intervals[i - 1].hi - 1e-15);
    }
  }
}

TEST(ZOrderDecompositionTest, BudgetMergingOverCoversNeverUnderCovers) {
  ZOrderCurve curve(2, 4);
  const std::vector<uint32_t> lo = {2, 3}, hi = {11, 13};
  const auto exact = curve.DecomposeBox(lo, hi, 10000);
  const auto budgeted = curve.DecomposeBox(lo, hi, 3);
  EXPECT_LE(budgeted.size(), 3u);
  const auto exact_codes = CoveredCodes(curve, exact);
  const auto budget_codes = CoveredCodes(curve, budgeted);
  for (uint64_t code : exact_codes) {
    EXPECT_TRUE(budget_codes.count(code)) << code;
  }
  EXPECT_GE(budget_codes.size(), exact_codes.size());
}

TEST(ZOrderDecompositionTest, NonContiguousBoxNeedsMultipleIntervals) {
  // A thin box crossing the top-level quadrant boundary cannot be one
  // interval — the false-negatives phenomenon the paper describes.
  ZOrderCurve curve(2, 4);
  auto intervals = curve.DecomposeBox({7, 0}, {8, 0}, 10000);
  EXPECT_GT(intervals.size(), 1u);
}

TEST(LshDecompositionModeTest, ImprovesPrecisionOverSingleInterval) {
  // The extension's point: exact decomposed ranges stop distant cells —
  // which the curve interleaves into the single smeared interval — from
  // contributing spurious counts, raising precision (at some recall cost).
  Rng rng(7);
  auto label = [](const std::vector<double>& x) -> PlanId {
    return (x[0] + x[1] + x[2] + x[3] < 2.0) ? 1 : 2;
  };
  auto sample = SamplePoints(4, 4000, label, &rng);
  LshHistogramsPredictor::Config base;
  base.dimensions = 4;
  base.transform_count = 5;
  base.histogram_buckets = 40;
  base.radius = 0.1;
  base.confidence_threshold = 0.6;
  auto decomposed_cfg = base;
  decomposed_cfg.interval_decomposition = true;
  decomposed_cfg.max_z_intervals = 32;
  LshHistogramsPredictor single(base, sample);
  LshHistogramsPredictor decomposed(decomposed_cfg, sample);

  MetricsAccumulator single_m, decomposed_m;
  Rng test_rng(9);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(4);
    for (double& v : x) v = test_rng.Uniform();
    single_m.Record(single.Predict(x).plan, label(x));
    decomposed_m.Record(decomposed.Predict(x).plan, label(x));
  }
  EXPECT_GT(decomposed_m.Precision(), single_m.Precision());
  // The precision gain must not hollow out recall entirely.
  EXPECT_GT(decomposed_m.Recall(), 0.5 * single_m.Recall());
}

TEST(LshDecompositionModeTest, SerializationPreservesMode) {
  LshHistogramsPredictor::Config cfg;
  cfg.dimensions = 2;
  cfg.transform_count = 3;
  cfg.interval_decomposition = true;
  cfg.max_z_intervals = 13;
  Rng rng(11);
  LshHistogramsPredictor original(cfg,
                                  SamplePoints(2, 300, HalfSpacePlan, &rng));
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().TotalSamples(), 300u);
  EXPECT_TRUE(restored.value().config().interval_decomposition);
  EXPECT_EQ(restored.value().config().max_z_intervals, 13u);
  // Identical answers in decomposition mode too.
  Rng probe(13);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    EXPECT_EQ(original.Predict(x).plan, restored.value().Predict(x).plan);
  }
}

}  // namespace
}  // namespace ppc
