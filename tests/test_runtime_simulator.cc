#include "ppc/runtime_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

RuntimeSimulator::Options BaseOptions() {
  RuntimeSimulator::Options options;
  // The paper's Fig. 13 regime: queries cheap to execute relative to
  // optimization, where plan caching pays off.
  options.cost_to_seconds = 1e-8;
  options.online.predictor.transform_count = 5;
  options.online.predictor.histogram_buckets = 40;
  options.online.predictor.radius = 0.2;
  options.online.predictor.confidence_threshold = 0.8;
  options.online.predictor.noise_fraction = 0.0005;
  return options;
}

std::vector<std::vector<double>> LocalizedWorkload(size_t n) {
  TrajectoryConfig traj;
  // Q5: a 4-parameter, 4-table template. Plan caching pays when
  // optimization is nontrivial; a 2-table DP is cheaper than prediction.
  traj.dimensions = 4;
  traj.total_points = n;
  traj.scatter = 0.01;
  Rng rng(42);
  return RandomTrajectoriesWorkload(traj, &rng);
}

class RuntimeSimulatorTest : public ::testing::Test {
 protected:
  RuntimeSimulatorTest()
      : simulator_(&SmallTpch(), EvaluationTemplate("Q5"), BaseOptions()) {}
  RuntimeSimulator simulator_;
};

TEST_F(RuntimeSimulatorTest, StrategyNames) {
  EXPECT_STREQ(CachingStrategyName(CachingStrategy::kAlwaysOptimize),
               "ALWAYS-OPTIMIZE");
  EXPECT_STREQ(CachingStrategyName(CachingStrategy::kIdeal), "IDEAL");
}

TEST_F(RuntimeSimulatorTest, AlwaysOptimizeCallsOptimizerPerQuery) {
  auto workload = LocalizedWorkload(100);
  auto result =
      simulator_.Run(CachingStrategy::kAlwaysOptimize, workload).value();
  EXPECT_EQ(result.optimizer_calls, 100u);
  EXPECT_EQ(result.predictions_used, 0u);
  EXPECT_GT(result.optimize_seconds, 0.0);
  EXPECT_NEAR(result.MeanSuboptimality(), 1.0, 1e-9);
}

TEST_F(RuntimeSimulatorTest, ConventionalCacheOptimizesOnce) {
  auto workload = LocalizedWorkload(100);
  auto result =
      simulator_.Run(CachingStrategy::kConventionalCache, workload).value();
  EXPECT_EQ(result.optimizer_calls, 1u);
  EXPECT_GE(result.MeanSuboptimality(), 1.0);
}

TEST_F(RuntimeSimulatorTest, IdealHasNoOptimizerTimeAndNoSuboptimality) {
  auto workload = LocalizedWorkload(50);
  auto result = simulator_.Run(CachingStrategy::kIdeal, workload).value();
  EXPECT_EQ(result.optimizer_calls, 0u);
  EXPECT_EQ(result.optimize_seconds, 0.0);
  EXPECT_NEAR(result.MeanSuboptimality(), 1.0, 1e-9);
}

TEST_F(RuntimeSimulatorTest, PpcReducesOptimizerCalls) {
  auto workload = LocalizedWorkload(500);
  auto ppc =
      simulator_.Run(CachingStrategy::kParametricCache, workload).value();
  EXPECT_LT(ppc.optimizer_calls, workload.size());
  EXPECT_GT(ppc.predictions_used, 0u);
}

TEST_F(RuntimeSimulatorTest, PpcExecutionNearOptimal) {
  // Precision is high, so the PPC strategy's mean suboptimality should stay
  // close to 1.
  auto workload = LocalizedWorkload(500);
  auto ppc =
      simulator_.Run(CachingStrategy::kParametricCache, workload).value();
  EXPECT_LT(ppc.MeanSuboptimality(), 1.2);
}

TEST_F(RuntimeSimulatorTest, OrderingIdealFastestAlwaysOptimizeSlowest) {
  auto workload = LocalizedWorkload(400);
  // Execution seconds are deterministic (cost-model replay), but optimizer
  // and predictor seconds are measured wall time; take the min over a few
  // runs so scheduler noise on a loaded host cannot flip the ordering.
  auto min_total = [&](CachingStrategy strategy) {
    double best = simulator_.Run(strategy, workload).value().TotalSeconds();
    for (int i = 0; i < 2; ++i) {
      best = std::min(best,
                      simulator_.Run(strategy, workload).value().TotalSeconds());
    }
    return best;
  };
  const double always = min_total(CachingStrategy::kAlwaysOptimize);
  const double ppc = min_total(CachingStrategy::kParametricCache);
  const double ideal = min_total(CachingStrategy::kIdeal);
  // IDEAL <= PPC: same executions minus all overheads.
  EXPECT_LE(ideal, ppc + 1e-9);
  // PPC < ALWAYS-OPTIMIZE: the whole point of plan caching.
  EXPECT_LT(ppc, always);
}

TEST_F(RuntimeSimulatorTest, ResultRecordsQueryCount) {
  auto workload = LocalizedWorkload(42);
  auto result = simulator_.Run(CachingStrategy::kIdeal, workload).value();
  EXPECT_EQ(result.queries, 42u);
  EXPECT_EQ(result.strategy, CachingStrategy::kIdeal);
}

TEST_F(RuntimeSimulatorTest, EmptyWorkload) {
  auto result = simulator_.Run(CachingStrategy::kParametricCache, {}).value();
  EXPECT_EQ(result.queries, 0u);
  EXPECT_EQ(result.TotalSeconds(), 0.0);
  EXPECT_EQ(result.MeanSuboptimality(), 0.0);
}

}  // namespace
}  // namespace ppc
