#include "storage/tpch_generator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppc {
namespace {

TEST(TpchGeneratorTest, AllTablesPresent) {
  const Catalog& catalog = testutil::SmallTpch();
  for (const char* name : {"region", "nation", "supplier", "part", "partsupp",
                           "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog.GetTable(name).ok()) << name;
  }
}

TEST(TpchGeneratorTest, RowCountsScale) {
  const Catalog& catalog = testutil::SmallTpch();
  // scale 0.002 over SF-1 base counts.
  EXPECT_EQ(catalog.TableRows("supplier"), 20u);
  EXPECT_EQ(catalog.TableRows("part"), 400u);
  EXPECT_EQ(catalog.TableRows("partsupp"), 1600u);
  EXPECT_EQ(catalog.TableRows("customer"), 300u);
  EXPECT_EQ(catalog.TableRows("orders"), 3000u);
  // lineitem: 1..7 lines per order, expectation 4 per order.
  EXPECT_GT(catalog.TableRows("lineitem"), 3000u * 2);
  EXPECT_LT(catalog.TableRows("lineitem"), 3000u * 7);
  // Fixed dimension tables.
  EXPECT_EQ(catalog.TableRows("region"), 5u);
  EXPECT_EQ(catalog.TableRows("nation"), 25u);
}

TEST(TpchGeneratorTest, TinyScaleClampsToMinimumRows) {
  TpchConfig cfg;
  cfg.scale_factor = 1e-9;
  auto catalog = BuildTpchCatalog(cfg);
  EXPECT_GE(catalog->TableRows("supplier"), 8u);
}

TEST(TpchGeneratorTest, DateColumnsWithinSpan) {
  const Catalog& catalog = testutil::SmallTpch();
  for (const auto& [table, column] :
       std::vector<std::pair<std::string, std::string>>{
           {"supplier", "s_date"},
           {"part", "p_date"},
           {"orders", "o_date"},
           {"lineitem", "l_date"}}) {
    const ColumnStats& stats =
        *catalog.GetColumnStats(table, column).value();
    EXPECT_GE(stats.min, 0.0) << table;
    EXPECT_LE(stats.max, 2557.0) << table;
  }
}

TEST(TpchGeneratorTest, DateColumnsAreGaussianShaped) {
  const Catalog& catalog = testutil::SmallTpch();
  const ColumnStats& stats =
      *catalog.GetColumnStats("orders", "o_date").value();
  // Median near the configured mean (1278), IQR far narrower than the span
  // (Gaussian sigma=400 -> IQR ~ 540; uniform would give ~1278).
  const double median = stats.ValueAtSelectivity(0.5);
  EXPECT_NEAR(median, 1278.0, 60.0);
  const double iqr =
      stats.ValueAtSelectivity(0.75) - stats.ValueAtSelectivity(0.25);
  EXPECT_GT(iqr, 300.0);
  EXPECT_LT(iqr, 800.0);
}

TEST(TpchGeneratorTest, KeysAreDense) {
  const Catalog& catalog = testutil::SmallTpch();
  const ColumnStats& stats =
      *catalog.GetColumnStats("orders", "o_orderkey").value();
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, 3000.0);
  EXPECT_EQ(stats.distinct_count, 3000u);
}

TEST(TpchGeneratorTest, ForeignKeysReferenceExistingRows) {
  const Catalog& catalog = testutil::SmallTpch();
  const ColumnStats& fk =
      *catalog.GetColumnStats("orders", "o_custkey").value();
  EXPECT_GE(fk.min, 1.0);
  EXPECT_LE(fk.max, static_cast<double>(catalog.TableRows("customer")));
}

TEST(TpchGeneratorTest, ExpectedIndexesExist) {
  const Catalog& catalog = testutil::SmallTpch();
  EXPECT_TRUE(catalog.HasIndex("orders", "o_orderkey"));
  EXPECT_TRUE(catalog.HasIndex("orders", "o_date"));
  EXPECT_TRUE(catalog.HasIndex("lineitem", "l_partkey"));
  EXPECT_TRUE(catalog.HasIndex("supplier", "s_date"));
  EXPECT_FALSE(catalog.HasIndex("orders", "o_totalprice"));
}

TEST(TpchGeneratorTest, DeterministicForSeed) {
  TpchConfig cfg;
  cfg.scale_factor = 0.001;
  cfg.seed = 99;
  auto a = BuildTpchCatalog(cfg);
  auto b = BuildTpchCatalog(cfg);
  const Table& ta = *a->GetTable("orders").value();
  const Table& tb = *b->GetTable("orders").value();
  ASSERT_EQ(ta.row_count(), tb.row_count());
  for (size_t i = 0; i < std::min<size_t>(ta.row_count(), 50); ++i) {
    EXPECT_EQ(ta.column(3).AsDouble(i), tb.column(3).AsDouble(i));
  }
}

TEST(TpchGeneratorTest, DifferentSeedsDiffer) {
  TpchConfig a_cfg, b_cfg;
  a_cfg.scale_factor = b_cfg.scale_factor = 0.001;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  auto a = BuildTpchCatalog(a_cfg);
  auto b = BuildTpchCatalog(b_cfg);
  const Table& ta = *a->GetTable("customer").value();
  const Table& tb = *b->GetTable("customer").value();
  int diffs = 0;
  for (size_t i = 0; i < std::min(ta.row_count(), tb.row_count()); ++i) {
    if (ta.column(2).AsDouble(i) != tb.column(2).AsDouble(i)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(TpchGeneratorTest, BaseRowsTable) {
  EXPECT_EQ(TpchBaseRows("supplier"), 10000u);
  EXPECT_EQ(TpchBaseRows("lineitem"), 6000000u);
  EXPECT_EQ(TpchBaseRows("unknown"), 0u);
}

}  // namespace
}  // namespace ppc
