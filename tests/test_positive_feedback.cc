#include <gtest/gtest.h>

#include "ppc/online_predictor.h"
#include "test_util.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SyntheticCost;

OnlinePpcPredictor::Config BaseConfig() {
  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = 2;
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = 0.1;
  cfg.predictor.confidence_threshold = 0.7;
  cfg.estimator_window = 100;
  return cfg;
}

/// Drives a workload; predictions report the truth plan's cost (so a
/// correct prediction passes the cost test and a wrong one usually fails).
void Drive(OnlinePpcPredictor* online,
           const std::vector<std::vector<double>>& workload) {
  for (const auto& x : workload) {
    auto decision = online->Decide(x);
    const PlanId truth = HalfSpacePlan(x);
    if (decision.use_prediction) {
      const bool suspected = online->ReportPredictionExecuted(
          x, decision.prediction, SyntheticCost(x, truth));
      if (suspected) {
        online->ObserveOptimized({x, truth, SyntheticCost(x, truth)});
      }
    } else {
      online->ObserveOptimized({x, truth, SyntheticCost(x, truth)});
    }
  }
}

std::vector<std::vector<double>> Workload(size_t n, uint64_t seed) {
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = n;
  traj.scatter = 0.02;
  Rng rng(seed);
  return RandomTrajectoriesWorkload(traj, &rng);
}

TEST(PositiveFeedbackTest, DisabledByDefault) {
  OnlinePpcPredictor online(BaseConfig());
  Drive(&online, Workload(500, 1));
  EXPECT_EQ(online.positive_feedback_insertions(), 0u);
  EXPECT_GT(online.optimizer_insertions(), 0u);
}

TEST(PositiveFeedbackTest, InsertsSelfLabeledPointsWhenEnabled) {
  auto cfg = BaseConfig();
  cfg.positive_feedback = true;
  cfg.positive_feedback_confidence = 0.9;
  OnlinePpcPredictor online(cfg);
  Drive(&online, Workload(500, 2));
  EXPECT_GT(online.positive_feedback_insertions(), 0u);
  // Total predictor samples = optimizer + positive-feedback insertions.
  EXPECT_EQ(online.predictor().TotalSamples(),
            online.optimizer_insertions() +
                online.positive_feedback_insertions());
}

TEST(PositiveFeedbackTest, CapEnforcedRelativeToOptimizerPool) {
  auto cfg = BaseConfig();
  cfg.positive_feedback = true;
  cfg.positive_feedback_confidence = 0.0;  // accept everything
  cfg.positive_feedback_max_ratio = 0.25;
  OnlinePpcPredictor online(cfg);
  Drive(&online, Workload(1500, 3));
  EXPECT_LE(static_cast<double>(online.positive_feedback_insertions()),
            0.25 * static_cast<double>(online.optimizer_insertions()) + 1.0);
}

TEST(PositiveFeedbackTest, ReducesOptimizerCalls) {
  // The paper's motivation: positive feedback shortens warm-up / raises
  // recall, i.e. fewer optimizer invocations over the same workload.
  auto workload = Workload(1200, 4);
  OnlinePpcPredictor without(BaseConfig());
  auto with_cfg = BaseConfig();
  with_cfg.positive_feedback = true;
  with_cfg.positive_feedback_confidence = 0.9;
  with_cfg.positive_feedback_max_ratio = 2.0;
  OnlinePpcPredictor with_pf(with_cfg);
  Drive(&without, workload);
  Drive(&with_pf, workload);
  // More total samples -> denser support -> at least as many predictions.
  EXPECT_GE(with_pf.predictor().TotalSamples(),
            without.predictor().TotalSamples());
  EXPECT_GT(with_pf.positive_feedback_insertions(), 0u);
}

TEST(PositiveFeedbackTest, LowConfidencePredictionsNotSelfInserted) {
  auto cfg = BaseConfig();
  cfg.positive_feedback = true;
  cfg.positive_feedback_confidence = 1.01;  // unreachable
  OnlinePpcPredictor online(cfg);
  Drive(&online, Workload(500, 5));
  EXPECT_EQ(online.positive_feedback_insertions(), 0u);
}

}  // namespace
}  // namespace ppc
