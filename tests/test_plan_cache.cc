#include "ppc/plan_cache.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

std::unique_ptr<PlanNode> Plan(const std::string& table) {
  return MakeSeqScan(table, {});
}

TEST(PlanCacheTest, PutAndGet) {
  PlanCache cache(4);
  cache.Put(1, Plan("a"));
  std::shared_ptr<const PlanNode> plan = cache.Get(1);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->table, "a");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheTest, MissReturnsNull) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Get(42), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, ContainsDoesNotCountUse) {
  PlanCache cache(4);
  cache.Put(1, Plan("a"));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PlanCacheTest, PutRefreshesExisting) {
  PlanCache cache(2);
  cache.Put(1, Plan("a"));
  cache.Put(1, Plan("b"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1)->table, "b");
}

TEST(PlanCacheTest, CapacityEnforced) {
  PlanCache cache(3);
  for (PlanId id = 1; id <= 10; ++id) cache.Put(id, Plan("t"));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 7u);
}

TEST(PlanCacheTest, LowPrecisionEvictedFirst) {
  PlanCache cache(3);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Put(3, Plan("c"));
  cache.SetPrecisionScore(1, 0.9);
  cache.SetPrecisionScore(2, 0.2);  // worst predictor
  cache.SetPrecisionScore(3, 0.8);
  cache.Put(4, Plan("d"));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(PlanCacheTest, LruBreaksPrecisionTies) {
  PlanCache cache(2);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Get(1);  // 2 is now least recently used
  cache.Put(3, Plan("c"));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(PlanCacheTest, EraseAndClear) {
  PlanCache cache(4);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  cache.Erase(99);  // no-op
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, PlanIdsListsContents) {
  PlanCache cache(4);
  cache.Put(5, Plan("a"));
  cache.Put(3, Plan("b"));
  const auto ids = cache.PlanIds();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), 5u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 3u), ids.end());
}

TEST(PlanCacheTest, SetPrecisionOnMissingPlanIsNoOp) {
  PlanCache cache(2);
  cache.SetPrecisionScore(42, 0.1);  // must not crash
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, PolicyNames) {
  EXPECT_STREQ(CacheEvictionPolicyName(CacheEvictionPolicy::kLru), "LRU");
  EXPECT_STREQ(CacheEvictionPolicyName(CacheEvictionPolicy::kLfu), "LFU");
  EXPECT_STREQ(
      CacheEvictionPolicyName(CacheEvictionPolicy::kPrecisionThenLru),
      "precision+LRU");
}

TEST(PlanCacheTest, LruPolicyIgnoresPrecision) {
  PlanCache cache(2, CacheEvictionPolicy::kLru);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.SetPrecisionScore(2, 0.01);  // would be the precision victim
  cache.Get(2);                      // ...but 1 is older under LRU
  cache.Put(3, Plan("c"));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(PlanCacheTest, LfuPolicyEvictsColdPlan) {
  PlanCache cache(2, CacheEvictionPolicy::kLfu);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);  // 2 used less often but more recently
  cache.Put(3, Plan("c"));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(PlanCacheTest, GetOutlivesEviction) {
  PlanCache cache(1);
  cache.Put(1, Plan("a"));
  auto plan = cache.Get(1);
  cache.Put(2, Plan("b"));  // evicts 1
  EXPECT_FALSE(cache.Contains(1));
  ASSERT_NE(plan, nullptr);  // still alive for this holder
  EXPECT_EQ(plan->table, "a");
}

TEST(PlanCacheTest, OverwriteResetsLfuFrequency) {
  PlanCache cache(2, CacheEvictionPolicy::kLfu);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Get(1);
  cache.Get(1);
  cache.Get(1);     // 1 looks hot...
  cache.Put(1, Plan("a2"));  // ...but a re-optimization resets its count
  cache.Get(2);     // 2 now has 1 use vs. 1's 0 uses
  cache.Put(3, Plan("c"));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(PlanCacheTest, OverwriteResetsPrecisionScore) {
  PlanCache cache(2);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.SetPrecisionScore(1, 0.05);  // 1 would be the precision victim
  cache.Put(1, Plan("a2"));          // fresh plan: score back to 1.0
  cache.Put(3, Plan("c"));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));  // 2 is older at equal precision
}

TEST(PlanCacheTest, LfuTiesBreakByLru) {
  PlanCache cache(2, CacheEvictionPolicy::kLfu);
  cache.Put(1, Plan("a"));
  cache.Put(2, Plan("b"));
  cache.Get(1);
  cache.Get(2);  // equal use counts; 1 is least recent
  cache.Put(3, Plan("c"));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

}  // namespace
}  // namespace ppc
