#include "workload/selectivity_mapper.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

TEST(SelectivityMapperTest, ValidateAcceptsEvaluationTemplates) {
  for (const QueryTemplate& tmpl : EvaluationTemplates()) {
    SelectivityMapper mapper(&SmallTpch(), &tmpl);
    EXPECT_TRUE(mapper.Validate().ok()) << tmpl.name;
  }
}

TEST(SelectivityMapperTest, ValidateRejectsUnknownColumn) {
  QueryTemplate tmpl{"bad", {"orders"}, {}, {{"orders", "zzz"}}, true};
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  EXPECT_FALSE(mapper.Validate().ok());
}

TEST(SelectivityMapperTest, RoundTripPointToInstanceToPoint) {
  const QueryTemplate tmpl = EvaluationTemplate("Q3");
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  for (const std::vector<double>& point : std::vector<std::vector<double>>{
           {0.1, 0.5, 0.9}, {0.33, 0.66, 0.01}, {0.99, 0.2, 0.5}}) {
    auto instance = mapper.ToInstance(point);
    ASSERT_TRUE(instance.ok());
    auto back = mapper.ToPlanSpacePoint(instance.value());
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < point.size(); ++i) {
      EXPECT_NEAR(back.value()[i], point[i], 0.03)
          << "dim " << i << " of point " << point[0];
    }
  }
}

TEST(SelectivityMapperTest, InstanceCarriesTemplateName) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  EXPECT_EQ(mapper.ToInstance({0.5, 0.5}).value().template_name, "Q1");
}

TEST(SelectivityMapperTest, MonotoneParamValueInSelectivity) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  double prev = -1e300;
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    const double v = mapper.ToInstance({f, 0.5}).value().param_values[0];
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SelectivityMapperTest, ExtremePointsClampToColumnDomain) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  const ColumnStats& s_date =
      *SmallTpch().GetColumnStats("supplier", "s_date").value();
  auto lo = mapper.ToInstance({0.0, 0.0}).value();
  auto hi = mapper.ToInstance({1.0, 1.0}).value();
  EXPECT_GE(lo.param_values[0], s_date.min);
  EXPECT_LE(hi.param_values[0], s_date.max + 1e-9);
  // Out-of-range coordinates clamp rather than fail.
  EXPECT_TRUE(mapper.ToInstance({-0.5, 1.5}).ok());
}

TEST(SelectivityMapperTest, ArityMismatchRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  EXPECT_FALSE(mapper.ToInstance({0.5}).ok());
  QueryInstance instance{"Q1", {100.0}};
  EXPECT_FALSE(mapper.ToPlanSpacePoint(instance).ok());
}

TEST(QueryTemplateTest, ParamsOnTable) {
  const QueryTemplate tmpl = EvaluationTemplate("Q7");
  EXPECT_EQ(tmpl.ParamsOnTable("lineitem"), (std::vector<int>{2}));
  EXPECT_EQ(tmpl.ParamsOnTable("nation"), (std::vector<int>{}));
}

TEST(QueryTemplateTest, TableIndex) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  EXPECT_EQ(tmpl.TableIndex("supplier"), 0);
  EXPECT_EQ(tmpl.TableIndex("lineitem"), 1);
  EXPECT_EQ(tmpl.TableIndex("orders"), -1);
}

TEST(QueryTemplateTest, ToSqlContainsAllPieces) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  const std::string sql = tmpl.ToSql();
  EXPECT_NE(sql.find("SELECT COUNT(*)"), std::string::npos);
  EXPECT_NE(sql.find("supplier.s_suppkey = lineitem.l_suppkey"),
            std::string::npos);
  EXPECT_NE(sql.find("supplier.s_date <= $0"), std::string::npos);
  EXPECT_NE(sql.find("lineitem.l_partkey <= $1"), std::string::npos);
}

TEST(QueryTemplateTest, EvaluationTemplateDegreesMatchPaperRange) {
  // Paper Appendix A: parameter degrees range 2..6.
  int min_degree = 100, max_degree = 0;
  for (const QueryTemplate& tmpl : EvaluationTemplates()) {
    min_degree = std::min(min_degree, tmpl.ParameterDegree());
    max_degree = std::max(max_degree, tmpl.ParameterDegree());
  }
  EXPECT_EQ(min_degree, 2);
  EXPECT_EQ(max_degree, 6);
  EXPECT_EQ(EvaluationTemplates().size(), 9u);
}

}  // namespace
}  // namespace ppc
