// Tests for OptimizerOptions: the left-deep restriction and fuzzy cost
// comparison — the two stabilization knobs DESIGN.md's calibration section
// documents.

#include <gtest/gtest.h>

#include <set>

#include "optimizer/optimizer.h"
#include "plan/fingerprint.h"
#include "optimizer/plan_evaluator.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

size_t CountPlans(const Optimizer& optimizer, const QueryTemplate& tmpl,
                  size_t probes, uint64_t seed) {
  auto prep = optimizer.Prepare(tmpl).value();
  Rng rng(seed);
  std::set<PlanId> plans;
  for (size_t i = 0; i < probes; ++i) {
    std::vector<double> point(static_cast<size_t>(tmpl.ParameterDegree()));
    for (double& v : point) v = rng.Uniform();
    plans.insert(optimizer.Optimize(prep, point).value().plan_id);
  }
  return plans.size();
}

bool IsLeftDeep(const PlanNode& node) {
  if (node.kind == PlanNode::Kind::kScan) return true;
  if (node.kind == PlanNode::Kind::kAggregate) {
    return IsLeftDeep(*node.left);
  }
  // Join: the right child must be a base relation.
  if (node.right->kind != PlanNode::Kind::kScan) return false;
  return IsLeftDeep(*node.left);
}

TEST(OptimizerOptionsTest, DefaultsAreLeftDeepWithFuzz) {
  OptimizerOptions options;
  EXPECT_TRUE(options.left_deep_only);
  EXPECT_GT(options.cost_fuzz, 1.0);
}

TEST(OptimizerOptionsTest, LeftDeepPlansAreActuallyLeftDeep) {
  Optimizer optimizer(&SmallTpch());
  const QueryTemplate tmpl = EvaluationTemplate("Q7");
  auto prep = optimizer.Prepare(tmpl).value();
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> point(5);
    for (double& v : point) v = rng.Uniform();
    auto opt = optimizer.Optimize(prep, point).value();
    EXPECT_TRUE(IsLeftDeep(*opt.plan)) << CanonicalPlanString(*opt.plan);
  }
}

TEST(OptimizerOptionsTest, BushyEnumerationFindsCheaperOrEqualPlans) {
  OptimizerOptions bushy;
  bushy.left_deep_only = false;
  bushy.cost_fuzz = 1.0;
  OptimizerOptions left_deep;
  left_deep.left_deep_only = true;
  left_deep.cost_fuzz = 1.0;
  Optimizer bushy_opt(&SmallTpch(), CostModelParams(), bushy);
  Optimizer ld_opt(&SmallTpch(), CostModelParams(), left_deep);
  const QueryTemplate tmpl = EvaluationTemplate("Q7");
  auto bushy_prep = bushy_opt.Prepare(tmpl).value();
  auto ld_prep = ld_opt.Prepare(tmpl).value();
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> point(5);
    for (double& v : point) v = rng.Uniform();
    const double bushy_cost =
        bushy_opt.Optimize(bushy_prep, point).value().estimated_cost;
    const double ld_cost =
        ld_opt.Optimize(ld_prep, point).value().estimated_cost;
    EXPECT_LE(bushy_cost, ld_cost * (1.0 + 1e-9));
  }
}

TEST(OptimizerOptionsTest, BushyFragmentsThePlanDiagram) {
  OptimizerOptions bushy;
  bushy.left_deep_only = false;
  Optimizer bushy_opt(&SmallTpch(), CostModelParams(), bushy);
  Optimizer default_opt(&SmallTpch());
  const QueryTemplate tmpl = EvaluationTemplate("Q7");
  EXPECT_GE(CountPlans(bushy_opt, tmpl, 300, 7),
            CountPlans(default_opt, tmpl, 300, 7));
}

TEST(OptimizerOptionsTest, FuzzConsolidatesRegions) {
  OptimizerOptions exact;
  exact.cost_fuzz = 1.0;
  OptimizerOptions fuzzy;
  fuzzy.cost_fuzz = 1.10;
  Optimizer exact_opt(&SmallTpch(), CostModelParams(), exact);
  Optimizer fuzzy_opt(&SmallTpch(), CostModelParams(), fuzzy);
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  EXPECT_LT(CountPlans(fuzzy_opt, tmpl, 300, 11),
            CountPlans(exact_opt, tmpl, 300, 11));
}

TEST(OptimizerOptionsTest, FuzzBoundsSuboptimality) {
  // The plan chosen with fuzz f costs at most ~f^(joins) times the exact
  // optimum at the same point (each DP level can leave up to f on the
  // table). Verify a loose version of that bound.
  OptimizerOptions exact;
  exact.cost_fuzz = 1.0;
  Optimizer exact_opt(&SmallTpch(), CostModelParams(), exact);
  Optimizer default_opt(&SmallTpch());  // fuzz 1.02
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto exact_prep = exact_opt.Prepare(tmpl).value();
  auto default_prep = default_opt.Prepare(tmpl).value();
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> point(4);
    for (double& v : point) v = rng.Uniform();
    auto fuzzy_plan = default_opt.Optimize(default_prep, point).value();
    auto exact_plan = exact_opt.Optimize(exact_prep, point).value();
    const double fuzzy_cost_exact_model =
        EvaluatePlanAtPoint(exact_prep, exact_opt.cost_model(),
                            *fuzzy_plan.plan, point)
            .value()
            .cost;
    // 4 joins at 2% each: worst case ~1.02^4 ~ 1.083; allow 1.1.
    EXPECT_LE(fuzzy_cost_exact_model,
              exact_plan.estimated_cost * 1.1 + 1e-9);
  }
}

}  // namespace
}  // namespace ppc
