#include "ppc/online_predictor.h"

#include <gtest/gtest.h>

#include "ppc/metrics.h"
#include "test_util.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SyntheticCost;

OnlinePpcPredictor::Config BaseConfig() {
  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = 2;
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = 0.1;
  cfg.predictor.confidence_threshold = 0.7;
  cfg.estimator_window = 50;
  return cfg;
}

/// Drives the online predictor over a workload with synthetic ground
/// truth; returns true-precision/recall metrics of the *used* predictions.
MetricsAccumulator DriveWorkload(OnlinePpcPredictor* online,
                                 const std::vector<std::vector<double>>& pts) {
  MetricsAccumulator metrics;
  for (const auto& x : pts) {
    auto decision = online->Decide(x);
    const PlanId truth = HalfSpacePlan(x);
    if (decision.use_prediction) {
      metrics.Record(decision.prediction.plan, truth);
      // Execute: actual cost is the truth plan's cost if the prediction is
      // right; a detectably different cost when wrong.
      const double actual = SyntheticCost(x, truth);
      const bool suspected = online->ReportPredictionExecuted(
          x, decision.prediction, actual);
      if (suspected) {
        online->ObserveOptimized({x, truth, actual});
      }
    } else {
      metrics.Record(kNullPlanId, truth);
      online->ObserveOptimized({x, truth, SyntheticCost(x, truth)});
    }
  }
  return metrics;
}

TEST(OnlinePredictorTest, ColdStartOptimizesEverything) {
  OnlinePpcPredictor online(BaseConfig());
  auto decision = online.Decide({0.5, 0.5});
  EXPECT_FALSE(decision.use_prediction);
  EXPECT_FALSE(decision.prediction.has_value());
}

TEST(OnlinePredictorTest, LearnsAndStartsPredicting) {
  OnlinePpcPredictor online(BaseConfig());
  Rng rng(1);
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = 800;
  traj.scatter = 0.02;
  auto metrics = DriveWorkload(&online, RandomTrajectoriesWorkload(traj, &rng));
  EXPECT_GT(metrics.Recall(), 0.3);
  EXPECT_GT(metrics.Precision(), 0.9);
}

TEST(OnlinePredictorTest, OptimizerCallsAreFrontLoaded) {
  // The learning signature (Fig. 11's ramp): as the sample pool grows, the
  // optimizer runs less and less — most NULL decisions happen early.
  OnlinePpcPredictor online(BaseConfig());
  Rng rng(3);
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = 600;
  traj.scatter = 0.02;
  auto workload = RandomTrajectoriesWorkload(traj, &rng);
  size_t first_half_optimizations = 0, second_half_optimizations = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto decision = online.Decide(workload[i]);
    const PlanId truth = HalfSpacePlan(workload[i]);
    if (decision.use_prediction) {
      online.ReportPredictionExecuted(workload[i], decision.prediction,
                                      SyntheticCost(workload[i], truth));
    } else {
      online.ObserveOptimized(
          {workload[i], truth, SyntheticCost(workload[i], truth)});
      (i < workload.size() / 2 ? first_half_optimizations
                               : second_half_optimizations)++;
    }
  }
  EXPECT_GT(first_half_optimizations, second_half_optimizations);
}

TEST(OnlinePredictorTest, NegativeFeedbackFlagsCostMismatch) {
  auto cfg = BaseConfig();
  cfg.negative_feedback = true;
  cfg.cost_error_bound = 0.25;
  OnlinePpcPredictor online(cfg);
  // Teach it plan 1 in a small region with cost ~100.
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  auto decision = online.Decide({0.2, 0.2});
  ASSERT_TRUE(decision.use_prediction);
  // Actual cost within bound: no alarm.
  EXPECT_FALSE(
      online.ReportPredictionExecuted({0.2, 0.2}, decision.prediction, 110.0));
  // Actual cost 3x the histogram average: misprediction suspected.
  decision = online.Decide({0.2, 0.2});
  ASSERT_TRUE(decision.use_prediction);
  EXPECT_TRUE(
      online.ReportPredictionExecuted({0.2, 0.2}, decision.prediction, 300.0));
}

TEST(OnlinePredictorTest, NegativeFeedbackDisabledNeverFlags) {
  auto cfg = BaseConfig();
  cfg.negative_feedback = false;
  OnlinePpcPredictor online(cfg);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  auto decision = online.Decide({0.2, 0.2});
  ASSERT_TRUE(decision.use_prediction);
  EXPECT_FALSE(online.ReportPredictionExecuted({0.2, 0.2},
                                               decision.prediction, 9999.0));
  // The tracker still records the estimated error.
  EXPECT_LT(online.tracker().TemplatePrecision(), 1.0);
}

TEST(OnlinePredictorTest, RandomInvocationsOccurAtConfiguredRate) {
  auto cfg = BaseConfig();
  cfg.mean_invocation_probability = 0.3;
  OnlinePpcPredictor online(cfg);
  Rng rng(9);
  // Saturate one region so predictions fire constantly.
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  size_t predictions = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.3, rng.Uniform() * 0.3};
    auto decision = online.Decide(x);
    if (decision.prediction.has_value()) ++predictions;
  }
  EXPECT_GT(online.random_invocations(), 0u);
  EXPECT_LT(online.random_invocations(), predictions);
}

TEST(OnlinePredictorTest, ZeroInvocationProbabilityNeverInvokes) {
  auto cfg = BaseConfig();
  cfg.mean_invocation_probability = 0.0;
  OnlinePpcPredictor online(cfg);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.3, rng.Uniform() * 0.3};
    online.Decide(x);
  }
  EXPECT_EQ(online.random_invocations(), 0u);
}

TEST(OnlinePredictorTest, DriftResetTriggersOnPrecisionCollapse) {
  auto cfg = BaseConfig();
  cfg.estimator_window = 20;
  cfg.reset_precision_threshold = 0.5;
  OnlinePpcPredictor online(cfg);
  Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  EXPECT_GT(online.predictor().TotalSamples(), 0u);
  // Simulate a plan-space change: every prediction now measures a wildly
  // different cost, so the binary estimator keeps reporting errors.
  int fed = 0;
  for (int i = 0; i < 200 && online.reset_count() == 0; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.3, rng.Uniform() * 0.3};
    auto decision = online.Decide(x);
    if (!decision.use_prediction) {
      // After the reset the predictor is empty; stop feeding.
      break;
    }
    online.ReportPredictionExecuted(x, decision.prediction, 100000.0);
    ++fed;
  }
  EXPECT_EQ(online.reset_count(), 1u);
  EXPECT_EQ(online.predictor().TotalSamples(), 0u);
  EXPECT_GE(fed, static_cast<int>(cfg.estimator_window));
}

TEST(OnlinePredictorTest, ReportPredictionOutcomeUpdatesWindowedPrecision) {
  // Exact ground-truth feedback (the predicted-but-evicted path) must move
  // the same Sec. IV-E windows as executed-prediction feedback.
  OnlinePpcPredictor online(BaseConfig());
  Prediction prediction;
  prediction.plan = 7;
  prediction.confidence = 1.0;

  online.ReportPredictionOutcome(prediction, /*true_plan=*/7);
  EXPECT_DOUBLE_EQ(online.TemplatePrecision(), 1.0);
  EXPECT_DOUBLE_EQ(online.PlanPrecision(7), 1.0);

  online.ReportPredictionOutcome(prediction, /*true_plan=*/8);
  EXPECT_DOUBLE_EQ(online.TemplatePrecision(), 0.5);
  EXPECT_DOUBLE_EQ(online.PlanPrecision(7), 0.5);

  const auto stats = online.GetStats();
  EXPECT_EQ(stats.feedback_positive, 1u);
  EXPECT_EQ(stats.feedback_negative, 1u);
  EXPECT_DOUBLE_EQ(stats.precision, 0.5);
  EXPECT_DOUBLE_EQ(stats.beta, 1.0);
  EXPECT_DOUBLE_EQ(stats.recall, 0.5);
}

TEST(OnlinePredictorTest, StatsReflectFeedbackCounters) {
  OnlinePpcPredictor online(BaseConfig());
  Rng rng(5);
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = 300;
  traj.scatter = 0.02;
  DriveWorkload(&online, RandomTrajectoriesWorkload(traj, &rng));
  const auto stats = online.GetStats();
  EXPECT_EQ(stats.optimizer_insertions, online.optimizer_insertions());
  EXPECT_EQ(stats.feedback_positive + stats.feedback_negative,
            online.feedback_positive() + online.feedback_negative());
  EXPECT_GE(stats.beta, 0.0);
  EXPECT_LE(stats.beta, 1.0);
  EXPECT_DOUBLE_EQ(stats.recall, stats.beta * stats.precision);
}

TEST(OnlinePredictorTest, NoResetWhenDisabled) {
  auto cfg = BaseConfig();
  cfg.estimator_window = 10;
  cfg.reset_precision_threshold = 0.0;  // disabled
  OnlinePpcPredictor online(cfg);
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.4, rng.Uniform() * 0.4};
    online.ObserveOptimized({x, 1, 100.0});
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x = {rng.Uniform() * 0.3, rng.Uniform() * 0.3};
    auto decision = online.Decide(x);
    if (decision.use_prediction) {
      online.ReportPredictionExecuted(x, decision.prediction, 100000.0);
    }
  }
  EXPECT_EQ(online.reset_count(), 0u);
}

}  // namespace
}  // namespace ppc
