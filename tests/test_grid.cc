#include "lsh/grid.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppc {
namespace {

TEST(PlanGridTest, InsertAndQueryContainingCell) {
  PlanGrid grid(2, 10, 0.0, 1.0);
  grid.Insert({0.55, 0.55}, 1, 10.0);
  grid.Insert({0.56, 0.56}, 1, 20.0);
  // Query box exactly covering the containing cell [0.5,0.6]^2.
  auto result = grid.QueryBox({0.55, 0.55}, 0.05);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NEAR(result[1].count, 2.0, 1e-9);
  EXPECT_NEAR(result[1].AverageCost(), 15.0, 1e-9);
}

TEST(PlanGridTest, QueryFarAwayIsEmpty) {
  PlanGrid grid(2, 10, 0.0, 1.0);
  grid.Insert({0.1, 0.1}, 1, 1.0);
  EXPECT_TRUE(grid.QueryBox({0.9, 0.9}, 0.05).empty());
}

TEST(PlanGridTest, PartialOverlapScalesContribution) {
  PlanGrid grid(1, 10, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) grid.Insert({0.55}, 7, 1.0);
  // Query covering half of cell [0.5, 0.6).
  auto result = grid.QueryBox({0.5}, 0.05);
  ASSERT_EQ(result.count(7), 1u);
  EXPECT_NEAR(result[7].count, 50.0, 1e-6);
}

TEST(PlanGridTest, MultiplePlansSeparated) {
  PlanGrid grid(2, 10, 0.0, 1.0);
  for (int i = 0; i < 10; ++i) {
    grid.Insert({0.25, 0.25}, 1, 5.0);
    grid.Insert({0.75, 0.75}, 2, 50.0);
  }
  auto near1 = grid.QueryBox({0.25, 0.25}, 0.04);
  EXPECT_EQ(near1.count(1), 1u);
  EXPECT_EQ(near1.count(2), 0u);
  auto both = grid.QueryBox({0.5, 0.5}, 0.45);
  EXPECT_EQ(both.count(1), 1u);
  EXPECT_EQ(both.count(2), 1u);
}

TEST(PlanGridTest, MassConservedOverFullDomain) {
  PlanGrid grid(3, 8, 0.0, 1.0);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    grid.Insert({rng.Uniform(), rng.Uniform(), rng.Uniform()},
                1 + rng.UniformInt(uint64_t{3}), 1.0);
  }
  auto all = grid.QueryBox({0.5, 0.5, 0.5}, 0.5);
  double total = 0.0;
  for (const auto& [plan, agg] : all) total += agg.count;
  EXPECT_NEAR(total, 500.0, 1e-6);
}

TEST(PlanGridTest, NonUnitDomain) {
  PlanGrid grid(2, 16, -2.0, 4.0);
  grid.Insert({-1.0, 1.0}, 9, 3.0);
  auto result = grid.QueryBox({-1.0, 1.0}, 0.2);
  ASSERT_EQ(result.count(9), 1u);
  EXPECT_GT(result[9].count, 0.5);
}

TEST(PlanGridTest, OutOfDomainCoordinatesClampToEdgeCells) {
  PlanGrid grid(1, 10, 0.0, 1.0);
  grid.Insert({5.0}, 1, 1.0);
  grid.Insert({-5.0}, 2, 1.0);
  EXPECT_EQ(grid.QueryBox({0.95}, 0.04).count(1), 1u);
  EXPECT_EQ(grid.QueryBox({0.05}, 0.04).count(2), 1u);
}

TEST(PlanGridTest, SpaceAccountingFollowsTableOne) {
  PlanGrid grid(2, 10, 0.0, 1.0);
  EXPECT_EQ(grid.total_cells(), 100u);
  EXPECT_EQ(grid.SpaceBytes(), 0u);  // no plans yet
  grid.Insert({0.5, 0.5}, 1, 1.0);
  EXPECT_EQ(grid.SpaceBytes(), 100u * 8u);
  grid.Insert({0.5, 0.5}, 2, 1.0);
  EXPECT_EQ(grid.SpaceBytes(), 2u * 100u * 8u);
  EXPECT_EQ(grid.plan_count(), 2u);
  EXPECT_EQ(grid.total_count(), 2u);
}

TEST(PlanGridTest, CostSumsAggregatePerPlan) {
  PlanGrid grid(1, 4, 0.0, 1.0);
  grid.Insert({0.1}, 1, 10.0);
  grid.Insert({0.12}, 1, 30.0);
  auto result = grid.QueryBox({0.125}, 0.125);
  EXPECT_NEAR(result[1].cost_sum, 40.0, 1e-9);
  EXPECT_NEAR(result[1].AverageCost(), 20.0, 1e-9);
}

}  // namespace
}  // namespace ppc
