// The health model end to end (DESIGN.md §18): circuit-breaker unit
// tests, then a 3-shard cluster behind a router with fast probe /
// breaker / replication knobs — failover to a warm replica, aggregated
// metrics across a dead backend, warm rejoin gating, and a seeded chaos
// run that kills and restarts shards under armed failpoints while
// asserting zero wrong answers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "server/circuit_breaker.h"
#include "server/client.h"
#include "server/failpoints.h"
#include "server/hash_ring.h"
#include "server/router.h"
#include "server/server.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::JsonValidator;
using testutil::SmallTpch;

// ---------------------------------------------------------------------
// CircuitBreaker unit tests.
// ---------------------------------------------------------------------

CircuitBreaker::Options FastBreaker(int threshold = 3,
                                    int64_t cooldown_ms = 20,
                                    int successes = 1) {
  CircuitBreaker::Options options;
  options.failure_threshold = threshold;
  options.open_cooldown_ms = cooldown_ms;
  options.successes_to_close = successes;
  return options;
}

TEST(CircuitBreakerTest, OpensOnlyAtConsecutiveFailureThreshold) {
  CircuitBreaker breaker(FastBreaker(/*threshold=*/3));
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_TRUE(breaker.AllowRequest()) << "below threshold must stay closed";
  // A success in between resets the consecutive count.
  EXPECT_FALSE(breaker.RecordSuccess());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Third consecutive failure trips it, and exactly that call reports
  // the transition.
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  // Further failures on an open breaker are not new transitions.
  EXPECT_FALSE(breaker.RecordFailure());
}

TEST(CircuitBreakerTest, ProbeIsAdmittedOnlyAfterCooldown) {
  CircuitBreaker breaker(FastBreaker(/*threshold=*/1, /*cooldown_ms=*/60));
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.TryBeginProbe()) << "cooldown has not elapsed";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(breaker.TryBeginProbe());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // Half-open reserves capacity for the prober, not regular traffic.
  EXPECT_FALSE(breaker.AllowRequest());
  // Re-admission while half-open is allowed (retry of a failed trial).
  EXPECT_TRUE(breaker.TryBeginProbe());
}

TEST(CircuitBreakerTest, HalfOpenSuccessClosesAndFailureReopens) {
  CircuitBreaker breaker(FastBreaker(/*threshold=*/1, /*cooldown_ms=*/0));
  EXPECT_TRUE(breaker.RecordFailure());
  ASSERT_TRUE(breaker.TryBeginProbe());
  // A failed trial goes straight back to open and restarts the cooldown.
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.TryBeginProbe());
  EXPECT_TRUE(breaker.RecordSuccess()) << "the closing call reports it";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, SuccessesToCloseRequiresThatManyTrials) {
  CircuitBreaker breaker(
      FastBreaker(/*threshold=*/1, /*cooldown_ms=*/0, /*successes=*/2));
  EXPECT_TRUE(breaker.RecordFailure());
  ASSERT_TRUE(breaker.TryBeginProbe());
  EXPECT_FALSE(breaker.RecordSuccess());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.TryBeginProbe());
  EXPECT_TRUE(breaker.RecordSuccess());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------
// Cluster fixture: three in-process shards behind a router with the
// health model tuned fast (probes every 25 ms, breaker opens after two
// failures, replication every 100 ms).
// ---------------------------------------------------------------------

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

struct TemplateSpec {
  const char* name;
  int dims;
};

constexpr TemplateSpec kTemplates[] = {
    {"Q0", 2}, {"Q1", 2}, {"Q2", 2}, {"Q3", 3}, {"Q4", 3},
    {"Q5", 4}, {"Q6", 4}, {"Q7", 5}, {"Q8", 6}};

std::vector<double> CenterPoint(const std::string& name) {
  for (const TemplateSpec& spec : kTemplates) {
    if (name == spec.name) return std::vector<double>(spec.dims, 0.5);
  }
  return {};
}

class ClusterFailoverTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 3;

  void SetUp() override {
    for (int i = 0; i < kShards; ++i) {
      ASSERT_TRUE(StartShard(i, /*port=*/0));
    }
    PlanRouter::Config config;
    config.idle_poll_ms = 10;
    config.backend_deadline_ms = 2000;
    config.probe_interval_ms = 25;
    config.probe_deadline_ms = 250;
    config.replication_interval_ms = 100;
    config.breaker.failure_threshold = 2;
    config.breaker.open_cooldown_ms = 100;
    for (int i = 0; i < kShards; ++i) {
      config.backends.push_back(ShardNode(i));
    }
    router_ = std::make_unique<PlanRouter>(config);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    failpoints::DisarmAll();
    if (router_ != nullptr) router_->Stop();
    for (auto& shard : shards_) {
      if (shard != nullptr) shard->Stop();
    }
  }

  /// Builds a fresh (cold) framework and serves it on `port` (0 =
  /// ephemeral). Replaces any previous incarnation of the shard.
  bool StartShard(int i, uint16_t port) {
    if (shards_[i] != nullptr) shards_[i]->Stop();
    shards_[i].reset();
    frameworks_[i] =
        std::make_unique<PpcFramework>(&SmallTpch(), ServingConfig());
    for (const TemplateSpec& spec : kTemplates) {
      if (!frameworks_[i]
               ->RegisterTemplate(EvaluationTemplate(spec.name))
               .ok()) {
        return false;
      }
    }
    PlanServer::Config config;
    config.port = port;
    // The dead listener's port lingers briefly even with SO_REUSEADDR
    // (its accept thread must finish exiting); retry the bind.
    for (int attempt = 0; attempt < 100; ++attempt) {
      shards_[i] = std::make_unique<PlanServer>(frameworks_[i].get(), config);
      if (shards_[i]->Start().ok()) return true;
      shards_[i].reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  HashRing::Node ShardNode(int i) const {
    return HashRing::Node{"127.0.0.1", shards_[i]->port()};
  }

  Status ConnectClient(PpcClient* client) {
    return client->Connect("127.0.0.1", router_->port());
  }

  /// Shard index for a router-ring node address, or -1.
  int IndexOf(const HashRing::Node& node) const {
    for (int i = 0; i < kShards; ++i) {
      if (node == ShardNode(i)) return i;
    }
    return -1;
  }

  /// Placement on a local replica of the router's ring (placement is a
  /// pure function of the backend set).
  HashRing::Placement PlacementOf(const std::string& name) const {
    HashRing ring;
    for (int i = 0; i < kShards; ++i) ring.Add(ShardNode(i));
    return ring.PlacementFor(name).value();
  }

  /// Drives `count` EXECUTEs for `name` through the router, tightly
  /// clustered around the template's center so the owning shard learns a
  /// confident cluster.
  void Warm(PpcClient* client, const std::string& name, int count,
            uint64_t seed = 7) {
    Rng rng(seed);
    const std::vector<double> center = CenterPoint(name);
    for (int i = 0; i < count; ++i) {
      std::vector<double> x = center;
      for (double& v : x) v += rng.Uniform(-0.02, 0.02);
      ASSERT_TRUE(client->Execute(name, x).ok()) << name;
    }
  }

  /// Polls until `pred` holds, false on timeout.
  bool WaitFor(const std::function<bool()>& pred, int64_t timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  CircuitBreaker::State BreakerOf(const HashRing::Node& node) const {
    for (const auto& status : router_->backend_status()) {
      if (status.node == node) return status.breaker;
    }
    return CircuitBreaker::State::kClosed;
  }

  /// True once a shard-direct PREDICT for `name` on shard `i` commits to
  /// a plan — how the tests observe that replication (or a warm start)
  /// actually delivered state to a shard that never saw an EXECUTE.
  bool ShardPredictsNonNull(int i, const std::string& name) {
    PpcClient direct;
    if (!direct.Connect("127.0.0.1", shards_[i]->port()).ok()) return false;
    auto predicted = direct.Predict(name, CenterPoint(name));
    return predicted.ok() && predicted.value().plan != kNullPlanId;
  }

  uint64_t RouterCounter(const std::string& name) {
    return router_->metrics().counter(name).value();
  }

  std::unique_ptr<PpcFramework> frameworks_[kShards];
  std::unique_ptr<PlanServer> shards_[kShards];
  std::unique_ptr<PlanRouter> router_;
};

TEST_F(ClusterFailoverTest, PredictFailsOverToWarmReplicaWhenPrimaryDies) {
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  const std::string name = kTemplates[1].name;  // any template works
  const auto placement = PlacementOf(name);
  const int primary = IndexOf(placement.primary);
  const int replica = IndexOf(placement.replica);
  ASSERT_GE(primary, 0);
  ASSERT_GE(replica, 0);
  ASSERT_NE(primary, replica);

  Warm(&client, name, 300);
  auto truth = client.Predict(name, CenterPoint(name));
  ASSERT_TRUE(truth.ok());
  ASSERT_NE(truth.value().plan, kNullPlanId) << "template failed to warm";

  // Replication must deliver the primary's state to the ring-successor
  // replica — observable as the replica committing shard-direct, without
  // ever having executed this template.
  ASSERT_TRUE(WaitFor([&] { return ShardPredictsNonNull(replica, name); },
                      5000))
      << "replica never went warm";

  shards_[primary]->Stop();

  // Inline failover answers immediately (the breaker need not be open
  // yet), from the *warm* replica: same plan, no abstain.
  auto predicted = client.Predict(name, CenterPoint(name));
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  EXPECT_EQ(predicted.value().plan, truth.value().plan);
  auto executed = client.Execute(name, CenterPoint(name));
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_TRUE(executed.value().failed_over);
  EXPECT_GE(RouterCounter("router.failovers"), 1u);

  // The prober notices and opens the breaker.
  EXPECT_TRUE(WaitFor(
      [&] {
        return BreakerOf(placement.primary) != CircuitBreaker::State::kClosed;
      },
      3000));
}

TEST_F(ClusterFailoverTest, DeadBackendDoesNotFailAggregatedMetrics) {
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  shards_[0]->Stop();
  const HashRing::Node dead = ShardNode(0);
  ASSERT_TRUE(WaitFor(
      [&] { return BreakerOf(dead) == CircuitBreaker::State::kOpen; }, 3000));

  // Aggregated METRICS still answers, reporting the dead backend down
  // and the survivors up — not a wholesale INTERNAL.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_TRUE(JsonValidator::Valid(metrics.value())) << metrics.value();
  EXPECT_NE(metrics.value().find(dead.Address()), std::string::npos);
  EXPECT_NE(metrics.value().find("\"up\":false"), std::string::npos);
  EXPECT_NE(metrics.value().find("\"up\":true"), std::string::npos);
  EXPECT_NE(metrics.value().find("\"breaker_state\":\"open\""),
            std::string::npos);
}

TEST_F(ClusterFailoverTest, RejoinWarmStartsFromReplicaBeforeReadmission) {
  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  const std::string name = kTemplates[2].name;
  const auto placement = PlacementOf(name);
  const int primary = IndexOf(placement.primary);
  const int replica = IndexOf(placement.replica);
  ASSERT_GE(primary, 0);
  ASSERT_GE(replica, 0);
  const uint16_t port = shards_[primary]->port();

  Warm(&client, name, 300);
  auto truth = client.Predict(name, CenterPoint(name));
  ASSERT_TRUE(truth.ok());
  ASSERT_NE(truth.value().plan, kNullPlanId);
  ASSERT_TRUE(WaitFor([&] { return ShardPredictsNonNull(replica, name); },
                      5000));

  // Kill the primary and let the breaker open.
  shards_[primary]->Stop();
  ASSERT_TRUE(WaitFor(
      [&] {
        return BreakerOf(placement.primary) == CircuitBreaker::State::kOpen;
      },
      3000));

  // Restart it on the same port with a *fresh, cold* framework: the old
  // process state is gone, exactly like a crashed shard coming back.
  ASSERT_TRUE(StartShard(primary, port));
  ASSERT_FALSE(frameworks_[primary]->metrics()
                   .counter("framework.queries")
                   .value() > 0)
      << "restarted shard must start cold";

  // The prober warm-starts it from its replicas and only then records
  // the half-open success that closes the breaker.
  ASSERT_TRUE(WaitFor(
      [&] {
        return BreakerOf(placement.primary) == CircuitBreaker::State::kClosed;
      },
      10000))
      << "shard never rejoined";
  EXPECT_GE(RouterCounter("router.rejoin.warm_starts"), 1u);

  // By the time it is back in rotation its own copy of the template is
  // warm again — restored over the wire from the replica, not relearned.
  EXPECT_TRUE(ShardPredictsNonNull(primary, name))
      << "rejoined shard is cold; warm start did not precede readmission";
  auto predicted = client.Predict(name, CenterPoint(name));
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(predicted.value().plan, truth.value().plan);
}

// ---------------------------------------------------------------------
// Chaos: seeded saboteur kills and restarts shards while load and
// ground-truth probes run, with recoverable IO failpoints armed in every
// socket path. Asserts zero wrong answers and ≥99% availability outside
// the detection windows. Tunables: PPC_CHAOS_SECONDS (default 3),
// PPC_CHAOS_SEED (default 42).
// ---------------------------------------------------------------------

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

TEST_F(ClusterFailoverTest, ClusterChaosSurvivesShardKillsUnderFailpoints) {
  const int64_t seconds = EnvInt("PPC_CHAOS_SECONDS", 3);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("PPC_CHAOS_SEED", 42));

  PpcClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Warm every template and capture ground truth before any faults.
  std::map<std::string, uint64_t> truth;
  for (const TemplateSpec& spec : kTemplates) {
    Warm(&client, spec.name, 200, seed + std::hash<std::string>{}(spec.name));
    auto predicted = client.Predict(spec.name, CenterPoint(spec.name));
    ASSERT_TRUE(predicted.ok());
    if (predicted.value().plan != kNullPlanId) {
      truth[spec.name] = predicted.value().plan;
    }
  }
  ASSERT_FALSE(truth.empty()) << "no template warmed to a committed plan";
  // Let the first replication pass ship the warm state.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Recoverable IO faults everywhere: clamped writes, spurious EINTR and
  // EAGAIN on reads. These must never corrupt an answer — only slow it.
  {
    failpoints::Config fault;
    fault.kind = failpoints::Kind::kShortIo;
    fault.arg = 3;
    fault.probability_permille = 30;
    fault.seed = seed;
    failpoints::Arm(failpoints::Site::kSend, fault);
    fault.kind = failpoints::Kind::kEintr;
    fault.probability_permille = 30;
    fault.seed = seed + 1;
    failpoints::Arm(failpoints::Site::kRecv, fault);
  }

  struct Sample {
    double t = 0;
    bool ok = false;
  };
  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};
  std::vector<Sample> samples;
  std::mutex samples_mu;
  std::vector<double> kill_times;
  std::mutex kill_mu;
  const auto epoch = std::chrono::steady_clock::now();
  const auto now_seconds = [&epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };

  // Load: clustered EXECUTEs round-robining the warm templates.
  std::thread load([&] {
    PpcClient mine;
    if (!ConnectClient(&mine).ok()) return;
    Rng rng(seed + 100);
    std::vector<std::string> names;
    for (const auto& [name, plan] : truth) names.push_back(name);
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string& name = names[i++ % names.size()];
      std::vector<double> x = CenterPoint(name);
      for (double& v : x) v += rng.Uniform(-0.02, 0.02);
      const double t = now_seconds();
      const bool ok = mine.Execute(name, x).ok();
      std::lock_guard<std::mutex> lock(samples_mu);
      samples.push_back({t, ok});
    }
  });

  // Prober: ground-truth PREDICTs. A committed plan that differs from
  // the pre-chaos truth is a *wrong answer* (abstaining is allowed — a
  // failed-over cold path may abstain; it must never fabricate).
  std::thread prober([&] {
    PpcClient mine;
    if (!ConnectClient(&mine).ok()) return;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& [name, plan] : truth) {
        auto predicted = mine.Predict(name, CenterPoint(name));
        if (predicted.ok() && predicted.value().plan != kNullPlanId &&
            predicted.value().plan != plan) {
          ++wrong_answers;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  // Saboteur: kill a seeded-random shard, wait, restart it cold on the
  // same port, wait for rejoin, repeat.
  std::thread saboteur([&] {
    Rng rng(seed + 200);
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      if (stop.load(std::memory_order_relaxed)) break;
      const int victim =
          static_cast<int>(rng.Uniform(0.0, 1.0) * kShards) % kShards;
      const uint16_t port = shards_[victim]->port();
      {
        std::lock_guard<std::mutex> lock(kill_mu);
        kill_times.push_back(now_seconds());
      }
      shards_[victim]->Stop();
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      ASSERT_TRUE(StartShard(victim, port));
      // Block until the router readmits it so we never hold two shards
      // down at once (two deaths lose both copies by design).
      WaitFor(
          [&] {
            return BreakerOf(ShardNode(victim)) ==
                       CircuitBreaker::State::kClosed ||
                   stop.load(std::memory_order_relaxed);
          },
          10000);
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_relaxed);
  load.join();
  prober.join();
  saboteur.join();
  failpoints::DisarmAll();

  EXPECT_EQ(wrong_answers.load(), 0)
      << "a shard answered with a plan that contradicts pre-chaos truth";

  // Availability outside the detection windows (0.5 s after each kill,
  // covering probe cadence + breaker threshold + failover engagement).
  int total = 0;
  int ok_count = 0;
  for (const Sample& sample : samples) {
    bool in_window = false;
    for (const double kill : kill_times) {
      if (sample.t >= kill && sample.t < kill + 0.5) {
        in_window = true;
        break;
      }
    }
    if (in_window) continue;
    ++total;
    if (sample.ok) ++ok_count;
  }
  ASSERT_GT(total, 0);
  const double availability =
      static_cast<double>(ok_count) / static_cast<double>(total);
  EXPECT_GE(availability, 0.99)
      << ok_count << "/" << total << " outside detection windows";

  // The cluster is whole again: every breaker closed, every template
  // answering.
  EXPECT_TRUE(WaitFor(
      [&] {
        for (const auto& status : router_->backend_status()) {
          if (status.breaker != CircuitBreaker::State::kClosed) return false;
        }
        return true;
      },
      10000));
  for (const auto& [name, plan] : truth) {
    auto predicted = client.Predict(name, CenterPoint(name));
    EXPECT_TRUE(predicted.ok())
        << name << ": " << predicted.status().ToString();
  }
}

}  // namespace
}  // namespace ppc
