#include "lsh/transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"

namespace ppc {
namespace {

TEST(TransformTest, DefaultOutputDimsKeepsFullDimensionality) {
  // s = r by default; dimensionality reduction (s < r) is opt-in because
  // it collapses distant plan regions (see bench_ablation_projection).
  EXPECT_EQ(DefaultOutputDims(1), 1);
  EXPECT_EQ(DefaultOutputDims(2), 2);
  EXPECT_EQ(DefaultOutputDims(3), 3);
  EXPECT_EQ(DefaultOutputDims(4), 4);
  EXPECT_EQ(DefaultOutputDims(6), 6);
}

TransformConfig Config2D() {
  TransformConfig cfg;
  cfg.input_dims = 2;
  cfg.output_dims = 2;
  cfg.bits_per_dim = 5;
  return cfg;
}

TEST(TransformTest, OutputDimensionality) {
  Rng rng(1);
  RandomizedTransform t(Config2D(), &rng);
  EXPECT_EQ(t.Apply({0.3, 0.7}).size(), 2u);
  TransformConfig cfg;
  cfg.input_dims = 5;
  cfg.output_dims = 3;
  RandomizedTransform reduce(cfg, &rng);
  EXPECT_EQ(reduce.Apply({0.1, 0.2, 0.3, 0.4, 0.5}).size(), 3u);
}

TEST(TransformTest, ApplyBatchBitIdenticalToScalarApply) {
  // The serving fast path depends on the batch kernel producing the exact
  // bytes the scalar path produces — EXPECT_EQ on doubles, no tolerance.
  for (int r : {1, 2, 3, 5}) {
    TransformConfig cfg;
    cfg.input_dims = r;
    cfg.output_dims = DefaultOutputDims(r);
    Rng rng(77);
    RandomizedTransform t(cfg, &rng);
    Rng points(123);
    const size_t count = 64;
    std::vector<double> flat;
    for (size_t i = 0; i < count * static_cast<size_t>(r); ++i) {
      flat.push_back(points.Uniform());
    }
    std::vector<double> batch(count * static_cast<size_t>(cfg.output_dims));
    t.ApplyBatch(flat.data(), count, batch.data());
    for (size_t p = 0; p < count; ++p) {
      const std::vector<double> x(
          flat.begin() + static_cast<long>(p * static_cast<size_t>(r)),
          flat.begin() + static_cast<long>((p + 1) * static_cast<size_t>(r)));
      const std::vector<double> scalar = t.Apply(x);
      for (size_t j = 0; j < scalar.size(); ++j) {
        EXPECT_EQ(batch[p * scalar.size() + j], scalar[j])
            << "r=" << r << " point " << p << " coord " << j;
      }
    }
  }
}

TEST(TransformTest, LinearizedPositionBatchMatchesScalar) {
  Rng rng(5);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(9);
  const size_t count = 128;
  std::vector<double> flat;
  for (size_t i = 0; i < count * 2; ++i) flat.push_back(points.Uniform());
  std::vector<double> positions(count);
  t.LinearizedPositionBatch(flat.data(), count, positions.data());
  for (size_t p = 0; p < count; ++p) {
    EXPECT_EQ(positions[p], t.LinearizedPosition({flat[2 * p],
                                                  flat[2 * p + 1]}))
        << "point " << p;
  }
}

TEST(TransformTest, CellBoxFromTransformedMatchesCellBox) {
  Rng rng(6);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(10);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {points.Uniform(), points.Uniform()};
    const std::vector<double> y = t.Apply(x);
    std::vector<uint32_t> lo_a, hi_a, lo_b, hi_b;
    t.CellBox(x, 0.1, &lo_a, &hi_a);
    t.CellBoxFromTransformed(y.data(), 0.1, &lo_b, &hi_b);
    EXPECT_EQ(lo_a, lo_b);
    EXPECT_EQ(hi_a, hi_b);
  }
}

TEST(TransformTest, DistancesBoundedBySqrtS) {
  // Each of the s projections onto a unit vector is 1-Lipschitz in the
  // scaled input, so the s-dimensional output distance is at most
  // sqrt(s) times the scaled input distance.
  Rng rng(2);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(3);
  const double bound = std::sqrt(2.0);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> a = {points.Uniform(), points.Uniform()};
    std::vector<double> b = {points.Uniform(), points.Uniform()};
    const double input_dist = EuclideanDistance(a, b) * t.distance_scale();
    const double output_dist = EuclideanDistance(t.Apply(a), t.Apply(b));
    EXPECT_LE(output_dist, bound * input_dist + 1e-9);
  }
}

TEST(TransformTest, PreservesLocalityStatistically) {
  // Nearby points must stay nearby; far points should usually stay far.
  Rng rng(5);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(7);
  double near_out = 0.0, far_out = 0.0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> a = {points.Uniform(), points.Uniform()};
    std::vector<double> near = {Clamp(a[0] + 0.01, 0, 1),
                                Clamp(a[1] + 0.01, 0, 1)};
    std::vector<double> far = {points.Uniform(), points.Uniform()};
    near_out += EuclideanDistance(t.Apply(a), t.Apply(near));
    far_out += EuclideanDistance(t.Apply(a), t.Apply(far));
  }
  EXPECT_LT(near_out / trials, 0.2 * (far_out / trials));
}

TEST(TransformTest, CellsWithinGrid) {
  Rng rng(11);
  TransformConfig cfg = Config2D();
  RandomizedTransform t(cfg, &rng);
  const uint32_t cells = uint32_t{1} << cfg.bits_per_dim;
  Rng points(13);
  for (int i = 0; i < 500; ++i) {
    const auto cell = t.Cell({points.Uniform(), points.Uniform()});
    for (uint32_t c : cell) ASSERT_LT(c, cells);
  }
}

TEST(TransformTest, LinearizedPositionInUnitInterval) {
  Rng rng(17);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(19);
  for (int i = 0; i < 200; ++i) {
    const double z = t.LinearizedPosition({points.Uniform(), points.Uniform()});
    ASSERT_GE(z, 0.0);
    ASSERT_LT(z, 1.0);
  }
}

TEST(TransformTest, NearbyPointsOftenShareCell) {
  Rng rng(23);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(29);
  int shared = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> a = {points.Uniform(), points.Uniform()};
    std::vector<double> b = {Clamp(a[0] + 0.005, 0, 1),
                             Clamp(a[1] + 0.005, 0, 1)};
    if (t.Cell(a) == t.Cell(b)) ++shared;
  }
  EXPECT_GT(shared, trials / 2);
}

TEST(TransformTest, RangeHalfWidthMonotoneInRadius) {
  Rng rng(31);
  RandomizedTransform t(Config2D(), &rng);
  double prev = 0.0;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    const double delta = t.RangeHalfWidth(d);
    EXPECT_GT(delta, prev);
    EXPECT_LE(delta, 0.5);
    prev = delta;
  }
}

TEST(TransformTest, RangeHalfWidthMatchesSphereVolumeFraction) {
  // 2*delta should equal the hypersphere's share of the grid box volume.
  Rng rng(37);
  TransformConfig cfg = Config2D();
  RandomizedTransform t(cfg, &rng);
  const double d = 0.1;
  const double dt = d * t.distance_scale();
  const double expected =
      0.5 * HypersphereVolume(2, dt) / std::pow(t.grid_extent(), 2.0);
  EXPECT_NEAR(t.RangeHalfWidth(d), expected, 1e-12);
}

TEST(TransformTest, CellBoxContainsPointCell) {
  Rng rng(61);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(67);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {points.Uniform(), points.Uniform()};
    std::vector<uint32_t> lo, hi;
    t.CellBox(x, 0.05, &lo, &hi);
    const auto cell = t.Cell(x);
    for (size_t d = 0; d < cell.size(); ++d) {
      EXPECT_LE(lo[d], cell[d]);
      EXPECT_GE(hi[d], cell[d]);
    }
  }
}

TEST(TransformTest, CellBoxGrowsWithRadius) {
  Rng rng(71);
  RandomizedTransform t(Config2D(), &rng);
  const std::vector<double> x = {0.5, 0.5};
  std::vector<uint32_t> lo_small, hi_small, lo_big, hi_big;
  t.CellBox(x, 0.02, &lo_small, &hi_small);
  t.CellBox(x, 0.3, &lo_big, &hi_big);
  uint64_t small_cells = 1, big_cells = 1;
  for (size_t d = 0; d < lo_small.size(); ++d) {
    small_cells *= hi_small[d] - lo_small[d] + 1;
    big_cells *= hi_big[d] - lo_big[d] + 1;
  }
  EXPECT_GT(big_cells, small_cells);
}

TEST(TransformTest, CellBoxCoversNearbyPoints) {
  // Every point within distance d of x must land inside x's cell box.
  Rng rng(73);
  RandomizedTransform t(Config2D(), &rng);
  Rng points(79);
  const double d = 0.1;
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {points.Uniform(), points.Uniform()};
    std::vector<uint32_t> lo, hi;
    t.CellBox(x, d, &lo, &hi);
    for (int j = 0; j < 10; ++j) {
      const double angle = points.Uniform(0.0, 2.0 * M_PI);
      const double radius = d * points.Uniform();
      const std::vector<double> y = {
          Clamp(x[0] + radius * std::cos(angle), 0.0, 1.0),
          Clamp(x[1] + radius * std::sin(angle), 0.0, 1.0)};
      const auto cell = t.Cell(y);
      for (size_t dd = 0; dd < cell.size(); ++dd) {
        EXPECT_GE(cell[dd], lo[dd]);
        EXPECT_LE(cell[dd], hi[dd]);
      }
    }
  }
}

TEST(TransformEnsembleTest, ProducesDistinctTransforms) {
  TransformEnsemble ensemble(Config2D(), 5, 41);
  ASSERT_EQ(ensemble.size(), 5u);
  const std::vector<double> p = {0.3, 0.6};
  int distinct = 0;
  for (size_t i = 1; i < ensemble.size(); ++i) {
    if (std::abs(ensemble[i].LinearizedPosition(p) -
                 ensemble[0].LinearizedPosition(p)) > 1e-12) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 3);
}

TEST(TransformEnsembleTest, DeterministicForSeed) {
  TransformEnsemble a(Config2D(), 3, 43);
  TransformEnsemble b(Config2D(), 3, 43);
  const std::vector<double> p = {0.8, 0.2};
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].LinearizedPosition(p), b[i].LinearizedPosition(p));
  }
}

TEST(TransformTest, DimensionalityReductionStillLocal) {
  TransformConfig cfg;
  cfg.input_dims = 6;
  cfg.output_dims = 3;
  cfg.bits_per_dim = 5;
  Rng rng(47);
  RandomizedTransform t(cfg, &rng);
  Rng points(53);
  double near_out = 0.0, far_out = 0.0;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> a(6), far(6);
    for (int d = 0; d < 6; ++d) {
      a[static_cast<size_t>(d)] = points.Uniform();
      far[static_cast<size_t>(d)] = points.Uniform();
    }
    std::vector<double> near = a;
    for (double& v : near) v = Clamp(v + 0.01, 0, 1);
    near_out += EuclideanDistance(t.Apply(a), t.Apply(near));
    far_out += EuclideanDistance(t.Apply(a), t.Apply(far));
  }
  EXPECT_LT(near_out, 0.3 * far_out);
}

}  // namespace
}  // namespace ppc
