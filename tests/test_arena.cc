#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/alloc_counter.h"

namespace ppc {
namespace {

TEST(ArenaTest, ReturnsAlignedWritableStorage) {
  Arena arena;
  double* d = arena.Array<double>(17);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(std::max_align_t), 0u);
  for (int i = 0; i < 17; ++i) d[i] = i * 1.5;
  uint32_t* u = arena.Array<uint32_t>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(u) % alignof(std::max_align_t), 0u);
  u[0] = u[1] = u[2] = 7;
  // The second allocation did not stomp the first.
  for (int i = 0; i < 17; ++i) EXPECT_EQ(d[i], i * 1.5);
}

TEST(ArenaTest, DistinctAllocationsDoNotOverlap) {
  Arena arena;
  char* a = arena.Array<char>(100);
  char* b = arena.Array<char>(100);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(a[i]), 0xAA);
  }
}

TEST(ArenaTest, ResetRecyclesWithoutHeapTraffic) {
  Arena arena;
  arena.Array<double>(256);
  const size_t capacity = arena.CapacityBytes();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    const uint64_t before = ThreadAllocationCount();
    double* d = arena.Array<double>(256);
    d[0] = 1.0;
    d[255] = 2.0;
    EXPECT_EQ(ThreadAllocationCount(), before) << "round " << round;
  }
  EXPECT_EQ(arena.CapacityBytes(), capacity);
  EXPECT_EQ(arena.BlockCount(), 1u);
}

TEST(ArenaTest, OverflowChainsBlocksThenConsolidatesToOne) {
  Arena arena;
  // Repeatedly outgrow the current block within one "request".
  arena.Array<char>(100);
  arena.Array<char>(8 * 1024);
  arena.Array<char>(32 * 1024);
  EXPECT_GT(arena.BlockCount(), 1u);
  arena.Reset();
  EXPECT_EQ(arena.BlockCount(), 1u);
  // The consolidated block absorbs the whole previous pattern: replaying
  // it allocates nothing.
  const uint64_t before = ThreadAllocationCount();
  arena.Array<char>(100);
  arena.Array<char>(8 * 1024);
  arena.Array<char>(32 * 1024);
  EXPECT_EQ(ThreadAllocationCount(), before);
  EXPECT_EQ(arena.BlockCount(), 1u);
}

TEST(ArenaTest, ZeroCountArrayIsValid) {
  Arena arena;
  EXPECT_NE(arena.Array<double>(0), nullptr);
}

TEST(AllocCounterTest, CountsThisThreadsAllocations) {
  const uint64_t allocs = ThreadAllocationCount();
  const uint64_t frees = ThreadDeallocationCount();
  // Direct operator calls: a new/delete *expression* pair may legally be
  // elided by the optimizer, an explicit operator call may not.
  void* p = ::operator new(64);
  EXPECT_GE(ThreadAllocationCount(), allocs + 1);
  ::operator delete(p);
  EXPECT_GE(ThreadDeallocationCount(), frees + 1);
}

}  // namespace
}  // namespace ppc
