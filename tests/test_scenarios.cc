#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

namespace ppc {
namespace {

ScenarioConfig TwoTemplateConfig(uint64_t seed) {
  ScenarioConfig config;
  config.templates = {{"alpha", 2}, {"beta", 3}};
  config.seed = seed;
  config.events_per_second = 1000.0;
  return config;
}

std::vector<ScenarioEvent> Stream(const std::string& name,
                                  const ScenarioConfig& config, size_t count) {
  auto gen = MakeScenario(name, config);
  EXPECT_TRUE(gen.ok()) << gen.status().message();
  return GenerateEvents(gen.value().get(), count);
}

bool SameEvent(const ScenarioEvent& a, const ScenarioEvent& b) {
  if (a.template_index != b.template_index) return false;
  if (a.point.size() != b.point.size()) return false;
  if (std::memcmp(&a.arrival_seconds, &b.arrival_seconds, sizeof(double)) !=
      0) {
    return false;
  }
  for (size_t i = 0; i < a.point.size(); ++i) {
    if (std::memcmp(&a.point[i], &b.point[i], sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(ScenarioRegistryTest, NamesAndConstruction) {
  const auto names = ScenarioNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "zipf_tenants");
  EXPECT_EQ(names[1], "diurnal_flash");
  EXPECT_EQ(names[2], "correlated_predicates");
  EXPECT_EQ(names[3], "adversarial_drift");
  for (const auto& name : names) {
    auto gen = MakeScenario(name, TwoTemplateConfig(7));
    ASSERT_TRUE(gen.ok()) << name;
    EXPECT_EQ(gen.value()->name(), name);
  }
}

TEST(ScenarioRegistryTest, RejectsBadConfigs) {
  EXPECT_FALSE(MakeScenario("no_such_scenario", TwoTemplateConfig(1)).ok());

  ScenarioConfig empty = TwoTemplateConfig(1);
  empty.templates.clear();
  EXPECT_FALSE(MakeScenario("zipf_tenants", empty).ok());

  ScenarioConfig zero_dims = TwoTemplateConfig(1);
  zero_dims.templates[0].dimensions = 0;
  EXPECT_FALSE(MakeScenario("diurnal_flash", zero_dims).ok());

  ScenarioConfig bad_rate = TwoTemplateConfig(1);
  bad_rate.events_per_second = 0.0;
  EXPECT_FALSE(MakeScenario("correlated_predicates", bad_rate).ok());
}

// Same seed must give byte-identical streams; a different seed must not.
TEST(ScenarioDeterminismTest, SameSeedSameStream) {
  for (const auto& name : ScenarioNames()) {
    const auto a = Stream(name, TwoTemplateConfig(0x5eed), 400);
    const auto b = Stream(name, TwoTemplateConfig(0x5eed), 400);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(SameEvent(a[i], b[i])) << name << " diverged at " << i;
    }
    const auto c = Stream(name, TwoTemplateConfig(0x5eed + 1), 400);
    bool any_diff = false;
    for (size_t i = 0; i < a.size() && !any_diff; ++i) {
      any_diff = !SameEvent(a[i], c[i]);
    }
    EXPECT_TRUE(any_diff) << name << " ignored the seed";
  }
}

TEST(ScenarioStreamTest, ArrivalsMonotoneAndPointsClamped) {
  for (const auto& name : ScenarioNames()) {
    const auto events = Stream(name, TwoTemplateConfig(11), 1000);
    double last = 0.0;
    for (const auto& event : events) {
      ASSERT_GE(event.arrival_seconds, last) << name;
      last = event.arrival_seconds;
      ASSERT_LT(event.template_index, 2u) << name;
      for (double v : event.point) {
        ASSERT_GE(v, 0.0) << name;
        ASSERT_LE(v, 1.0) << name;
      }
    }
  }
}

TEST(ScenarioStreamTest, PointDimensionsFollowTemplate) {
  const auto events = Stream("zipf_tenants", TwoTemplateConfig(3), 500);
  for (const auto& event : events) {
    const size_t want = event.template_index == 0 ? 2u : 3u;
    ASSERT_EQ(event.point.size(), want);
  }
}

// Empirical tenant frequencies should match the configured Zipf exponent:
// rank-k probability proportional to (k+1)^-s. We cluster events by tenant
// center (tenants are tight Gaussian blobs) by rounding the first coordinate.
TEST(ZipfTenantsTest, FrequenciesMatchExponent) {
  ScenarioConfig config = TwoTemplateConfig(0xabc);
  config.zipf_tenants.tenant_count = 8;
  config.zipf_tenants.exponent = 1.2;
  config.zipf_tenants.cluster_stddev = 0.0;  // exact centers
  const size_t kEvents = 40000;
  const auto events = Stream("zipf_tenants", config, kEvents);

  std::map<std::pair<uint32_t, int64_t>, size_t> counts;
  for (const auto& event : events) {
    const int64_t key = std::llround(event.point[0] * 1e6);
    ++counts[{event.template_index, key}];
  }
  ASSERT_LE(counts.size(), 8u);
  std::vector<size_t> sorted;
  for (const auto& [key, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());

  double norm = 0.0;
  for (int k = 0; k < 8; ++k) norm += std::pow(k + 1, -1.2);
  for (size_t k = 0; k < sorted.size(); ++k) {
    const double expected = std::pow(k + 1, -1.2) / norm;
    const double observed =
        static_cast<double>(sorted[k]) / static_cast<double>(kEvents);
    EXPECT_NEAR(observed, expected, 0.02)
        << "rank " << k << " frequency off";
  }
}

// The diurnal curve modulates inter-arrival density: flash windows must be
// much denser than the off-flash baseline, and the sinusoid trough must be
// sparser than the crest.
TEST(DiurnalFlashTest, FlashWindowsAreDenser) {
  ScenarioConfig config = TwoTemplateConfig(0xd1a);
  config.events_per_second = 2000.0;
  config.diurnal_flash.period_seconds = 2.0;
  config.diurnal_flash.amplitude = 0.5;
  config.diurnal_flash.first_flash_at_seconds = 1.0;
  config.diurnal_flash.flash_every_seconds = 2.0;
  config.diurnal_flash.flash_duration_seconds = 0.2;
  config.diurnal_flash.flash_multiplier = 10.0;
  const auto events = Stream("diurnal_flash", config, 30000);

  size_t in_flash = 0, off_flash = 0;
  double flash_time = 0.0, off_time = 0.0;
  const double horizon = events.back().arrival_seconds;
  for (const auto& event : events) {
    const double t = event.arrival_seconds;
    const double since = t - config.diurnal_flash.first_flash_at_seconds;
    const bool flash =
        since >= 0.0 &&
        std::fmod(since, config.diurnal_flash.flash_every_seconds) <
            config.diurnal_flash.flash_duration_seconds;
    if (flash) {
      ++in_flash;
    } else {
      ++off_flash;
    }
  }
  // Fraction of wall time spent in flash windows: 0.2 of every 2.0 s once
  // flashes start at t=1.
  for (double t = 0.0; t < horizon; t += 1e-3) {
    const double since = t - config.diurnal_flash.first_flash_at_seconds;
    const bool flash =
        since >= 0.0 &&
        std::fmod(since, config.diurnal_flash.flash_every_seconds) <
            config.diurnal_flash.flash_duration_seconds;
    (flash ? flash_time : off_time) += 1e-3;
  }
  ASSERT_GT(flash_time, 0.0);
  ASSERT_GT(off_time, 0.0);
  const double flash_rate = static_cast<double>(in_flash) / flash_time;
  const double off_rate = static_cast<double>(off_flash) / off_time;
  // Flash rate multiplier is 10x; allow generous sampling slack.
  EXPECT_GT(flash_rate, 5.0 * off_rate);

  // Sinusoid: crest quarter-periods [0, P/2) are denser than trough
  // quarter-periods [P/2, P) when flashes are excluded.
  size_t crest = 0, trough = 0;
  for (const auto& event : events) {
    const double t = event.arrival_seconds;
    const double since = t - config.diurnal_flash.first_flash_at_seconds;
    const bool flash =
        since >= 0.0 &&
        std::fmod(since, config.diurnal_flash.flash_every_seconds) <
            config.diurnal_flash.flash_duration_seconds;
    if (flash) continue;
    const double phase =
        std::fmod(t, config.diurnal_flash.period_seconds) /
        config.diurnal_flash.period_seconds;
    if (phase < 0.5) {
      ++crest;
    } else {
      ++trough;
    }
  }
  ASSERT_GT(trough, 0u);
  EXPECT_GT(static_cast<double>(crest), 1.2 * static_cast<double>(trough));
}

// Every event must fall inside the phase box active at its position in the
// stream, and phase boundaries must actually move the support.
TEST(AdversarialDriftTest, FollowsPhaseSchedule) {
  ScenarioConfig config = TwoTemplateConfig(0xd1f);
  config.adversarial_drift.phases = {
      {200, 0.5, 0.4}, {300, 0.8, 0.05}, {400, 0.2, 0.05}};
  const auto events = Stream("adversarial_drift", config, 1000);

  size_t index = 0;
  for (const auto& phase : config.adversarial_drift.phases) {
    for (size_t i = 0; i < phase.events; ++i, ++index) {
      ASSERT_LT(index, events.size());
      EXPECT_EQ(events[index].template_index, 0u);
      for (double v : events[index].point) {
        EXPECT_GE(v, std::max(0.0, phase.center - phase.half_width - 1e-12));
        EXPECT_LE(v, std::min(1.0, phase.center + phase.half_width + 1e-12));
      }
    }
  }
  // The final phase repeats once the schedule is exhausted.
  for (; index < events.size(); ++index) {
    for (double v : events[index].point) {
      EXPECT_GE(v, 0.2 - 0.05 - 1e-12);
      EXPECT_LE(v, 0.2 + 0.05 + 1e-12);
    }
  }
}

// Ridges are oblique: points concentrate along a line not aligned with any
// axis, so both coordinates must have substantial spread and be strongly
// correlated for at least one template's dominant ridge.
TEST(CorrelatedPredicatesTest, RidgesAreObliqueAndTight) {
  ScenarioConfig config;
  config.templates = {{"only", 2}};
  config.seed = 0xc0de;
  config.correlated_predicates.ridge_count = 1;
  config.correlated_predicates.major_stddev = 0.15;
  config.correlated_predicates.minor_stddev = 0.005;
  const auto events = Stream("correlated_predicates", config, 5000);

  double mx = 0.0, my = 0.0;
  for (const auto& event : events) {
    mx += event.point[0];
    my += event.point[1];
  }
  mx /= events.size();
  my /= events.size();
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (const auto& event : events) {
    const double dx = event.point[0] - mx;
    const double dy = event.point[1] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  const double corr = sxy / std::sqrt(sxx * syy);
  // Oblique unit direction caps any single component at 0.9, so both axes
  // see real variance and the correlation magnitude is high.
  EXPECT_GT(std::sqrt(sxx / events.size()), 0.02);
  EXPECT_GT(std::sqrt(syy / events.size()), 0.02);
  EXPECT_GT(std::fabs(corr), 0.6);
}

TEST(ScenarioStreamTest, ArrivalRateMatchesConfig) {
  // Homogeneous-rate scenarios should hit events_per_second closely.
  for (const char* name : {"zipf_tenants", "correlated_predicates",
                           "adversarial_drift"}) {
    ScenarioConfig config = TwoTemplateConfig(21);
    config.events_per_second = 500.0;
    const auto events = Stream(name, config, 5000);
    const double rate = 5000.0 / events.back().arrival_seconds;
    EXPECT_NEAR(rate, 500.0, 25.0) << name;
  }
}

}  // namespace
}  // namespace ppc
