#ifndef PPC_TESTS_TEST_UTIL_H_
#define PPC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "clustering/predictor.h"
#include "common/rng.h"
#include "storage/tpch_generator.h"

namespace ppc {
namespace testutil {

/// Synthetic plan spaces with known ground truth, used to test predictors
/// independently of the optimizer substrate.

/// Ground-truth labeler: plan 1 where x0 + x1 < 1, plan 2 elsewhere
/// (a diagonal half-space boundary).
inline PlanId HalfSpacePlan(const std::vector<double>& x) {
  return (x[0] + x[1] < 1.0) ? 1 : 2;
}

/// Ground-truth labeler: four quadrant plans (ids 1..4).
inline PlanId QuadrantPlan(const std::vector<double>& x) {
  const int qx = x[0] < 0.5 ? 0 : 1;
  const int qy = x[1] < 0.5 ? 0 : 1;
  return static_cast<PlanId>(1 + qx + 2 * qy);
}

/// Cost surface: smooth per-plan cost, distinct scales per plan so cost
/// mispredictions are detectable.
inline double SyntheticCost(const std::vector<double>& x, PlanId plan) {
  double base = 100.0 * static_cast<double>(plan);
  for (double v : x) base += 10.0 * v;
  return base;
}

/// Uniformly samples `count` labeled points over [0,1]^dims with the given
/// labeler.
template <typename Labeler>
std::vector<LabeledPoint> SamplePoints(int dims, size_t count, Labeler label,
                                       Rng* rng) {
  std::vector<LabeledPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LabeledPoint p;
    p.coords.resize(static_cast<size_t>(dims));
    for (double& v : p.coords) v = rng->Uniform();
    p.plan = label(p.coords);
    p.cost = SyntheticCost(p.coords, p.plan);
    points.push_back(std::move(p));
  }
  return points;
}

/// Distance of `x` to the half-space boundary x0 + x1 = 1.
inline double HalfSpaceBoundaryDistance(const std::vector<double>& x) {
  return std::abs(x[0] + x[1] - 1.0) / std::sqrt(2.0);
}

/// Shared tiny TPC-H catalog (built once per process; tests treat it as
/// immutable).
inline const Catalog& SmallTpch() {
  static const Catalog* catalog = [] {
    TpchConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.seed = 42;
    return BuildTpchCatalog(cfg).release();
  }();
  return *catalog;
}

}  // namespace testutil
}  // namespace ppc

#endif  // PPC_TESTS_TEST_UTIL_H_
