#ifndef PPC_TESTS_TEST_UTIL_H_
#define PPC_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "clustering/predictor.h"
#include "common/rng.h"
#include "storage/tpch_generator.h"

namespace ppc {
namespace testutil {

/// Synthetic plan spaces with known ground truth, used to test predictors
/// independently of the optimizer substrate.

/// Ground-truth labeler: plan 1 where x0 + x1 < 1, plan 2 elsewhere
/// (a diagonal half-space boundary).
inline PlanId HalfSpacePlan(const std::vector<double>& x) {
  return (x[0] + x[1] < 1.0) ? 1 : 2;
}

/// Ground-truth labeler: four quadrant plans (ids 1..4).
inline PlanId QuadrantPlan(const std::vector<double>& x) {
  const int qx = x[0] < 0.5 ? 0 : 1;
  const int qy = x[1] < 0.5 ? 0 : 1;
  return static_cast<PlanId>(1 + qx + 2 * qy);
}

/// Cost surface: smooth per-plan cost, distinct scales per plan so cost
/// mispredictions are detectable.
inline double SyntheticCost(const std::vector<double>& x, PlanId plan) {
  double base = 100.0 * static_cast<double>(plan);
  for (double v : x) base += 10.0 * v;
  return base;
}

/// Uniformly samples `count` labeled points over [0,1]^dims with the given
/// labeler.
template <typename Labeler>
std::vector<LabeledPoint> SamplePoints(int dims, size_t count, Labeler label,
                                       Rng* rng) {
  std::vector<LabeledPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LabeledPoint p;
    p.coords.resize(static_cast<size_t>(dims));
    for (double& v : p.coords) v = rng->Uniform();
    p.plan = label(p.coords);
    p.cost = SyntheticCost(p.coords, p.plan);
    points.push_back(std::move(p));
  }
  return points;
}

/// Distance of `x` to the half-space boundary x0 + x1 = 1.
inline double HalfSpaceBoundaryDistance(const std::vector<double>& x) {
  return std::abs(x[0] + x[1] - 1.0) / std::sqrt(2.0);
}

/// Shared tiny TPC-H catalog (built once per process; tests treat it as
/// immutable).
inline const Catalog& SmallTpch() {
  static const Catalog* catalog = [] {
    TpchConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.seed = 42;
    return BuildTpchCatalog(cfg).release();
  }();
  return *catalog;
}

/// Minimal recursive-descent JSON syntax checker, enough to prove a
/// snapshot round-trips as valid JSON (scripts/check.sh re-validates the
/// bench-emitted files with a real parser). Shared by the metrics and
/// server tests.
class JsonValidator {
 public:
  static bool Valid(const std::string& text) {
    JsonValidator v(text);
    v.SkipWs();
    if (!v.Value()) return false;
    v.SkipWs();
    return v.pos_ == v.text_.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Consume(*p)) return false;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testutil
}  // namespace ppc

#endif  // PPC_TESTS_TEST_UTIL_H_
