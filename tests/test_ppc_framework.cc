#include "ppc/ppc_framework.h"

#include <gtest/gtest.h>

#include "ppc/metrics.h"
#include "test_util.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

PpcFramework::Config BaseConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

TEST(PpcFrameworkTest, RegisterValidatesTemplates) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  EXPECT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q1")).code(),
            StatusCode::kAlreadyExists);
  QueryTemplate bad{"bad", {"zzz"}, {}, {}, true};
  EXPECT_FALSE(framework.RegisterTemplate(bad).ok());
}

TEST(PpcFrameworkTest, UnknownTemplateRejected) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  EXPECT_FALSE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
}

TEST(PpcFrameworkTest, FirstQueryOptimizes) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  auto report = framework.ExecuteAtPoint("Q1", {0.5, 0.5});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().optimizer_invoked);
  EXPECT_FALSE(report.value().used_prediction);
  EXPECT_NE(report.value().executed_plan, kNullPlanId);
  EXPECT_EQ(report.value().executed_plan, report.value().optimal_plan);
  EXPECT_GT(report.value().execution_cost, 0.0);
  EXPECT_GT(report.value().optimize_micros, 0.0);
}

TEST(PpcFrameworkTest, RepeatedQueriesStartHittingCache) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(1);
  size_t predictions = 0;
  for (int i = 0; i < 300; ++i) {
    // A tight cluster of points: one optimality region.
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("Q1", x);
    ASSERT_TRUE(report.ok());
    if (report.value().used_prediction) ++predictions;
  }
  EXPECT_GT(predictions, 100u);
  EXPECT_GT(framework.plan_cache().hits(), 100u);
}

TEST(PpcFrameworkTest, PredictionsMatchOptimizerGroundTruth) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  ASSERT_TRUE(framework.RegisterTemplate(tmpl).ok());
  Optimizer oracle(&SmallTpch());
  auto prep = oracle.Prepare(tmpl).value();

  Rng rng(3);
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = 600;
  traj.scatter = 0.01;
  MetricsAccumulator metrics;
  for (const auto& x : RandomTrajectoriesWorkload(traj, &rng)) {
    auto report = framework.ExecuteAtPoint("Q1", x);
    ASSERT_TRUE(report.ok());
    if (report.value().used_prediction) {
      const PlanId truth = oracle.Optimize(prep, x).value().plan_id;
      metrics.Record(report.value().executed_plan, truth);
    }
  }
  if (metrics.answered() > 20) {
    // Q1's plan diagram has thin bands at this scale; online precision in
    // the low 80s matches the paper's harder templates.
    EXPECT_GT(metrics.Precision(), 0.75);
  }
}

TEST(PpcFrameworkTest, ExecuteInstanceNormalizesParameters) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  ASSERT_TRUE(framework.RegisterTemplate(tmpl).ok());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.4, 0.6}).value();
  auto report = framework.ExecuteInstance(instance);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().optimizer_invoked);
}

TEST(PpcFrameworkTest, ExecuteInstanceRejectsArityMismatch) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  QueryInstance bad{"Q1", {100.0}};
  EXPECT_FALSE(framework.ExecuteInstance(bad).ok());
}

TEST(PpcFrameworkTest, MultipleTemplatesCoexist) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  EXPECT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
  EXPECT_TRUE(framework.ExecuteAtPoint("Q3", {0.5, 0.5, 0.5}).ok());
  EXPECT_NE(framework.online_predictor("Q1"), nullptr);
  EXPECT_NE(framework.online_predictor("Q3"), nullptr);
  EXPECT_EQ(framework.online_predictor("Q9"), nullptr);
}

TEST(PpcFrameworkTest, PredictorDimensionsFollowTemplateDegree) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q8")).ok());
  EXPECT_EQ(
      framework.online_predictor("Q8")->config().predictor.dimensions, 6);
}

TEST(PpcFrameworkTest, RegistrySealsOnFirstExecution) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  EXPECT_FALSE(framework.sealed());
  ASSERT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
  EXPECT_TRUE(framework.sealed());
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q3")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PpcFrameworkTest, ExplicitSealBlocksRegistration) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  framework.Seal();
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q3")).code(),
            StatusCode::kFailedPrecondition);
  // Sealing is idempotent and already-registered templates keep serving.
  framework.Seal();
  EXPECT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
}

TEST(PpcFrameworkTest, NoisyExecutionTriggersNegativeFeedback) {
  // With heavy execution-cost noise, the plan-cost-predictability test
  // misfires regularly; each suspected misprediction must invoke the
  // optimizer immediately (paper Sec. IV-D negative feedback).
  auto config = BaseConfig();
  config.execution_noise_stddev = 1.0;
  PpcFramework framework(&SmallTpch(), config);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(7);
  size_t feedback = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (report.negative_feedback_triggered) {
      ++feedback;
      EXPECT_TRUE(report.optimizer_invoked);
      EXPECT_TRUE(report.used_prediction);
      EXPECT_GT(report.optimize_micros, 0.0);
    }
  }
  EXPECT_GT(feedback, 10u);
}

TEST(PpcFrameworkTest, CachedExecutionSkipsOptimizerUnlessFeedback) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(5);
  size_t cheap_queries = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {0.3 + rng.Uniform(-0.01, 0.01),
                             0.3 + rng.Uniform(-0.01, 0.01)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (report.used_prediction && !report.negative_feedback_triggered) {
      EXPECT_FALSE(report.optimizer_invoked);
      EXPECT_EQ(report.optimize_micros, 0.0);
      ++cheap_queries;
    }
  }
  EXPECT_GT(cheap_queries, 100u);
}

}  // namespace
}  // namespace ppc
