#include "ppc/ppc_framework.h"

#include <gtest/gtest.h>

#include <limits>

#include "ppc/metrics.h"
#include "test_util.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

PpcFramework::Config BaseConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

TEST(PpcFrameworkTest, RegisterValidatesTemplates) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  EXPECT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q1")).code(),
            StatusCode::kAlreadyExists);
  QueryTemplate bad{"bad", {"zzz"}, {}, {}, true};
  EXPECT_FALSE(framework.RegisterTemplate(bad).ok());
}

TEST(PpcFrameworkTest, UnknownTemplateRejected) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  EXPECT_FALSE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
}

TEST(PpcFrameworkTest, FirstQueryOptimizes) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  auto report = framework.ExecuteAtPoint("Q1", {0.5, 0.5});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().optimizer_invoked);
  EXPECT_FALSE(report.value().used_prediction);
  EXPECT_NE(report.value().executed_plan, kNullPlanId);
  EXPECT_EQ(report.value().executed_plan, report.value().optimal_plan);
  EXPECT_GT(report.value().execution_cost, 0.0);
  EXPECT_GT(report.value().optimize_micros, 0.0);
}

TEST(PpcFrameworkTest, RepeatedQueriesStartHittingCache) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(1);
  size_t predictions = 0;
  for (int i = 0; i < 300; ++i) {
    // A tight cluster of points: one optimality region.
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("Q1", x);
    ASSERT_TRUE(report.ok());
    if (report.value().used_prediction) ++predictions;
  }
  EXPECT_GT(predictions, 100u);
  EXPECT_GT(framework.plan_cache().hits(), 100u);
}

TEST(PpcFrameworkTest, PredictBatchMatchesScalarPredictAtPoint) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.1, 0.1),
                             0.5 + rng.Uniform(-0.1, 0.1)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q1", x).ok());
  }
  Rng probe(4);
  const size_t count = 64;
  std::vector<double> flat;
  for (size_t i = 0; i < count * 2; ++i) {
    flat.push_back(0.4 + 0.2 * probe.Uniform());
  }
  auto batch = framework.PredictBatch("Q1", flat.data(), count, 2);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), count);
  for (size_t p = 0; p < count; ++p) {
    auto scalar = framework.PredictAtPoint("Q1", {flat[2 * p],
                                                  flat[2 * p + 1]});
    ASSERT_TRUE(scalar.ok());
    EXPECT_EQ(batch.value()[p].plan, scalar.value().plan) << "point " << p;
    EXPECT_EQ(batch.value()[p].confidence, scalar.value().confidence)
        << "point " << p;
    EXPECT_EQ(batch.value()[p].cache_hit, scalar.value().cache_hit)
        << "point " << p;
  }
}

TEST(PpcFrameworkTest, PredictBatchValidatesAllOrNothing) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  const std::vector<double> good = {0.5, 0.5, 0.4, 0.6};
  EXPECT_EQ(framework.PredictBatch("nope", good.data(), 2, 2).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(framework.PredictBatch("Q1", good.data(), 0, 2).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong arity: Q1 has degree 2.
  EXPECT_EQ(framework.PredictBatch("Q1", good.data(), 1, 4).status().code(),
            StatusCode::kInvalidArgument);
  // One non-finite coordinate poisons the whole batch (per-point partial
  // failure is not part of the contract — DESIGN.md §13).
  const std::vector<double> bad = {0.5, 0.5,
                                   std::numeric_limits<double>::quiet_NaN(),
                                   0.6};
  EXPECT_EQ(framework.PredictBatch("Q1", bad.data(), 2, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PpcFrameworkTest, PredictionsMatchOptimizerGroundTruth) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  ASSERT_TRUE(framework.RegisterTemplate(tmpl).ok());
  Optimizer oracle(&SmallTpch());
  auto prep = oracle.Prepare(tmpl).value();

  Rng rng(3);
  TrajectoryConfig traj;
  traj.dimensions = 2;
  traj.total_points = 600;
  traj.scatter = 0.01;
  MetricsAccumulator metrics;
  for (const auto& x : RandomTrajectoriesWorkload(traj, &rng)) {
    auto report = framework.ExecuteAtPoint("Q1", x);
    ASSERT_TRUE(report.ok());
    if (report.value().used_prediction) {
      const PlanId truth = oracle.Optimize(prep, x).value().plan_id;
      metrics.Record(report.value().executed_plan, truth);
    }
  }
  if (metrics.answered() > 20) {
    // Q1's plan diagram has thin bands at this scale; online precision in
    // the low 80s matches the paper's harder templates.
    EXPECT_GT(metrics.Precision(), 0.75);
  }
}

TEST(PpcFrameworkTest, ExecuteInstanceNormalizesParameters) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  ASSERT_TRUE(framework.RegisterTemplate(tmpl).ok());
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.4, 0.6}).value();
  auto report = framework.ExecuteInstance(instance);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().optimizer_invoked);
}

TEST(PpcFrameworkTest, ExecuteInstanceRejectsArityMismatch) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  QueryInstance bad{"Q1", {100.0}};
  EXPECT_FALSE(framework.ExecuteInstance(bad).ok());
}

TEST(PpcFrameworkTest, MultipleTemplatesCoexist) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  EXPECT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
  EXPECT_TRUE(framework.ExecuteAtPoint("Q3", {0.5, 0.5, 0.5}).ok());
  EXPECT_NE(framework.online_predictor("Q1"), nullptr);
  EXPECT_NE(framework.online_predictor("Q3"), nullptr);
  EXPECT_EQ(framework.online_predictor("Q9"), nullptr);
}

TEST(PpcFrameworkTest, PredictorDimensionsFollowTemplateDegree) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q8")).ok());
  EXPECT_EQ(
      framework.online_predictor("Q8")->config().predictor.dimensions, 6);
}

TEST(PpcFrameworkTest, RegistrySealsOnFirstExecution) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  EXPECT_FALSE(framework.sealed());
  ASSERT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
  EXPECT_TRUE(framework.sealed());
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q3")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PpcFrameworkTest, ExplicitSealBlocksRegistration) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  framework.Seal();
  EXPECT_EQ(framework.RegisterTemplate(EvaluationTemplate("Q3")).code(),
            StatusCode::kFailedPrecondition);
  // Sealing is idempotent and already-registered templates keep serving.
  framework.Seal();
  EXPECT_TRUE(framework.ExecuteAtPoint("Q1", {0.5, 0.5}).ok());
}

TEST(PpcFrameworkTest, NoisyExecutionTriggersNegativeFeedback) {
  // With heavy execution-cost noise, the plan-cost-predictability test
  // misfires regularly; each suspected misprediction must invoke the
  // optimizer immediately (paper Sec. IV-D negative feedback).
  auto config = BaseConfig();
  config.execution_noise_stddev = 1.0;
  PpcFramework framework(&SmallTpch(), config);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(7);
  size_t feedback = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (report.negative_feedback_triggered) {
      ++feedback;
      EXPECT_TRUE(report.optimizer_invoked);
      EXPECT_TRUE(report.used_prediction);
      EXPECT_GT(report.optimize_micros, 0.0);
    }
  }
  EXPECT_GT(feedback, 10u);
}

TEST(PpcFrameworkTest, EvictedPredictionIsScoredAgainstGroundTruth) {
  // Regression: a non-NULL prediction whose plan was evicted from the
  // cache used to fall through to the optimizer without ever reaching the
  // tracker, so the precision/recall windows overcounted by omission.
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q1", x).ok());
  }

  size_t evicted_events = 0;
  for (int i = 0; i < 20 && evicted_events == 0; ++i) {
    // Drop every cached plan; the predictor still names one.
    framework.plan_cache().Clear();
    const auto before = framework.online_predictor("Q1")->GetStats();
    std::vector<double> x = {0.5 + rng.Uniform(-0.005, 0.005),
                             0.5 + rng.Uniform(-0.005, 0.005)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (!report.prediction_evicted) continue;  // NULL prediction, retry
    ++evicted_events;
    EXPECT_TRUE(report.optimizer_invoked);
    EXPECT_FALSE(report.used_prediction);
    EXPECT_FALSE(report.cache_hit);
    // The prediction's exact correctness reached the tracker.
    const auto after = framework.online_predictor("Q1")->GetStats();
    EXPECT_EQ(after.feedback_positive + after.feedback_negative,
              before.feedback_positive + before.feedback_negative + 1);
  }
  ASSERT_GT(evicted_events, 0u);
  const auto snap = framework.MetricsSnapshot().registry;
  uint64_t evicted_counter = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "framework.predictions.evicted") evicted_counter = value;
  }
  EXPECT_EQ(evicted_counter, evicted_events);
}

TEST(PpcFrameworkTest, DeterministicAcrossInstancesWithSameConfig) {
  // Regression: per-template seeds used std::hash<std::string>, which is
  // not stable across standard libraries. With the FNV-1a derivation two
  // identically configured frameworks must replay a workload identically.
  auto run = [](std::vector<PpcFramework::QueryReport>* out) {
    PpcFramework framework(&SmallTpch(), BaseConfig());
    ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
    ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q3")).ok());
    Rng rng(77);
    for (int i = 0; i < 150; ++i) {
      std::vector<double> q1 = {0.5 + rng.Uniform(-0.03, 0.03),
                                0.5 + rng.Uniform(-0.03, 0.03)};
      out->push_back(framework.ExecuteAtPoint("Q1", q1).value());
      std::vector<double> q3 = {0.45 + rng.Uniform(-0.03, 0.03),
                                0.45 + rng.Uniform(-0.03, 0.03),
                                0.45 + rng.Uniform(-0.03, 0.03)};
      out->push_back(framework.ExecuteAtPoint("Q3", q3).value());
    }
  };
  std::vector<PpcFramework::QueryReport> first, second;
  run(&first);
  run(&second);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].executed_plan, second[i].executed_plan) << i;
    EXPECT_EQ(first[i].optimal_plan, second[i].optimal_plan) << i;
    EXPECT_EQ(first[i].used_prediction, second[i].used_prediction) << i;
    EXPECT_EQ(first[i].cache_hit, second[i].cache_hit) << i;
    EXPECT_EQ(first[i].optimizer_invoked, second[i].optimizer_invoked) << i;
    EXPECT_EQ(first[i].prediction_evicted, second[i].prediction_evicted)
        << i;
    EXPECT_EQ(first[i].negative_feedback_triggered,
              second[i].negative_feedback_triggered)
        << i;
    EXPECT_EQ(first[i].execution_cost, second[i].execution_cost) << i;
  }
}

TEST(PpcFrameworkTest, CorrectivePutCarriesTrackedPrecisionScore) {
  // Regression: plans re-inserted by the optimizer (negative feedback or
  // plain optimize path) used to keep Put's default precision rank of 1.0
  // even when the tracker held a degraded estimate, so precision-based
  // eviction mis-prioritized freshly corrected plans.
  auto config = BaseConfig();
  config.execution_noise_stddev = 1.0;  // cost test misfires regularly
  config.online.mean_invocation_probability = 0.2;
  PpcFramework framework(&SmallTpch(), config);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(13);
  size_t checks = 0, degraded_checks = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (!report.optimizer_invoked) continue;
    // The optimizer just Put report.optimal_plan; its cache rank must be
    // the tracker's current estimate, not the overwrite default.
    const double tracked =
        framework.online_predictor("Q1")->PlanPrecision(report.optimal_plan);
    auto score = framework.plan_cache().PrecisionScore(report.optimal_plan);
    ASSERT_TRUE(score.has_value());
    EXPECT_DOUBLE_EQ(*score, tracked);
    ++checks;
    if (tracked < 1.0) ++degraded_checks;
  }
  EXPECT_GT(checks, 10u);
  // The assertion only has teeth when the tracked estimate differs from
  // the default; the noisy workload must have produced such cases.
  EXPECT_GT(degraded_checks, 0u);
}

TEST(PpcFrameworkTest, CachedExecutionSkipsOptimizerUnlessFeedback) {
  PpcFramework framework(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(5);
  size_t cheap_queries = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {0.3 + rng.Uniform(-0.01, 0.01),
                             0.3 + rng.Uniform(-0.01, 0.01)};
    auto report = framework.ExecuteAtPoint("Q1", x).value();
    if (report.used_prediction && !report.negative_feedback_triggered) {
      EXPECT_FALSE(report.optimizer_invoked);
      EXPECT_EQ(report.optimize_micros, 0.0);
      ++cheap_queries;
    }
  }
  EXPECT_GT(cheap_queries, 100u);
}

}  // namespace
}  // namespace ppc
