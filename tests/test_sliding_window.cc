#include "ppc/sliding_window.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

TEST(SlidingWindowTest, EmptyWindowIsZero) {
  SlidingWindowEstimator w(5);
  EXPECT_EQ(w.Value(), 0.0);
  EXPECT_EQ(w.Count(), 0u);
  EXPECT_FALSE(w.Full());
}

TEST(SlidingWindowTest, TracksProportion) {
  SlidingWindowEstimator w(10);
  for (int i = 0; i < 7; ++i) w.Record(true);
  for (int i = 0; i < 3; ++i) w.Record(false);
  EXPECT_TRUE(w.Full());
  EXPECT_NEAR(w.Value(), 0.7, 1e-12);
}

TEST(SlidingWindowTest, OldEntriesEvicted) {
  SlidingWindowEstimator w(4);
  w.Record(true);
  w.Record(true);
  w.Record(true);
  w.Record(true);
  EXPECT_EQ(w.Value(), 1.0);
  w.Record(false);
  w.Record(false);
  // Window is now {true, true, false, false}.
  EXPECT_NEAR(w.Value(), 0.5, 1e-12);
  EXPECT_EQ(w.Count(), 4u);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindowEstimator w(4);
  w.Record(true);
  w.Clear();
  EXPECT_EQ(w.Count(), 0u);
  EXPECT_EQ(w.Value(), 0.0);
}

TEST(PrecisionRecallTrackerTest, RecallIsBetaTimesPrecision) {
  PrecisionRecallTracker tracker(100);
  // 10 predictions: 6 made (4 correct), 4 NULL.
  for (int i = 0; i < 4; ++i) tracker.RecordPrediction(1, true, true);
  for (int i = 0; i < 2; ++i) tracker.RecordPrediction(1, true, false);
  for (int i = 0; i < 4; ++i) {
    tracker.RecordPrediction(kNullPlanId, false, false);
  }
  EXPECT_NEAR(tracker.Beta(), 0.6, 1e-12);
  EXPECT_NEAR(tracker.TemplatePrecision(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(tracker.TemplateRecall(),
              tracker.Beta() * tracker.TemplatePrecision(), 1e-12);
  EXPECT_NEAR(tracker.TemplateRecall(), 0.4, 1e-12);
}

TEST(PrecisionRecallTrackerTest, PerPlanPrecisionIsolated) {
  PrecisionRecallTracker tracker(100);
  tracker.RecordPrediction(1, true, true);
  tracker.RecordPrediction(1, true, true);
  tracker.RecordPrediction(2, true, false);
  EXPECT_EQ(tracker.PlanPrecision(1), 1.0);
  EXPECT_EQ(tracker.PlanPrecision(2), 0.0);
  // Unknown plans default to 1.0 (no evidence against them).
  EXPECT_EQ(tracker.PlanPrecision(999), 1.0);
}

TEST(PrecisionRecallTrackerTest, PrecisionBelowRequiresFullWindow) {
  PrecisionRecallTracker tracker(4);
  tracker.RecordPrediction(1, true, false);
  tracker.RecordPrediction(1, true, false);
  // Only 2 of 4 window slots filled: no drift signal yet.
  EXPECT_FALSE(tracker.PrecisionBelow(0.5));
  tracker.RecordPrediction(1, true, false);
  tracker.RecordPrediction(1, true, false);
  EXPECT_TRUE(tracker.PrecisionBelow(0.5));
}

TEST(PrecisionRecallTrackerTest, RecoversAfterGoodStreak) {
  PrecisionRecallTracker tracker(4);
  for (int i = 0; i < 4; ++i) tracker.RecordPrediction(1, true, false);
  EXPECT_TRUE(tracker.PrecisionBelow(0.5));
  for (int i = 0; i < 4; ++i) tracker.RecordPrediction(1, true, true);
  EXPECT_FALSE(tracker.PrecisionBelow(0.5));
}

TEST(PrecisionRecallTrackerTest, ClearResetsEverything) {
  PrecisionRecallTracker tracker(10);
  tracker.RecordPrediction(1, true, true);
  tracker.Clear();
  EXPECT_EQ(tracker.TemplatePrecision(), 0.0);
  EXPECT_EQ(tracker.Beta(), 0.0);
  EXPECT_EQ(tracker.PlanPrecision(1), 1.0);
}

TEST(PrecisionRecallTrackerTest, NullPredictionsDoNotTouchPrecision) {
  PrecisionRecallTracker tracker(10);
  tracker.RecordPrediction(1, true, true);
  for (int i = 0; i < 5; ++i) {
    tracker.RecordPrediction(kNullPlanId, false, false);
  }
  EXPECT_EQ(tracker.TemplatePrecision(), 1.0);
  EXPECT_NEAR(tracker.Beta(), 1.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace ppc
