#include "workload/template_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "optimizer/optimizer.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

TEST(TemplateParserTest, MinimalSingleTable) {
  auto result = ParseQueryTemplate("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tables, (std::vector<std::string>{"orders"}));
  EXPECT_TRUE(result.value().aggregate);
  EXPECT_TRUE(result.value().joins.empty());
  EXPECT_TRUE(result.value().params.empty());
}

TEST(TemplateParserTest, StarSelectsNonAggregating) {
  auto result = ParseQueryTemplate("SELECT * FROM orders");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().aggregate);
}

TEST(TemplateParserTest, JoinsAndParams) {
  auto result = ParseQueryTemplate(
      "SELECT COUNT(*) FROM supplier, lineitem "
      "WHERE supplier.s_suppkey = lineitem.l_suppkey "
      "AND supplier.s_date <= $0 AND lineitem.l_partkey <= $1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryTemplate& tmpl = result.value();
  ASSERT_EQ(tmpl.joins.size(), 1u);
  EXPECT_EQ(tmpl.joins[0].left_table, "supplier");
  EXPECT_EQ(tmpl.joins[0].right_column, "l_suppkey");
  ASSERT_EQ(tmpl.params.size(), 2u);
  EXPECT_EQ(tmpl.params[0].column, "s_date");
  EXPECT_EQ(tmpl.params[1].column, "l_partkey");
}

TEST(TemplateParserTest, CaseInsensitiveKeywords) {
  auto result = ParseQueryTemplate(
      "select count(*) from orders where orders.o_date <= $0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().ParameterDegree(), 1);
}

TEST(TemplateParserTest, WhitespaceTolerant) {
  auto result = ParseQueryTemplate(
      "  SELECT   COUNT( * )\n FROM  orders ,  lineitem\n"
      "WHERE orders.o_orderkey=lineitem.l_orderkey AND "
      "orders.o_date<=$0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tables.size(), 2u);
}

TEST(TemplateParserTest, RoundTripsAllEvaluationTemplates) {
  // Parse(ToSql(t)) must reproduce t exactly.
  for (const QueryTemplate& tmpl : EvaluationTemplates()) {
    auto result = ParseQueryTemplate(tmpl.ToSql(), nullptr, tmpl.name);
    ASSERT_TRUE(result.ok())
        << tmpl.name << ": " << result.status().ToString();
    const QueryTemplate& parsed = result.value();
    EXPECT_EQ(parsed.tables, tmpl.tables) << tmpl.name;
    EXPECT_EQ(parsed.params.size(), tmpl.params.size()) << tmpl.name;
    EXPECT_EQ(parsed.joins.size(), tmpl.joins.size()) << tmpl.name;
    EXPECT_EQ(parsed.aggregate, tmpl.aggregate) << tmpl.name;
    EXPECT_EQ(parsed.ToSql(), tmpl.ToSql()) << tmpl.name;
  }
}

TEST(TemplateParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(ParseQueryTemplate("SELECT COUNT(*)").ok());
}

TEST(TemplateParserTest, RejectsBadSelectList) {
  EXPECT_FALSE(ParseQueryTemplate("SELECT SUM(x) FROM orders").ok());
}

TEST(TemplateParserTest, RejectsUnknownOperator) {
  EXPECT_FALSE(ParseQueryTemplate(
                   "SELECT COUNT(*) FROM orders WHERE orders.o_date < $0")
                   .ok());
}

TEST(TemplateParserTest, RejectsNonDenseParameterNumbers) {
  EXPECT_FALSE(ParseQueryTemplate(
                   "SELECT COUNT(*) FROM orders WHERE orders.o_date <= $1")
                   .ok());
  EXPECT_FALSE(
      ParseQueryTemplate("SELECT COUNT(*) FROM orders, lineitem WHERE "
                         "orders.o_date <= $0 AND lineitem.l_date <= $0")
          .ok());
}

TEST(TemplateParserTest, RejectsJoinAgainstMissingTable) {
  EXPECT_FALSE(
      ParseQueryTemplate("SELECT COUNT(*) FROM orders WHERE "
                         "orders.o_orderkey = lineitem.l_orderkey")
          .ok());
}

TEST(TemplateParserTest, RejectsParamOnMissingTable) {
  EXPECT_FALSE(ParseQueryTemplate(
                   "SELECT COUNT(*) FROM orders WHERE lineitem.l_date <= $0")
                   .ok());
}

TEST(TemplateParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseQueryTemplate(
                   "SELECT COUNT(*) FROM orders WHERE orders.o_date <= $0 "
                   "ORDER BY 1")
                   .ok());
}

TEST(TemplateParserTest, CatalogValidationAcceptsRealSchema) {
  auto result = ParseQueryTemplate(
      "SELECT COUNT(*) FROM supplier, lineitem "
      "WHERE supplier.s_suppkey = lineitem.l_suppkey "
      "AND supplier.s_date <= $0",
      &SmallTpch());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(TemplateParserTest, CatalogValidationRejectsUnknownTable) {
  auto result =
      ParseQueryTemplate("SELECT COUNT(*) FROM nonexistent", &SmallTpch());
  EXPECT_FALSE(result.ok());
}

TEST(TemplateParserTest, CatalogValidationRejectsUnknownColumn) {
  auto result = ParseQueryTemplate(
      "SELECT COUNT(*) FROM orders WHERE orders.bogus <= $0", &SmallTpch());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TemplateParserTest, ParsedTemplateOptimizes) {
  // End to end: parse -> prepare -> optimize.
  auto tmpl = ParseQueryTemplate(
      "SELECT COUNT(*) FROM orders, lineitem "
      "WHERE orders.o_orderkey = lineitem.l_orderkey "
      "AND orders.o_date <= $0 AND lineitem.l_quantity <= $1",
      &SmallTpch(), "parsed_q2");
  ASSERT_TRUE(tmpl.ok());
  Optimizer optimizer(&SmallTpch());
  auto result = optimizer.Optimize(tmpl.value(), {0.4, 0.6});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().estimated_cost, 0.0);
}

}  // namespace
}  // namespace ppc
