#include "server/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/failpoints.h"
#include "server/server.h"
#include "server/wire_protocol.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

/// Regression tests for the pipelined-id / reconnect interaction
/// (DESIGN.md §14). The defect being pinned down: a pipelined id sent on
/// connection N whose stream was then lost could be Wait()ed after a
/// synchronous call transparently reconnected — and the Wait would read
/// the *new* connection for a response that can only ever have existed
/// on the old one. Under the default infinite deadline that was a
/// permanent hang; ids now carry the connection generation they were
/// sent under and Wait() on a dead generation fails immediately.
class ClientReconnectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    framework_ = std::make_unique<PpcFramework>(&SmallTpch(),
                                                PpcFramework::Config{});
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q1")).ok());
    server_ = std::make_unique<PlanServer>(framework_.get(),
                                           PlanServer::Config{});
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    failpoints::DisarmAll();
    if (server_ != nullptr) server_->Stop();
  }

  Status Connect(PpcClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  /// Spins until the server-side counter reaches `at_least`, so tests
  /// can arm a failpoint knowing the in-process server has finished its
  /// own recv/send for everything already on the wire.
  void AwaitCounter(const std::string& name, uint64_t at_least) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (framework_->metrics().counter(name).value() < at_least) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "counter " << name << " never reached " << at_least;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::unique_ptr<PpcFramework> framework_;
  std::unique_ptr<PlanServer> server_;
};

TEST_F(ClientReconnectTest, WaitOnIdFromLostConnectionFailsFastNotForever) {
  PpcClient::Options options;
  options.call_deadline_ms = 0;  // infinite — the hang-forever setup
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  PpcClient client(options);
  ASSERT_TRUE(Connect(&client).ok());

  auto id = client.SendPing();
  ASSERT_TRUE(id.ok());

  // The stream dies after the send (here: detected loss, which closes
  // the client side exactly like a failed read does)...
  client.Close();
  ASSERT_FALSE(client.connected());

  // ...and a synchronous call transparently reconnects.
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.connected());
  ASSERT_GE(client.transport_stats().reconnects, 1u);

  // The old id's response can never arrive on the new stream. Pre-fix,
  // this Wait read the new connection under an infinite deadline and
  // hung forever; now it must fail immediately.
  const auto start = std::chrono::steady_clock::now();
  auto response = client.Wait(id.value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
      << response.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);

  // The client itself is still healthy on the new connection.
  auto fresh = client.SendPing();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(client.Wait(fresh.value()).ok());
}

TEST_F(ClientReconnectTest, FailpointSeveredReadLosesOnlyThatId) {
  PpcClient::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  PpcClient client(options);
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Ping().ok());

  auto id = client.SendPing();
  ASSERT_TRUE(id.ok());
  // Wait until the in-process server has fully handled the ping (its
  // recv and send are done), so the armed receive fault below can only
  // fire on the client's read.
  AwaitCounter("server.requests.ping", 2);

  failpoints::Config fault;
  fault.kind = failpoints::Kind::kError;
  fault.budget = 1;
  failpoints::Arm(failpoints::Site::kRecv, fault);
  auto lost = client.Wait(id.value());
  failpoints::Disarm(failpoints::Site::kRecv);
  EXPECT_FALSE(lost.ok());
  EXPECT_FALSE(client.connected()) << "a failed read must close the stream";

  // Waiting again on the same id fails fast — the id is gone, not
  // pending (pre-fix this was reconnect-and-hang territory).
  EXPECT_FALSE(client.Wait(id.value()).ok());

  // The next synchronous call reconnects and the connection serves
  // pipelined traffic again.
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_GE(client.transport_stats().reconnects, 1u);
  auto fresh = client.SendPing();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value(), id.value())
      << "ids must keep increasing across reconnects";
  EXPECT_TRUE(client.Wait(fresh.value()).ok());
}

TEST_F(ClientReconnectTest, IdsStrictlyIncreaseAcrossRepeatedReconnects) {
  PpcClient::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  PpcClient client(options);
  ASSERT_TRUE(Connect(&client).ok());

  uint64_t last_id = 0;
  for (int round = 0; round < 5; ++round) {
    auto id = client.SendPing();
    ASSERT_TRUE(id.ok());
    EXPECT_GT(id.value(), last_id) << "round " << round;
    last_id = id.value();
    // Lose the connection with the id outstanding; the reconnect under
    // the next round's traffic must never mint an id the old stream
    // could still answer.
    client.Close();
    ASSERT_TRUE(client.Ping().ok());
    EXPECT_EQ(client.Wait(id.value()).status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_GE(client.transport_stats().reconnects, 5u);
}

TEST_F(ClientReconnectTest, WaitOnANeverSentIdIsAnError) {
  PpcClient client;
  ASSERT_TRUE(Connect(&client).ok());
  // Pre-fix this read the socket until the (infinite) deadline; an id
  // this client never issued must be a fast, explicit error.
  auto response = client.Wait(424242);
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ClientReconnectTest, ParkedResponsesSurviveConnectionLoss) {
  PpcClient client;
  ASSERT_TRUE(Connect(&client).ok());
  auto first = client.SendPing();
  auto second = client.SendPing();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Collecting the second response first parks the first one.
  ASSERT_TRUE(client.Wait(second.value()).ok());

  // The parked response was received whole before the loss — it still
  // answers its Wait() even though the stream is gone.
  client.Close();
  auto parked = client.Wait(first.value());
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();
  EXPECT_EQ(parked.value().id, first.value());

  // But only once.
  EXPECT_FALSE(client.Wait(first.value()).ok());
}

}  // namespace
}  // namespace ppc
