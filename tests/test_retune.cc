// Tests for the adaptive LSH retuning subsystem (DESIGN.md §17): the
// retained-point reservoir, quantile range fitting, the drift-triggered
// RetuneController, and the warm generation handoff — including the
// TSan-targeted concurrency tests (names contain "Generation"/"Retune")
// and a chaos variant with failpoints armed during refits.

#include "ppc/retune/retune_controller.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ppc/ppc_framework.h"
#include "ppc/retune/reservoir.h"
#include "server/failpoints.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

LabeledPoint MakePoint(std::vector<double> coords, PlanId plan) {
  return LabeledPoint{std::move(coords), plan, 1.0};
}

TEST(RetainedPointReservoirTest, KeepsEverythingBelowCapacity) {
  RetainedPointReservoir reservoir(16, 1);
  for (int i = 0; i < 10; ++i) {
    reservoir.Add(MakePoint({i * 0.1, 0.5}, 1));
  }
  EXPECT_EQ(reservoir.size(), 10u);
  EXPECT_EQ(reservoir.total_observed(), 10u);
  EXPECT_EQ(reservoir.SnapshotPoints().size(), 10u);
}

TEST(RetainedPointReservoirTest, StaysBoundedPastCapacity) {
  RetainedPointReservoir reservoir(32, 2);
  for (int i = 0; i < 500; ++i) {
    reservoir.Add(MakePoint({0.5, 0.5}, 1));
  }
  EXPECT_EQ(reservoir.size(), 32u);
  EXPECT_EQ(reservoir.capacity(), 32u);
  EXPECT_EQ(reservoir.total_observed(), 500u);
}

TEST(RetainedPointReservoirTest, BiasesTowardRecentObservations) {
  // 64 old-regime points, then 256 new-regime points: an old point's
  // survival is (1 - 1/64)^256 ~ e^-4, so the snapshot must be
  // overwhelmingly new-regime — the property that keeps a refit from
  // anchoring to a dead workload.
  RetainedPointReservoir reservoir(64, 3);
  for (int i = 0; i < 64; ++i) reservoir.Add(MakePoint({0.1, 0.1}, 1));
  for (int i = 0; i < 256; ++i) reservoir.Add(MakePoint({0.9, 0.9}, 2));
  size_t old_regime = 0, new_regime = 0;
  for (const LabeledPoint& p : reservoir.SnapshotPoints()) {
    (p.plan == 1 ? old_regime : new_regime) += 1;
  }
  EXPECT_EQ(old_regime + new_regime, 64u);
  EXPECT_LT(old_regime, 16u);
  EXPECT_GT(new_regime, 48u);
}

TEST(RetainedPointReservoirTest, SeededRunsAreReproducible) {
  RetainedPointReservoir a(16, 7);
  RetainedPointReservoir b(16, 7);
  for (int i = 0; i < 200; ++i) {
    const LabeledPoint p = MakePoint({i * 0.004, 1.0 - i * 0.004}, i % 3);
    a.Add(p);
    b.Add(p);
  }
  const auto pa = a.SnapshotPoints();
  const auto pb = b.SnapshotPoints();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].coords, pb[i].coords);
    EXPECT_EQ(pa[i].plan, pb[i].plan);
  }
}

TEST(FitRangesTest, ExactEndpointsWithoutQuantileOrMargin) {
  std::vector<LabeledPoint> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(MakePoint({i / 100.0, 0.5 + i / 1000.0}, 1));
  }
  RetuneOptions options;
  options.range_fit_quantile = 0.0;
  options.range_margin = 0.0;
  options.min_range_span = 1e-6;
  std::vector<double> lo, hi;
  RetuneController::FitRanges(points, options, &lo, &hi);
  ASSERT_EQ(lo.size(), 2u);
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 0.99);
  EXPECT_DOUBLE_EQ(lo[1], 0.5);
  EXPECT_DOUBLE_EQ(hi[1], 0.599);
}

TEST(FitRangesTest, QuantileFitIgnoresStragglers) {
  // 96 points concentrated in [0.45, 0.55] plus 4 old-regime stragglers
  // at the domain corners: a min/max fit would span [0, 1]; the 5%
  // quantile fit must stay near the concentration.
  std::vector<LabeledPoint> points;
  for (int i = 0; i < 96; ++i) {
    points.push_back(MakePoint({0.45 + (i % 32) * 0.1 / 32.0}, 1));
  }
  points.push_back(MakePoint({0.0}, 2));
  points.push_back(MakePoint({0.0}, 2));
  points.push_back(MakePoint({1.0}, 2));
  points.push_back(MakePoint({1.0}, 2));
  RetuneOptions options;  // defaults: q = 0.05, margin = 0.10
  std::vector<double> lo, hi;
  RetuneController::FitRanges(points, options, &lo, &hi);
  ASSERT_EQ(lo.size(), 1u);
  EXPECT_GT(lo[0], 0.3);
  EXPECT_LT(hi[0], 0.7);
  EXPECT_LT(lo[0], 0.45);  // margin keeps headroom below the mass
  EXPECT_GT(hi[0], 0.55);
}

TEST(FitRangesTest, PointMassGetsMinimumSpan) {
  std::vector<LabeledPoint> points(50, MakePoint({0.5, 0.25}, 1));
  RetuneOptions options;
  options.min_range_span = 0.01;
  std::vector<double> lo, hi;
  RetuneController::FitRanges(points, options, &lo, &hi);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GE(hi[d] - lo[d], 0.01);
  }
  EXPECT_NEAR(0.5 * (lo[0] + hi[0]), 0.5, 1e-12);
  EXPECT_NEAR(0.5 * (lo[1] + hi[1]), 0.25, 1e-12);
}

uint64_t CounterValue(const MetricsRegistry::Snapshot& snap,
                      const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

PpcFramework::Config RetuneConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  cfg.retune.enabled = true;
  cfg.retune.precision_trigger = 0.0;  // per-test below
  cfg.retune.recall_trigger = 0.0;
  cfg.retune.min_reservoir_points = 16;
  cfg.retune.cooldown_observations = 50;
  return cfg;
}

// Drives clustered EXECUTE traffic around `center`.
void Drive(PpcFramework* framework, const std::string& tmpl, size_t dims,
           double center, int queries, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < queries; ++i) {
    std::vector<double> x(dims);
    for (double& v : x) v = center + rng.Uniform(-0.02, 0.02);
    ASSERT_TRUE(framework->ExecuteAtPoint(tmpl, x).ok());
  }
}

TEST(RetuneControllerTest, ForceRetuneInstallsNewGeneration) {
  PpcFramework framework(&SmallTpch(), RetuneConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Drive(&framework, "Q1", 2, 0.5, 200, 1);
  ASSERT_EQ(framework.online_predictor("Q1")->predictor().transform_generation(),
            0u);

  ASSERT_TRUE(framework.retune_controller()->ForceRetune("Q1"));
  framework.retune_controller()->WaitIdle();

  const auto online = framework.online_predictor("Q1");
  ASSERT_NE(online, nullptr);
  EXPECT_EQ(online->predictor().transform_generation(), 1u);
  // The new generation started warm: back-filled from the reservoir, it
  // still answers confidently inside the trained cluster.
  Rng probe(5);
  int nonnull = 0;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {0.5 + probe.Uniform(-0.02, 0.02),
                                   0.5 + probe.Uniform(-0.02, 0.02)};
    auto report = framework.PredictAtPoint("Q1", x);
    ASSERT_TRUE(report.ok());
    if (report.value().plan != kNullPlanId) ++nonnull;
  }
  EXPECT_GT(nonnull, 25);

  const auto snap = framework.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.refits"), 1u);
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.generations"), 1u);
  EXPECT_GE(CounterValue(snap.registry, "server.retune.points_backfilled"),
            16u);
  ASSERT_EQ(snap.templates.size(), 1u);
  EXPECT_EQ(snap.templates[0].generation, 1u);
}

TEST(RetuneControllerTest, RefitSkippedWhenReservoirSparse) {
  PpcFramework::Config cfg = RetuneConfig();
  cfg.retune.min_reservoir_points = 100000;  // unreachable
  PpcFramework framework(&SmallTpch(), cfg);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Drive(&framework, "Q1", 2, 0.5, 50, 2);
  ASSERT_TRUE(framework.retune_controller()->ForceRetune("Q1"));
  framework.retune_controller()->WaitIdle();
  EXPECT_EQ(framework.online_predictor("Q1")->predictor().transform_generation(),
            0u);
  const auto snap = framework.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.skipped"), 1u);
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.refits"), 0u);
}

TEST(RetuneControllerTest, RecallCollapseTriggersRefit) {
  // Train on one tight cluster, then move the workload onto a plan
  // boundary (Q1's optimal plan flips near the diagonal point t ~ 0.055
  // at this catalog scale). Straddling the boundary keeps the per-bucket
  // densities mixed between the two plans, the confidence gate turns
  // predictions NULL, the windowed recall collapses, and the controller
  // must notice and refit toward the new distribution without any manual
  // ForceRetune. (A second cluster in *unambiguous* territory would not do
  // it — the predictor re-learns such a cluster from a single optimizer
  // call, so recall barely dips.)
  PpcFramework::Config cfg = RetuneConfig();
  cfg.retune.recall_trigger = 0.5;
  PpcFramework framework(&SmallTpch(), cfg);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Drive(&framework, "Q1", 2, 0.5, 250, 3);
  Drive(&framework, "Q1", 2, 0.055, 300, 4);
  framework.retune_controller()->WaitIdle();

  const auto snap = framework.MetricsSnapshot();
  EXPECT_GE(CounterValue(snap.registry, "server.retune.triggers"), 1u);
  EXPECT_GE(CounterValue(snap.registry, "server.retune.refits"), 1u);
  EXPECT_GE(
      framework.online_predictor("Q1")->predictor().transform_generation(),
      1u);
}

// The TSan-targeted handoff test: serving threads hammer PREDICT and
// EXECUTE while generations are repeatedly installed underneath them. No
// request may fail, observe a missing predictor, or lose a counter
// update; the serving generation must advance monotonically.
TEST(GenerationHandoffConcurrencyTest, ServingNeverBlocksOrTearsDuringHandoff) {
  PpcFramework::Config cfg = RetuneConfig();
  cfg.retune.min_reservoir_points = 8;
  PpcFramework framework(&SmallTpch(), cfg);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  framework.Seal();
  Drive(&framework, "Q1", 2, 0.5, 100, 5);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 300;
  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> violations{0};

  // Monitor: the serving snapshot must always exist and its generation
  // must never move backwards.
  std::thread monitor([&] {
    uint32_t last_generation = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto online = framework.online_predictor("Q1");
      if (online == nullptr) {
        violations.fetch_add(1);
        continue;
      }
      const uint32_t generation = online->predictor().transform_generation();
      if (generation < last_generation) violations.fetch_add(1);
      last_generation = generation;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(600 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                                       0.5 + rng.Uniform(-0.02, 0.02)};
        if (i % 3 == 0) {
          auto predict = framework.PredictAtPoint("Q1", x);
          if (!predict.ok()) failures.fetch_add(1);
        } else {
          auto report = framework.ExecuteAtPoint("Q1", x);
          if (!report.ok()) {
            failures.fetch_add(1);
          } else if (report.value().executed_plan == kNullPlanId) {
            // A half-built generation would serve from empty histograms
            // and could never name an executed plan.
            violations.fetch_add(1);
          }
        }
      }
    });
  }

  // Repeatedly force handoffs while the workers run.
  int installs = 0;
  for (int round = 0; round < 8; ++round) {
    if (framework.retune_controller()->ForceRetune("Q1")) {
      framework.retune_controller()->WaitIdle();
      ++installs;
    }
    std::this_thread::yield();
  }

  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  monitor.join();
  framework.retune_controller()->WaitIdle();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(installs, 0);

  // No lost updates across handoffs: every EXECUTE was counted exactly
  // once, wherever the generation flip landed relative to it (PREDICTs
  // are reads, not queries). Each thread executes 2 of every 3 requests.
  const auto snap = framework.MetricsSnapshot();
  const uint64_t executes =
      100 + static_cast<uint64_t>(kThreads) * (kQueriesPerThread * 2 / 3);
  EXPECT_EQ(CounterValue(snap.registry, "framework.queries"), executes);
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.refits"),
            static_cast<uint64_t>(installs));
  EXPECT_EQ(
      framework.online_predictor("Q1")->predictor().transform_generation(),
      static_cast<uint32_t>(installs));
}

// Chaos variant: failpoints armed at the retune site while serving runs.
// Stalls hold the handoff window open mid-refit; errors abort refits,
// which must leave the serving generation untouched and accounted for.
TEST(GenerationHandoffChaosTest, ChaosRefitFaultsNeverDisturbServing) {
  failpoints::DisarmAll();
  PpcFramework::Config cfg = RetuneConfig();
  cfg.retune.min_reservoir_points = 8;
  PpcFramework framework(&SmallTpch(), cfg);
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  framework.Seal();
  Drive(&framework, "Q1", 2, 0.5, 100, 6);

  // Phase one: every other refit stalls 20ms at the site, holding the
  // handoff window open while the serving threads keep hammering.
  failpoints::Config fault;
  fault.kind = failpoints::Kind::kStallMs;
  fault.arg = 20;
  fault.every = 2;
  failpoints::Arm(failpoints::Site::kRetune, fault);

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(700 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                                       0.5 + rng.Uniform(-0.02, 0.02)};
        if (!framework.ExecuteAtPoint("Q1", x).ok()) failures.fetch_add(1);
      }
    });
  }

  int forced = 0;
  for (int round = 0; round < 4; ++round) {
    if (framework.retune_controller()->ForceRetune("Q1")) ++forced;
    framework.retune_controller()->WaitIdle();
  }
  // Now switch the site to hard errors: refits abort, serving continues,
  // and the generation must not move.
  const uint32_t generation_before_errors =
      framework.online_predictor("Q1")->predictor().transform_generation();
  fault.kind = failpoints::Kind::kError;
  fault.every = 1;
  failpoints::Arm(failpoints::Site::kRetune, fault);
  int aborted_attempts = 0;
  for (int round = 0; round < 3; ++round) {
    if (framework.retune_controller()->ForceRetune("Q1")) ++aborted_attempts;
    framework.retune_controller()->WaitIdle();
  }

  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  failpoints::DisarmAll();

  EXPECT_EQ(failures.load(), 0u);
  const auto online = framework.online_predictor("Q1");
  ASSERT_NE(online, nullptr);
  EXPECT_EQ(online->predictor().transform_generation(),
            generation_before_errors);
  const auto snap = framework.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.aborted"),
            static_cast<uint64_t>(aborted_attempts));
  EXPECT_EQ(CounterValue(snap.registry, "server.retune.refits"),
            static_cast<uint64_t>(forced));
}

TEST(InstallPredictorGenerationTest, RejectsStaleAndUnknownInstalls) {
  PpcFramework framework(&SmallTpch(), RetuneConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Drive(&framework, "Q1", 2, 0.5, 60, 7);

  const auto current = framework.online_predictor("Q1");
  ASSERT_NE(current, nullptr);

  // Same generation (not strictly newer) is rejected.
  OnlinePpcPredictor::Config same_config = current->config();
  auto same = std::make_shared<OnlinePpcPredictor>(same_config);
  const Status not_newer = framework.InstallPredictorGeneration("Q1", same);
  ASSERT_FALSE(not_newer.ok());
  EXPECT_EQ(not_newer.code(), StatusCode::kInvalidArgument);

  // Unknown template.
  OnlinePpcPredictor::Config next_config = current->config();
  next_config.predictor.transform_generation = 1;
  EXPECT_EQ(framework
                .InstallPredictorGeneration(
                    "nope", std::make_shared<OnlinePpcPredictor>(next_config))
                .code(),
            StatusCode::kNotFound);

  // Null predictor.
  EXPECT_EQ(framework.InstallPredictorGeneration("Q1", nullptr).code(),
            StatusCode::kInvalidArgument);

  // A genuinely newer generation installs.
  EXPECT_TRUE(framework
                  .InstallPredictorGeneration(
                      "Q1", std::make_shared<OnlinePpcPredictor>(next_config))
                  .ok());
  EXPECT_EQ(
      framework.online_predictor("Q1")->predictor().transform_generation(),
      1u);
}

}  // namespace
}  // namespace ppc
