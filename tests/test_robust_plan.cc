#include "optimizer/robust_plan.h"

#include <gtest/gtest.h>

#include "optimizer/plan_evaluator.h"
#include "ppc/runtime_simulator.h"
#include "test_util.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

class RobustPlanTest : public ::testing::Test {
 protected:
  RobustPlanTest() : optimizer_(&SmallTpch()) {}

  std::vector<std::vector<double>> Samples(int dims, size_t n) {
    Rng rng(55);
    return UniformPlanSpaceSample(dims, n, &rng);
  }

  Optimizer optimizer_;
};

TEST_F(RobustPlanTest, EmptySamplesRejected) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  EXPECT_FALSE(SelectRobustPlan(optimizer_, prep, {}).ok());
}

TEST_F(RobustPlanTest, SingleSampleReturnsItsOptimalPlan) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  const std::vector<double> point = {0.5, 0.5};
  auto robust = SelectRobustPlan(optimizer_, prep, {point}).value();
  auto optimal = optimizer_.Optimize(prep, point).value();
  EXPECT_EQ(robust.plan_id, optimal.plan_id);
  EXPECT_EQ(robust.optimizer_calls, 1u);
  EXPECT_EQ(robust.candidates, 1u);
  EXPECT_NEAR(robust.average_cost, optimal.estimated_cost,
              optimal.estimated_cost * 1e-9);
}

TEST_F(RobustPlanTest, MinimizesAverageCostAmongCandidates) {
  const QueryTemplate tmpl = EvaluationTemplate("Q2");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto samples = Samples(2, 200);
  auto robust = SelectRobustPlan(optimizer_, prep, samples).value();
  ASSERT_NE(robust.plan, nullptr);

  // Replaying any other candidate over the same samples must not beat the
  // winner's average.
  std::map<PlanId, std::unique_ptr<PlanNode>> others;
  for (const auto& point : samples) {
    auto opt = optimizer_.Optimize(prep, point).value();
    if (opt.plan_id != robust.plan_id) {
      others.emplace(opt.plan_id, std::move(opt.plan));
    }
  }
  for (const auto& [plan_id, plan] : others) {
    double sum = 0.0;
    for (const auto& point : samples) {
      sum += EvaluatePlanAtPoint(prep, optimizer_.cost_model(), *plan, point)
                 .value()
                 .cost;
    }
    EXPECT_GE(sum / static_cast<double>(samples.size()),
              robust.average_cost * (1.0 - 1e-9))
        << "candidate " << plan_id;
  }
}

TEST_F(RobustPlanTest, RobustBeatsCornerPlanOnAverage) {
  // The plan optimized at an extreme corner should average worse over the
  // whole space than the robust plan.
  const QueryTemplate tmpl = EvaluationTemplate("Q2");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto samples = Samples(2, 200);
  auto robust = SelectRobustPlan(optimizer_, prep, samples).value();
  auto corner = optimizer_.Optimize(prep, {0.001, 0.001}).value();
  double corner_sum = 0.0;
  for (const auto& point : samples) {
    corner_sum += EvaluatePlanAtPoint(prep, optimizer_.cost_model(),
                                      *corner.plan, point)
                      .value()
                      .cost;
  }
  EXPECT_GE(corner_sum / static_cast<double>(samples.size()),
            robust.average_cost * (1.0 - 1e-9));
}

TEST_F(RobustPlanTest, ReportsSelectionOverhead) {
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto robust = SelectRobustPlan(optimizer_, prep, Samples(4, 150)).value();
  EXPECT_EQ(robust.optimizer_calls, 150u);
  EXPECT_GE(robust.candidates, 2u);
  EXPECT_GE(robust.worst_case_suboptimality, 1.0);
}

TEST_F(RobustPlanTest, RuntimeSimulatorRobustStrategy) {
  RuntimeSimulator::Options options;
  options.cost_to_seconds = 1e-8;
  options.robust_sample_count = 60;
  RuntimeSimulator simulator(&SmallTpch(), EvaluationTemplate("Q5"),
                             options);
  TrajectoryConfig traj;
  traj.dimensions = 4;
  traj.total_points = 200;
  Rng rng(77);
  auto workload = RandomTrajectoriesWorkload(traj, &rng);
  auto result = simulator.Run(CachingStrategy::kRobustCache, workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Selection makes exactly robust_sample_count optimizer calls up front.
  EXPECT_EQ(result.value().optimizer_calls, 60u);
  EXPECT_GE(result.value().MeanSuboptimality(), 1.0);
  EXPECT_STREQ(CachingStrategyName(CachingStrategy::kRobustCache),
               "ROBUST-PLAN-CACHE");
}

}  // namespace
}  // namespace ppc
