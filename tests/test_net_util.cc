#include "server/net_util.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/failpoints.h"

namespace ppc {
namespace net {
namespace {

/// A connected AF_UNIX pair with small kernel buffers, so tests can fill
/// the pipe quickly and provoke blocking-write conditions.
class SocketPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    const int small = 4096;
    ::setsockopt(fds_[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    ::setsockopt(fds_[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  }

  void TearDown() override {
    failpoints::DisarmAll();
    CloseLeft();
    CloseRight();
  }

  void CloseLeft() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseRight() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }

  int left() const { return fds_[0]; }
  int right() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.PollTimeoutMs(), -1);
}

TEST(DeadlineTest, AfterMsExpiresAndReportsRemaining) {
  Deadline d = Deadline::AfterMs(10'000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  const int remaining = d.PollTimeoutMs();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 10'001);

  Deadline past = Deadline::AfterMs(-1);
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.PollTimeoutMs(), 0);
}

TEST(DeadlineTest, AfterMsOrInfiniteTreatsZeroAsDisabled) {
  EXPECT_TRUE(Deadline::AfterMsOrInfinite(0).infinite());
  EXPECT_FALSE(Deadline::AfterMsOrInfinite(5).infinite());
}

TEST_F(SocketPairTest, WriteAllThenReadFullRoundTrips) {
  const std::string message = "deadline-aware round trip";
  ASSERT_TRUE(WriteAll(left(), message.data(), message.size(),
                       Deadline::AfterMs(1000))
                  .ok());
  std::string read(message.size(), '\0');
  ASSERT_TRUE(
      ReadFull(right(), read.data(), read.size(), Deadline::AfterMs(1000))
          .ok());
  EXPECT_EQ(read, message);
}

TEST_F(SocketPairTest, ReadFullTimesOutDistinctly) {
  char byte;
  Status status = ReadFull(right(), &byte, 1, Deadline::AfterMs(30));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(SocketPairTest, ReadFullReportsPeerCloseAsUnavailable) {
  ASSERT_TRUE(WriteAll(left(), "ab", 2, Deadline::Infinite()).ok());
  CloseLeft();
  char buffer[8];
  // Two of four bytes arrive, then the peer is gone — that must surface
  // as Unavailable, not as a timeout.
  Status status = ReadFull(right(), buffer, 4, Deadline::AfterMs(1000));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(SocketPairTest, WriteAllTimesOutWhenPeerStopsReading) {
  // Nobody reads `right`, so the (small) kernel buffers fill and the
  // write must eventually give up with DeadlineExceeded.
  const std::vector<char> block(1 << 20, 'x');
  Status status =
      WriteAll(left(), block.data(), block.size(), Deadline::AfterMs(50));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(SocketPairTest, WriteAllReportsPeerCloseAsUnavailable) {
  CloseRight();
  const std::vector<char> block(1 << 16, 'x');
  Status status =
      WriteAll(left(), block.data(), block.size(), Deadline::AfterMs(1000));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(SocketPairTest, RecvSomeHonorsDeadlineOnSilentPeer) {
  char buffer[16];
  Result<size_t> received =
      RecvSome(right(), buffer, sizeof(buffer), Deadline::AfterMs(30));
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(SocketPairTest, RecvSomeReturnsZeroOnCleanClose) {
  CloseLeft();
  char buffer[16];
  Result<size_t> received =
      RecvSome(right(), buffer, sizeof(buffer), Deadline::AfterMs(1000));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), 0u);
}

TEST_F(SocketPairTest, ShortWriteFailpointStillDeliversEverything) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kShortIo;
  config.arg = 1;  // one byte per send() call
  failpoints::Arm(failpoints::Site::kSend, config);
  const std::string message = "short writes must still complete";
  // Drain concurrently: a stream of 1-byte sends exhausts the kernel's
  // per-skb buffer accounting long before 4096 payload bytes.
  std::string read(message.size(), '\0');
  std::thread reader([this, &read]() {
    ASSERT_TRUE(
        ReadFull(right(), read.data(), read.size(), Deadline::AfterMs(5000))
            .ok());
  });
  ASSERT_TRUE(WriteAll(left(), message.data(), message.size(),
                       Deadline::AfterMs(5000))
                  .ok());
  reader.join();
  failpoints::DisarmAll();
  EXPECT_GE(failpoints::FiredCount(failpoints::Site::kSend),
            message.size());
  EXPECT_EQ(read, message);
}

TEST_F(SocketPairTest, EagainStormFailpointConsumesDeadline) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kEagain;
  failpoints::Arm(failpoints::Site::kSend, config);
  const std::string message = "never leaves";
  Status status = WriteAll(left(), message.data(), message.size(),
                           Deadline::AfterMs(30));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(SocketPairTest, ErrorFailpointLooksLikePeerFailure) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kError;
  failpoints::Arm(failpoints::Site::kSend, config);
  Status status = WriteAll(left(), "x", 1, Deadline::Infinite());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);

  failpoints::DisarmAll();
  config.kind = failpoints::Kind::kError;
  failpoints::Arm(failpoints::Site::kRecv, config);
  char buffer[4];
  Result<size_t> received =
      RecvSome(right(), buffer, sizeof(buffer), Deadline::Infinite());
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
}

TEST_F(SocketPairTest, TruncateFailpointDeliversPrefixThenFails) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kTruncate;
  config.arg = 3;
  failpoints::Arm(failpoints::Site::kSend, config);
  const std::string message = "truncated-frame";
  Status status = WriteAll(left(), message.data(), message.size(),
                           Deadline::AfterMs(1000));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  failpoints::DisarmAll();

  // Exactly the 3-byte prefix made it onto the wire.
  char buffer[32];
  std::string read;
  Result<size_t> received =
      RecvSome(right(), buffer, sizeof(buffer), Deadline::AfterMs(200));
  ASSERT_TRUE(received.ok());
  read.assign(buffer, received.value());
  EXPECT_EQ(read, "tru");
}

TEST_F(SocketPairTest, EintrFailpointOnlyBurnsALoop) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kEintr;
  config.budget = 5;
  failpoints::Arm(failpoints::Site::kRecv, config);
  ASSERT_TRUE(WriteAll(left(), "ok", 2, Deadline::Infinite()).ok());
  char buffer[2];
  ASSERT_TRUE(
      ReadFull(right(), buffer, 2, Deadline::AfterMs(1000)).ok());
  EXPECT_EQ(failpoints::FiredCount(failpoints::Site::kRecv), 5u);
}

TEST_F(SocketPairTest, WritevAllDeliversIovecsInOrder) {
  std::string header = "HDR:";
  std::string body = "body-bytes";
  std::string tail = "!";
  struct iovec iov[3];
  iov[0] = {header.data(), header.size()};
  iov[1] = {body.data(), body.size()};
  iov[2] = {tail.data(), tail.size()};
  ASSERT_TRUE(WritevAll(left(), iov, 3, Deadline::AfterMs(1000)).ok());
  std::string read(header.size() + body.size() + tail.size(), '\0');
  ASSERT_TRUE(
      ReadFull(right(), read.data(), read.size(), Deadline::AfterMs(1000))
          .ok());
  EXPECT_EQ(read, "HDR:body-bytes!");
  // The caller's iovec array was not consumed by the partial-write
  // bookkeeping (the resume state is a local copy).
  EXPECT_EQ(iov[0].iov_len, header.size());
  EXPECT_EQ(iov[1].iov_len, body.size());
}

TEST_F(SocketPairTest, WritevAllRejectsBadIovecCounts) {
  struct iovec iov{};
  EXPECT_EQ(WritevAll(left(), &iov, 0, Deadline::Infinite()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      WritevAll(left(), &iov, kMaxWriteIovecs + 1, Deadline::Infinite())
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(SocketPairTest, WritevAllSkipsEmptyIovecs) {
  std::string a = "left";
  std::string b = "right";
  struct iovec iov[4];
  iov[0] = {nullptr, 0};
  iov[1] = {a.data(), a.size()};
  iov[2] = {nullptr, 0};
  iov[3] = {b.data(), b.size()};
  ASSERT_TRUE(WritevAll(left(), iov, 4, Deadline::AfterMs(1000)).ok());
  std::string read(a.size() + b.size(), '\0');
  ASSERT_TRUE(
      ReadFull(right(), read.data(), read.size(), Deadline::AfterMs(1000))
          .ok());
  EXPECT_EQ(read, "leftright");
}

/// The regression this PR's writev conversion guards against: a short
/// write that stops *inside the 4-byte length prefix* must resume at the
/// next unsent byte — mid-iovec — without re-sending or skipping anything,
/// or the peer's deframer desynchronizes permanently.
TEST_F(SocketPairTest, WritevAllShortWriteInsideHeaderResumesMidIovec) {
  for (const uint32_t short_bytes : {1u, 2u, 3u}) {
    failpoints::Config config;
    config.kind = failpoints::Kind::kShortIo;
    config.arg = short_bytes;
    failpoints::Arm(failpoints::Site::kSend, config);

    const std::string payload = "mid-header resume payload";
    const uint32_t length = static_cast<uint32_t>(payload.size());
    char prefix[sizeof(length)];
    std::memcpy(prefix, &length, sizeof(length));
    struct iovec iov[2];
    iov[0] = {prefix, sizeof(prefix)};
    iov[1] = {const_cast<char*>(payload.data()), payload.size()};
    std::string read(sizeof(prefix) + payload.size(), '\0');
    std::thread reader([this, &read]() {
      ASSERT_TRUE(
          ReadFull(right(), read.data(), read.size(), Deadline::AfterMs(5000))
              .ok());
    });
    ASSERT_TRUE(WritevAll(left(), iov, 2, Deadline::AfterMs(5000)).ok());
    reader.join();
    failpoints::DisarmAll();

    // Every send call was clamped below the header size, so at least one
    // boundary fell inside the prefix; the reassembled bytes must still
    // be exact.
    uint32_t read_length = 0;
    std::memcpy(&read_length, read.data(), sizeof(read_length));
    EXPECT_EQ(read_length, length) << "short_bytes=" << short_bytes;
    EXPECT_EQ(read.substr(sizeof(read_length)), payload)
        << "short_bytes=" << short_bytes;
  }
}

TEST_F(SocketPairTest, WritevAllIntermittentShortWritesStayCoherent) {
  // Clamp only every 3rd send: the write path alternates between full
  // sends and mid-iovec resumes, crossing the header/payload boundary in
  // different phases each round.
  failpoints::Config config;
  config.kind = failpoints::Kind::kShortIo;
  config.arg = 2;
  config.every = 3;
  failpoints::Arm(failpoints::Site::kSend, config);
  std::thread writer([this]() {
    for (int frame = 0; frame < 16; ++frame) {
      const std::string payload(static_cast<size_t>(frame + 1),
                                static_cast<char>('a' + frame));
      const uint32_t length = static_cast<uint32_t>(payload.size());
      char prefix[sizeof(length)];
      std::memcpy(prefix, &length, sizeof(length));
      struct iovec iov[2];
      iov[0] = {prefix, sizeof(prefix)};
      iov[1] = {const_cast<char*>(payload.data()), payload.size()};
      ASSERT_TRUE(WritevAll(left(), iov, 2, Deadline::AfterMs(5000)).ok());
    }
  });
  std::string read;
  char buffer[64];
  for (int frame = 0; frame < 16; ++frame) {
    const size_t payload_size = static_cast<size_t>(frame + 1);
    const size_t need = sizeof(uint32_t) + payload_size;
    ASSERT_TRUE(
        ReadFull(right(), buffer, need, Deadline::AfterMs(5000)).ok());
    uint32_t length = 0;
    std::memcpy(&length, buffer, sizeof(length));
    ASSERT_EQ(length, payload_size) << "frame " << frame;
    read.assign(buffer + sizeof(length), payload_size);
    EXPECT_EQ(read,
              std::string(payload_size, static_cast<char>('a' + frame)));
  }
  writer.join();
}

TEST_F(SocketPairTest, WritevAllTruncateFailpointDeliversCrossIovecPrefix) {
  failpoints::Config config;
  config.kind = failpoints::Kind::kTruncate;
  config.arg = 6;  // 4-byte header + 2 payload bytes
  failpoints::Arm(failpoints::Site::kSend, config);
  const std::string payload = "doomed";
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[sizeof(length)];
  std::memcpy(prefix, &length, sizeof(length));
  struct iovec iov[2];
  iov[0] = {prefix, sizeof(prefix)};
  iov[1] = {const_cast<char*>(payload.data()), payload.size()};
  EXPECT_EQ(WritevAll(left(), iov, 2, Deadline::AfterMs(1000)).code(),
            StatusCode::kUnavailable);
  failpoints::DisarmAll();
  char buffer[32];
  Result<size_t> received =
      RecvSome(right(), buffer, sizeof(buffer), Deadline::AfterMs(200));
  ASSERT_TRUE(received.ok());
  ASSERT_EQ(received.value(), 6u);
  uint32_t read_length = 0;
  std::memcpy(&read_length, buffer, sizeof(read_length));
  EXPECT_EQ(read_length, length);
  EXPECT_EQ(std::string(buffer + 4, 2), "do");
}

TEST_F(SocketPairTest, RecvNonBlockingReportsAllOutcomes) {
  ASSERT_TRUE(SetNonBlocking(right()).ok());
  char buffer[16];
  size_t received = 0;

  EXPECT_EQ(RecvNonBlocking(right(), buffer, sizeof(buffer), &received),
            RecvOutcome::kWouldBlock);

  ASSERT_TRUE(WriteAll(left(), "abc", 3, Deadline::Infinite()).ok());
  EXPECT_EQ(RecvNonBlocking(right(), buffer, sizeof(buffer), &received),
            RecvOutcome::kData);
  EXPECT_EQ(received, 3u);

  CloseLeft();
  EXPECT_EQ(RecvNonBlocking(right(), buffer, sizeof(buffer), &received),
            RecvOutcome::kEof);
}

TEST(ConnectTest, HonorsDeadlineWhenAcceptQueueIsFull) {
  // A listener with backlog 1 that never accepts: once the kernel's
  // accept queue fills, further handshakes park half-open and a blocking
  // connect would hang on the SYN retry schedule (minutes). The deadline
  // must cut that short with DeadlineExceeded, not EINPROGRESS noise and
  // not an indefinite block.
  uint16_t port = 0;
  auto listener = Listen("127.0.0.1", 0, /*backlog=*/1, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::vector<int> fds;
  bool saw_deadline = false;
  for (int i = 0; i < 16 && !saw_deadline; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto connected = Connect("127.0.0.1", port, Deadline::AfterMs(200));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (connected.ok()) {
      fds.push_back(connected.value());
      continue;
    }
    EXPECT_EQ(connected.status().code(), StatusCode::kDeadlineExceeded)
        << connected.status().ToString();
    // The deadline bounded the wait — it neither returned instantly with
    // a spurious error nor sat on the kernel's retry schedule.
    EXPECT_LT(elapsed, 2000) << "connect overstayed its deadline";
    saw_deadline = true;
  }
  EXPECT_TRUE(saw_deadline)
      << "accept queue never filled; kernel backlog larger than expected";
  for (int fd : fds) ::close(fd);
  ::close(listener.value());
}

}  // namespace
}  // namespace net
}  // namespace ppc
