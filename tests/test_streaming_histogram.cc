#include "stats/streaming_histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppc {
namespace {

TEST(StreamingHistogramTest, EmptyQueries) {
  StreamingHistogram h(8);
  EXPECT_EQ(h.EstimateCount(0.0, 1.0), 0.0);
  EXPECT_EQ(h.EstimateAverageCost(0.0, 1.0), 0.0);
  EXPECT_EQ(h.TotalCount(), 0u);
}

TEST(StreamingHistogramTest, SingleInsert) {
  StreamingHistogram h(8);
  h.Insert(0.5, 100.0);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_NEAR(h.EstimateCount(0.0, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(h.EstimateAverageCost(0.0, 1.0), 100.0, 1e-9);
}

TEST(StreamingHistogramTest, DuplicatePositionsAccumulate) {
  StreamingHistogram h(8);
  for (int i = 0; i < 10; ++i) h.Insert(0.3, 50.0);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_NEAR(h.EstimateCount(0.0, 1.0), 10.0, 1e-9);
  EXPECT_NEAR(h.EstimateAverageCost(0.0, 1.0), 50.0, 1e-9);
}

TEST(StreamingHistogramTest, BucketBudgetEnforced) {
  StreamingHistogram h(10);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.Insert(rng.Uniform(), 1.0);
  EXPECT_LE(h.bucket_count(), 10u);
  EXPECT_EQ(h.TotalCount(), 1000u);
  // Total mass is preserved by merging.
  EXPECT_NEAR(h.EstimateCount(0.0, 1.0), 1000.0, 1.0);
}

TEST(StreamingHistogramTest, RangeCountTracksUniformMass) {
  StreamingHistogram h(40);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) h.Insert(rng.Uniform(), 1.0);
  EXPECT_NEAR(h.EstimateCount(0.0, 0.5), 2500.0, 200.0);
  EXPECT_NEAR(h.EstimateCount(0.25, 0.75), 2500.0, 200.0);
  EXPECT_NEAR(h.EstimateCount(0.9, 1.0), 500.0, 120.0);
}

TEST(StreamingHistogramTest, DisjointClustersSeparated) {
  StreamingHistogram h(16);
  for (int i = 0; i < 100; ++i) {
    h.Insert(0.1 + 0.001 * i, 10.0);
    h.Insert(0.8 + 0.001 * i, 90.0);
  }
  // Edge buckets smear toward the distant neighbour (their extent ends at
  // the centroid midpoint), so allow ~15% leakage.
  EXPECT_NEAR(h.EstimateCount(0.0, 0.3), 100.0, 15.0);
  EXPECT_NEAR(h.EstimateCount(0.7, 1.0), 100.0, 15.0);
  EXPECT_LT(h.EstimateCount(0.45, 0.55), 10.0);
  EXPECT_NEAR(h.EstimateAverageCost(0.0, 0.3), 10.0, 2.0);
  EXPECT_NEAR(h.EstimateAverageCost(0.7, 1.0), 90.0, 2.0);
}

TEST(StreamingHistogramTest, AverageCostWeightedByCount) {
  StreamingHistogram h(16);
  for (int i = 0; i < 30; ++i) h.Insert(0.2, 10.0);
  for (int i = 0; i < 10; ++i) h.Insert(0.21, 50.0);
  // Average over the whole range: (30*10 + 10*50) / 40 = 20.
  EXPECT_NEAR(h.EstimateAverageCost(0.0, 1.0), 20.0, 1e-6);
}

TEST(StreamingHistogramTest, InvertedRangeIsEmpty) {
  StreamingHistogram h(8);
  h.Insert(0.5, 1.0);
  EXPECT_EQ(h.EstimateCount(0.8, 0.2), 0.0);
}

TEST(StreamingHistogramTest, PositionsClampedToUnitInterval) {
  StreamingHistogram h(8);
  h.Insert(-0.5, 1.0);
  h.Insert(1.5, 1.0);
  EXPECT_NEAR(h.EstimateCount(0.0, 1.0), 2.0, 1e-9);
}

TEST(StreamingHistogramTest, ClearResets) {
  StreamingHistogram h(8);
  for (int i = 0; i < 100; ++i) h.Insert(0.5, 1.0);
  h.Clear();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.bucket_count(), 0u);
  EXPECT_EQ(h.EstimateCount(0.0, 1.0), 0.0);
}

TEST(StreamingHistogramTest, SpaceBytesIsTwelvePerBucket) {
  StreamingHistogram h(40);
  EXPECT_EQ(h.SpaceBytes(), 40u * 12u);
}

TEST(StreamingHistogramTest, MergePolicyVarianceKeepsClustersApart) {
  // With the variance policy, merging should prefer to consolidate the
  // dense cluster internally rather than bridge the two clusters.
  StreamingHistogram h(4, StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) h.Insert(rng.Gaussian(0.2, 0.01), 5.0);
  for (int i = 0; i < 200; ++i) h.Insert(rng.Gaussian(0.9, 0.01), 50.0);
  const double left = h.EstimateCount(0.0, 0.5);
  const double right = h.EstimateCount(0.5, 1.0);
  EXPECT_NEAR(left, 200.0, 30.0);
  EXPECT_NEAR(right, 200.0, 30.0);
}

TEST(StreamingHistogramTest, DebugStringMentionsBuckets) {
  StreamingHistogram h(8);
  h.Insert(0.5, 2.0);
  EXPECT_NE(h.DebugString().find("buckets=1"), std::string::npos);
}

class MergePolicyTest
    : public ::testing::TestWithParam<StreamingHistogram::MergePolicy> {};

TEST_P(MergePolicyTest, MassConservedUnderAnyPolicy) {
  StreamingHistogram h(12, GetParam());
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) h.Insert(rng.Uniform(), rng.Uniform());
  EXPECT_LE(h.bucket_count(), 12u);
  EXPECT_NEAR(h.EstimateCount(0.0, 1.0), 2000.0, 2.0);
}

TEST_P(MergePolicyTest, CountsNonNegative) {
  StreamingHistogram h(6, GetParam());
  Rng rng(17);
  for (int i = 0; i < 500; ++i) h.Insert(rng.Gaussian(0.5, 0.2), 1.0);
  for (double lo = 0.0; lo < 1.0; lo += 0.1) {
    EXPECT_GE(h.EstimateCount(lo, lo + 0.1), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MergePolicyTest,
    ::testing::Values(StreamingHistogram::MergePolicy::kMinVarianceIncrease,
                      StreamingHistogram::MergePolicy::kNearestCentroid,
                      StreamingHistogram::MergePolicy::kEquiWidth));

}  // namespace
}  // namespace ppc
