#include "common/hash.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

// Reference values from the published FNV-1a test vectors; these pin the
// implementation to the algorithm, which is the whole point — per-template
// seeds derived from it must be identical on every platform and standard
// library (std::hash<std::string> makes no such promise).
TEST(Fnv1a64Test, MatchesPublishedVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, IsUsableAtCompileTime) {
  static_assert(Fnv1a64("Q1") != Fnv1a64("Q3"));
  static_assert(Fnv1a64("") == 14695981039346656037ULL);
}

TEST(Fnv1a64Test, DistinguishesTemplateNames) {
  EXPECT_NE(Fnv1a64("Q1"), Fnv1a64("Q10"));
  EXPECT_NE(Fnv1a64("Q1"), Fnv1a64("q1"));
}

}  // namespace
}  // namespace ppc
