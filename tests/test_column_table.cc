#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/table.h"

namespace ppc {
namespace {

TEST(ColumnTest, IntColumnRoundTrip) {
  Column col("c", ColumnType::kInt64);
  col.AppendInt(5);
  col.AppendInt(-3);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.AsInt(0), 5);
  EXPECT_EQ(col.AsInt(1), -3);
  EXPECT_EQ(col.AsDouble(1), -3.0);
}

TEST(ColumnTest, DoubleColumnRoundTrip) {
  Column col("c", ColumnType::kDouble);
  col.AppendDouble(1.5);
  EXPECT_EQ(col.AsDouble(0), 1.5);
}

TEST(ColumnTest, DateColumnIsIntBacked) {
  Column col("d", ColumnType::kDate);
  col.AppendInt(1000);
  EXPECT_EQ(col.AsInt(0), 1000);
  EXPECT_EQ(col.AsDouble(0), 1000.0);
}

TEST(ColumnTest, AppendAsDoubleRoundsIntegers) {
  Column col("c", ColumnType::kInt64);
  col.AppendAsDouble(2.7);
  EXPECT_EQ(col.AsInt(0), 3);
  Column dcol("d", ColumnType::kDouble);
  dcol.AppendAsDouble(2.7);
  EXPECT_EQ(dcol.AsDouble(0), 2.7);
}

TEST(ColumnTest, ToDoubleVector) {
  Column col("c", ColumnType::kInt64);
  for (int i = 0; i < 5; ++i) col.AppendInt(i);
  const std::vector<double> v = col.ToDoubleVector();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[3], 3.0);
}

TableDef TwoColumnDef() {
  return TableDef{"t",
                  {{"a", ColumnType::kInt64}, {"b", ColumnType::kDouble}},
                  {"a"},
                  {}};
}

TEST(TableTest, AppendRowAndRead) {
  Table table(TwoColumnDef());
  ASSERT_TRUE(table.AppendRow({1.0, 2.5}).ok());
  ASSERT_TRUE(table.AppendRow({2.0, 3.5}).ok());
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column(0).AsInt(1), 2);
  EXPECT_EQ(table.column(1).AsDouble(0), 2.5);
}

TEST(TableTest, AppendRowArityMismatchFails) {
  Table table(TwoColumnDef());
  const Status s = table.AppendRow({1.0});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TableTest, FindColumn) {
  Table table(TwoColumnDef());
  ASSERT_TRUE(table.FindColumn("b").ok());
  EXPECT_EQ(table.FindColumn("b").value()->name(), "b");
  EXPECT_EQ(table.FindColumn("zzz").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, RowWidthBytes) {
  Table table(TwoColumnDef());
  EXPECT_EQ(table.RowWidthBytes(), 16u);
}

TEST(TableDefTest, ColumnIndex) {
  const TableDef def = TwoColumnDef();
  EXPECT_EQ(def.ColumnIndex("a"), 0);
  EXPECT_EQ(def.ColumnIndex("b"), 1);
  EXPECT_EQ(def.ColumnIndex("c"), -1);
}

TEST(SchemaTest, ColumnTypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "INT64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "DOUBLE");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "DATE");
}

}  // namespace
}  // namespace ppc
