#include "common/math_utils.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppc {
namespace {

TEST(MathUtilsTest, Clamp) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(0.0, 0.0, 1.0), 0.0);
}

TEST(MathUtilsTest, HypersphereVolumeKnownValues) {
  // 1D "sphere" of radius r is the interval [-r, r]: volume 2r.
  EXPECT_NEAR(HypersphereVolume(1, 3.0), 6.0, 1e-9);
  // 2D: pi r^2.
  EXPECT_NEAR(HypersphereVolume(2, 1.0), M_PI, 1e-9);
  EXPECT_NEAR(HypersphereVolume(2, 2.0), 4.0 * M_PI, 1e-9);
  // 3D: 4/3 pi r^3.
  EXPECT_NEAR(HypersphereVolume(3, 1.0), 4.0 / 3.0 * M_PI, 1e-9);
}

TEST(MathUtilsTest, HypersphereRadiusRoundTrip) {
  for (int r = 1; r <= 6; ++r) {
    for (double radius : {0.05, 0.5, 2.0}) {
      const double volume = HypersphereVolume(r, radius);
      EXPECT_NEAR(HypersphereRadiusForVolume(r, volume), radius, 1e-9)
          << "dims=" << r << " radius=" << radius;
    }
  }
}

TEST(MathUtilsTest, UnitCircleSegmentAreaEndpoints) {
  EXPECT_NEAR(UnitCircleSegmentArea(-1.0), M_PI, 1e-9);
  EXPECT_NEAR(UnitCircleSegmentArea(0.0), M_PI / 2.0, 1e-9);
  EXPECT_NEAR(UnitCircleSegmentArea(1.0), 0.0, 1e-9);
}

TEST(MathUtilsTest, UnitCircleSegmentAreaMonotoneDecreasing) {
  double prev = UnitCircleSegmentArea(-1.0);
  for (double h = -0.9; h <= 1.0; h += 0.1) {
    const double area = UnitCircleSegmentArea(h);
    EXPECT_LT(area, prev + 1e-12);
    prev = area;
  }
}

TEST(MathUtilsTest, ChordDistanceInvertsSegmentArea) {
  for (double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double h = ChordDistanceForAreaFraction(fraction);
    EXPECT_NEAR(UnitCircleSegmentArea(h) / M_PI, fraction, 1e-6)
        << "fraction=" << fraction;
  }
}

TEST(MathUtilsTest, ChordDistanceSpecialValues) {
  EXPECT_NEAR(ChordDistanceForAreaFraction(0.5), 0.0, 1e-6);
  EXPECT_NEAR(ChordDistanceForAreaFraction(0.0), 1.0, 1e-6);
  EXPECT_NEAR(ChordDistanceForAreaFraction(1.0), -1.0, 1e-6);
}

TEST(MathUtilsTest, Distances) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {3.0, 4.0};
  EXPECT_NEAR(SquaredDistance(a, b), 25.0, 1e-12);
  EXPECT_NEAR(EuclideanDistance(a, b), 5.0, 1e-12);
  EXPECT_NEAR(EuclideanDistance(a, a), 0.0, 1e-12);
}

TEST(MathUtilsTest, MeanAndStdDev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
  EXPECT_EQ(SampleStdDev({5.0}), 0.0);
  EXPECT_NEAR(SampleStdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(MathUtilsTest, MedianOddEven) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(Median({5.0}), 5.0);
  EXPECT_NEAR(Median({3.0, 1.0, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(Median({4.0, 1.0, 3.0, 2.0}), 2.5, 1e-12);
  EXPECT_NEAR(Median({1.0, 1.0, 10.0, 10.0}), 5.5, 1e-12);
}

TEST(MathUtilsTest, ProportionLowerBound) {
  EXPECT_EQ(ProportionLowerBound95(0, 0), 0.0);
  EXPECT_EQ(ProportionLowerBound95(100, 100), 1.0);  // p=1 -> no variance
  const double lb = ProportionLowerBound95(90, 100);
  EXPECT_LT(lb, 0.9);
  EXPECT_GT(lb, 0.8);
  // Larger samples tighten the bound.
  EXPECT_GT(ProportionLowerBound95(900, 1000), lb);
}

}  // namespace
}  // namespace ppc
