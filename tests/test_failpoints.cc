#include "server/failpoints.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace ppc {
namespace failpoints {
namespace {

/// Every test leaves the global registry clean for the next one.
class FailpointsTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointsTest, DisarmedSiteReturnsNoAction) {
  Action action = Hit(Site::kSend);
  EXPECT_EQ(action.kind, Kind::kNone);
  // Disarmed hits never reach the registry, so they are not counted.
  EXPECT_EQ(HitCount(Site::kSend), 0u);
  EXPECT_EQ(FiredCount(Site::kSend), 0u);
}

TEST_F(FailpointsTest, ArmedSiteFiresWithConfiguredKindAndArg) {
  Config config;
  config.kind = Kind::kShortIo;
  config.arg = 3;
  Arm(Site::kSend, config);
  Action action = Hit(Site::kSend);
  EXPECT_EQ(action.kind, Kind::kShortIo);
  EXPECT_EQ(action.arg, 3u);
  EXPECT_EQ(HitCount(Site::kSend), 1u);
  EXPECT_EQ(FiredCount(Site::kSend), 1u);

  Disarm(Site::kSend);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kNone);
}

TEST_F(FailpointsTest, ArmingOneSiteLeavesOthersDisarmed) {
  Config config;
  config.kind = Kind::kError;
  Arm(Site::kAccept, config);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kNone);
  EXPECT_EQ(Hit(Site::kRecv).kind, Kind::kNone);
  EXPECT_EQ(Hit(Site::kAccept).kind, Kind::kError);
}

TEST_F(FailpointsTest, EveryNthFiresOnExactlyTheNthHits) {
  Config config;
  config.kind = Kind::kEagain;
  config.every = 3;
  Arm(Site::kRecv, config);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(Hit(Site::kRecv).kind != Kind::kNone);
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(HitCount(Site::kRecv), 9u);
  EXPECT_EQ(FiredCount(Site::kRecv), 3u);
}

TEST_F(FailpointsTest, BudgetCapsTotalFirings) {
  Config config;
  config.kind = Kind::kError;
  config.budget = 2;
  Arm(Site::kEnqueue, config);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (Hit(Site::kEnqueue).kind != Kind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(FiredCount(Site::kEnqueue), 2u);
  // Spent budget behaves as disarmed, even though the mask bit is set.
  EXPECT_EQ(Hit(Site::kEnqueue).kind, Kind::kNone);
}

TEST_F(FailpointsTest, ProbabilityDrawsAreSeededAndReproducible) {
  Config config;
  config.kind = Kind::kError;
  config.probability_permille = 250;
  config.seed = 42;

  auto run = [&config]() {
    Arm(Site::kDispatch, config);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(Hit(Site::kDispatch).kind != Kind::kNone);
    }
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  // Re-arming with the same seed replays the identical firing pattern.
  EXPECT_EQ(first, second);

  int fired = 0;
  for (bool f : first) fired += f ? 1 : 0;
  // 200 draws at p=0.25: the count must be well inside (0, 200).
  EXPECT_GT(fired, 10);
  EXPECT_LT(fired, 120);
}

TEST_F(FailpointsTest, ReArmResetsCountersAndSchedule) {
  Config config;
  config.kind = Kind::kError;
  config.every = 2;
  Arm(Site::kSend, config);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kNone);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kError);

  Arm(Site::kSend, config);  // re-arm: the "every" phase starts over
  EXPECT_EQ(HitCount(Site::kSend), 0u);
  EXPECT_EQ(FiredCount(Site::kSend), 0u);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kNone);
  EXPECT_EQ(Hit(Site::kSend).kind, Kind::kError);
}

TEST_F(FailpointsTest, SiteNamesAreStable) {
  EXPECT_STREQ(SiteName(Site::kRecv), "recv");
  EXPECT_STREQ(SiteName(Site::kSend), "send");
  EXPECT_STREQ(SiteName(Site::kAccept), "accept");
  EXPECT_STREQ(SiteName(Site::kEnqueue), "enqueue");
  EXPECT_STREQ(SiteName(Site::kDispatch), "dispatch");
}

TEST_F(FailpointsTest, MaybeStallSleepsForStallActionsOnly) {
  MaybeStall(Action{});  // no-op, must not sleep or crash
  const auto start = std::chrono::steady_clock::now();
  MaybeStall(Action{Kind::kStallMs, 20});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
}

/// Arm/Disarm racing against a storm of Hit() calls from other threads:
/// must be free of data races (the TSan stage runs this binary) and every
/// observed action must be either kNone or the armed config — never a
/// torn mixture.
TEST_F(FailpointsTest, ConcurrentArmDisarmWithHitsIsSafe) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_actions{0};

  std::vector<std::thread> hitters;
  for (int t = 0; t < 3; ++t) {
    hitters.emplace_back([&stop, &bad_actions]() {
      while (!stop.load(std::memory_order_relaxed)) {
        Action action = Hit(Site::kSend);
        if (action.kind != Kind::kNone &&
            !(action.kind == Kind::kShortIo && action.arg == 7)) {
          bad_actions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Config config;
  config.kind = Kind::kShortIo;
  config.arg = 7;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    Arm(Site::kSend, config);
    Disarm(Site::kSend);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hitters) t.join();

  EXPECT_EQ(bad_actions.load(), 0u);
}

/// Smoke bound on the disarmed fast path: a Hit() on a disarmed site is
/// one relaxed atomic load. The bound is deliberately generous (sanitizer
/// builds, shared CI cores) — this guards against accidentally putting a
/// mutex on the fast path, not against cycle-level regressions.
TEST_F(FailpointsTest, DisarmedFastPathIsCheap) {
  constexpr int kIterations = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  uint32_t sink = 0;
  for (int i = 0; i < kIterations; ++i) {
    sink += static_cast<uint32_t>(Hit(Site::kRecv).kind);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(sink, 0u);
  const int64_t nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  // ~1 ns/hit expected; allow 500 ns/hit before declaring the path slow.
  EXPECT_LT(nanos / kIterations, 500);
}

}  // namespace
}  // namespace failpoints
}  // namespace ppc
