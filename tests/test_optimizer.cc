#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : optimizer_(&SmallTpch()) {}
  Optimizer optimizer_;
};

TEST_F(OptimizerTest, PrepareValidatesTables) {
  QueryTemplate tmpl{"bad", {"nonexistent"}, {}, {}, true};
  EXPECT_FALSE(optimizer_.Prepare(tmpl).ok());
}

TEST_F(OptimizerTest, PrepareValidatesParamColumns) {
  QueryTemplate tmpl{"bad", {"orders"}, {}, {{"orders", "zzz"}}, true};
  EXPECT_FALSE(optimizer_.Prepare(tmpl).ok());
}

TEST_F(OptimizerTest, PrepareValidatesJoinTables) {
  QueryTemplate tmpl{"bad",
                     {"orders"},
                     {{"orders", "o_orderkey", "lineitem", "l_orderkey"}},
                     {},
                     true};
  EXPECT_FALSE(optimizer_.Prepare(tmpl).ok());
}

TEST_F(OptimizerTest, PrepareRejectsEmptyTemplate) {
  QueryTemplate tmpl{"bad", {}, {}, {}, true};
  EXPECT_FALSE(optimizer_.Prepare(tmpl).ok());
}

TEST_F(OptimizerTest, PrepareResolvesMetadata) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl);
  ASSERT_TRUE(prep.ok());
  EXPECT_EQ(prep.value().tables.size(), 2u);
  EXPECT_EQ(prep.value().edges.size(), 1u);
  EXPECT_EQ(prep.value().param_table.size(), 2u);
  // s_date and l_partkey both have indexes in the TPC-H schema.
  EXPECT_TRUE(prep.value().param_indexed[0]);
  EXPECT_TRUE(prep.value().param_indexed[1]);
  // Join selectivity 1/max(ndv): suppkey ndv == supplier rows.
  EXPECT_NEAR(prep.value().edges[0].selectivity,
              1.0 / static_cast<double>(SmallTpch().TableRows("supplier")),
              1e-6);
}

TEST_F(OptimizerTest, SelectivityArityMismatchFails) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  EXPECT_FALSE(optimizer_.Optimize(prep, {0.5}).ok());
}

TEST_F(OptimizerTest, SingleTableAccessPathFlips) {
  QueryTemplate tmpl{
      "single", {"lineitem"}, {}, {{"lineitem", "l_partkey"}}, true};
  auto prep = optimizer_.Prepare(tmpl).value();
  auto low = optimizer_.Optimize(prep, {0.0005}).value();
  auto high = optimizer_.Optimize(prep, {0.9}).value();
  // Low selectivity: index scan; high: sequential scan.
  EXPECT_NE(low.plan_id, high.plan_id);
  const PlanNode* low_scan = low.plan->left.get();   // under Aggregate
  const PlanNode* high_scan = high.plan->left.get();
  EXPECT_EQ(low_scan->scan_method, ScanMethod::kIndexScan);
  EXPECT_EQ(high_scan->scan_method, ScanMethod::kSeqScan);
}

TEST_F(OptimizerTest, DeterministicPlanChoice) {
  const QueryTemplate tmpl = EvaluationTemplate("Q3");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto a = optimizer_.Optimize(prep, {0.3, 0.4, 0.5}).value();
  auto b = optimizer_.Optimize(prep, {0.3, 0.4, 0.5}).value();
  EXPECT_EQ(a.plan_id, b.plan_id);
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
}

TEST_F(OptimizerTest, EstimatesArePositive) {
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto result = optimizer_.Optimize(prep, {0.5, 0.5, 0.5, 0.5}).value();
  EXPECT_GT(result.estimated_cost, 0.0);
  EXPECT_GE(result.estimated_rows, 1.0);
  EXPECT_NE(result.plan_id, kNullPlanId);
  ASSERT_NE(result.plan, nullptr);
}

TEST_F(OptimizerTest, PlanCoversAllTables) {
  const QueryTemplate tmpl = EvaluationTemplate("Q7");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto result =
      optimizer_.Optimize(prep, {0.5, 0.5, 0.5, 0.5, 0.5}).value();
  const auto tables = result.plan->Tables();
  const std::set<std::string> unique(tables.begin(), tables.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST_F(OptimizerTest, AggregateFlagControlsRoot) {
  QueryTemplate with_agg = EvaluationTemplate("Q1");
  QueryTemplate without_agg = with_agg;
  without_agg.aggregate = false;
  auto prep_a = optimizer_.Prepare(with_agg).value();
  auto prep_b = optimizer_.Prepare(without_agg).value();
  auto a = optimizer_.Optimize(prep_a, {0.5, 0.5}).value();
  auto b = optimizer_.Optimize(prep_b, {0.5, 0.5}).value();
  EXPECT_EQ(a.plan->kind, PlanNode::Kind::kAggregate);
  EXPECT_NE(b.plan->kind, PlanNode::Kind::kAggregate);
}

TEST_F(OptimizerTest, DisconnectedJoinGraphRejected) {
  QueryTemplate tmpl{"cartesian", {"orders", "part"}, {}, {}, true};
  auto prep = optimizer_.Prepare(tmpl).value();
  EXPECT_FALSE(optimizer_.Optimize(prep, {}).ok());
}

TEST_F(OptimizerTest, PlanChoiceVariesAcrossPlanSpace) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  std::set<PlanId> plans;
  for (double x = 0.025; x < 1.0; x += 0.1) {
    for (double y = 0.025; y < 1.0; y += 0.1) {
      plans.insert(optimizer_.Optimize(prep, {x, y}).value().plan_id);
    }
  }
  EXPECT_GE(plans.size(), 3u)
      << "Q1's plan diagram should contain several optimality regions";
}

TEST_F(OptimizerTest, HigherDimensionTemplatesHaveMorePlans) {
  auto count_plans = [&](const std::string& name, int grid) {
    const QueryTemplate tmpl = EvaluationTemplate(name);
    auto prep = optimizer_.Prepare(tmpl).value();
    std::set<PlanId> plans;
    std::vector<int> idx(static_cast<size_t>(tmpl.ParameterDegree()), 0);
    std::vector<double> sel(idx.size());
    for (;;) {
      for (size_t d = 0; d < sel.size(); ++d) {
        sel[d] = (idx[d] + 0.5) / grid;
      }
      plans.insert(optimizer_.Optimize(prep, sel).value().plan_id);
      size_t d = 0;
      for (; d < idx.size(); ++d) {
        if (++idx[d] < grid) break;
        idx[d] = 0;
      }
      if (d == idx.size()) break;
    }
    return plans.size();
  };
  EXPECT_GT(count_plans("Q5", 5), count_plans("Q1", 5));
}

TEST_F(OptimizerTest, LowerCostAtLowerSelectivity) {
  const QueryTemplate tmpl = EvaluationTemplate("Q2");
  auto prep = optimizer_.Prepare(tmpl).value();
  const double low =
      optimizer_.Optimize(prep, {0.01, 0.01}).value().estimated_cost;
  const double high =
      optimizer_.Optimize(prep, {0.99, 0.99}).value().estimated_cost;
  EXPECT_LT(low, high);
}

TEST_F(OptimizerTest, ConvenienceOverloadMatchesPrepared) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto a = optimizer_.Optimize(prep, {0.4, 0.6}).value();
  auto b = optimizer_.Optimize(tmpl, {0.4, 0.6}).value();
  EXPECT_EQ(a.plan_id, b.plan_id);
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
}

class AllTemplatesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllTemplatesTest, OptimizesAcrossPlanSpaceCorners) {
  Optimizer optimizer(&SmallTpch());
  const QueryTemplate tmpl = EvaluationTemplate(GetParam());
  auto prep = optimizer.Prepare(tmpl);
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  const size_t r = static_cast<size_t>(tmpl.ParameterDegree());
  for (double corner : {0.01, 0.5, 0.99}) {
    std::vector<double> sel(r, corner);
    auto result = optimizer.Optimize(prep.value(), sel);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result.value().estimated_cost, 0.0);
    // Plan covers all tables exactly once.
    const auto tables = result.value().plan->Tables();
    EXPECT_EQ(tables.size(), tmpl.tables.size());
  }
}

INSTANTIATE_TEST_SUITE_P(EvaluationTemplates, AllTemplatesTest,
                         ::testing::Values("Q0", "Q1", "Q2", "Q3", "Q4", "Q5",
                                           "Q6", "Q7", "Q8"));

}  // namespace
}  // namespace ppc
