#include "common/status.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  PPC_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PPC_ASSIGN_OR_RETURN(int h, Half(x));
  PPC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

}  // namespace
}  // namespace ppc
