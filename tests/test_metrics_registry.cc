#include "ppc/metrics_registry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "ppc/ppc_framework.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::JsonValidator;
using testutil::SmallTpch;

uint64_t CounterValue(const MetricsRegistry::Snapshot& snap,
                      const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(MetricsRegistryTest, CountersAccumulateAndSnapshotSorted) {
  MetricsRegistry registry;
  registry.counter("b.second").Increment();
  registry.counter("a.first").Increment(41);
  registry.counter("a.first").Increment();
  auto snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[0].second, 42u);
  EXPECT_EQ(snap.counters[1].first, "b.second");
  EXPECT_EQ(snap.counters[1].second, 1u);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  MetricsCounter& a = registry.counter("x");
  MetricsCounter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  LatencyHistogram& h1 = registry.histogram("y");
  LatencyHistogram& h2 = registry.histogram("y");
  EXPECT_EQ(&h1, &h2);
  MetricsGauge& g1 = registry.gauge("z");
  MetricsGauge& g2 = registry.gauge("z");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistryTest, GaugesHoldLastSetValue) {
  MetricsRegistry registry;
  registry.gauge("drift.Q1.precision").Set(0.875);
  registry.gauge("drift.Q1.precision").Set(0.25);
  registry.gauge("drift.Q1.generation").Set(3.0);
  auto snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "drift.Q1.generation");
  EXPECT_EQ(snap.gauges[0].second, 3.0);
  EXPECT_EQ(snap.gauges[1].first, "drift.Q1.precision");
  EXPECT_EQ(snap.gauges[1].second, 0.25);
  // Gauges appear in the JSON document alongside counters/histograms.
  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("drift.Q1.precision"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramPercentilesWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(10.0);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean_us, 10.0, 0.01);
  // Percentiles are exact to within one geometric bucket (factor kGrowth).
  EXPECT_GE(snap.p50_us, 10.0 / LatencyHistogram::kGrowth);
  EXPECT_LE(snap.p50_us, 10.0 * LatencyHistogram::kGrowth);
  EXPECT_LE(snap.p99_us, 10.0 * LatencyHistogram::kGrowth);
}

TEST(MetricsRegistryTest, HistogramSeparatesTailFromBody) {
  LatencyHistogram h;
  for (int i = 0; i < 950; ++i) h.Record(1.0);
  for (int i = 0; i < 50; ++i) h.Record(5000.0);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_LE(snap.p50_us, 1.0 * LatencyHistogram::kGrowth);
  EXPECT_GE(snap.p99_us, 5000.0 / LatencyHistogram::kGrowth);
  EXPECT_GT(snap.sum_us, 950.0);
}

TEST(MetricsRegistryTest, HistogramClampsOutOfRangeValues) {
  LatencyHistogram h;
  h.Record(-5.0);
  h.Record(0.0);
  h.Record(1e12);  // beyond the last bucket bound
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_GE(snap.p99_us, 0.0);
}

TEST(MetricsRegistryTest, AppendJsonStringEscapesHostileInput) {
  // Every emitter that splices a runtime string into JSON goes through
  // AppendJsonString (metrics names, router shard addresses, bench
  // names) — a regression here corrupts every emitted document at once.
  const struct {
    std::string in;
    std::string want;
  } cases[] = {
      {"plain", "\"plain\""},
      {"has \"quotes\"", "\"has \\\"quotes\\\"\""},
      {"back\\slash", "\"back\\\\slash\""},
      {"line\nbreak\ttab", "\"line\\nbreak\\ttab\""},
      {std::string("nul\0byte", 8), "\"nul\\u0000byte\""},
      {"\x01\x1f", "\"\\u0001\\u001f\""},
  };
  for (const auto& c : cases) {
    std::string out;
    AppendJsonString(c.in, &out);
    EXPECT_EQ(out, c.want);
    EXPECT_TRUE(JsonValidator::Valid(out)) << out;
  }
}

TEST(MetricsRegistryTest, SnapshotJsonIsValid) {
  MetricsRegistry registry;
  registry.counter("framework.queries").Increment(7);
  registry.counter("weird\"name\\with\ncontrol").Increment();
  registry.histogram("framework.predict_us").Record(3.5);
  const std::string json = registry.TakeSnapshot().ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("framework.queries"), std::string::npos);
  EXPECT_NE(json.find("p99_us"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptySnapshotJsonIsValid) {
  MetricsRegistry registry;
  EXPECT_TRUE(JsonValidator::Valid(registry.TakeSnapshot().ToJson()));
}

TEST(MetricsRegistryConcurrentTest, ParallelIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Resolve through the registry every time on purpose: get-or-create
      // must be safe against concurrent first use of the same name.
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("shared.counter").Increment();
        registry.histogram("shared.hist_us").Record(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  auto snap = registry.TakeSnapshot();
  EXPECT_EQ(CounterValue(snap, "shared.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryConcurrentTest, SnapshotUnderLoadIsValidJson) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      const std::string name = "writer." + std::to_string(t);
      while (!stop.load(std::memory_order_relaxed)) {
        registry.counter(name).Increment();
        registry.histogram(name + "_us").Record(1.0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(JsonValidator::Valid(registry.TakeSnapshot().ToJson()));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

TEST(FrameworkMetricsTest, SnapshotJsonHasRequiredSections) {
  PpcFramework framework(&SmallTpch(), ServingConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> q1 = {0.5 + rng.Uniform(-0.02, 0.02),
                              0.5 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q1", q1).ok());
    std::vector<double> q3 = {0.4 + rng.Uniform(-0.02, 0.02),
                              0.4 + rng.Uniform(-0.02, 0.02),
                              0.4 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q3", q3).ok());
  }

  const PpcFramework::FrameworkMetrics snap = framework.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snap.registry, "framework.queries"), 400u);
  EXPECT_GT(CounterValue(snap.registry, "framework.predictions.executed"),
            0u);
  ASSERT_EQ(snap.templates.size(), 2u);
  EXPECT_EQ(snap.templates[0].name, "Q1");
  EXPECT_GT(snap.templates[0].stats.precision, 0.0);
  EXPECT_GT(snap.cache.hits, 0u);
  EXPECT_EQ(snap.cache.shards.size(), framework.plan_cache().shard_count());

  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  for (const char* key :
       {"\"counters\"", "\"histograms\"", "\"cache\"", "\"templates\"",
        "\"precision\"", "\"recall\"", "\"beta\"", "\"hits\"", "\"misses\"",
        "\"evictions\"", "\"p50_us\"", "\"p95_us\"", "\"p99_us\"",
        "framework.predict_us", "framework.optimize_us", "\"gauges\"",
        "\"generation\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// Satellite of the retune subsystem: the sliding-window drift signal is
// exported as drift.* gauges so an operator (or the drift benches) can
// watch precision decay and generation handoffs from the metrics
// endpoint alone.
TEST(FrameworkMetricsTest, DriftGaugesTrackWindowedSignal) {
  PpcFramework framework(&SmallTpch(), ServingConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(29);
  for (int i = 0; i < 250; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q1", x).ok());
  }
  const PpcFramework::FrameworkMetrics snap = framework.MetricsSnapshot();
  auto gauge = [&](const std::string& name) -> double {
    for (const auto& [n, v] : snap.registry.gauges) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  };
  // The gauges mirror the per-template windowed estimators exactly.
  ASSERT_EQ(snap.templates.size(), 1u);
  EXPECT_EQ(gauge("drift.Q1.precision"), snap.templates[0].stats.precision);
  EXPECT_EQ(gauge("drift.Q1.recall"), snap.templates[0].stats.recall);
  EXPECT_EQ(gauge("drift.Q1.beta"), snap.templates[0].stats.beta);
  EXPECT_EQ(gauge("drift.Q1.window_full"), 1.0);
  EXPECT_EQ(gauge("drift.Q1.generation"), 0.0);
  EXPECT_EQ(snap.templates[0].generation, 0u);
  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("drift.Q1.precision"), std::string::npos);
}

TEST(FrameworkMetricsTest, OutcomeCountersPartitionQueries) {
  PpcFramework framework(&SmallTpch(), ServingConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                             0.5 + rng.Uniform(-0.02, 0.02)};
    ASSERT_TRUE(framework.ExecuteAtPoint("Q1", x).ok());
  }
  auto snap = framework.MetricsSnapshot().registry;
  const uint64_t queries = CounterValue(snap, "framework.queries");
  const uint64_t executed =
      CounterValue(snap, "framework.predictions.executed");
  const uint64_t null_preds =
      CounterValue(snap, "framework.predictions.null");
  const uint64_t evicted =
      CounterValue(snap, "framework.predictions.evicted");
  const uint64_t random =
      CounterValue(snap, "framework.predictions.random_invocation");
  // Every query is exactly one of: executed prediction, NULL prediction,
  // evicted prediction, random invocation, or a confident prediction the
  // decision layer declined — with random invocations disabled the last
  // class is empty, so the four counters partition the total.
  EXPECT_EQ(executed + null_preds + evicted + random, queries);
  EXPECT_GT(executed, 0u);
  EXPECT_GT(null_preds, 0u);
}

}  // namespace
}  // namespace ppc
