#include "optimizer/contextual_optimizer.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

class ContextualOptimizerTest : public ::testing::Test {
 protected:
  ContextualOptimizerTest() : optimizer_(&SmallTpch()) {}
  ContextualOptimizer optimizer_;
};

TEST_F(ContextualOptimizerTest, ContextInterpolatesCostModel) {
  CostModelParams base;
  const CostModelParams resident = SystemContext{0.0}.Apply(base);
  const CostModelParams disk = SystemContext{1.0}.Apply(base);
  EXPECT_LT(resident.random_page_cost, disk.random_page_cost);
  EXPECT_LT(resident.hash_build_cost_per_row, disk.hash_build_cost_per_row);
  EXPECT_LT(resident.seq_page_cost, disk.seq_page_cost);
  // Disk-bound context reproduces the base I/O ratio.
  EXPECT_NEAR(disk.random_page_cost, base.random_page_cost, 1e-9);
  EXPECT_NEAR(disk.seq_page_cost, base.seq_page_cost, 1e-9);
}

TEST_F(ContextualOptimizerTest, ContextClamped) {
  CostModelParams base;
  const CostModelParams below = SystemContext{-0.5}.Apply(base);
  const CostModelParams zero = SystemContext{0.0}.Apply(base);
  EXPECT_EQ(below.random_page_cost, zero.random_page_cost);
}

TEST_F(ContextualOptimizerTest, MidpointBetweenAnchors) {
  CostModelParams base;
  const CostModelParams mid = SystemContext{0.5}.Apply(base);
  EXPECT_GT(mid.random_page_cost, SystemContext{0.0}.Apply(base).random_page_cost);
  EXPECT_LT(mid.random_page_cost, SystemContext{1.0}.Apply(base).random_page_cost);
}

TEST_F(ContextualOptimizerTest, PlanChoiceDependsOnContext) {
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto prep = optimizer_.Prepare(tmpl).value();
  // At some selectivity point the optimal plan should differ between the
  // memory-resident and disk-bound regimes.
  Rng rng(5);
  int differing = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> sel(4);
    for (double& v : sel) v = rng.Uniform();
    auto resident = optimizer_.Optimize(prep, sel, SystemContext{0.0});
    auto disk = optimizer_.Optimize(prep, sel, SystemContext{1.0});
    ASSERT_TRUE(resident.ok() && disk.ok());
    ++total;
    if (resident.value().plan_id != disk.value().plan_id) ++differing;
  }
  EXPECT_GT(differing, total / 4)
      << "context must move plan boundaries for the extension to matter";
}

TEST_F(ContextualOptimizerTest, ExtendedPointSplitsContext) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto via_extended =
      optimizer_.OptimizeExtended(prep, {0.4, 0.6, 0.3}).value();
  auto direct =
      optimizer_.Optimize(prep, {0.4, 0.6}, SystemContext{0.3}).value();
  EXPECT_EQ(via_extended.plan_id, direct.plan_id);
  EXPECT_EQ(via_extended.estimated_cost, direct.estimated_cost);
}

TEST_F(ContextualOptimizerTest, ExtendedPointArityChecked) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  EXPECT_FALSE(optimizer_.OptimizeExtended(prep, {0.4, 0.6}).ok());
  EXPECT_FALSE(
      optimizer_.OptimizeExtended(prep, {0.4, 0.6, 0.3, 0.1}).ok());
}

TEST_F(ContextualOptimizerTest, CostAtExtendedReplaysUnderContext) {
  const QueryTemplate tmpl = EvaluationTemplate("Q1");
  auto prep = optimizer_.Prepare(tmpl).value();
  auto opt = optimizer_.OptimizeExtended(prep, {0.4, 0.6, 0.8}).value();
  const double same_context =
      optimizer_.CostAtExtended(prep, *opt.plan, {0.4, 0.6, 0.8}).value();
  EXPECT_NEAR(same_context, opt.estimated_cost, opt.estimated_cost * 1e-9);
  // The same plan priced in a different context costs differently.
  const double other_context =
      optimizer_.CostAtExtended(prep, *opt.plan, {0.4, 0.6, 0.0}).value();
  EXPECT_NE(same_context, other_context);
}

TEST_F(ContextualOptimizerTest, ContextIsOptimalInItsOwnRegime) {
  // The plan chosen under context c must be no more expensive at c than
  // the plan chosen under a different context, replayed at c.
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto prep = optimizer_.Prepare(tmpl).value();
  const std::vector<double> sel = {0.5, 0.5, 0.5, 0.5};
  auto resident = optimizer_.Optimize(prep, sel, SystemContext{0.0}).value();
  auto disk = optimizer_.Optimize(prep, sel, SystemContext{1.0}).value();
  std::vector<double> extended = sel;
  extended.push_back(0.0);
  const double resident_cost_of_disk_plan =
      optimizer_.CostAtExtended(prep, *disk.plan, extended).value();
  EXPECT_GE(resident_cost_of_disk_plan,
            resident.estimated_cost * (1.0 - 1e-9));
}

}  // namespace
}  // namespace ppc
