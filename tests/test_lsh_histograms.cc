#include "ppc/lsh_histograms_predictor.h"

#include <gtest/gtest.h>

#include "common/alloc_counter.h"
#include "ppc/metrics.h"
#include "ppc/plan_synopsis.h"
#include "test_util.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SamplePoints;
using testutil::SyntheticCost;

LshHistogramsPredictor::Config BaseConfig() {
  LshHistogramsPredictor::Config cfg;
  cfg.dimensions = 2;
  cfg.transform_count = 5;
  cfg.histogram_buckets = 40;
  cfg.radius = 0.1;
  cfg.confidence_threshold = 0.6;
  return cfg;
}

TEST(PlanSynopsisTest, InsertAndMedianCount) {
  PlanSynopsis synopsis(3, 16,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  for (int i = 0; i < 30; ++i) {
    synopsis.Insert(0, 0.2, 10.0);
    synopsis.Insert(1, 0.5, 10.0);
    synopsis.Insert(2, 0.8, 10.0);
  }
  EXPECT_EQ(synopsis.SampleCount(), 30u);
  // Ranges covering each transform's cluster: median of {30, 30, 30}.
  EXPECT_NEAR(synopsis.MedianCount({0.2, 0.5, 0.8}, {0.05, 0.05, 0.05}), 30.0,
              1.0);
  // Ranges missing all clusters: median 0.
  EXPECT_NEAR(synopsis.MedianCount({0.9, 0.1, 0.3}, {0.05, 0.05, 0.05}), 0.0,
              0.5);
  // Mixed: {30, 0, 0} -> median 0.
  EXPECT_NEAR(synopsis.MedianCount({0.2, 0.1, 0.3}, {0.05, 0.05, 0.05}), 0.0,
              0.5);
}

TEST(PlanSynopsisTest, MedianAverageCostSkipsEmptyTransforms) {
  PlanSynopsis synopsis(3, 16,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  synopsis.Insert(0, 0.2, 100.0);
  synopsis.Insert(1, 0.9, 100.0);  // out of queried range below
  synopsis.Insert(2, 0.2, 100.0);
  EXPECT_NEAR(
      synopsis.MedianAverageCost({0.2, 0.2, 0.2}, {0.05, 0.05, 0.05}),
      100.0, 1e-6);
}

TEST(PlanSynopsisTest, SpaceBytes) {
  PlanSynopsis synopsis(5, 40,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  EXPECT_EQ(synopsis.SpaceBytes(), 5u * 40u * 12u);
}

TEST(PlanSynopsisTest, ClearEmpties) {
  PlanSynopsis synopsis(2, 16,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  synopsis.Insert(0, 0.5, 1.0);
  synopsis.Insert(1, 0.5, 1.0);
  synopsis.Clear();
  EXPECT_EQ(synopsis.SampleCount(), 0u);
}

TEST(LshHistogramsTest, EmptyPredictorIsNull) {
  LshHistogramsPredictor predictor(BaseConfig());
  EXPECT_FALSE(predictor.Predict({0.5, 0.5}).has_value());
  EXPECT_EQ(predictor.SpaceBytes(), 0u);
}

TEST(LshHistogramsTest, LearnsHalfSpace) {
  Rng rng(1);
  LshHistogramsPredictor predictor(BaseConfig(),
                                   SamplePoints(2, 2000, HalfSpacePlan, &rng));
  MetricsAccumulator metrics;
  Rng test_rng(2);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    metrics.Record(predictor.Predict(x).plan, HalfSpacePlan(x));
  }
  EXPECT_GT(metrics.Precision(), 0.9);
  EXPECT_GT(metrics.Recall(), 0.5);
}

TEST(LshHistogramsTest, PredictBatchBitIdenticalToScalarPredict) {
  // The acceptance bar of the batched serving path: for the same points
  // and the same predictor state, PredictBatch must return byte-identical
  // plans, confidences and cost estimates — EXPECT_EQ, no tolerance.
  // Exercise both Z-range modes and a non-zero noise floor.
  for (bool decomposition : {false, true}) {
    auto cfg = BaseConfig();
    cfg.interval_decomposition = decomposition;
    cfg.noise_fraction = 0.002;
    Rng rng(11);
    LshHistogramsPredictor predictor(
        cfg, SamplePoints(2, 2000, HalfSpacePlan, &rng));
    Rng probe(13);
    const size_t count = 100;
    std::vector<double> flat;
    for (size_t i = 0; i < count * 2; ++i) flat.push_back(probe.Uniform());
    const std::vector<Prediction> batch =
        predictor.PredictBatch(flat.data(), count);
    ASSERT_EQ(batch.size(), count);
    for (size_t p = 0; p < count; ++p) {
      const Prediction scalar =
          predictor.Predict({flat[2 * p], flat[2 * p + 1]});
      EXPECT_EQ(batch[p].plan, scalar.plan) << "point " << p;
      EXPECT_EQ(batch[p].confidence, scalar.confidence) << "point " << p;
      EXPECT_EQ(batch[p].estimated_cost, scalar.estimated_cost)
          << "point " << p;
    }
  }
}

TEST(LshHistogramsTest, PredictBatchIntoAllocatesNothingAfterWarmup) {
  // The serving-path contract this PR introduces: once the thread-local
  // arena and scratch buffers are warm, a whole batched prediction
  // performs zero heap allocations. Two warm-up calls, not one — the
  // arena consolidates multi-block state at the start of the second call.
  auto cfg = BaseConfig();
  cfg.noise_fraction = 0.002;
  Rng rng(17);
  LshHistogramsPredictor predictor(
      cfg, SamplePoints(2, 2000, HalfSpacePlan, &rng));
  Rng probe(19);
  const size_t count = 64;
  std::vector<double> flat;
  for (size_t i = 0; i < count * 2; ++i) flat.push_back(probe.Uniform());
  std::vector<Prediction> out(count);
  predictor.PredictBatchInto(flat.data(), count, out.data());
  predictor.PredictBatchInto(flat.data(), count, out.data());
  const uint64_t before = ThreadAllocationCount();
  predictor.PredictBatchInto(flat.data(), count, out.data());
  EXPECT_EQ(ThreadAllocationCount(), before)
      << "warm PredictBatchInto must not touch the heap";
  // And it still answers: the warm path is the real path, not a stub.
  size_t answered = 0;
  for (const Prediction& p : out) answered += p.has_value() ? 1 : 0;
  EXPECT_GT(answered, 0u);
}

TEST(LshHistogramsTest, QueryRangesBatchMatchesScalarQueryRanges) {
  for (bool decomposition : {false, true}) {
    auto cfg = BaseConfig();
    cfg.interval_decomposition = decomposition;
    LshHistogramsPredictor predictor(cfg);
    Rng probe(17);
    const size_t count = 40;
    std::vector<double> flat;
    for (size_t i = 0; i < count * 2; ++i) flat.push_back(probe.Uniform());
    const auto batch = predictor.QueryRangesBatch(flat.data(), count);
    for (size_t p = 0; p < count; ++p) {
      const auto scalar = predictor.QueryRanges({flat[2 * p], flat[2 * p + 1]});
      ASSERT_EQ(batch.size(), scalar.size());
      for (size_t i = 0; i < scalar.size(); ++i) {
        ASSERT_EQ(batch[i][p].size(), scalar[i].size());
        for (size_t k = 0; k < scalar[i].size(); ++k) {
          EXPECT_EQ(batch[i][p][k].lo, scalar[i][k].lo);
          EXPECT_EQ(batch[i][p][k].hi, scalar[i][k].hi);
        }
      }
    }
  }
}

TEST(LshHistogramsTest, PredictBatchOnEmptyPredictorReturnsNulls) {
  LshHistogramsPredictor predictor(BaseConfig());
  const std::vector<double> flat = {0.1, 0.2, 0.8, 0.9};
  const std::vector<Prediction> batch = predictor.PredictBatch(flat.data(), 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch[0].has_value());
  EXPECT_FALSE(batch[1].has_value());
  EXPECT_TRUE(predictor.PredictBatch(flat.data(), 0).empty());
}

TEST(LshHistogramsTest, EstimateCostApproximatesLocalAverage) {
  Rng rng(3);
  LshHistogramsPredictor predictor(BaseConfig(),
                                   SamplePoints(2, 2000, HalfSpacePlan, &rng));
  const std::vector<double> x = {0.2, 0.2};
  const double estimated = predictor.EstimateCost(x, 1);
  // Plan-1 costs over its region span ~[100, 118]; the local average near
  // (0.2, 0.2) is ~104, but bounded-bucket smearing widens this.
  EXPECT_GT(estimated, 95.0);
  EXPECT_LT(estimated, 125.0);
  // A plan with no samples anywhere: no estimate.
  EXPECT_EQ(predictor.EstimateCost(x, 999), 0.0);
}

TEST(LshHistogramsTest, NoiseEliminationSuppressesSparsePlans) {
  // A handful of mislabeled points should not survive the noise floor.
  Rng rng(5);
  auto sample = SamplePoints(2, 2000, HalfSpacePlan, &rng);
  // Inject 5 noise points of plan 77 scattered in plan 1's region.
  for (int i = 0; i < 5; ++i) {
    sample.push_back({{0.05 + 0.02 * i, 0.1}, 77, 1.0});
  }
  auto strict_cfg = BaseConfig();
  strict_cfg.noise_fraction = 0.005;  // floor = 10 points
  LshHistogramsPredictor with_noise_elim(strict_cfg, sample);
  auto lax_cfg = BaseConfig();
  lax_cfg.noise_fraction = 0.0;
  LshHistogramsPredictor without(lax_cfg, sample);

  // With elimination, plan 77's density is clamped to zero, so plan 1
  // retains full confidence at the injection site.
  const auto strict_pred = with_noise_elim.Predict({0.09, 0.1});
  EXPECT_EQ(strict_pred.plan, 1u);
  // And the sparse plan can never be predicted anywhere.
  Rng probe(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    EXPECT_NE(with_noise_elim.Predict(x).plan, 77u);
  }
  (void)without;
}

TEST(LshHistogramsTest, ResetDropsEverything) {
  Rng rng(9);
  LshHistogramsPredictor predictor(BaseConfig(),
                                   SamplePoints(2, 500, HalfSpacePlan, &rng));
  EXPECT_GT(predictor.TotalSamples(), 0u);
  EXPECT_GT(predictor.DistinctPlans(), 0u);
  predictor.Reset();
  EXPECT_EQ(predictor.TotalSamples(), 0u);
  EXPECT_EQ(predictor.DistinctPlans(), 0u);
  EXPECT_FALSE(predictor.Predict({0.2, 0.2}).has_value());
}

TEST(LshHistogramsTest, SpaceScalesWithPlansAndTransformsAndBuckets) {
  auto cfg = BaseConfig();
  cfg.transform_count = 3;
  cfg.histogram_buckets = 20;
  LshHistogramsPredictor predictor(cfg);
  predictor.Insert({{0.2, 0.2}, 1, 1.0});
  EXPECT_EQ(predictor.SpaceBytes(), 3u * 20u * 12u);
  predictor.Insert({{0.8, 0.8}, 2, 1.0});
  EXPECT_EQ(predictor.SpaceBytes(), 2u * 3u * 20u * 12u);
}

TEST(LshHistogramsTest, MoreBucketsImproveRecall) {
  Rng rng(11);
  auto sample = SamplePoints(2, 3000, HalfSpacePlan, &rng);
  auto coarse_cfg = BaseConfig();
  coarse_cfg.histogram_buckets = 6;
  auto fine_cfg = BaseConfig();
  fine_cfg.histogram_buckets = 80;
  LshHistogramsPredictor coarse(coarse_cfg, sample);
  LshHistogramsPredictor fine(fine_cfg, sample);
  MetricsAccumulator coarse_m, fine_m;
  Rng test_rng(13);
  for (int i = 0; i < 600; ++i) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    coarse_m.Record(coarse.Predict(x).plan, HalfSpacePlan(x));
    fine_m.Record(fine.Predict(x).plan, HalfSpacePlan(x));
  }
  EXPECT_GT(fine_m.Recall(), coarse_m.Recall());
}

TEST(LshHistogramsTest, HighDimensionalInputWithReduction) {
  // 6-dimensional plan space explicitly reduced to s = 3 (the paper's
  // "s << r when dimensionality reduction is necessary"). At high
  // dimensions the radius must grow for the query ball to hold comparable
  // sample mass (the paper likewise averages over radii up to d = 0.2).
  auto cfg = BaseConfig();
  cfg.dimensions = 6;
  cfg.output_dims = 3;
  cfg.radius = 0.25;
  Rng rng(17);
  auto label = [](const std::vector<double>& x) -> PlanId {
    return x[0] + x[1] + x[2] < 1.5 ? 1 : 2;
  };
  LshHistogramsPredictor predictor(cfg, SamplePoints(6, 4000, label, &rng));
  MetricsAccumulator metrics;
  Rng test_rng(19);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = test_rng.Uniform();
    metrics.Record(predictor.Predict(x).plan, label(x));
  }
  // Uniform sampling of a 6-D space is sparse (about 5 samples per query
  // ball) and the 6->3 reduction blurs the boundary, so recall is modest —
  // the confidence gate must keep precision high regardless.
  EXPECT_GT(metrics.Precision(), 0.8);
  EXPECT_GT(metrics.Recall(), 0.05);
}

TEST(LshHistogramsTest, QueryRangesClampedToHistogramDomain) {
  // Regression: near a plan-space corner, T(x) +/- delta used to spill
  // outside [0, 1] — outside the histogram's domain. The interval must
  // instead slide inward, keeping both its clamp AND its full 2*delta
  // curve coverage.
  auto cfg = BaseConfig();
  cfg.radius = 0.2;  // wide delta so corners definitely overflow
  LshHistogramsPredictor predictor(cfg);

  const std::vector<std::vector<double>> probes = {
      {0.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}};
  const auto center_ranges = predictor.QueryRanges({0.5, 0.5});
  for (const auto& x : probes) {
    const auto ranges = predictor.QueryRanges(x);
    ASSERT_EQ(ranges.size(), center_ranges.size());
    for (size_t t = 0; t < ranges.size(); ++t) {
      ASSERT_EQ(ranges[t].size(), 1u);
      const ZInterval& iv = ranges[t][0];
      EXPECT_GE(iv.lo, 0.0);
      EXPECT_LE(iv.hi, 1.0);
      EXPECT_LE(iv.lo, iv.hi);
      // Sliding preserves the curve length the center point gets.
      EXPECT_NEAR(iv.width(), center_ranges[t][0].width(), 1e-12);
    }
  }
}

TEST(LshHistogramsTest, DeterministicForSeed) {
  Rng rng_a(21), rng_b(21);
  auto cfg = BaseConfig();
  LshHistogramsPredictor a(cfg, SamplePoints(2, 500, HalfSpacePlan, &rng_a));
  LshHistogramsPredictor b(cfg, SamplePoints(2, 500, HalfSpacePlan, &rng_b));
  Rng test_rng(23);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    const auto pa = a.Predict(x);
    const auto pb = b.Predict(x);
    EXPECT_EQ(pa.plan, pb.plan);
    EXPECT_EQ(pa.confidence, pb.confidence);
  }
}

}  // namespace
}  // namespace ppc
