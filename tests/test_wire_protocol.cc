#include "server/wire_protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ppc {
namespace wire {
namespace {

/// Strips the u32 length prefix off a single encoded frame.
std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), sizeof(uint32_t));
  return frame.substr(sizeof(uint32_t));
}

Request MakePredictRequest(uint64_t id) {
  Request request;
  request.type = MessageType::kPredict;
  request.id = id;
  request.template_name = "Q3";
  request.point = {0.25, 0.5, 0.75};
  return request;
}

Request MakeBatchRequest(uint64_t id, uint32_t count, uint32_t dims) {
  Request request;
  request.type = MessageType::kPredictBatch;
  request.id = id;
  request.template_name = "Q3";
  request.batch_dims = dims;
  for (uint32_t p = 0; p < count; ++p) {
    for (uint32_t j = 0; j < dims; ++j) {
      request.batch_points.push_back(0.01 * static_cast<double>(p * dims + j));
    }
  }
  return request;
}

/// Byte offset of the u32 point count in an encoded PREDICT_BATCH
/// payload: type(1) + id(8) + name_len(4) + name.
size_t BatchCountOffset(const Request& request) {
  return 1 + 8 + 4 + request.template_name.size();
}

TEST(WireProtocolTest, RequestRoundTripsAllTypes) {
  for (MessageType type :
       {MessageType::kPredict, MessageType::kExecute, MessageType::kMetrics,
        MessageType::kPing, MessageType::kShutdown}) {
    Request request;
    request.type = type;
    request.id = 42;
    if (type == MessageType::kPredict || type == MessageType::kExecute) {
      request.template_name = "Q7";
      request.point = {0.1, 0.9};
    }
    std::string frame;
    EncodeRequest(request, &frame);
    auto decoded = DecodeRequest(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, type);
    EXPECT_EQ(decoded.value().id, 42u);
    EXPECT_EQ(decoded.value().template_name, request.template_name);
    EXPECT_EQ(decoded.value().point, request.point);
  }
}

TEST(WireProtocolTest, PredictResponseRoundTrips) {
  Response response;
  response.type = MessageType::kPredict;
  response.id = 7;
  response.predict.plan = 987654321;
  response.predict.confidence = 0.875;
  response.predict.cache_hit = true;
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().predict.plan, 987654321u);
  EXPECT_DOUBLE_EQ(decoded.value().predict.confidence, 0.875);
  EXPECT_TRUE(decoded.value().predict.cache_hit);
}

TEST(WireProtocolTest, ExecuteResponseRoundTripsAllFlags) {
  Response response;
  response.type = MessageType::kExecute;
  response.id = 9;
  response.execute.executed_plan = 11;
  response.execute.optimal_plan = 12;
  response.execute.used_prediction = true;
  response.execute.cache_hit = true;
  response.execute.optimizer_invoked = true;
  response.execute.prediction_evicted = true;
  response.execute.negative_feedback_triggered = true;
  response.execute.failed_over = true;
  response.execute.execution_cost = 123.5;
  response.execute.optimize_micros = 10.0;
  response.execute.predict_micros = 2.0;
  response.execute.execute_micros = 5.5;
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  const Response::Execute& e = decoded.value().execute;
  EXPECT_EQ(e.executed_plan, 11u);
  EXPECT_EQ(e.optimal_plan, 12u);
  EXPECT_TRUE(e.used_prediction);
  EXPECT_TRUE(e.cache_hit);
  EXPECT_TRUE(e.optimizer_invoked);
  EXPECT_TRUE(e.prediction_evicted);
  EXPECT_TRUE(e.negative_feedback_triggered);
  EXPECT_TRUE(e.failed_over);
  EXPECT_DOUBLE_EQ(e.execution_cost, 123.5);
}

TEST(WireProtocolTest, ErrorResponseRoundTrips) {
  Response response;
  response.type = MessageType::kExecute;
  response.id = 3;
  response.status = WireStatus::kBusy;
  response.error = "request queue full";
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, WireStatus::kBusy);
  EXPECT_EQ(decoded.value().error, "request queue full");
  EXPECT_FALSE(decoded.value().ok());
}

TEST(WireProtocolTest, MetricsResponseCarriesJson) {
  Response response;
  response.type = MessageType::kMetrics;
  response.id = 1;
  response.metrics_json = "{\"counters\": {}}";
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().metrics_json, "{\"counters\": {}}");
}

TEST(WireProtocolTest, RejectsUnknownTypeStatusAndTrailingBytes) {
  std::string frame;
  EncodeRequest(MakePredictRequest(1), &frame);
  std::string payload = PayloadOf(frame);
  payload[0] = 99;  // unknown type
  EXPECT_FALSE(DecodeRequest(payload).ok());

  payload = PayloadOf(frame);
  payload.push_back('x');  // trailing garbage
  EXPECT_FALSE(DecodeRequest(payload).ok());

  Response pong;
  pong.type = MessageType::kPing;
  pong.id = 2;
  frame.clear();
  EncodeResponse(pong, &frame);
  payload = PayloadOf(frame);
  payload[sizeof(uint8_t) + sizeof(uint64_t)] = 77;  // unknown status
  EXPECT_FALSE(DecodeResponse(payload).ok());
}

TEST(WireProtocolTest, RejectsOversizedPointArity) {
  // A frame can *declare* a huge arity without carrying the doubles; the
  // decoder must refuse before any allocation sized from the claim.
  std::string frame;
  EncodeRequest(MakePredictRequest(1), &frame);
  std::string payload = PayloadOf(frame);
  // Locate the u32 arity: type(1) + id(8) + name_len(4) + name(2).
  const size_t arity_offset = 1 + 8 + 4 + 2;
  const uint32_t huge = kMaxPointDimensions + 1;
  std::memcpy(payload.data() + arity_offset, &huge, sizeof(huge));
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(WireProtocolTest, PredictBatchRequestRoundTrips) {
  const Request request = MakeBatchRequest(21, /*count=*/5, /*dims=*/3);
  std::string frame;
  EncodeRequest(request, &frame);
  auto decoded = DecodeRequest(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kPredictBatch);
  EXPECT_EQ(decoded.value().id, 21u);
  EXPECT_EQ(decoded.value().template_name, "Q3");
  EXPECT_EQ(decoded.value().batch_dims, 3u);
  EXPECT_EQ(decoded.value().batch_count(), 5u);
  EXPECT_EQ(decoded.value().batch_points, request.batch_points);
}

TEST(WireProtocolTest, PredictBatchResponseRoundTripsIncludingNullPlans) {
  Response response;
  response.type = MessageType::kPredictBatch;
  response.id = 4;
  response.batch.push_back(Response::Predict{77, 0.9, true});
  // An abstention is an answer: NULL plan, zero confidence, no cache hit.
  response.batch.push_back(Response::Predict{kNullPlanId, 0.0, false});
  response.batch.push_back(Response::Predict{12345, 0.75, false});
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().batch.size(), 3u);
  EXPECT_EQ(decoded.value().batch[0].plan, 77u);
  EXPECT_DOUBLE_EQ(decoded.value().batch[0].confidence, 0.9);
  EXPECT_TRUE(decoded.value().batch[0].cache_hit);
  EXPECT_EQ(decoded.value().batch[1].plan, kNullPlanId);
  EXPECT_FALSE(decoded.value().batch[1].cache_hit);
  EXPECT_EQ(decoded.value().batch[2].plan, 12345u);
}

TEST(WireProtocolTest, RejectsZeroLengthBatch) {
  // A zero-point batch is semantically meaningless; the decoder refuses
  // it outright rather than leaving each layer to special-case emptiness.
  const Request request = MakeBatchRequest(1, /*count=*/4, /*dims=*/2);
  std::string frame;
  EncodeRequest(request, &frame);
  std::string payload = PayloadOf(frame);
  const uint32_t zero = 0;
  std::memcpy(payload.data() + BatchCountOffset(request), &zero, sizeof(zero));
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(WireProtocolTest, RejectsZeroArityBatchPoints) {
  const Request request = MakeBatchRequest(1, /*count=*/4, /*dims=*/2);
  std::string frame;
  EncodeRequest(request, &frame);
  std::string payload = PayloadOf(frame);
  const uint32_t zero = 0;
  std::memcpy(payload.data() + BatchCountOffset(request) + sizeof(uint32_t),
              &zero, sizeof(zero));
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(WireProtocolTest, RejectsOversizedBatchDeclaration) {
  // As with point arity, a frame can declare a huge batch without
  // carrying the doubles; the decoder must refuse before sizing any
  // allocation from the claim.
  const Request request = MakeBatchRequest(1, /*count=*/2, /*dims=*/2);
  std::string frame;
  EncodeRequest(request, &frame);
  std::string payload = PayloadOf(frame);
  const uint32_t huge = kMaxBatchPoints + 1;
  std::memcpy(payload.data() + BatchCountOffset(request), &huge, sizeof(huge));
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

TEST(WireProtocolTest, RejectsTruncatedBatchBodies) {
  // Every strict prefix of a batch payload must fail: mid-count,
  // mid-dims, and anywhere inside the flattened coordinate block.
  const Request request = MakeBatchRequest(1, /*count=*/8, /*dims=*/3);
  std::string frame;
  EncodeRequest(request, &frame);
  const std::string payload = PayloadOf(frame);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(payload.substr(0, cut)).ok())
        << "truncation at " << cut << " of " << payload.size();
  }
}

TEST(WireProtocolTest, SnapshotRequestRoundTripsOpaqueBlob) {
  Request request;
  request.type = MessageType::kSnapshotApply;
  request.id = 77;
  // The blob is opaque to the codec — arbitrary bytes including NULs and
  // high bits must survive verbatim.
  request.snapshot_blob = std::string("PPCR\x00\x01\xff\x80 blob", 13);
  std::string frame;
  EncodeRequest(request, &frame);
  auto decoded = DecodeRequest(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kSnapshotApply);
  EXPECT_EQ(decoded.value().id, 77u);
  EXPECT_EQ(decoded.value().snapshot_blob, request.snapshot_blob);

  Request pull;
  pull.type = MessageType::kSnapshot;
  pull.id = 78;
  frame.clear();
  EncodeRequest(pull, &frame);
  auto pull_decoded = DecodeRequest(PayloadOf(frame));
  ASSERT_TRUE(pull_decoded.ok());
  EXPECT_EQ(pull_decoded.value().type, MessageType::kSnapshot);
}

TEST(WireProtocolTest, SnapshotResponsesRoundTrip) {
  Response snapshot;
  snapshot.type = MessageType::kSnapshot;
  snapshot.id = 5;
  snapshot.snapshot_blob = std::string("\x00\x01\x02payload", 10);
  std::string frame;
  EncodeResponse(snapshot, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().snapshot_blob, snapshot.snapshot_blob);

  Response applied;
  applied.type = MessageType::kSnapshotApply;
  applied.id = 6;
  applied.snapshot_applied = 17;
  frame.clear();
  EncodeResponse(applied, &frame);
  auto applied_decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(applied_decoded.ok());
  EXPECT_EQ(applied_decoded.value().snapshot_applied, 17u);
}

TEST(WireProtocolTest, TopologyRequestRoundTripsBothOps) {
  for (TopologyOp op : {TopologyOp::kAdd, TopologyOp::kRemove}) {
    Request request;
    request.type = MessageType::kTopology;
    request.id = 3;
    request.topology_op = op;
    request.topology_host = "127.0.0.1";
    request.topology_port = 54321;
    std::string frame;
    EncodeRequest(request, &frame);
    auto decoded = DecodeRequest(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().topology_op, op);
    EXPECT_EQ(decoded.value().topology_host, "127.0.0.1");
    EXPECT_EQ(decoded.value().topology_port, 54321);
  }

  Response response;
  response.type = MessageType::kTopology;
  response.id = 3;
  response.backend_count = 4;
  std::string frame;
  EncodeResponse(response, &frame);
  auto decoded = DecodeResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().backend_count, 4u);
}

TEST(WireProtocolTest, RejectsInvalidTopologyBodies) {
  Request request;
  request.type = MessageType::kTopology;
  request.id = 3;
  request.topology_op = TopologyOp::kAdd;
  request.topology_host = "localhost";
  request.topology_port = 1;
  std::string frame;
  EncodeRequest(request, &frame);
  std::string payload = PayloadOf(frame);
  // Body layout: type(1) + id(8) + u8 op + string host + u32 port.
  std::string bad_op = payload;
  bad_op[1 + 8] = 3;  // neither kAdd nor kRemove
  EXPECT_FALSE(DecodeRequest(bad_op).ok());
  std::string bad_port = payload;
  for (size_t i = payload.size() - 4; i < payload.size(); ++i) {
    bad_port[i] = 0;  // port 0 is never routable
  }
  EXPECT_FALSE(DecodeRequest(bad_port).ok());
  std::string oversized_port = payload;
  std::memset(oversized_port.data() + payload.size() - 4, 0xff, 4);
  EXPECT_FALSE(DecodeRequest(oversized_port).ok());
}

TEST(WireProtocolTest, RejectsTruncatedSnapshotAndTopologyBodies) {
  Request apply;
  apply.type = MessageType::kSnapshotApply;
  apply.id = 1;
  apply.snapshot_blob = "0123456789abcdef";
  Request topology;
  topology.type = MessageType::kTopology;
  topology.id = 2;
  topology.topology_host = "shard-a.internal";
  topology.topology_port = 9000;
  for (const Request& request : {apply, topology}) {
    std::string frame;
    EncodeRequest(request, &frame);
    const std::string payload = PayloadOf(frame);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_FALSE(DecodeRequest(payload.substr(0, cut)).ok())
          << MessageTypeName(request.type) << " truncation at " << cut;
    }
  }
}

TEST(FrameBufferTest, ReassemblesByteByByte) {
  std::string frame;
  EncodeRequest(MakePredictRequest(5), &frame);
  FrameBuffer buffer;
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buffer.Append(&frame[i], 1);
    auto next = buffer.Next(&payload);
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next.value());
  }
  buffer.Append(&frame[frame.size() - 1], 1);
  auto next = buffer.Next(&payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value());
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 5u);
}

TEST(FrameBufferTest, ExtractsMultiplePipelinedFrames) {
  std::string stream;
  for (uint64_t id = 1; id <= 10; ++id) {
    EncodeRequest(MakePredictRequest(id), &stream);
  }
  FrameBuffer buffer;
  buffer.Append(stream.data(), stream.size());
  for (uint64_t id = 1; id <= 10; ++id) {
    std::string payload;
    auto next = buffer.Next(&payload);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value());
    auto decoded = DecodeRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().id, id);
  }
  std::string payload;
  EXPECT_FALSE(buffer.Next(&payload).value());
}

TEST(FrameBufferTest, OversizedDeclaredLengthPoisonsTheStream) {
  FrameBuffer buffer(/*max_frame_bytes=*/1024);
  const uint32_t huge = 1 << 30;
  char prefix[sizeof(huge)];
  std::memcpy(prefix, &huge, sizeof(huge));
  buffer.Append(prefix, sizeof(prefix));
  std::string payload;
  EXPECT_FALSE(buffer.Next(&payload).ok());
  // Once poisoned, always poisoned — the caller must drop the connection.
  EXPECT_FALSE(buffer.Next(&payload).ok());
}

TEST(FrameBufferTest, ZeroLengthFrameIsAFramingViolation) {
  FrameBuffer buffer;
  const uint32_t zero = 0;
  char prefix[sizeof(zero)];
  std::memcpy(prefix, &zero, sizeof(zero));
  buffer.Append(prefix, sizeof(prefix));
  std::string payload;
  EXPECT_FALSE(buffer.Next(&payload).ok());
}

/// Fuzz-style robustness: random truncations, corruptions and garbage
/// must decode to a clean error (or, for corruptions that happen to stay
/// well-formed, a success) — never crash, hang, or read out of bounds.
/// Run under ASan by scripts/check.sh for the memory-safety half of that
/// claim.
class WireProtocolFuzzTest : public ::testing::Test {
 protected:
  /// A pseudo-random but decodable request of any type.
  Request RandomRequest() {
    Request request;
    request.type = static_cast<MessageType>(1 + rng_.UniformInt(uint64_t{9}));
    request.id = rng_.Next();
    if (request.type == MessageType::kPredict ||
        request.type == MessageType::kExecute ||
        request.type == MessageType::kPredictBatch) {
      const uint64_t name_len = rng_.UniformInt(uint64_t{8});
      for (uint64_t i = 0; i < name_len; ++i) {
        request.template_name.push_back(
            static_cast<char>('A' + rng_.UniformInt(uint64_t{26})));
      }
    }
    if (request.type == MessageType::kPredict ||
        request.type == MessageType::kExecute) {
      const uint64_t dims = rng_.UniformInt(uint64_t{6});
      for (uint64_t i = 0; i < dims; ++i) {
        request.point.push_back(rng_.Uniform());
      }
    } else if (request.type == MessageType::kPredictBatch) {
      // A decodable batch needs count >= 1 and dims >= 1.
      const uint64_t count = 1 + rng_.UniformInt(uint64_t{8});
      const uint64_t dims = 1 + rng_.UniformInt(uint64_t{5});
      request.batch_dims = static_cast<uint32_t>(dims);
      for (uint64_t i = 0; i < count * dims; ++i) {
        request.batch_points.push_back(rng_.Uniform());
      }
    } else if (request.type == MessageType::kSnapshotApply) {
      const uint64_t blob_len = rng_.UniformInt(uint64_t{64});
      for (uint64_t i = 0; i < blob_len; ++i) {
        request.snapshot_blob.push_back(RandomByte());
      }
    } else if (request.type == MessageType::kTopology) {
      request.topology_op =
          rng_.UniformInt(uint64_t{2}) == 0 ? TopologyOp::kAdd
                                            : TopologyOp::kRemove;
      const uint64_t host_len = rng_.UniformInt(uint64_t{16});
      for (uint64_t i = 0; i < host_len; ++i) {
        request.topology_host.push_back(
            static_cast<char>('a' + rng_.UniformInt(uint64_t{26})));
      }
      request.topology_port =
          static_cast<uint16_t>(1 + rng_.UniformInt(uint64_t{65535}));
    }
    return request;
  }

  size_t RandomIndex(size_t size) {
    return static_cast<size_t>(rng_.UniformInt(static_cast<uint64_t>(size)));
  }

  char RandomByte() {
    return static_cast<char>(rng_.UniformInt(uint64_t{256}));
  }

  Rng rng_{20260805};
};

TEST_F(WireProtocolFuzzTest, TruncatedPayloadsFailCleanly) {
  for (int iter = 0; iter < 500; ++iter) {
    std::string frame;
    EncodeRequest(RandomRequest(), &frame);
    const std::string payload = PayloadOf(frame);
    const size_t cut = RandomIndex(payload.size());
    const auto decoded = DecodeRequest(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << cut
                               << " of " << payload.size();
  }
}

TEST_F(WireProtocolFuzzTest, CorruptedPayloadsNeverCrash) {
  for (int iter = 0; iter < 2000; ++iter) {
    std::string frame;
    EncodeRequest(RandomRequest(), &frame);
    std::string payload = PayloadOf(frame);
    const uint64_t flips = 1 + rng_.UniformInt(uint64_t{4});
    for (uint64_t i = 0; i < flips; ++i) {
      payload[RandomIndex(payload.size())] = RandomByte();
    }
    // Either outcome is fine; what matters is bounded, crash-free work.
    (void)DecodeRequest(payload);
    (void)DecodeResponse(payload);
  }
}

TEST_F(WireProtocolFuzzTest, RandomGarbageStreamsNeverCrashTheDeframer) {
  for (int iter = 0; iter < 200; ++iter) {
    FrameBuffer buffer(/*max_frame_bytes=*/4096);
    std::string garbage;
    const uint64_t len = rng_.UniformInt(uint64_t{512});
    for (uint64_t i = 0; i < len; ++i) {
      garbage.push_back(RandomByte());
    }
    buffer.Append(garbage.data(), garbage.size());
    std::string payload;
    // Drain until need-more or poison; both are clean terminal states.
    while (true) {
      auto next = buffer.Next(&payload);
      if (!next.ok() || !next.value()) break;
      (void)DecodeRequest(payload);
    }
  }
}

TEST_F(WireProtocolFuzzTest, ResponsesSurviveTruncationAndCorruption) {
  for (int iter = 0; iter < 500; ++iter) {
    Response response;
    response.type = MessageType::kExecute;
    response.id = rng_.Next();
    if (rng_.UniformInt(uint64_t{2}) == 0) {
      response.status = WireStatus::kBadRequest;
      response.error = "boom";
    } else {
      response.execute.executed_plan = rng_.Next();
      response.execute.execution_cost = rng_.Uniform();
    }
    std::string frame;
    EncodeResponse(response, &frame);
    std::string payload = PayloadOf(frame);
    const size_t cut = RandomIndex(payload.size());
    EXPECT_FALSE(DecodeResponse(payload.substr(0, cut)).ok());
    payload[RandomIndex(payload.size())] = RandomByte();
    (void)DecodeResponse(payload);
  }
}

}  // namespace
}  // namespace wire
}  // namespace ppc
