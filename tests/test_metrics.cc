#include "ppc/metrics.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

TEST(MetricsTest, EmptyAccumulator) {
  MetricsAccumulator m;
  EXPECT_EQ(m.Precision(), 0.0);
  EXPECT_EQ(m.Recall(), 0.0);
  EXPECT_EQ(m.total(), 0u);
}

TEST(MetricsTest, Definition4Semantics) {
  // Paper Def. 4: precision over NULL-free predictions, recall over all.
  MetricsAccumulator m;
  m.Record(1, 1);              // correct
  m.Record(2, 1);              // wrong
  m.Record(1, 1);              // correct
  m.Record(kNullPlanId, 1);    // NULL
  m.Record(kNullPlanId, 2);    // NULL
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.answered(), 3u);
  EXPECT_EQ(m.correct(), 2u);
  EXPECT_EQ(m.wrong(), 1u);
  EXPECT_NEAR(m.Precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.Recall(), 2.0 / 5.0, 1e-12);
}

TEST(MetricsTest, AllNullGivesZeroPrecision) {
  MetricsAccumulator m;
  m.Record(kNullPlanId, 1);
  EXPECT_EQ(m.Precision(), 0.0);
  EXPECT_EQ(m.Recall(), 0.0);
}

TEST(MetricsTest, PerfectPredictor) {
  MetricsAccumulator m;
  for (PlanId p = 1; p <= 10; ++p) m.Record(p, p);
  EXPECT_EQ(m.Precision(), 1.0);
  EXPECT_EQ(m.Recall(), 1.0);
}

TEST(MetricsTest, MergeCombinesCounts) {
  MetricsAccumulator a, b;
  a.Record(1, 1);
  a.Record(kNullPlanId, 1);
  b.Record(2, 1);
  b.Record(1, 1);
  a.Merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.answered(), 3u);
  EXPECT_EQ(a.correct(), 2u);
}

TEST(MetricsTest, ResetClears) {
  MetricsAccumulator m;
  m.Record(1, 1);
  m.Reset();
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.Precision(), 0.0);
}

TEST(MetricsTest, RecallNeverExceedsPrecision) {
  // recall = precision * (answered/total) <= precision.
  MetricsAccumulator m;
  m.Record(1, 1);
  m.Record(kNullPlanId, 1);
  m.Record(2, 3);
  EXPECT_LE(m.Recall(), m.Precision() + 1e-12);
}

}  // namespace
}  // namespace ppc
