#include "ppc/predictor_state.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "ppc/ppc_framework.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

PpcFramework::Config BaseConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

// Drives clustered EXECUTE traffic so the template's predictor learns a
// confident region around (0.5, ..., 0.5).
void Train(PpcFramework* framework, const std::string& tmpl, size_t dims,
           int queries, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < queries; ++i) {
    std::vector<double> x(dims);
    for (double& v : x) v = 0.5 + rng.Uniform(-0.02, 0.02);
    ASSERT_TRUE(framework->ExecuteAtPoint(tmpl, x).ok());
  }
}

class PredictorStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    framework_ = std::make_unique<PpcFramework>(&SmallTpch(), BaseConfig());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q1")).ok());
    ASSERT_TRUE(framework_->RegisterTemplate(EvaluationTemplate("Q3")).ok());
    Train(framework_.get(), "Q1", 2, 200, 1);
    Train(framework_.get(), "Q3", 3, 200, 2);
  }

  std::unique_ptr<PpcFramework> framework_;
};

TEST_F(PredictorStateTest, CaptureSerializeRestoreIsBitStable) {
  const PredictorState state = PredictorState::Capture(*framework_);
  ASSERT_EQ(state.entries().size(), 2u);
  EXPECT_EQ(state.entries()[0].name, "Q1");
  EXPECT_EQ(state.entries()[1].name, "Q3");
  EXPECT_EQ(state.entries()[0].generation, 0u);
  EXPECT_EQ(state.entries()[1].generation, 0u);
  EXPECT_GT(state.sequence(), 0u);

  const std::string bytes = state.Serialize();
  auto restored = PredictorState::Restore(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().sequence(), state.sequence());
  EXPECT_EQ(restored.value().ContentHash(), state.ContentHash());
  EXPECT_EQ(restored.value().Serialize(), bytes);
}

TEST_F(PredictorStateTest, SequenceIncreasesPerCapture) {
  const PredictorState a = PredictorState::Capture(*framework_);
  const PredictorState b = PredictorState::Capture(*framework_);
  EXPECT_GT(b.sequence(), a.sequence());
}

TEST_F(PredictorStateTest, ApplyWarmStartsAnotherFramework) {
  PpcFramework replica(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q3")).ok());

  const PredictorState state = PredictorState::Capture(*framework_);
  auto report = state.ApplyTo(&replica);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().templates_applied, 2u);
  EXPECT_EQ(report.value().templates_skipped, 0u);

  // The replica answers every prediction exactly as the leader does,
  // without having executed a single query itself.
  Rng probe(7);
  int nonnull = 0;
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {0.5 + probe.Uniform(-0.02, 0.02),
                                   0.5 + probe.Uniform(-0.02, 0.02)};
    auto leader = framework_->PredictAtPoint("Q1", x);
    auto follower = replica.PredictAtPoint("Q1", x);
    ASSERT_TRUE(leader.ok());
    ASSERT_TRUE(follower.ok());
    EXPECT_EQ(follower.value().plan, leader.value().plan);
    EXPECT_EQ(follower.value().confidence, leader.value().confidence);
    if (follower.value().plan != kNullPlanId) ++nonnull;
  }
  EXPECT_GT(nonnull, 50);
}

TEST_F(PredictorStateTest, ApplySkipsTemplatesUnknownToTarget) {
  PpcFramework replica(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  const PredictorState state = PredictorState::Capture(*framework_);
  auto report = state.ApplyTo(&replica);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().templates_applied, 1u);
  EXPECT_EQ(report.value().templates_skipped, 1u);
}

TEST_F(PredictorStateTest, ApplyRejectsConfigMismatch) {
  PpcFramework::Config other = BaseConfig();
  other.online.predictor.histogram_buckets = 16;
  PpcFramework replica(&SmallTpch(), other);
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  const PredictorState state = PredictorState::Capture(*framework_);
  auto report = state.ApplyTo(&replica);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PredictorStateTest, DeltaCarriesOnlyChangedTemplates) {
  const PredictorState base = PredictorState::Capture(*framework_);
  Train(framework_.get(), "Q1", 2, 50, 11);  // Q3 untouched
  const PredictorState next = PredictorState::Capture(*framework_);

  const std::string delta_bytes = next.SerializeDelta(base);
  EXPECT_LT(delta_bytes.size(), next.Serialize().size());
  auto merged = PredictorState::RestoreDelta(delta_bytes, base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().ContentHash(), next.ContentHash());
  EXPECT_EQ(merged.value().sequence(), next.sequence());
}

TEST_F(PredictorStateTest, UnchangedDeltaIsEmpty) {
  const PredictorState base = PredictorState::Capture(*framework_);
  const PredictorState next = PredictorState::Capture(*framework_);
  auto merged =
      PredictorState::RestoreDelta(next.SerializeDelta(base), base);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().ContentHash(), base.ContentHash());
}

TEST_F(PredictorStateTest, RestoreRejectsMixedUpBlobKinds) {
  const PredictorState base = PredictorState::Capture(*framework_);
  // A delta blob needs a base.
  auto as_full = PredictorState::Restore(base.SerializeDelta(base));
  ASSERT_FALSE(as_full.ok());
  EXPECT_EQ(as_full.status().code(), StatusCode::kInvalidArgument);
  // A full blob is not a delta.
  auto as_delta = PredictorState::RestoreDelta(base.Serialize(), base);
  ASSERT_FALSE(as_delta.ok());
  EXPECT_EQ(as_delta.status().code(), StatusCode::kInvalidArgument);
}

// Generation threading across the replication path (DESIGN.md §17): a
// leader that refit past generation 0 ships entries stamped with the new
// generation; a generation-0 replica follows it through the warm handoff,
// and a stale (older-generation) snapshot can never roll a replica back.
TEST_F(PredictorStateTest, ApplyFollowsLeaderAcrossGenerations) {
  PpcFramework::Config leader_cfg = BaseConfig();
  leader_cfg.retune.enabled = true;
  leader_cfg.retune.min_reservoir_points = 16;
  leader_cfg.retune.reservoir_capacity = 256;
  PpcFramework leader(&SmallTpch(), leader_cfg);
  ASSERT_TRUE(leader.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(leader.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  Train(&leader, "Q1", 2, 200, 1);
  Train(&leader, "Q3", 3, 200, 2);

  const PredictorState before = PredictorState::Capture(leader);
  ASSERT_EQ(before.entries()[0].generation, 0u);

  // Force the leader to refit Q1 (Q3 stays at generation 0).
  ASSERT_TRUE(leader.retune_controller()->ForceRetune("Q1"));
  leader.retune_controller()->WaitIdle();
  ASSERT_EQ(leader.online_predictor("Q1")->predictor().transform_generation(),
            1u);

  const PredictorState after = PredictorState::Capture(leader);
  ASSERT_EQ(after.entries()[0].name, "Q1");
  EXPECT_EQ(after.entries()[0].generation, 1u);
  EXPECT_EQ(after.entries()[1].generation, 0u);

  // A generation-0 replica applying the refit snapshot installs Q1's new
  // generation via the warm handoff and adopts Q3 in place.
  PpcFramework replica(&SmallTpch(), BaseConfig());
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(replica.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  auto report = after.ApplyTo(&replica);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().templates_applied, 2u);
  EXPECT_EQ(report.value().generations_installed, 1u);
  EXPECT_EQ(
      replica.online_predictor("Q1")->predictor().transform_generation(), 1u);

  // The replica now serves Q1 bit-identically to the refit leader.
  Rng probe(7);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {0.5 + probe.Uniform(-0.02, 0.02),
                                   0.5 + probe.Uniform(-0.02, 0.02)};
    auto l = leader.PredictAtPoint("Q1", x);
    auto r = replica.PredictAtPoint("Q1", x);
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().plan, l.value().plan);
    EXPECT_EQ(r.value().confidence, l.value().confidence);
  }

  // The pre-refit capture is now stale for Q1: applying it must fail
  // rather than silently rolling the replica back a generation.
  auto stale = before.ApplyTo(&replica);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);
}

TEST_F(PredictorStateTest, RestoreRejectsCorruption) {
  const std::string bytes = PredictorState::Capture(*framework_).Serialize();
  EXPECT_EQ(PredictorState::Restore("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PredictorState::Restore("garbage").status().code(),
            StatusCode::kInvalidArgument);
  // Truncation sweep over structural prefixes plus a byte-level tail.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{12}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto restored = PredictorState::Restore(bytes.substr(0, cut));
    ASSERT_FALSE(restored.ok()) << "cut at " << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
  // Bit flips anywhere fail the envelope checksum (or a field check).
  for (size_t byte = 0; byte < bytes.size(); byte += 13) {
    std::string mutated = bytes;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x40);
    auto restored = PredictorState::Restore(mutated);
    ASSERT_FALSE(restored.ok()) << "byte " << byte;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << "byte " << byte;
  }
}

}  // namespace
}  // namespace ppc
