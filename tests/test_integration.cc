// Cross-module integration properties, parameterized over all nine
// evaluation templates: the invariants the whole PPC premise rests on,
// checked end to end through catalog -> stats -> optimizer -> evaluator ->
// predictor.

#include <gtest/gtest.h>

#include <set>

#include "exec/execution_simulator.h"
#include "optimizer/plan_evaluator.h"
#include "ppc/ppc_framework.h"
#include "test_util.h"
#include "workload/selectivity_mapper.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

class TemplateIntegrationTest : public ::testing::TestWithParam<const char*> {
 protected:
  TemplateIntegrationTest()
      : optimizer_(&SmallTpch()), tmpl_(EvaluationTemplate(GetParam())) {
    auto prep = optimizer_.Prepare(tmpl_);
    PPC_CHECK(prep.ok());
    prep_ = std::move(prep).value();
  }

  std::vector<double> RandomPoint(Rng* rng) const {
    std::vector<double> point(static_cast<size_t>(tmpl_.ParameterDegree()));
    for (double& v : point) v = rng->Uniform();
    return point;
  }

  Optimizer optimizer_;
  QueryTemplate tmpl_;
  PreparedTemplate prep_;
};

TEST_P(TemplateIntegrationTest, OptimalityInvariant) {
  // The plan chosen at x must be the cheapest (up to the fuzz factor)
  // among all plans chosen anywhere, replayed at x. This is the exact
  // property the plan space (Def. 2) encodes.
  Rng rng(101);
  std::vector<std::pair<PlanId, std::unique_ptr<PlanNode>>> pool;
  std::set<PlanId> seen;
  for (int i = 0; i < 30; ++i) {
    auto opt = optimizer_.Optimize(prep_, RandomPoint(&rng)).value();
    if (seen.insert(opt.plan_id).second) {
      pool.emplace_back(opt.plan_id, std::move(opt.plan));
    }
  }
  const double fuzz = optimizer_.options().cost_fuzz;
  for (int i = 0; i < 10; ++i) {
    const auto x = RandomPoint(&rng);
    auto optimal = optimizer_.Optimize(prep_, x).value();
    for (const auto& [plan_id, plan] : pool) {
      const double replayed =
          EvaluatePlanAtPoint(prep_, optimizer_.cost_model(), *plan, x)
              .value()
              .cost;
      EXPECT_GE(replayed * fuzz, optimal.estimated_cost * (1.0 - 1e-9))
          << GetParam() << " plan " << plan_id;
    }
  }
}

TEST_P(TemplateIntegrationTest, FingerprintIdentityIsConsistent) {
  // Identical plan ids imply identical canonical structure; distinct ids
  // imply distinct structure.
  Rng rng(103);
  std::map<PlanId, std::string> canon;
  for (int i = 0; i < 40; ++i) {
    auto opt = optimizer_.Optimize(prep_, RandomPoint(&rng)).value();
    const std::string repr = CanonicalPlanString(*opt.plan);
    auto [it, inserted] = canon.emplace(opt.plan_id, repr);
    if (!inserted) {
      EXPECT_EQ(it->second, repr) << GetParam();
    }
  }
  std::set<std::string> distinct;
  for (const auto& [id, repr] : canon) {
    EXPECT_TRUE(distinct.insert(repr).second)
        << GetParam() << ": two plan ids share one structure";
  }
}

TEST_P(TemplateIntegrationTest, SelectivityRoundTripThroughInstances) {
  SelectivityMapper mapper(&SmallTpch(), &tmpl_);
  ASSERT_TRUE(mapper.Validate().ok());
  Rng rng(107);
  for (int i = 0; i < 20; ++i) {
    const auto point = RandomPoint(&rng);
    auto instance = mapper.ToInstance(point).value();
    auto back = mapper.ToPlanSpacePoint(instance).value();
    for (size_t d = 0; d < point.size(); ++d) {
      EXPECT_NEAR(back[d], point[d], 0.05)
          << GetParam() << " dim " << d;
    }
  }
}

TEST_P(TemplateIntegrationTest, SimulatorNoiseIsMultiplicative) {
  ExecutionSimulator::Options options;
  options.noise_stddev = 0.1;
  options.seed = 17;
  ExecutionSimulator noisy(&optimizer_.cost_model(), options);
  ExecutionSimulator exact(&optimizer_.cost_model());
  Rng rng(109);
  const auto x = RandomPoint(&rng);
  auto opt = optimizer_.Optimize(prep_, x).value();
  const double base = exact.Execute(prep_, *opt.plan, x).value();
  double log_sum = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const double cost = noisy.Execute(prep_, *opt.plan, x).value();
    EXPECT_GT(cost, 0.0);
    log_sum += std::log(cost / base);
  }
  // ln(noise) ~ N(0, 0.1^2): the mean log-ratio is near 0.
  EXPECT_NEAR(log_sum / n, 0.0, 0.03) << GetParam();
}

TEST_P(TemplateIntegrationTest, FrameworkServesTemplateEndToEnd) {
  PpcFramework::Config config;
  config.online.predictor.transform_count = 5;
  config.online.predictor.histogram_buckets = 40;
  config.online.predictor.radius = 0.2;
  config.online.predictor.confidence_threshold = 0.8;
  config.online.predictor.noise_fraction = 0.0005;
  PpcFramework framework(&SmallTpch(), config);
  ASSERT_TRUE(framework.RegisterTemplate(tmpl_).ok());

  TrajectoryConfig traj;
  traj.dimensions = tmpl_.ParameterDegree();
  traj.total_points = 150;
  traj.scatter = 0.01;
  Rng rng(113);
  size_t predictions = 0;
  for (const auto& x : RandomTrajectoriesWorkload(traj, &rng)) {
    auto report = framework.ExecuteAtPoint(tmpl_.name, x);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NE(report.value().executed_plan, kNullPlanId);
    EXPECT_GT(report.value().execution_cost, 0.0);
    if (report.value().used_prediction) ++predictions;
  }
  // Every template must reach a working steady state on a tight
  // trajectory (even the 6-dimensional one).
  EXPECT_GT(predictions, 10u) << GetParam();
}

TEST_P(TemplateIntegrationTest, PredictorPipelineIsDeterministic) {
  // catalog -> optimizer -> predictor, twice, must agree bit-for-bit.
  auto run = [&](uint64_t seed) {
    LshHistogramsPredictor::Config cfg;
    cfg.dimensions = tmpl_.ParameterDegree();
    cfg.transform_count = 3;
    cfg.histogram_buckets = 20;
    cfg.radius = 0.2;
    cfg.confidence_threshold = 0.5;
    cfg.seed = seed;
    LshHistogramsPredictor predictor(cfg);
    Rng rng(127);
    for (int i = 0; i < 100; ++i) {
      const auto x = RandomPoint(&rng);
      auto opt = optimizer_.Optimize(prep_, x).value();
      predictor.Insert({x, opt.plan_id, opt.estimated_cost});
    }
    return predictor.Serialize();
  };
  EXPECT_EQ(run(7), run(7)) << GetParam();
  EXPECT_NE(run(7), run(8)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateIntegrationTest,
                         ::testing::Values("Q0", "Q1", "Q2", "Q3", "Q4",
                                           "Q5", "Q6", "Q7", "Q8"));

}  // namespace
}  // namespace ppc
