#include "lsh/zorder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ppc {
namespace {

TEST(ZOrderTest, RoundTrip2D) {
  ZOrderCurve curve(2, 8);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> cells = {
        static_cast<uint32_t>(rng.UniformInt(uint64_t{256})),
        static_cast<uint32_t>(rng.UniformInt(uint64_t{256}))};
    EXPECT_EQ(curve.Deinterleave(curve.Interleave(cells)), cells);
  }
}

TEST(ZOrderTest, RoundTripHighDims) {
  for (int dims : {3, 4, 6}) {
    const int bits = 62 / dims;
    ZOrderCurve curve(dims, bits);
    Rng rng(static_cast<uint64_t>(dims));
    for (int i = 0; i < 50; ++i) {
      std::vector<uint32_t> cells(static_cast<size_t>(dims));
      for (auto& c : cells) {
        c = static_cast<uint32_t>(rng.UniformInt(uint64_t{1} << bits));
      }
      EXPECT_EQ(curve.Deinterleave(curve.Interleave(cells)), cells);
    }
  }
}

TEST(ZOrderTest, KnownInterleaving) {
  ZOrderCurve curve(2, 2);
  // x = 0b01, y = 0b10: bits interleave as y1 x1 y0 x0 = 1 0 0 1 = 9.
  EXPECT_EQ(curve.Interleave({1, 2}), 9u);
  EXPECT_EQ(curve.Interleave({0, 0}), 0u);
  EXPECT_EQ(curve.Interleave({3, 3}), 15u);
}

TEST(ZOrderTest, CoordinatesMaskedToBits) {
  ZOrderCurve curve(2, 2);
  // 5 = 0b101 masks to 0b01.
  EXPECT_EQ(curve.Interleave({5, 0}), curve.Interleave({1, 0}));
}

TEST(ZOrderTest, LinearizeInUnitInterval) {
  ZOrderCurve curve(3, 4);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint32_t> cells = {
        static_cast<uint32_t>(rng.UniformInt(uint64_t{16})),
        static_cast<uint32_t>(rng.UniformInt(uint64_t{16})),
        static_cast<uint32_t>(rng.UniformInt(uint64_t{16}))};
    const double z = curve.Linearize(cells);
    EXPECT_GE(z, 0.0);
    EXPECT_LT(z, 1.0);
  }
  EXPECT_EQ(curve.Linearize({0, 0, 0}), 0.0);
}

TEST(ZOrderTest, LinearizeIsInjectiveOverCells) {
  ZOrderCurve curve(2, 4);
  std::set<double> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      EXPECT_TRUE(seen.insert(curve.Linearize({x, y})).second);
    }
  }
}

TEST(ZOrderTest, PreservesLocalityOnAverage) {
  // Cells adjacent in space should be much closer along the curve than
  // random cell pairs, on average — the property the paper relies on to
  // store plan-space neighborhoods in 1-D histograms.
  ZOrderCurve curve(2, 6);
  Rng rng(7);
  const uint32_t n = 64;
  double adjacent = 0.0, random_pairs = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformInt(uint64_t{n - 1}));
    const uint32_t y = static_cast<uint32_t>(rng.UniformInt(uint64_t{n}));
    adjacent +=
        std::abs(curve.Linearize({x, y}) - curve.Linearize({x + 1, y}));
    const uint32_t rx = static_cast<uint32_t>(rng.UniformInt(uint64_t{n}));
    const uint32_t ry = static_cast<uint32_t>(rng.UniformInt(uint64_t{n}));
    const uint32_t sx = static_cast<uint32_t>(rng.UniformInt(uint64_t{n}));
    const uint32_t sy = static_cast<uint32_t>(rng.UniformInt(uint64_t{n}));
    random_pairs +=
        std::abs(curve.Linearize({rx, ry}) - curve.Linearize({sx, sy}));
  }
  EXPECT_LT(adjacent / trials, 0.4 * (random_pairs / trials));
}

TEST(ZOrderTest, MostSignificantBitsDominate) {
  ZOrderCurve curve(2, 6);
  // Cells in the left half of space map to the first half of the curve
  // when the other coordinate is 0 (top-level quadrant split).
  EXPECT_LT(curve.Linearize({0, 0}), 0.25);
  EXPECT_GE(curve.Linearize({63, 63}), 0.75);
}

TEST(ZOrderTest, AccessorsReportConfiguration) {
  ZOrderCurve curve(3, 5);
  EXPECT_EQ(curve.dimensions(), 3);
  EXPECT_EQ(curve.bits_per_dim(), 5);
  EXPECT_EQ(curve.total_bits(), 15);
  EXPECT_EQ(curve.cells_per_dim(), 32u);
}

}  // namespace
}  // namespace ppc
