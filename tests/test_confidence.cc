#include "clustering/confidence.h"

#include <gtest/gtest.h>

namespace ppc {
namespace {

TEST(ConfidenceTest, PureRegionIsFullConfidence) {
  EXPECT_EQ(ConfidenceFromCounts(10.0, 0.0), 1.0);
  EXPECT_EQ(ConfidenceFromCounts(1.0, 0.0), 1.0);
}

TEST(ConfidenceTest, NoSupportIsZero) {
  EXPECT_EQ(ConfidenceFromCounts(0.0, 0.0), 0.0);
  EXPECT_EQ(ConfidenceFromCounts(0.0, 5.0), 0.0);
}

TEST(ConfidenceTest, MinorityMajorityIsZero) {
  // When max_count < other_count the centre lies on the wrong side of any
  // chord; prediction is unsafe.
  EXPECT_EQ(ConfidenceFromCounts(3.0, 7.0), 0.0);
}

TEST(ConfidenceTest, BalancedCountsGiveZeroConfidence) {
  // Equal areas put the chord through the centre: theta = 0.
  EXPECT_NEAR(ConfidenceFromCounts(10.0, 10.0), 0.0, 1e-6);
}

TEST(ConfidenceTest, MonotoneInDominance) {
  double prev = 0.0;
  for (double ratio : {1.5, 2.0, 4.0, 10.0, 100.0}) {
    const double c = ConfidenceFromCounts(ratio, 1.0);
    EXPECT_GT(c, prev) << "ratio=" << ratio;
    prev = c;
  }
  EXPECT_GT(prev, 0.9);  // 100:1 dominance ~ full confidence
}

TEST(ConfidenceTest, ValuesInUnitInterval) {
  for (double max_count : {1.0, 2.0, 5.0, 50.0}) {
    for (double other : {0.0, 0.5, 1.0, 3.0, 100.0}) {
      const double c = ConfidenceFromCounts(max_count, other);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(ConfidenceTest, GeometricInterpretation) {
  // With minority fraction f, the chord distance h satisfies
  // segment_area(h) = f * pi. For a 3:1 split (f = 0.25) the chord sits at
  // h ~ 0.404 on the unit circle.
  EXPECT_NEAR(ConfidenceFromCounts(3.0, 1.0), 0.4040, 0.001);
  // 9:1 split (f = 0.1): h ~ 0.6870.
  EXPECT_NEAR(ConfidenceFromCounts(9.0, 1.0), 0.6870, 0.001);
}

TEST(ConfidenceTest, TotalRatioFormMatchesCountsForm) {
  // Algorithm 1 computes ratio = total / density[max].
  for (double max_count : {2.0, 5.0, 10.0}) {
    for (double other : {0.0, 1.0, 4.0}) {
      if (max_count < other) continue;
      const double total = max_count + other;
      EXPECT_NEAR(ConfidenceFromTotalRatio(total / max_count),
                  ConfidenceFromCounts(max_count, other), 1e-9);
    }
  }
}

TEST(ConfidenceTest, TotalRatioBelowOneIsInvalid) {
  EXPECT_EQ(ConfidenceFromTotalRatio(0.5), 0.0);
}

TEST(ConfidenceTest, FractionalCountsSupported) {
  // Histogram range queries return fractional counts.
  const double c = ConfidenceFromCounts(2.5, 0.7);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
}

}  // namespace
}  // namespace ppc
