#include <gtest/gtest.h>

#include "common/bytes.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/plan_synopsis.h"
#include "stats/streaming_histogram.h"
#include "test_util.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SamplePoints;

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(123456);
  writer.PutU64(0xdeadbeefcafebabeULL);
  writer.PutDouble(3.14159);
  writer.PutString("hello");
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.GetU8().value(), 7);
  EXPECT_EQ(reader.GetU32().value(), 123456u);
  EXPECT_EQ(reader.GetU64().value(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(reader.GetDouble().value(), 3.14159);
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter writer;
  writer.PutU32(1);
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetU32().ok());
  EXPECT_EQ(reader.GetU32().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader.GetU8().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter writer;
  writer.PutU32(100);  // claims 100 bytes, provides none
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(StreamingHistogramSerdeTest, RoundTripPreservesEstimates) {
  StreamingHistogram original(16);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    original.Insert(rng.Uniform(), rng.Uniform(1.0, 100.0));
  }
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = StreamingHistogram::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().TotalCount(), original.TotalCount());
  EXPECT_EQ(restored.value().bucket_count(), original.bucket_count());
  for (double lo = 0.0; lo < 1.0; lo += 0.13) {
    EXPECT_EQ(restored.value().EstimateCount(lo, lo + 0.1),
              original.EstimateCount(lo, lo + 0.1));
    EXPECT_EQ(restored.value().EstimateAverageCost(lo, lo + 0.1),
              original.EstimateAverageCost(lo, lo + 0.1));
  }
}

TEST(StreamingHistogramSerdeTest, RestoredHistogramAcceptsInserts) {
  StreamingHistogram original(8);
  original.Insert(0.5, 10.0);
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = StreamingHistogram::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  for (int i = 0; i < 100; ++i) restored.value().Insert(0.1 + i * 0.001, 1.0);
  EXPECT_LE(restored.value().bucket_count(), 8u);
  EXPECT_EQ(restored.value().TotalCount(), 101u);
}

TEST(StreamingHistogramSerdeTest, RejectsMalformedContent) {
  ByteWriter writer;
  writer.PutU32(1);  // max_buckets < 2
  writer.PutU8(0);
  writer.PutU64(0);
  writer.PutU32(0);
  ByteReader reader(writer.buffer());
  EXPECT_EQ(StreamingHistogram::Deserialize(&reader).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanSynopsisSerdeTest, RoundTrip) {
  PlanSynopsis original(3, 16,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    for (size_t t = 0; t < 3; ++t) {
      original.Insert(t, rng.Uniform(), rng.Uniform(1.0, 50.0));
    }
  }
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = PlanSynopsis::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().transform_count(), 3u);
  EXPECT_EQ(restored.value().SampleCount(), original.SampleCount());
  const std::vector<double> pos = {0.3, 0.5, 0.7};
  const std::vector<double> del = {0.1, 0.1, 0.1};
  EXPECT_EQ(restored.value().MedianCount(pos, del),
            original.MedianCount(pos, del));
}

class PredictorSerdeTest : public ::testing::Test {
 protected:
  static LshHistogramsPredictor::Config Config() {
    LshHistogramsPredictor::Config cfg;
    cfg.dimensions = 2;
    cfg.transform_count = 5;
    cfg.histogram_buckets = 40;
    cfg.radius = 0.1;
    cfg.confidence_threshold = 0.6;
    cfg.noise_fraction = 0.001;
    cfg.seed = 77;
    return cfg;
  }
};

TEST_F(PredictorSerdeTest, RestoredPredictorAnswersIdentically) {
  Rng rng(7);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 1000, HalfSpacePlan, &rng));
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().TotalSamples(), original.TotalSamples());
  EXPECT_EQ(restored.value().DistinctPlans(), original.DistinctPlans());
  EXPECT_EQ(restored.value().SpaceBytes(), original.SpaceBytes());
  Rng test_rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    const Prediction a = original.Predict(x);
    const Prediction b = restored.value().Predict(x);
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.estimated_cost, b.estimated_cost);
  }
}

TEST_F(PredictorSerdeTest, RestoredPredictorContinuesLearning) {
  Rng rng(11);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 300, HalfSpacePlan, &rng));
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok());
  for (const LabeledPoint& p : SamplePoints(2, 300, HalfSpacePlan, &rng)) {
    restored.value().Insert(p);
  }
  EXPECT_EQ(restored.value().TotalSamples(), 600u);
}

TEST_F(PredictorSerdeTest, RejectsWrongMagic) {
  EXPECT_FALSE(LshHistogramsPredictor::Restore("garbage").ok());
  std::string empty;
  EXPECT_FALSE(LshHistogramsPredictor::Restore(empty).ok());
}

TEST_F(PredictorSerdeTest, RejectsTruncatedSnapshot) {
  Rng rng(13);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 100, HalfSpacePlan, &rng));
  const std::string bytes = original.Serialize();
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(
        LshHistogramsPredictor::Restore(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST_F(PredictorSerdeTest, RejectsTrailingGarbage) {
  Rng rng(17);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 100, HalfSpacePlan, &rng));
  EXPECT_FALSE(
      LshHistogramsPredictor::Restore(original.Serialize() + "x").ok());
}

// Hand-builds a syntactically complete zero-plan snapshot with the given
// configuration fields, for probing Restore's validation (a corrupted or
// adversarial snapshot must fail with InvalidArgument, never abort).
std::string SnapshotWithConfig(uint32_t dims, uint32_t transform_count,
                               uint32_t output_dims, uint32_t bits_per_dim,
                               uint64_t buckets, uint64_t max_z) {
  ByteWriter writer;
  writer.PutU32(0x50504331);  // magic "PPC1"
  writer.PutU32(dims);
  writer.PutU32(transform_count);
  writer.PutU32(output_dims);
  writer.PutU32(bits_per_dim);
  writer.PutU64(buckets);
  writer.PutDouble(0.1);   // radius
  writer.PutDouble(0.7);   // confidence_threshold
  writer.PutDouble(0.0);   // noise_fraction
  writer.PutU8(0);         // merge policy
  writer.PutU64(23);       // seed
  writer.PutU8(0);         // interval_decomposition
  writer.PutU64(max_z);
  writer.PutU64(0);        // total_samples
  writer.PutU32(0);        // plan_count
  return writer.Take();
}

TEST_F(PredictorSerdeTest, RejectsOutOfRangeConfig) {
  // The well-formed baseline restores fine.
  EXPECT_TRUE(
      LshHistogramsPredictor::Restore(SnapshotWithConfig(2, 5, 0, 5, 40, 8))
          .ok());
  struct Case {
    const char* what;
    std::string bytes;
  };
  const Case cases[] = {
      {"zero dimensions", SnapshotWithConfig(0, 5, 0, 5, 40, 8)},
      {"huge dimensions", SnapshotWithConfig(1u << 30, 5, 0, 5, 40, 8)},
      {"zero transforms", SnapshotWithConfig(2, 0, 0, 5, 40, 8)},
      {"huge transforms", SnapshotWithConfig(2, 1u << 31, 0, 5, 40, 8)},
      {"huge output dims", SnapshotWithConfig(2, 5, 63, 5, 40, 8)},
      {"zero bits per dim", SnapshotWithConfig(2, 5, 0, 0, 40, 8)},
      // 2 effective output dims * 40 bits = 80 > the curve's 62-bit cap.
      {"z-order overflow", SnapshotWithConfig(2, 5, 0, 40, 40, 8)},
      {"zero buckets", SnapshotWithConfig(2, 5, 0, 5, 0, 8)},
      {"one bucket", SnapshotWithConfig(2, 5, 0, 5, 1, 8)},
      {"huge buckets",
       SnapshotWithConfig(2, 5, 0, 5, uint64_t{1} << 40, 8)},
      {"zero z intervals", SnapshotWithConfig(2, 5, 0, 5, 40, 0)},
      {"huge z intervals",
       SnapshotWithConfig(2, 5, 0, 5, 40, uint64_t{1} << 40)},
  };
  for (const Case& c : cases) {
    auto restored = LshHistogramsPredictor::Restore(c.bytes);
    EXPECT_FALSE(restored.ok()) << c.what;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << c.what;
  }
}

TEST_F(PredictorSerdeTest, EmptyPredictorRoundTrips) {
  LshHistogramsPredictor original(Config());
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().TotalSamples(), 0u);
  EXPECT_FALSE(restored.value().Predict({0.5, 0.5}).has_value());
}

}  // namespace
}  // namespace ppc
