#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string_view>

#include "common/bytes.h"
#include "common/hash.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/plan_synopsis.h"
#include "stats/streaming_histogram.h"
#include "test_util.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SamplePoints;

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(123456);
  writer.PutU64(0xdeadbeefcafebabeULL);
  writer.PutDouble(3.14159);
  writer.PutString("hello");
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.GetU8().value(), 7);
  EXPECT_EQ(reader.GetU32().value(), 123456u);
  EXPECT_EQ(reader.GetU64().value(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(reader.GetDouble().value(), 3.14159);
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter writer;
  writer.PutU32(1);
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetU32().ok());
  EXPECT_EQ(reader.GetU32().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(reader.GetU8().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter writer;
  writer.PutU32(100);  // claims 100 bytes, provides none
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(StreamingHistogramSerdeTest, RoundTripPreservesEstimates) {
  StreamingHistogram original(16);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    original.Insert(rng.Uniform(), rng.Uniform(1.0, 100.0));
  }
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = StreamingHistogram::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().TotalCount(), original.TotalCount());
  EXPECT_EQ(restored.value().bucket_count(), original.bucket_count());
  for (double lo = 0.0; lo < 1.0; lo += 0.13) {
    EXPECT_EQ(restored.value().EstimateCount(lo, lo + 0.1),
              original.EstimateCount(lo, lo + 0.1));
    EXPECT_EQ(restored.value().EstimateAverageCost(lo, lo + 0.1),
              original.EstimateAverageCost(lo, lo + 0.1));
  }
}

TEST(StreamingHistogramSerdeTest, RestoredHistogramAcceptsInserts) {
  StreamingHistogram original(8);
  original.Insert(0.5, 10.0);
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = StreamingHistogram::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  for (int i = 0; i < 100; ++i) restored.value().Insert(0.1 + i * 0.001, 1.0);
  EXPECT_LE(restored.value().bucket_count(), 8u);
  EXPECT_EQ(restored.value().TotalCount(), 101u);
}

TEST(StreamingHistogramSerdeTest, RejectsMalformedContent) {
  ByteWriter writer;
  writer.PutU32(1);  // max_buckets < 2
  writer.PutU8(0);
  writer.PutU64(0);
  writer.PutU32(0);
  ByteReader reader(writer.buffer());
  EXPECT_EQ(StreamingHistogram::Deserialize(&reader).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanSynopsisSerdeTest, RoundTrip) {
  PlanSynopsis original(3, 16,
                        StreamingHistogram::MergePolicy::kMinVarianceIncrease);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    for (size_t t = 0; t < 3; ++t) {
      original.Insert(t, rng.Uniform(), rng.Uniform(1.0, 50.0));
    }
  }
  ByteWriter writer;
  original.SerializeTo(&writer);
  ByteReader reader(writer.buffer());
  auto restored = PlanSynopsis::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().transform_count(), 3u);
  EXPECT_EQ(restored.value().SampleCount(), original.SampleCount());
  const std::vector<double> pos = {0.3, 0.5, 0.7};
  const std::vector<double> del = {0.1, 0.1, 0.1};
  EXPECT_EQ(restored.value().MedianCount(pos, del),
            original.MedianCount(pos, del));
}

class PredictorSerdeTest : public ::testing::Test {
 protected:
  static LshHistogramsPredictor::Config Config() {
    LshHistogramsPredictor::Config cfg;
    cfg.dimensions = 2;
    cfg.transform_count = 5;
    cfg.histogram_buckets = 40;
    cfg.radius = 0.1;
    cfg.confidence_threshold = 0.6;
    cfg.noise_fraction = 0.001;
    cfg.seed = 77;
    return cfg;
  }
};

TEST_F(PredictorSerdeTest, RestoredPredictorAnswersIdentically) {
  Rng rng(7);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 1000, HalfSpacePlan, &rng));
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().TotalSamples(), original.TotalSamples());
  EXPECT_EQ(restored.value().DistinctPlans(), original.DistinctPlans());
  EXPECT_EQ(restored.value().SpaceBytes(), original.SpaceBytes());
  Rng test_rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x = {test_rng.Uniform(), test_rng.Uniform()};
    const Prediction a = original.Predict(x);
    const Prediction b = restored.value().Predict(x);
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.estimated_cost, b.estimated_cost);
  }
}

TEST_F(PredictorSerdeTest, RestoredPredictorContinuesLearning) {
  Rng rng(11);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 300, HalfSpacePlan, &rng));
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok());
  for (const LabeledPoint& p : SamplePoints(2, 300, HalfSpacePlan, &rng)) {
    restored.value().Insert(p);
  }
  EXPECT_EQ(restored.value().TotalSamples(), 600u);
}

TEST_F(PredictorSerdeTest, RejectsWrongMagic) {
  EXPECT_FALSE(LshHistogramsPredictor::Restore("garbage").ok());
  std::string empty;
  EXPECT_FALSE(LshHistogramsPredictor::Restore(empty).ok());
}

TEST_F(PredictorSerdeTest, RejectsTruncatedSnapshot) {
  Rng rng(13);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 100, HalfSpacePlan, &rng));
  const std::string bytes = original.Serialize();
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(
        LshHistogramsPredictor::Restore(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST_F(PredictorSerdeTest, RejectsTrailingGarbage) {
  Rng rng(17);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 100, HalfSpacePlan, &rng));
  EXPECT_FALSE(
      LshHistogramsPredictor::Restore(original.Serialize() + "x").ok());
}

constexpr uint32_t kSnapshotMagic = 0x50504353;  // "PPCS"
constexpr uint32_t kSnapshotVersion = 3;
// The pre-retuning format: no transform generation, no fitted input
// ranges. Must be rejected, never silently adopted as generation 0.
constexpr uint32_t kSnapshotVersionV2 = 2;

// Assembles a versioned envelope (magic | version | length-prefixed
// sections | FNV-1a checksum) around the given section payloads.
std::string SnapshotEnvelope(uint32_t magic, uint32_t version,
                             const std::string& config_section,
                             const std::string& data_section) {
  ByteWriter writer;
  writer.PutU32(magic);
  writer.PutU32(version);
  writer.PutString(config_section);
  writer.PutString(data_section);
  writer.PutU64(Fnv1a64(writer.buffer()));
  return writer.Take();
}

struct RangeSpec {
  uint32_t count = 0;
  double lo = 0.0;
  double hi = 1.0;
};

// Hand-builds a syntactically complete zero-plan v3 snapshot with the
// given configuration fields, for probing Restore's validation (a
// corrupted or adversarial snapshot must fail with InvalidArgument,
// never abort).
std::string SnapshotWithConfig(uint32_t dims, uint32_t transform_count,
                               uint32_t output_dims, uint32_t bits_per_dim,
                               uint64_t buckets, uint64_t max_z,
                               uint32_t generation = 0,
                               RangeSpec ranges = RangeSpec()) {
  ByteWriter config_section;
  config_section.PutU32(dims);
  config_section.PutU32(transform_count);
  config_section.PutU32(output_dims);
  config_section.PutU32(bits_per_dim);
  config_section.PutU64(buckets);
  config_section.PutDouble(0.1);   // radius
  config_section.PutDouble(0.7);   // confidence_threshold
  config_section.PutDouble(0.0);   // noise_fraction
  config_section.PutU8(0);         // merge policy
  config_section.PutU64(23);       // seed
  config_section.PutU8(0);         // interval_decomposition
  config_section.PutU64(max_z);
  config_section.PutU32(generation);
  config_section.PutU32(ranges.count);
  for (uint32_t i = 0; i < ranges.count; ++i) {
    config_section.PutDouble(ranges.lo);
    config_section.PutDouble(ranges.hi);
  }
  ByteWriter data_section;
  data_section.PutU64(0);  // total_samples
  data_section.PutU32(0);  // plan_count
  return SnapshotEnvelope(kSnapshotMagic, kSnapshotVersion,
                          config_section.buffer(), data_section.buffer());
}

TEST_F(PredictorSerdeTest, RejectsOutOfRangeConfig) {
  // The well-formed baselines restore fine — both the identity-range
  // generation 0 and a refit generation with fitted ranges.
  EXPECT_TRUE(
      LshHistogramsPredictor::Restore(SnapshotWithConfig(2, 5, 0, 5, 40, 8))
          .ok());
  EXPECT_TRUE(LshHistogramsPredictor::Restore(
                  SnapshotWithConfig(2, 5, 0, 5, 40, 8, 3, {2, 0.25, 0.75}))
                  .ok());
  struct Case {
    const char* what;
    std::string bytes;
  };
  const Case cases[] = {
      {"zero dimensions", SnapshotWithConfig(0, 5, 0, 5, 40, 8)},
      {"huge dimensions", SnapshotWithConfig(1u << 30, 5, 0, 5, 40, 8)},
      {"zero transforms", SnapshotWithConfig(2, 0, 0, 5, 40, 8)},
      {"huge transforms", SnapshotWithConfig(2, 1u << 31, 0, 5, 40, 8)},
      {"huge output dims", SnapshotWithConfig(2, 5, 63, 5, 40, 8)},
      {"zero bits per dim", SnapshotWithConfig(2, 5, 0, 0, 40, 8)},
      // 2 effective output dims * 40 bits = 80 > the curve's 62-bit cap.
      {"z-order overflow", SnapshotWithConfig(2, 5, 0, 40, 40, 8)},
      {"zero buckets", SnapshotWithConfig(2, 5, 0, 5, 0, 8)},
      {"one bucket", SnapshotWithConfig(2, 5, 0, 5, 1, 8)},
      {"huge buckets",
       SnapshotWithConfig(2, 5, 0, 5, uint64_t{1} << 40, 8)},
      {"zero z intervals", SnapshotWithConfig(2, 5, 0, 5, 40, 0)},
      {"huge z intervals",
       SnapshotWithConfig(2, 5, 0, 5, 40, uint64_t{1} << 40)},
      {"range count mismatches dims",
       SnapshotWithConfig(2, 5, 0, 5, 40, 8, 1, {1, 0.0, 1.0})},
      {"inverted input range",
       SnapshotWithConfig(2, 5, 0, 5, 40, 8, 1, {2, 0.8, 0.2})},
      {"empty input range",
       SnapshotWithConfig(2, 5, 0, 5, 40, 8, 1, {2, 0.5, 0.5})},
      {"non-finite input range",
       SnapshotWithConfig(2, 5, 0, 5, 40, 8, 1,
                          {2, 0.0, std::numeric_limits<double>::infinity()})},
  };
  for (const Case& c : cases) {
    auto restored = LshHistogramsPredictor::Restore(c.bytes);
    EXPECT_FALSE(restored.ok()) << c.what;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << c.what;
  }
}

TEST_F(PredictorSerdeTest, SerializedBytesAreBitStable) {
  Rng rng(19);
  LshHistogramsPredictor original(Config(),
                                  SamplePoints(2, 500, HalfSpacePlan, &rng));
  const std::string bytes = original.Serialize();
  auto restored = LshHistogramsPredictor::Restore(bytes);
  ASSERT_TRUE(restored.ok());
  // Re-serializing the restored predictor reproduces the blob bit for bit
  // — the replication path can compare content hashes across shards.
  EXPECT_EQ(restored.value().Serialize(), bytes);
}

// Regression: the pre-versioning layout (magic "PPC1" followed directly
// by raw config fields, no version, no lengths, no checksum) must be
// rejected with InvalidArgument, never misparsed as the current format.
TEST_F(PredictorSerdeTest, RejectsStaleV1Snapshot) {
  ByteWriter writer;
  writer.PutU32(0x50504331);  // v1 magic "PPC1"
  writer.PutU32(2);           // dimensions
  writer.PutU32(5);           // transform_count
  writer.PutU32(0);           // output_dims
  writer.PutU32(5);           // bits_per_dim
  writer.PutU64(40);          // histogram_buckets
  writer.PutDouble(0.1);
  writer.PutDouble(0.7);
  writer.PutDouble(0.0);
  writer.PutU8(0);
  writer.PutU64(23);
  writer.PutU8(0);
  writer.PutU64(8);
  writer.PutU64(0);  // total_samples
  writer.PutU32(0);  // plan_count
  auto restored = LshHistogramsPredictor::Restore(writer.Take());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("v1"), std::string::npos);
}

TEST_F(PredictorSerdeTest, RejectsUnknownFormatVersion) {
  LshHistogramsPredictor original(Config());
  const std::string bytes = original.Serialize();
  // Reuse the valid blob's sections under a future version number.
  ByteReader reader(bytes);
  ASSERT_TRUE(reader.GetU32().ok());  // magic
  ASSERT_TRUE(reader.GetU32().ok());  // version
  const std::string config_section = reader.GetString().value();
  const std::string data_section = reader.GetString().value();
  auto restored = LshHistogramsPredictor::Restore(SnapshotEnvelope(
      kSnapshotMagic, kSnapshotVersion + 1, config_section, data_section));
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

// Regression: a v2 blob (pre-generation format, no transform generation
// and no input ranges in the config section) must be rejected as an
// unsupported version — adopting it as "generation 0" would be a guess.
TEST_F(PredictorSerdeTest, RejectsPreGenerationV2Snapshot) {
  ByteWriter config_section;
  config_section.PutU32(2);       // dimensions
  config_section.PutU32(5);       // transform_count
  config_section.PutU32(0);       // output_dims
  config_section.PutU32(5);       // bits_per_dim
  config_section.PutU64(40);      // histogram_buckets
  config_section.PutDouble(0.1);  // radius
  config_section.PutDouble(0.7);  // confidence_threshold
  config_section.PutDouble(0.0);  // noise_fraction
  config_section.PutU8(0);        // merge policy
  config_section.PutU64(23);      // seed
  config_section.PutU8(0);        // interval_decomposition
  config_section.PutU64(8);       // max_z_intervals
  ByteWriter data_section;
  data_section.PutU64(0);  // total_samples
  data_section.PutU32(0);  // plan_count
  auto restored = LshHistogramsPredictor::Restore(
      SnapshotEnvelope(kSnapshotMagic, kSnapshotVersionV2,
                       config_section.buffer(), data_section.buffer()));
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("version 2"), std::string::npos);
}

// Overwrites the trailing checksum with the correct FNV-1a of the bytes
// before it, so structural corruption survives envelope validation and
// must be caught by the section parsers themselves.
std::string WithRecomputedChecksum(std::string blob) {
  const uint64_t checksum = Fnv1a64(
      std::string_view(blob).substr(0, blob.size() - sizeof(uint64_t)));
  std::memcpy(blob.data() + blob.size() - sizeof(uint64_t), &checksum,
              sizeof(uint64_t));
  return blob;
}

class SnapshotFuzzTest : public PredictorSerdeTest {
 protected:
  // A small trained predictor keeps the per-mutation Restore cost low
  // enough to sweep every bit under ASan.
  static std::string SmallSnapshot() {
    LshHistogramsPredictor::Config cfg = Config();
    cfg.transform_count = 3;
    cfg.histogram_buckets = 8;
    Rng rng(23);
    return LshHistogramsPredictor(cfg,
                                  SamplePoints(2, 60, HalfSpacePlan, &rng))
        .Serialize();
  }
};

TEST_F(SnapshotFuzzTest, EveryTruncationFailsWithInvalidArgument) {
  const std::string bytes = SmallSnapshot();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto restored = LshHistogramsPredictor::Restore(bytes.substr(0, cut));
    ASSERT_FALSE(restored.ok()) << "cut at " << cut;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << restored.status().ToString();
  }
}

TEST_F(SnapshotFuzzTest, EveryBitFlipFailsWithInvalidArgument) {
  const std::string bytes = SmallSnapshot();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto restored = LshHistogramsPredictor::Restore(mutated);
      ASSERT_FALSE(restored.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(SnapshotFuzzTest, SectionLengthCorruptionFailsWithInvalidArgument) {
  const std::string bytes = SmallSnapshot();
  // The config-section length prefix sits right after magic + version.
  constexpr size_t kConfigLenOffset = 8;
  uint32_t config_len;
  std::memcpy(&config_len, bytes.data() + kConfigLenOffset,
              sizeof(config_len));
  const size_t data_len_offset = kConfigLenOffset + 4 + config_len;
  const struct {
    size_t offset;
    int32_t delta_or_huge;  // INT32_MAX means "set to a huge length"
  } mutations[] = {
      {kConfigLenOffset, +1},     {kConfigLenOffset, -1},
      {kConfigLenOffset, INT32_MAX}, {data_len_offset, +1},
      {data_len_offset, -1},      {data_len_offset, INT32_MAX},
  };
  for (const auto& m : mutations) {
    std::string mutated = bytes;
    uint32_t len;
    std::memcpy(&len, mutated.data() + m.offset, sizeof(len));
    len = m.delta_or_huge == INT32_MAX
              ? 0x7fffffffu
              : len + static_cast<uint32_t>(m.delta_or_huge);
    std::memcpy(mutated.data() + m.offset, &len, sizeof(len));
    // With the checksum recomputed, the corrupt length itself must be
    // caught; without, the checksum must catch it. Both are
    // InvalidArgument, never a crash.
    for (const std::string& blob : {mutated, WithRecomputedChecksum(mutated)}) {
      auto restored = LshHistogramsPredictor::Restore(blob);
      ASSERT_FALSE(restored.ok()) << "offset " << m.offset;
      EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument)
          << "offset " << m.offset << ": " << restored.status().ToString();
    }
  }
}

TEST_F(PredictorSerdeTest, AdoptStateTransplantsLearnedState) {
  Rng rng(29);
  LshHistogramsPredictor source(Config(),
                                SamplePoints(2, 400, HalfSpacePlan, &rng));
  LshHistogramsPredictor target(Config());
  ASSERT_TRUE(target.AdoptState(source).ok());
  EXPECT_EQ(target.TotalSamples(), source.TotalSamples());
  Rng probe(31);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    EXPECT_EQ(target.Predict(x).plan, source.Predict(x).plan);
  }
}

TEST_F(PredictorSerdeTest, AdoptStateRejectsConfigMismatch) {
  LshHistogramsPredictor source(Config());
  LshHistogramsPredictor::Config other = Config();
  other.seed = Config().seed + 1;
  LshHistogramsPredictor target(other);
  const Status status = target.AdoptState(source);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// The exact-config gate must reject a blob from a different transform
// generation with a dedicated error, even when every other config field
// matches: a refit draws new random transforms, so histograms from
// another generation index a different projected space.
TEST_F(PredictorSerdeTest, AdoptStateRejectsCrossGenerationSnapshot) {
  Rng rng(37);
  LshHistogramsPredictor::Config refit = Config();
  refit.transform_generation = 1;
  refit.input_lo = {0.2, 0.3};
  refit.input_hi = {0.7, 0.8};
  LshHistogramsPredictor source(refit,
                                SamplePoints(2, 200, HalfSpacePlan, &rng));
  LshHistogramsPredictor target(Config());  // generation 0
  const Status status = target.AdoptState(source);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("generation"), std::string::npos);
  // And the same gate holds through the wire: serialize + restore + adopt.
  auto restored = LshHistogramsPredictor::Restore(source.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().transform_generation(), 1u);
  const Status via_wire = target.AdoptState(restored.value());
  ASSERT_FALSE(via_wire.ok());
  EXPECT_NE(via_wire.message().find("generation"), std::string::npos);
}

// Same transform generation but differently fitted input ranges is also
// a different projected space — the general config gate must catch it.
TEST_F(PredictorSerdeTest, AdoptStateRejectsInputRangeMismatch) {
  LshHistogramsPredictor::Config fitted = Config();
  fitted.transform_generation = 2;
  fitted.input_lo = {0.1, 0.1};
  fitted.input_hi = {0.9, 0.9};
  LshHistogramsPredictor source(fitted);
  LshHistogramsPredictor::Config other = fitted;
  other.input_hi = {0.9, 0.95};
  LshHistogramsPredictor target(other);
  const Status status = target.AdoptState(source);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// A fitted-range generation round-trips bit-stably like generation 0.
TEST_F(PredictorSerdeTest, FittedGenerationRoundTripsBitStably) {
  Rng rng(41);
  LshHistogramsPredictor::Config refit = Config();
  refit.transform_generation = 4;
  refit.input_lo = {0.05, 0.40};
  refit.input_hi = {0.35, 0.90};
  LshHistogramsPredictor original(refit,
                                  SamplePoints(2, 400, HalfSpacePlan, &rng));
  const std::string bytes = original.Serialize();
  auto restored = LshHistogramsPredictor::Restore(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  Rng probe(43);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x = {probe.Uniform(), probe.Uniform()};
    const Prediction a = original.Predict(x);
    const Prediction b = restored.value().Predict(x);
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

TEST_F(PredictorSerdeTest, EmptyPredictorRoundTrips) {
  LshHistogramsPredictor original(Config());
  auto restored = LshHistogramsPredictor::Restore(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().TotalSamples(), 0u);
  EXPECT_FALSE(restored.value().Predict({0.5, 0.5}).has_value());
}

}  // namespace
}  // namespace ppc
