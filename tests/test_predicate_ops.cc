// Tests for the >= predicate direction through the whole stack:
// SQL rendering/parsing, selectivity normalization and its inverse,
// optimization, row-level execution, and the PPC framework.

#include <gtest/gtest.h>

#include "exec/row_executor.h"
#include "optimizer/optimizer.h"
#include "ppc/ppc_framework.h"
#include "test_util.h"
#include "workload/selectivity_mapper.h"
#include "workload/template_parser.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::SmallTpch;

TEST(PredicateOpsTest, SymbolNames) {
  EXPECT_STREQ(PredicateOpSymbol(PredicateOp::kLeq), "<=");
  EXPECT_STREQ(PredicateOpSymbol(PredicateOp::kGeq), ">=");
}

TEST(PredicateOpsTest, ToSqlRendersDirection) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  const std::string sql = tmpl.ToSql();
  EXPECT_NE(sql.find("orders.o_date >= $0"), std::string::npos);
  EXPECT_NE(sql.find("lineitem.l_quantity <= $1"), std::string::npos);
}

TEST(PredicateOpsTest, ParserRoundTripsMixedOps) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  auto parsed = ParseQueryTemplate(tmpl.ToSql(), &SmallTpch(), tmpl.name);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().params.size(), 2u);
  EXPECT_EQ(parsed.value().params[0].op, PredicateOp::kGeq);
  EXPECT_EQ(parsed.value().params[1].op, PredicateOp::kLeq);
  EXPECT_EQ(parsed.value().ToSql(), tmpl.ToSql());
}

TEST(PredicateOpsTest, GeqSelectivityInvertsDirection) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  // For `o_date >= v`, a LARGER v means FEWER rows: selectivity falls as
  // the parameter value rises.
  const double low_value =
      mapper.ToInstance({0.9, 0.5}).value().param_values[0];
  const double high_value =
      mapper.ToInstance({0.1, 0.5}).value().param_values[0];
  EXPECT_LT(low_value, high_value);
}

TEST(PredicateOpsTest, GeqRoundTripThroughInstances) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  for (double s : {0.1, 0.4, 0.7, 0.95}) {
    auto instance = mapper.ToInstance({s, 0.5}).value();
    auto back = mapper.ToPlanSpacePoint(instance).value();
    EXPECT_NEAR(back[0], s, 0.05) << "s=" << s;
  }
}

TEST(PredicateOpsTest, OptimizesAndExecutes) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  Optimizer optimizer(&SmallTpch());
  auto prep = optimizer.Prepare(tmpl);
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  auto opt = optimizer.Optimize(prep.value(), {0.3, 0.6});
  ASSERT_TRUE(opt.ok());

  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.3, 0.6}).value();
  RowExecutor executor(&SmallTpch());
  auto stats = executor.Execute(tmpl, *opt.value().plan,
                                instance.param_values);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().output_rows, 0u);
}

TEST(PredicateOpsTest, GeqExecutionMatchesBruteForce) {
  const QueryTemplate tmpl = MixedPredicateTemplate();
  SelectivityMapper mapper(&SmallTpch(), &tmpl);
  auto instance = mapper.ToInstance({0.4, 0.7}).value();
  const double o_date_min = instance.param_values[0];
  const double l_quantity_max = instance.param_values[1];

  const Table& orders = *SmallTpch().GetTable("orders").value();
  const Table& lineitem = *SmallTpch().GetTable("lineitem").value();
  const Column& o_key = *orders.FindColumn("o_orderkey").value();
  const Column& o_date = *orders.FindColumn("o_date").value();
  const Column& l_key = *lineitem.FindColumn("l_orderkey").value();
  const Column& l_qty = *lineitem.FindColumn("l_quantity").value();
  std::map<double, int> order_rows;
  for (size_t o = 0; o < orders.row_count(); ++o) {
    if (o_date.AsDouble(o) >= o_date_min) ++order_rows[o_key.AsDouble(o)];
  }
  uint64_t expected = 0;
  for (size_t l = 0; l < lineitem.row_count(); ++l) {
    if (l_qty.AsDouble(l) > l_quantity_max) continue;
    auto it = order_rows.find(l_key.AsDouble(l));
    if (it != order_rows.end()) expected += it->second;
  }

  auto plan = MakeAggregate(MakeJoin(JoinMethod::kHashJoin, 0,
                                     MakeSeqScan("orders", {0}),
                                     MakeSeqScan("lineitem", {1})));
  RowExecutor executor(&SmallTpch());
  auto stats = executor.Execute(tmpl, *plan, instance.param_values);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().output_rows, expected);
}

TEST(PredicateOpsTest, FrameworkServesMixedTemplate) {
  PpcFramework::Config config;
  config.online.predictor.transform_count = 5;
  config.online.predictor.histogram_buckets = 40;
  config.online.predictor.radius = 0.1;
  config.online.predictor.confidence_threshold = 0.8;
  PpcFramework framework(&SmallTpch(), config);
  ASSERT_TRUE(framework.RegisterTemplate(MixedPredicateTemplate()).ok());
  Rng rng(3);
  size_t predictions = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = {0.4 + rng.Uniform(-0.02, 0.02),
                             0.6 + rng.Uniform(-0.02, 0.02)};
    auto report = framework.ExecuteAtPoint("QMixed", x);
    ASSERT_TRUE(report.ok());
    if (report.value().used_prediction) ++predictions;
  }
  EXPECT_GT(predictions, 100u);
}

TEST(PredicateOpsTest, ParserRejectsMixedDirectionSymbols) {
  EXPECT_FALSE(ParseQueryTemplate(
                   "SELECT COUNT(*) FROM orders WHERE orders.o_date => $0")
                   .ok());
}

}  // namespace
}  // namespace ppc
