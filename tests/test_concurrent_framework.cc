// Concurrency tests for the serving path: PpcFramework end to end, plus
// direct multi-threaded hammering of PlanCache and LshHistogramsPredictor.
// Designed to run under TSan (see scripts/check.sh); the assertions also
// catch logic races (lost counter updates, capacity overshoot) in plain
// builds.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ppc/lsh_histograms_predictor.h"
#include "ppc/plan_cache.h"
#include "ppc/ppc_framework.h"
#include "test_util.h"
#include "workload/templates.h"

namespace ppc {
namespace {

using testutil::HalfSpacePlan;
using testutil::SamplePoints;
using testutil::SmallTpch;

constexpr int kThreads = 4;
constexpr int kQueriesPerThread = 150;

PpcFramework::Config ConcurrentConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 32;
  return cfg;
}

TEST(ConcurrentFrameworkTest, ParallelServingReconciles) {
  PpcFramework framework(&SmallTpch(), ConcurrentConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q3")).ok());
  framework.Seal();

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> reported_hits{0};
  std::atomic<size_t> contract_violations{0};

  // Monitor thread: shared counters must move monotonically and the cache
  // must never exceed capacity while workers run.
  std::thread monitor([&] {
    uint64_t last_hits = 0, last_misses = 0, last_evictions = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t h = framework.plan_cache().hits();
      const uint64_t m = framework.plan_cache().misses();
      const uint64_t e = framework.plan_cache().evictions();
      if (h < last_hits || m < last_misses || e < last_evictions) {
        contract_violations.fetch_add(1);
      }
      if (framework.plan_cache().size() >
          framework.plan_cache().capacity()) {
        contract_violations.fetch_add(1);
      }
      last_hits = h;
      last_misses = m;
      last_evictions = e;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Alternate templates across threads; clustered points so plans
      // repeat and the cache actually serves hits.
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const bool q1 = (t + i) % 2 == 0;
        std::vector<double> x;
        const double cx = q1 ? 0.5 : 0.4;
        for (int d = 0; d < (q1 ? 2 : 3); ++d) {
          x.push_back(cx + rng.Uniform(-0.02, 0.02));
        }
        auto report = framework.ExecuteAtPoint(q1 ? "Q1" : "Q3", x);
        if (!report.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Every query either hit the cache or paid for the optimizer.
        if (!report.value().cache_hit && !report.value().optimizer_invoked) {
          contract_violations.fetch_add(1);
        }
        if (report.value().executed_plan == kNullPlanId ||
            report.value().execution_cost <= 0.0) {
          contract_violations.fetch_add(1);
        }
        if (report.value().cache_hit) reported_hits.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(contract_violations.load(), 0u);
  // Per-query reported hits reconcile exactly with the cache's counter
  // (only the framework touches this cache, one Get per served query).
  EXPECT_EQ(framework.plan_cache().hits(), reported_hits.load());
  EXPECT_LE(framework.plan_cache().size(),
            framework.plan_cache().capacity());
  // Clustered workload on two templates must actually exercise the cache.
  EXPECT_GT(reported_hits.load(), 0u);
}

TEST(ConcurrentFrameworkTest, RegistrationRacesWithServing) {
  // One thread serves (sealing the registry); others try to register.
  // Late registrations must fail cleanly, never corrupt the map.
  PpcFramework framework(&SmallTpch(), ConcurrentConfig());
  ASSERT_TRUE(framework.RegisterTemplate(EvaluationTemplate("Q1")).ok());

  std::atomic<size_t> serve_failures{0};
  std::thread server([&] {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      std::vector<double> x = {0.5 + rng.Uniform(-0.02, 0.02),
                               0.5 + rng.Uniform(-0.02, 0.02)};
      if (!framework.ExecuteAtPoint("Q1", x).ok()) serve_failures.fetch_add(1);
    }
  });
  std::vector<std::thread> registrars;
  std::atomic<size_t> rejected{0};
  for (int t = 0; t < 3; ++t) {
    registrars.emplace_back([&] {
      const Status s = framework.RegisterTemplate(EvaluationTemplate("Q5"));
      if (!s.ok()) {
        EXPECT_TRUE(s.code() == StatusCode::kFailedPrecondition ||
                    s.code() == StatusCode::kAlreadyExists)
            << s.ToString();
        rejected.fetch_add(1);
      }
    });
  }
  server.join();
  for (auto& r : registrars) r.join();
  EXPECT_EQ(serve_failures.load(), 0u);
  // At most one registrar can have won the race before sealing.
  EXPECT_GE(rejected.load(), 2u);
}

TEST(ConcurrentPlanCacheTest, HammerPutGetEvict) {
  PlanCache cache(16);
  std::vector<std::thread> workers;
  std::atomic<size_t> violations{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(200 + static_cast<uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        const PlanId id = 1 + static_cast<PlanId>(rng.Uniform() * 64);
        switch (i % 4) {
          case 0:
            cache.Put(id, MakeSeqScan("t" + std::to_string(id), {}));
            break;
          case 1: {
            auto plan = cache.Get(id);
            // A returned plan stays valid even if evicted concurrently.
            if (plan != nullptr &&
                plan->table != "t" + std::to_string(id)) {
              violations.fetch_add(1);
            }
            break;
          }
          case 2:
            cache.SetPrecisionScore(id, rng.Uniform());
            break;
          case 3:
            if (i % 64 == 3) {
              cache.Erase(id);
            } else {
              cache.Contains(id);
            }
            break;
        }
        if (cache.size() > 16 + static_cast<size_t>(kThreads)) {
          // Transient overshoot is bounded by the number of inserters.
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_EQ(cache.size(), cache.PlanIds().size());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

TEST(ConcurrentPredictorTest, ParallelInsertAndPredict) {
  LshHistogramsPredictor::Config cfg;
  cfg.dimensions = 2;
  cfg.transform_count = 5;
  cfg.histogram_buckets = 40;
  cfg.radius = 0.1;
  cfg.confidence_threshold = 0.6;
  Rng seed_rng(31);
  LshHistogramsPredictor predictor(
      cfg, SamplePoints(2, 500, HalfSpacePlan, &seed_rng));

  std::vector<std::thread> workers;
  std::atomic<size_t> violations{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(300 + static_cast<uint64_t>(t));
      for (int i = 0; i < 1000; ++i) {
        std::vector<double> x = {rng.Uniform(), rng.Uniform()};
        if (t % 2 == 0) {
          predictor.Insert(LabeledPoint{
              x, HalfSpacePlan(x), testutil::SyntheticCost(x, 1)});
        } else {
          const Prediction p = predictor.Predict(x);
          if (p.has_value() &&
              (p.confidence <= 0.0 || p.confidence > 1.0)) {
            violations.fetch_add(1);
          }
          predictor.EstimateCost(x, 1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0u);
  // 500 seed points + 2 inserter threads x 1000 points, none lost.
  EXPECT_EQ(predictor.TotalSamples(), 500u + 2u * 1000u);
}

}  // namespace
}  // namespace ppc
