#include "workload/workload_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "workload/workload_history.h"

namespace ppc {
namespace {

TEST(UniformSampleTest, CountAndBounds) {
  Rng rng(1);
  auto points = UniformPlanSpaceSample(3, 500, &rng);
  ASSERT_EQ(points.size(), 500u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 3u);
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(UniformSampleTest, CoversSpace) {
  Rng rng(2);
  auto points = UniformPlanSpaceSample(2, 2000, &rng);
  int quadrants[4] = {0, 0, 0, 0};
  for (const auto& p : points) {
    ++quadrants[(p[0] < 0.5 ? 0 : 1) + (p[1] < 0.5 ? 0 : 2)];
  }
  for (int q : quadrants) {
    EXPECT_GT(q, 350);
    EXPECT_LT(q, 650);
  }
}

TEST(UniformSampleTest, Deterministic) {
  Rng a(7), b(7);
  EXPECT_EQ(UniformPlanSpaceSample(2, 10, &a),
            UniformPlanSpaceSample(2, 10, &b));
}

TEST(TrajectoryTest, CountAndBounds) {
  TrajectoryConfig cfg;
  cfg.dimensions = 4;
  cfg.total_points = 1000;
  Rng rng(3);
  auto points = RandomTrajectoriesWorkload(cfg, &rng);
  ASSERT_EQ(points.size(), 1000u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 4u);
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(TrajectoryTest, ConsecutivePointsAreLocal) {
  // Within a trajectory, consecutive points should be far closer than
  // independent uniform samples (mean distance ~0.52 in 2D).
  TrajectoryConfig cfg;
  cfg.dimensions = 2;
  cfg.total_points = 1000;
  cfg.scatter = 0.01;
  cfg.step = 0.02;
  Rng rng(5);
  auto points = RandomTrajectoriesWorkload(cfg, &rng);
  double mean_step = 0.0;
  size_t count = 0;
  const size_t per_trajectory = 100;
  for (size_t i = 1; i < points.size(); ++i) {
    if (i % per_trajectory == 0) continue;  // trajectory boundary
    mean_step += EuclideanDistance(points[i - 1], points[i]);
    ++count;
  }
  mean_step /= static_cast<double>(count);
  EXPECT_LT(mean_step, 0.15);
}

TEST(TrajectoryTest, LargerScatterSpreadsPoints) {
  auto mean_step_for = [](double scatter) {
    TrajectoryConfig cfg;
    cfg.dimensions = 2;
    cfg.total_points = 500;
    cfg.scatter = scatter;
    Rng rng(11);
    auto points = RandomTrajectoriesWorkload(cfg, &rng);
    double total = 0.0;
    for (size_t i = 1; i < points.size(); ++i) {
      total += EuclideanDistance(points[i - 1], points[i]);
    }
    return total / static_cast<double>(points.size() - 1);
  };
  EXPECT_GT(mean_step_for(0.08), mean_step_for(0.01));
}

TEST(TrajectoryTest, UsesConfiguredTrajectoryCount) {
  // With a single trajectory the walk is one continuous path; with many,
  // there are large jumps at trajectory boundaries.
  TrajectoryConfig cfg;
  cfg.dimensions = 2;
  cfg.total_points = 400;
  cfg.trajectory_count = 10;
  cfg.scatter = 0.005;
  Rng rng(13);
  auto points = RandomTrajectoriesWorkload(cfg, &rng);
  int big_jumps = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    if (EuclideanDistance(points[i - 1], points[i]) > 0.3) ++big_jumps;
  }
  EXPECT_GE(big_jumps, 3);  // most of the 9 boundaries jump far
}

TEST(TrajectoryTest, Deterministic) {
  TrajectoryConfig cfg;
  Rng a(17), b(17);
  EXPECT_EQ(RandomTrajectoriesWorkload(cfg, &a),
            RandomTrajectoriesWorkload(cfg, &b));
}

TEST(WorkloadHistoryTest, AppendAndFilter) {
  WorkloadHistory history;
  history.Append({"Q1", {1.0}, {0.1}, 111, 5.0});
  history.Append({"Q2", {2.0}, {0.2}, 222, 6.0});
  history.Append({"Q1", {3.0}, {0.3}, 111, 7.0});
  history.Append({"Q1", {4.0}, {0.4}, 333, 8.0});
  EXPECT_EQ(history.size(), 4u);
  EXPECT_EQ(history.ForTemplate("Q1").size(), 3u);
  EXPECT_EQ(history.ForTemplate("Q9").size(), 0u);
  const auto plans = history.DistinctPlans("Q1");
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0], 111u);
  EXPECT_EQ(plans[1], 333u);
}

TEST(WorkloadHistoryTest, EmptyHistory) {
  WorkloadHistory history;
  EXPECT_TRUE(history.empty());
  EXPECT_TRUE(history.DistinctPlans("Q1").empty());
}

}  // namespace
}  // namespace ppc
