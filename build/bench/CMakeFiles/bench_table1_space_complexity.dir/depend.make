# Empty dependencies file for bench_table1_space_complexity.
# This may be replaced when dependencies are built.
