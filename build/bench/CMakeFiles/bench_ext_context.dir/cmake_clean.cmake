file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_context.dir/bench_ext_context.cc.o"
  "CMakeFiles/bench_ext_context.dir/bench_ext_context.cc.o.d"
  "bench_ext_context"
  "bench_ext_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
