file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_zorder_decomposition.dir/bench_ext_zorder_decomposition.cc.o"
  "CMakeFiles/bench_ext_zorder_decomposition.dir/bench_ext_zorder_decomposition.cc.o.d"
  "bench_ext_zorder_decomposition"
  "bench_ext_zorder_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zorder_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
