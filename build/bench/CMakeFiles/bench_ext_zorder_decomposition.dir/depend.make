# Empty dependencies file for bench_ext_zorder_decomposition.
# This may be replaced when dependencies are built.
