file(REMOVE_RECURSE
  "CMakeFiles/bench_drift_detection.dir/bench_drift_detection.cc.o"
  "CMakeFiles/bench_drift_detection.dir/bench_drift_detection.cc.o.d"
  "bench_drift_detection"
  "bench_drift_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
