file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_diagram_stats.dir/bench_plan_diagram_stats.cc.o"
  "CMakeFiles/bench_plan_diagram_stats.dir/bench_plan_diagram_stats.cc.o.d"
  "bench_plan_diagram_stats"
  "bench_plan_diagram_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_diagram_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
