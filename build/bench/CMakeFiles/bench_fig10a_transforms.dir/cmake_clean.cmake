file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_transforms.dir/bench_fig10a_transforms.cc.o"
  "CMakeFiles/bench_fig10a_transforms.dir/bench_fig10a_transforms.cc.o.d"
  "bench_fig10a_transforms"
  "bench_fig10a_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
