# Empty dependencies file for bench_fig10a_transforms.
# This may be replaced when dependencies are built.
