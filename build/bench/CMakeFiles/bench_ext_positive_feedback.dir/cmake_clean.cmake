file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_positive_feedback.dir/bench_ext_positive_feedback.cc.o"
  "CMakeFiles/bench_ext_positive_feedback.dir/bench_ext_positive_feedback.cc.o.d"
  "bench_ext_positive_feedback"
  "bench_ext_positive_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_positive_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
