# Empty dependencies file for bench_ext_positive_feedback.
# This may be replaced when dependencies are built.
