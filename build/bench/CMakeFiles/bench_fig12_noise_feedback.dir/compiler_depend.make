# Empty compiler generated dependencies file for bench_fig12_noise_feedback.
# This may be replaced when dependencies are built.
