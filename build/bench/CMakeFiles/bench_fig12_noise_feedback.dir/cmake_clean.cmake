file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_noise_feedback.dir/bench_fig12_noise_feedback.cc.o"
  "CMakeFiles/bench_fig12_noise_feedback.dir/bench_fig12_noise_feedback.cc.o.d"
  "bench_fig12_noise_feedback"
  "bench_fig12_noise_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_noise_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
