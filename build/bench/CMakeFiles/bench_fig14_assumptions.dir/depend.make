# Empty dependencies file for bench_fig14_assumptions.
# This may be replaced when dependencies are built.
