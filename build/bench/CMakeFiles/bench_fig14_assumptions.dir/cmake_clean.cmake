file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_assumptions.dir/bench_fig14_assumptions.cc.o"
  "CMakeFiles/bench_fig14_assumptions.dir/bench_fig14_assumptions.cc.o.d"
  "bench_fig14_assumptions"
  "bench_fig14_assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
