# Empty dependencies file for bench_fig3_clustering_comparison.
# This may be replaced when dependencies are built.
