# Empty dependencies file for bench_fig10b_buckets.
# This may be replaced when dependencies are built.
