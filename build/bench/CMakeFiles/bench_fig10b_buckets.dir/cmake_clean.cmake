file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_buckets.dir/bench_fig10b_buckets.cc.o"
  "CMakeFiles/bench_fig10b_buckets.dir/bench_fig10b_buckets.cc.o.d"
  "bench_fig10b_buckets"
  "bench_fig10b_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
