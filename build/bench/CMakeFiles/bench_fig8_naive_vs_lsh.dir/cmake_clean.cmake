file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_naive_vs_lsh.dir/bench_fig8_naive_vs_lsh.cc.o"
  "CMakeFiles/bench_fig8_naive_vs_lsh.dir/bench_fig8_naive_vs_lsh.cc.o.d"
  "bench_fig8_naive_vs_lsh"
  "bench_fig8_naive_vs_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_naive_vs_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
