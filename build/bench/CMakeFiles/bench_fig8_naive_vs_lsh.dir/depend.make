# Empty dependencies file for bench_fig8_naive_vs_lsh.
# This may be replaced when dependencies are built.
