file(REMOVE_RECURSE
  "CMakeFiles/bench_invocation_probability.dir/bench_invocation_probability.cc.o"
  "CMakeFiles/bench_invocation_probability.dir/bench_invocation_probability.cc.o.d"
  "bench_invocation_probability"
  "bench_invocation_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invocation_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
