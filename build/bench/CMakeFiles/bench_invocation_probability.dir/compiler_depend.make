# Empty compiler generated dependencies file for bench_invocation_probability.
# This may be replaced when dependencies are built.
