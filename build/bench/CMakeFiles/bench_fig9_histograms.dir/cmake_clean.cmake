file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_histograms.dir/bench_fig9_histograms.cc.o"
  "CMakeFiles/bench_fig9_histograms.dir/bench_fig9_histograms.cc.o.d"
  "bench_fig9_histograms"
  "bench_fig9_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
