file(REMOVE_RECURSE
  "CMakeFiles/plan_space_explorer.dir/plan_space_explorer.cpp.o"
  "CMakeFiles/plan_space_explorer.dir/plan_space_explorer.cpp.o.d"
  "plan_space_explorer"
  "plan_space_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_space_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
