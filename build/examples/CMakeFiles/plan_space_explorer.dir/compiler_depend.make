# Empty compiler generated dependencies file for plan_space_explorer.
# This may be replaced when dependencies are built.
