file(REMOVE_RECURSE
  "CMakeFiles/adaptive_caching.dir/adaptive_caching.cpp.o"
  "CMakeFiles/adaptive_caching.dir/adaptive_caching.cpp.o.d"
  "adaptive_caching"
  "adaptive_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
