# Empty dependencies file for adaptive_caching.
# This may be replaced when dependencies are built.
