file(REMOVE_RECURSE
  "CMakeFiles/persistent_predictor.dir/persistent_predictor.cpp.o"
  "CMakeFiles/persistent_predictor.dir/persistent_predictor.cpp.o.d"
  "persistent_predictor"
  "persistent_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
