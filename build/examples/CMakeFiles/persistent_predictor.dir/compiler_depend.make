# Empty compiler generated dependencies file for persistent_predictor.
# This may be replaced when dependencies are built.
