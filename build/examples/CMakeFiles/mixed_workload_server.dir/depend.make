# Empty dependencies file for mixed_workload_server.
# This may be replaced when dependencies are built.
