file(REMOVE_RECURSE
  "CMakeFiles/mixed_workload_server.dir/mixed_workload_server.cpp.o"
  "CMakeFiles/mixed_workload_server.dir/mixed_workload_server.cpp.o.d"
  "mixed_workload_server"
  "mixed_workload_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_workload_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
