
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/ppc.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/ppc.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/ppc.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/ppc.dir/catalog/schema.cc.o.d"
  "/root/repo/src/clustering/approximate_lsh_predictor.cc" "src/CMakeFiles/ppc.dir/clustering/approximate_lsh_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/approximate_lsh_predictor.cc.o.d"
  "/root/repo/src/clustering/confidence.cc" "src/CMakeFiles/ppc.dir/clustering/confidence.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/confidence.cc.o.d"
  "/root/repo/src/clustering/density_predictor.cc" "src/CMakeFiles/ppc.dir/clustering/density_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/density_predictor.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/CMakeFiles/ppc.dir/clustering/kmeans.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/kmeans_predictor.cc" "src/CMakeFiles/ppc.dir/clustering/kmeans_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/kmeans_predictor.cc.o.d"
  "/root/repo/src/clustering/naive_grid_predictor.cc" "src/CMakeFiles/ppc.dir/clustering/naive_grid_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/naive_grid_predictor.cc.o.d"
  "/root/repo/src/clustering/single_linkage_predictor.cc" "src/CMakeFiles/ppc.dir/clustering/single_linkage_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/clustering/single_linkage_predictor.cc.o.d"
  "/root/repo/src/common/math_utils.cc" "src/CMakeFiles/ppc.dir/common/math_utils.cc.o" "gcc" "src/CMakeFiles/ppc.dir/common/math_utils.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ppc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ppc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ppc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ppc.dir/common/status.cc.o.d"
  "/root/repo/src/exec/execution_simulator.cc" "src/CMakeFiles/ppc.dir/exec/execution_simulator.cc.o" "gcc" "src/CMakeFiles/ppc.dir/exec/execution_simulator.cc.o.d"
  "/root/repo/src/exec/row_executor.cc" "src/CMakeFiles/ppc.dir/exec/row_executor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/exec/row_executor.cc.o.d"
  "/root/repo/src/lsh/grid.cc" "src/CMakeFiles/ppc.dir/lsh/grid.cc.o" "gcc" "src/CMakeFiles/ppc.dir/lsh/grid.cc.o.d"
  "/root/repo/src/lsh/transform.cc" "src/CMakeFiles/ppc.dir/lsh/transform.cc.o" "gcc" "src/CMakeFiles/ppc.dir/lsh/transform.cc.o.d"
  "/root/repo/src/lsh/zorder.cc" "src/CMakeFiles/ppc.dir/lsh/zorder.cc.o" "gcc" "src/CMakeFiles/ppc.dir/lsh/zorder.cc.o.d"
  "/root/repo/src/optimizer/contextual_optimizer.cc" "src/CMakeFiles/ppc.dir/optimizer/contextual_optimizer.cc.o" "gcc" "src/CMakeFiles/ppc.dir/optimizer/contextual_optimizer.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/ppc.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/ppc.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/ppc.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/ppc.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan_evaluator.cc" "src/CMakeFiles/ppc.dir/optimizer/plan_evaluator.cc.o" "gcc" "src/CMakeFiles/ppc.dir/optimizer/plan_evaluator.cc.o.d"
  "/root/repo/src/optimizer/robust_plan.cc" "src/CMakeFiles/ppc.dir/optimizer/robust_plan.cc.o" "gcc" "src/CMakeFiles/ppc.dir/optimizer/robust_plan.cc.o.d"
  "/root/repo/src/plan/fingerprint.cc" "src/CMakeFiles/ppc.dir/plan/fingerprint.cc.o" "gcc" "src/CMakeFiles/ppc.dir/plan/fingerprint.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/CMakeFiles/ppc.dir/plan/plan_node.cc.o" "gcc" "src/CMakeFiles/ppc.dir/plan/plan_node.cc.o.d"
  "/root/repo/src/ppc/lsh_histograms_predictor.cc" "src/CMakeFiles/ppc.dir/ppc/lsh_histograms_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/lsh_histograms_predictor.cc.o.d"
  "/root/repo/src/ppc/metrics.cc" "src/CMakeFiles/ppc.dir/ppc/metrics.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/metrics.cc.o.d"
  "/root/repo/src/ppc/online_predictor.cc" "src/CMakeFiles/ppc.dir/ppc/online_predictor.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/online_predictor.cc.o.d"
  "/root/repo/src/ppc/plan_cache.cc" "src/CMakeFiles/ppc.dir/ppc/plan_cache.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/plan_cache.cc.o.d"
  "/root/repo/src/ppc/plan_synopsis.cc" "src/CMakeFiles/ppc.dir/ppc/plan_synopsis.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/plan_synopsis.cc.o.d"
  "/root/repo/src/ppc/ppc_framework.cc" "src/CMakeFiles/ppc.dir/ppc/ppc_framework.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/ppc_framework.cc.o.d"
  "/root/repo/src/ppc/runtime_simulator.cc" "src/CMakeFiles/ppc.dir/ppc/runtime_simulator.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/runtime_simulator.cc.o.d"
  "/root/repo/src/ppc/sliding_window.cc" "src/CMakeFiles/ppc.dir/ppc/sliding_window.cc.o" "gcc" "src/CMakeFiles/ppc.dir/ppc/sliding_window.cc.o.d"
  "/root/repo/src/stats/column_stats.cc" "src/CMakeFiles/ppc.dir/stats/column_stats.cc.o" "gcc" "src/CMakeFiles/ppc.dir/stats/column_stats.cc.o.d"
  "/root/repo/src/stats/equi_depth_histogram.cc" "src/CMakeFiles/ppc.dir/stats/equi_depth_histogram.cc.o" "gcc" "src/CMakeFiles/ppc.dir/stats/equi_depth_histogram.cc.o.d"
  "/root/repo/src/stats/streaming_histogram.cc" "src/CMakeFiles/ppc.dir/stats/streaming_histogram.cc.o" "gcc" "src/CMakeFiles/ppc.dir/stats/streaming_histogram.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/ppc.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/ppc.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/ppc.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/ppc.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tpch_generator.cc" "src/CMakeFiles/ppc.dir/storage/tpch_generator.cc.o" "gcc" "src/CMakeFiles/ppc.dir/storage/tpch_generator.cc.o.d"
  "/root/repo/src/workload/plan_diagram.cc" "src/CMakeFiles/ppc.dir/workload/plan_diagram.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/plan_diagram.cc.o.d"
  "/root/repo/src/workload/query_template.cc" "src/CMakeFiles/ppc.dir/workload/query_template.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/query_template.cc.o.d"
  "/root/repo/src/workload/selectivity_mapper.cc" "src/CMakeFiles/ppc.dir/workload/selectivity_mapper.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/selectivity_mapper.cc.o.d"
  "/root/repo/src/workload/template_parser.cc" "src/CMakeFiles/ppc.dir/workload/template_parser.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/template_parser.cc.o.d"
  "/root/repo/src/workload/templates.cc" "src/CMakeFiles/ppc.dir/workload/templates.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/templates.cc.o.d"
  "/root/repo/src/workload/workload_generator.cc" "src/CMakeFiles/ppc.dir/workload/workload_generator.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/workload_generator.cc.o.d"
  "/root/repo/src/workload/workload_history.cc" "src/CMakeFiles/ppc.dir/workload/workload_history.cc.o" "gcc" "src/CMakeFiles/ppc.dir/workload/workload_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
