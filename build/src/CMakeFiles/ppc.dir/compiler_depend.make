# Empty compiler generated dependencies file for ppc.
# This may be replaced when dependencies are built.
