file(REMOVE_RECURSE
  "libppc.a"
)
