file(REMOVE_RECURSE
  "CMakeFiles/test_contextual_optimizer.dir/test_contextual_optimizer.cc.o"
  "CMakeFiles/test_contextual_optimizer.dir/test_contextual_optimizer.cc.o.d"
  "test_contextual_optimizer"
  "test_contextual_optimizer.pdb"
  "test_contextual_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contextual_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
