# Empty compiler generated dependencies file for test_contextual_optimizer.
# This may be replaced when dependencies are built.
