file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_simulator.dir/test_runtime_simulator.cc.o"
  "CMakeFiles/test_runtime_simulator.dir/test_runtime_simulator.cc.o.d"
  "test_runtime_simulator"
  "test_runtime_simulator.pdb"
  "test_runtime_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
