file(REMOVE_RECURSE
  "CMakeFiles/test_tpch_generator.dir/test_tpch_generator.cc.o"
  "CMakeFiles/test_tpch_generator.dir/test_tpch_generator.cc.o.d"
  "test_tpch_generator"
  "test_tpch_generator.pdb"
  "test_tpch_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpch_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
