# Empty compiler generated dependencies file for test_tpch_generator.
# This may be replaced when dependencies are built.
