file(REMOVE_RECURSE
  "CMakeFiles/test_zorder_decomposition.dir/test_zorder_decomposition.cc.o"
  "CMakeFiles/test_zorder_decomposition.dir/test_zorder_decomposition.cc.o.d"
  "test_zorder_decomposition"
  "test_zorder_decomposition.pdb"
  "test_zorder_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zorder_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
