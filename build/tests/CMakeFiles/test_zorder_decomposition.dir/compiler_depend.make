# Empty compiler generated dependencies file for test_zorder_decomposition.
# This may be replaced when dependencies are built.
