# Empty dependencies file for test_predicate_ops.
# This may be replaced when dependencies are built.
