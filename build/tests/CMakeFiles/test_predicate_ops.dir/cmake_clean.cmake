file(REMOVE_RECURSE
  "CMakeFiles/test_predicate_ops.dir/test_predicate_ops.cc.o"
  "CMakeFiles/test_predicate_ops.dir/test_predicate_ops.cc.o.d"
  "test_predicate_ops"
  "test_predicate_ops.pdb"
  "test_predicate_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicate_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
