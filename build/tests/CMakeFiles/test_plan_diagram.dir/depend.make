# Empty dependencies file for test_plan_diagram.
# This may be replaced when dependencies are built.
