file(REMOVE_RECURSE
  "CMakeFiles/test_plan_diagram.dir/test_plan_diagram.cc.o"
  "CMakeFiles/test_plan_diagram.dir/test_plan_diagram.cc.o.d"
  "test_plan_diagram"
  "test_plan_diagram.pdb"
  "test_plan_diagram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
