file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer_options.dir/test_optimizer_options.cc.o"
  "CMakeFiles/test_optimizer_options.dir/test_optimizer_options.cc.o.d"
  "test_optimizer_options"
  "test_optimizer_options.pdb"
  "test_optimizer_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
