# Empty compiler generated dependencies file for test_optimizer_options.
# This may be replaced when dependencies are built.
