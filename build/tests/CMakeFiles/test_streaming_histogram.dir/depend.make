# Empty dependencies file for test_streaming_histogram.
# This may be replaced when dependencies are built.
