file(REMOVE_RECURSE
  "CMakeFiles/test_streaming_histogram.dir/test_streaming_histogram.cc.o"
  "CMakeFiles/test_streaming_histogram.dir/test_streaming_histogram.cc.o.d"
  "test_streaming_histogram"
  "test_streaming_histogram.pdb"
  "test_streaming_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
