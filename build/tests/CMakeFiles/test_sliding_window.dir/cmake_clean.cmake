file(REMOVE_RECURSE
  "CMakeFiles/test_sliding_window.dir/test_sliding_window.cc.o"
  "CMakeFiles/test_sliding_window.dir/test_sliding_window.cc.o.d"
  "test_sliding_window"
  "test_sliding_window.pdb"
  "test_sliding_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
