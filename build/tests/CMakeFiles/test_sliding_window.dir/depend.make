# Empty dependencies file for test_sliding_window.
# This may be replaced when dependencies are built.
