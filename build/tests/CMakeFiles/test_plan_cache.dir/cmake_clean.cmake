file(REMOVE_RECURSE
  "CMakeFiles/test_plan_cache.dir/test_plan_cache.cc.o"
  "CMakeFiles/test_plan_cache.dir/test_plan_cache.cc.o.d"
  "test_plan_cache"
  "test_plan_cache.pdb"
  "test_plan_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
