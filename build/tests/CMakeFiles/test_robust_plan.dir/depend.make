# Empty dependencies file for test_robust_plan.
# This may be replaced when dependencies are built.
