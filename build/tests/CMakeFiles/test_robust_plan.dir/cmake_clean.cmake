file(REMOVE_RECURSE
  "CMakeFiles/test_robust_plan.dir/test_robust_plan.cc.o"
  "CMakeFiles/test_robust_plan.dir/test_robust_plan.cc.o.d"
  "test_robust_plan"
  "test_robust_plan.pdb"
  "test_robust_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
