file(REMOVE_RECURSE
  "CMakeFiles/test_plan_node.dir/test_plan_node.cc.o"
  "CMakeFiles/test_plan_node.dir/test_plan_node.cc.o.d"
  "test_plan_node"
  "test_plan_node.pdb"
  "test_plan_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
