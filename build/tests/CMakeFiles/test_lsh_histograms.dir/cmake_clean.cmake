file(REMOVE_RECURSE
  "CMakeFiles/test_lsh_histograms.dir/test_lsh_histograms.cc.o"
  "CMakeFiles/test_lsh_histograms.dir/test_lsh_histograms.cc.o.d"
  "test_lsh_histograms"
  "test_lsh_histograms.pdb"
  "test_lsh_histograms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsh_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
