# Empty compiler generated dependencies file for test_lsh_histograms.
# This may be replaced when dependencies are built.
