# Empty dependencies file for test_row_executor.
# This may be replaced when dependencies are built.
