file(REMOVE_RECURSE
  "CMakeFiles/test_row_executor.dir/test_row_executor.cc.o"
  "CMakeFiles/test_row_executor.dir/test_row_executor.cc.o.d"
  "test_row_executor"
  "test_row_executor.pdb"
  "test_row_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
