file(REMOVE_RECURSE
  "CMakeFiles/test_plan_evaluator.dir/test_plan_evaluator.cc.o"
  "CMakeFiles/test_plan_evaluator.dir/test_plan_evaluator.cc.o.d"
  "test_plan_evaluator"
  "test_plan_evaluator.pdb"
  "test_plan_evaluator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
