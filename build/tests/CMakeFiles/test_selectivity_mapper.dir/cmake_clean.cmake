file(REMOVE_RECURSE
  "CMakeFiles/test_selectivity_mapper.dir/test_selectivity_mapper.cc.o"
  "CMakeFiles/test_selectivity_mapper.dir/test_selectivity_mapper.cc.o.d"
  "test_selectivity_mapper"
  "test_selectivity_mapper.pdb"
  "test_selectivity_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectivity_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
