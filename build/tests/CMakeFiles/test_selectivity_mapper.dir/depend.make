# Empty dependencies file for test_selectivity_mapper.
# This may be replaced when dependencies are built.
