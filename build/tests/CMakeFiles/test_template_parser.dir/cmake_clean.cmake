file(REMOVE_RECURSE
  "CMakeFiles/test_template_parser.dir/test_template_parser.cc.o"
  "CMakeFiles/test_template_parser.dir/test_template_parser.cc.o.d"
  "test_template_parser"
  "test_template_parser.pdb"
  "test_template_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
