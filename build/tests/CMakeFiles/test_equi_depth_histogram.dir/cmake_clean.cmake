file(REMOVE_RECURSE
  "CMakeFiles/test_equi_depth_histogram.dir/test_equi_depth_histogram.cc.o"
  "CMakeFiles/test_equi_depth_histogram.dir/test_equi_depth_histogram.cc.o.d"
  "test_equi_depth_histogram"
  "test_equi_depth_histogram.pdb"
  "test_equi_depth_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equi_depth_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
