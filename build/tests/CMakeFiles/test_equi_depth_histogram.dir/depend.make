# Empty dependencies file for test_equi_depth_histogram.
# This may be replaced when dependencies are built.
