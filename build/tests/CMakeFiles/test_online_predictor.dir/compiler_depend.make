# Empty compiler generated dependencies file for test_online_predictor.
# This may be replaced when dependencies are built.
