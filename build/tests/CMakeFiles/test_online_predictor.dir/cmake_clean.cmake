file(REMOVE_RECURSE
  "CMakeFiles/test_online_predictor.dir/test_online_predictor.cc.o"
  "CMakeFiles/test_online_predictor.dir/test_online_predictor.cc.o.d"
  "test_online_predictor"
  "test_online_predictor.pdb"
  "test_online_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
