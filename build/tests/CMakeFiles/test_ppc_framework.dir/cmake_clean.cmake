file(REMOVE_RECURSE
  "CMakeFiles/test_ppc_framework.dir/test_ppc_framework.cc.o"
  "CMakeFiles/test_ppc_framework.dir/test_ppc_framework.cc.o.d"
  "test_ppc_framework"
  "test_ppc_framework.pdb"
  "test_ppc_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppc_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
