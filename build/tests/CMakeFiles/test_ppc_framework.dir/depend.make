# Empty dependencies file for test_ppc_framework.
# This may be replaced when dependencies are built.
