file(REMOVE_RECURSE
  "CMakeFiles/test_positive_feedback.dir/test_positive_feedback.cc.o"
  "CMakeFiles/test_positive_feedback.dir/test_positive_feedback.cc.o.d"
  "test_positive_feedback"
  "test_positive_feedback.pdb"
  "test_positive_feedback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_positive_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
