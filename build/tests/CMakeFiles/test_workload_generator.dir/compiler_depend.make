# Empty compiler generated dependencies file for test_workload_generator.
# This may be replaced when dependencies are built.
