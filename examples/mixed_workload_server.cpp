// Mixed-workload server: the real network serving layer (src/server/)
// fronting several query templates at once, the way an RDBMS plan cache
// serves a whole application (paper Fig. 1). Starts a PlanServer on an
// ephemeral localhost port, then drives trajectory workloads of four
// templates of different parameter degrees through a PpcClient over TCP —
// every query takes the full wire-protocol EXECUTE path with online
// feedback — and reports per-template and global statistics plus the
// server's own request counters.
//
//   ./build/examples/mixed_workload_server
//
// SIGINT/SIGTERM trigger a graceful drain (admitted requests finish
// before the process exits).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ppc/ppc_framework.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

int main() {
  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);

  ppc::PpcFramework::Config config;
  config.online.predictor.transform_count = 5;
  config.online.predictor.histogram_buckets = 40;
  config.online.predictor.radius = 0.15;
  config.online.predictor.confidence_threshold = 0.8;
  config.online.predictor.noise_fraction = 0.0005;
  config.plan_cache_capacity = 64;
  ppc::PpcFramework framework(catalog.get(), config);

  const std::vector<std::string> templates = {"Q1", "Q3", "Q5", "Q7"};
  std::map<std::string, std::vector<std::vector<double>>> workloads;
  ppc::Rng rng(2024);
  for (const std::string& name : templates) {
    const ppc::QueryTemplate tmpl = ppc::EvaluationTemplate(name);
    PPC_CHECK(framework.RegisterTemplate(tmpl).ok());
    ppc::TrajectoryConfig traj;
    traj.dimensions = tmpl.ParameterDegree();
    traj.total_points = 500;
    traj.scatter = 0.01;
    workloads[name] = RandomTrajectoriesWorkload(traj, &rng);
  }

  ppc::PlanServer server(&framework, ppc::PlanServer::Config{});
  {
    const ppc::Status s = server.Start();
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  {
    const ppc::Status s = ppc::InstallShutdownSignalHandlers(&server);
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  std::printf("plan-prediction server listening on 127.0.0.1:%u\n\n",
              server.port());

  ppc::PpcClient client;
  {
    const ppc::Status s = client.Connect("127.0.0.1", server.port());
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }

  struct Stats {
    size_t queries = 0;
    size_t cache_served = 0;
    double optimize_micros = 0.0;
    double predict_micros = 0.0;
  };
  std::map<std::string, Stats> stats;

  // Interleave: one query per template per round, like concurrent clients.
  // A signal mid-run surfaces as SHUTTING_DOWN (or, once the listener has
  // gone away, a transport error) — stop submitting and let the drain
  // finish.
  bool draining = false;
  for (size_t i = 0; i < 500 && !draining; ++i) {
    for (const std::string& name : templates) {
      auto report = client.Execute(name, workloads[name][i]);
      if (!report.ok()) {
        draining = true;
        std::printf("drain initiated mid-run (%s); stopping submission\n",
                    report.status().ToString().c_str());
        break;
      }
      Stats& s = stats[name];
      ++s.queries;
      if (report.value().used_prediction) ++s.cache_served;
      s.optimize_micros += report.value().optimize_micros;
      s.predict_micros += report.value().predict_micros;
    }
  }

  std::printf("%-6s %8s %12s %14s %16s %16s\n", "tmpl", "degree", "queries",
              "cache-served", "optimize (us)", "predict (us)");
  for (const std::string& name : templates) {
    const Stats& s = stats[name];
    if (s.queries == 0) continue;
    std::printf("%-6s %8d %12zu %11zu (%2.0f%%) %16.0f %16.0f\n",
                name.c_str(),
                ppc::EvaluationTemplate(name).ParameterDegree(), s.queries,
                s.cache_served, 100.0 * s.cache_served / s.queries,
                s.optimize_micros, s.predict_micros);
  }

  const ppc::PlanCache& cache = framework.plan_cache();
  std::printf("\nshared plan cache: %zu/%zu plans resident, %llu hits, "
              "%llu misses, %llu evictions\n",
              cache.size(), cache.capacity(),
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()),
              static_cast<unsigned long long>(cache.evictions()));
  for (const std::string& name : templates) {
    const std::shared_ptr<const ppc::OnlinePpcPredictor> online =
        framework.online_predictor(name);
    std::printf("%s predictor: %zu samples, %zu plans, %llu synopsis bytes, "
                "est. precision %.2f\n",
                name.c_str(), online->predictor().TotalSamples(),
                online->predictor().DistinctPlans(),
                static_cast<unsigned long long>(
                    online->predictor().SpaceBytes()),
                online->tracker().TemplatePrecision());
  }

  // Server-side request accounting, fetched over the wire.
  if (!draining) {
    auto metrics = client.Metrics();
    if (metrics.ok()) {
      std::printf("\nserver metrics payload: %zu bytes of JSON "
                  "(see server.requests.* counters)\n",
                  metrics.value().size());
    }
    const ppc::Status down = client.Shutdown();
    PPC_CHECK_MSG(down.ok(), down.ToString().c_str());
  }
  server.Wait();
  std::printf("server drained and exited cleanly\n");
  return 0;
}
