// Adaptive caching demo: the online framework reacting to a workload whose
// plan space changes mid-stream (paper Sec. V-D).
//
// Phase 1 executes a random-trajectory workload against the normal cost
// regime; the predictor warms up and serves most queries from the cache.
// Phase 2 flips the I/O cost regime (simulating the working set suddenly
// fitting in the buffer pool), relocating every plan boundary: negative
// feedback detects cost mismatches, the windowed precision estimate drops,
// the framework re-learns.
//
//   ./build/examples/adaptive_caching

#include <cstdio>

#include "exec/execution_simulator.h"
#include "optimizer/optimizer.h"
#include "ppc/online_predictor.h"
#include "ppc/plan_cache.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace {

struct PhaseStats {
  size_t queries = 0;
  size_t optimizer_calls = 0;
  size_t cache_served = 0;
  size_t feedback_reoptimizations = 0;
};

}  // namespace

int main() {
  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);

  const ppc::QueryTemplate tmpl = ppc::EvaluationTemplate("Q5");
  std::printf("template: %s\n\n", tmpl.ToSql().c_str());

  // Two cost regimes: disk-bound (normal) and memory-resident (drifted).
  ppc::Optimizer disk_bound(catalog.get());
  ppc::CostModelParams memory_resident_params;
  memory_resident_params.random_page_cost = 0.5;
  memory_resident_params.seq_page_cost = 4.0;
  memory_resident_params.hash_build_cost_per_row = 0.25;
  ppc::Optimizer memory_resident(catalog.get(), memory_resident_params);

  ppc::OnlinePpcPredictor::Config online_config;
  online_config.predictor.dimensions = tmpl.ParameterDegree();
  online_config.predictor.transform_count = 5;
  online_config.predictor.histogram_buckets = 40;
  online_config.predictor.radius = 0.2;
  online_config.predictor.confidence_threshold = 0.8;
  online_config.predictor.noise_fraction = 0.0005;
  online_config.negative_feedback = true;
  online_config.estimator_window = 100;
  online_config.reset_precision_threshold = 0.70;
  ppc::OnlinePpcPredictor online(online_config);
  ppc::PlanCache cache(32);

  ppc::TrajectoryConfig traj;
  traj.dimensions = tmpl.ParameterDegree();
  traj.total_points = 2000;
  traj.scatter = 0.01;
  ppc::Rng rng(99);
  auto workload = RandomTrajectoriesWorkload(traj, &rng);

  PhaseStats phases[2];
  for (size_t i = 0; i < workload.size(); ++i) {
    const bool drifted = i >= workload.size() / 2;
    const ppc::Optimizer& optimizer = drifted ? memory_resident : disk_bound;
    auto prep = optimizer.Prepare(tmpl);
    PPC_CHECK(prep.ok());
    ppc::ExecutionSimulator simulator(&optimizer.cost_model());
    PhaseStats& stats = phases[drifted ? 1 : 0];
    ++stats.queries;

    const std::vector<double>& x = workload[i];
    auto decision = online.Decide(x);
    std::shared_ptr<const ppc::PlanNode> cached;
    if (decision.use_prediction) {
      cached = cache.Get(decision.prediction.plan);
    }
    if (cached != nullptr) {
      ++stats.cache_served;
      auto cost = simulator.Execute(prep.value(), *cached, x);
      PPC_CHECK(cost.ok());
      if (online.ReportPredictionExecuted(x, decision.prediction,
                                          cost.value())) {
        // Negative feedback: re-optimize and learn the truth.
        ++stats.feedback_reoptimizations;
        ++stats.optimizer_calls;
        auto opt = optimizer.Optimize(prep.value(), x);
        PPC_CHECK(opt.ok());
        auto true_cost =
            simulator.Execute(prep.value(), *opt.value().plan, x);
        PPC_CHECK(true_cost.ok());
        online.ObserveOptimized({x, opt.value().plan_id, true_cost.value()});
        cache.Put(opt.value().plan_id, std::move(opt.value().plan));
      }
    } else {
      ++stats.optimizer_calls;
      auto opt = optimizer.Optimize(prep.value(), x);
      PPC_CHECK(opt.ok());
      auto cost = simulator.Execute(prep.value(), *opt.value().plan, x);
      PPC_CHECK(cost.ok());
      online.ObserveOptimized({x, opt.value().plan_id, cost.value()});
      cache.Put(opt.value().plan_id, std::move(opt.value().plan));
    }

    if ((i + 1) % 250 == 0) {
      std::printf("after %4zu queries%s: est. precision %.2f, est. recall "
                  "%.2f, resets %zu, cache %zu plans\n",
                  i + 1, drifted ? " [drifted regime]" : "",
                  online.tracker().TemplatePrecision(),
                  online.tracker().TemplateRecall(), online.reset_count(),
                  cache.size());
    }
  }

  for (int p = 0; p < 2; ++p) {
    std::printf("\nphase %d (%s): %zu queries, %zu optimizer calls, "
                "%zu cache-served (%.0f%%), %zu feedback re-optimizations\n",
                p + 1, p == 0 ? "disk-bound" : "memory-resident",
                phases[p].queries, phases[p].optimizer_calls,
                phases[p].cache_served,
                100.0 * phases[p].cache_served / phases[p].queries,
                phases[p].feedback_reoptimizations);
  }
  std::printf("\nhistogram resets triggered by drift detection: %zu\n",
              online.reset_count());
  return 0;
}
