// Plan-space explorer: renders the plan diagram of any evaluation template
// (the paper's Fig. 2) by probing the optimizer over a 2-D slice of the
// selectivity space, and prints each region's physical plan tree.
//
// Usage:
//   ./build/examples/plan_space_explorer [template] [grid] [dim_x] [dim_y]
//
//   template : Q0..Q8 (default Q1)
//   grid     : cells per axis (default 32)
//   dim_x/y  : which parameters to sweep for templates with degree > 2;
//              all other parameters are pinned at selectivity 0.5.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "optimizer/optimizer.h"
#include "plan/fingerprint.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Q1";
  const int grid = argc > 2 ? std::atoi(argv[2]) : 32;
  const int dim_x = argc > 3 ? std::atoi(argv[3]) : 0;
  const int dim_y = argc > 4 ? std::atoi(argv[4]) : 1;

  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);
  ppc::Optimizer optimizer(catalog.get());

  const ppc::QueryTemplate tmpl = ppc::EvaluationTemplate(name);
  auto prep = optimizer.Prepare(tmpl);
  PPC_CHECK_MSG(prep.ok(), prep.status().ToString().c_str());
  const int degree = tmpl.ParameterDegree();
  if (dim_x >= degree || dim_y >= degree || dim_x == dim_y) {
    std::fprintf(stderr, "invalid dimensions for degree-%d template\n",
                 degree);
    return 1;
  }

  std::printf("%s: %s\n", name.c_str(), tmpl.ToSql().c_str());
  std::printf("sweeping sel(%s.%s) (x) and sel(%s.%s) (y); "
              "other parameters pinned at 0.5\n\n",
              tmpl.params[dim_x].table.c_str(),
              tmpl.params[dim_x].column.c_str(),
              tmpl.params[dim_y].table.c_str(),
              tmpl.params[dim_y].column.c_str());

  std::map<ppc::PlanId, char> symbol;
  std::map<ppc::PlanId, int> area;
  std::map<ppc::PlanId, std::string> tree;
  for (int y = grid - 1; y >= 0; --y) {
    for (int x = 0; x < grid; ++x) {
      std::vector<double> point(static_cast<size_t>(degree), 0.5);
      point[static_cast<size_t>(dim_x)] = (x + 0.5) / grid;
      point[static_cast<size_t>(dim_y)] = (y + 0.5) / grid;
      auto result = optimizer.Optimize(prep.value(), point);
      PPC_CHECK(result.ok());
      const ppc::PlanId id = result.value().plan_id;
      if (symbol.find(id) == symbol.end()) {
        const size_t n = symbol.size();
        symbol[id] = n < 26 ? static_cast<char>('A' + n)
                            : static_cast<char>('a' + (n - 26) % 26);
        tree[id] = PrintPlan(*result.value().plan);
      }
      ++area[id];
      std::putchar(symbol[id]);
    }
    std::putchar('\n');
  }

  std::printf("\n%zu distinct plans on this slice\n", symbol.size());
  for (const auto& [id, sym] : symbol) {
    std::printf("\n[%c] %.1f%% of the slice\n%s", sym,
                100.0 * area[id] / (grid * grid), tree[id].c_str());
  }
  return 0;
}
