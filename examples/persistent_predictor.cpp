// Persistent predictor: parse a query template from SQL text, train the
// histogram predictor online, snapshot it to a file, restore it in a
// "second process", and verify the restored predictor serves the same
// predictions — a plan cache whose learned plan-space knowledge survives
// server restarts.
//
//   ./build/examples/persistent_predictor [snapshot_path]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "optimizer/optimizer.h"
#include "ppc/lsh_histograms_predictor.h"
#include "storage/tpch_generator.h"
#include "workload/template_parser.h"
#include "workload/workload_generator.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/ppc_predictor.snapshot";

  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);

  // Templates arrive as SQL text in a real deployment; parse one.
  auto tmpl = ppc::ParseQueryTemplate(
      "SELECT COUNT(*) FROM customer, orders, lineitem "
      "WHERE customer.c_custkey = orders.o_custkey "
      "AND orders.o_orderkey = lineitem.l_orderkey "
      "AND customer.c_acctbal <= $0 AND orders.o_date <= $1 "
      "AND lineitem.l_date <= $2",
      catalog.get(), "parsed_q3");
  PPC_CHECK_MSG(tmpl.ok(), tmpl.status().ToString().c_str());
  std::printf("parsed template: %s\n\n", tmpl.value().ToSql().c_str());

  ppc::Optimizer optimizer(catalog.get());
  auto prep = optimizer.Prepare(tmpl.value());
  PPC_CHECK(prep.ok());

  // --- "First server process": train from optimizer feedback. ---
  ppc::LshHistogramsPredictor::Config cfg;
  cfg.dimensions = tmpl.value().ParameterDegree();
  cfg.transform_count = 5;
  cfg.histogram_buckets = 40;
  cfg.radius = 0.15;
  cfg.confidence_threshold = 0.8;
  ppc::LshHistogramsPredictor trained(cfg);

  ppc::TrajectoryConfig traj;
  traj.dimensions = cfg.dimensions;
  traj.total_points = 800;
  traj.scatter = 0.02;
  ppc::Rng rng(2718);
  for (const auto& point : RandomTrajectoriesWorkload(traj, &rng)) {
    auto opt = optimizer.Optimize(prep.value(), point);
    PPC_CHECK(opt.ok());
    trained.Insert({point, opt.value().plan_id, opt.value().estimated_cost});
  }
  std::printf("trained: %zu samples, %zu plans, %llu synopsis bytes\n",
              trained.TotalSamples(), trained.DistinctPlans(),
              static_cast<unsigned long long>(trained.SpaceBytes()));

  // Snapshot to disk.
  const std::string snapshot = trained.Serialize();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(snapshot.data(),
              static_cast<std::streamsize>(snapshot.size()));
  }
  std::printf("snapshot written: %s (%zu bytes)\n\n", path.c_str(),
              snapshot.size());

  // --- "Second server process": restore and compare. ---
  std::string loaded;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    loaded = buffer.str();
  }
  auto restored = ppc::LshHistogramsPredictor::Restore(loaded);
  PPC_CHECK_MSG(restored.ok(), restored.status().ToString().c_str());

  size_t agreements = 0, predictions = 0;
  ppc::Rng probe(31415);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(static_cast<size_t>(cfg.dimensions));
    for (double& v : x) v = probe.Uniform();
    const ppc::Prediction a = trained.Predict(x);
    const ppc::Prediction b = restored.value().Predict(x);
    if (a.plan == b.plan && a.confidence == b.confidence) ++agreements;
    if (b.has_value()) ++predictions;
  }
  std::printf("restored predictor: %zu samples, %zu plans\n",
              restored.value().TotalSamples(),
              restored.value().DistinctPlans());
  std::printf("500 probe points: %zu/500 identical answers, %zu non-NULL "
              "predictions\n",
              agreements, predictions);
  std::printf("\nthe restored predictor picks up exactly where the first "
              "process left off —\nno cold-start re-learning after a "
              "restart.\n");
  return agreements == 500 ? 0 : 1;
}
