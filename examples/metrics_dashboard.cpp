// Metrics dashboard: the observability layer of the serving path, live.
//
// Serves a clustered multi-template workload in rounds and, after every
// round, prints the per-template predictor health table from
// PpcFramework::MetricsSnapshot() — the windowed precision/recall
// estimators of paper Sec. IV-E plus outcome counters (including the
// predicted-but-evicted case) and predict/optimize latency percentiles.
// Midway the workload drifts to new plan-space regions, which is visible
// as precision/beta dips and a burst of optimizer calls before the
// predictors re-learn. The final snapshot is dumped as JSON — the same
// payload the benches embed in their BENCH_*.json files.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/metrics_dashboard

#include <cstdio>
#include <string>
#include <vector>

#include "ppc/ppc_framework.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"

namespace {

constexpr size_t kRounds = 6;
constexpr size_t kQueriesPerRound = 400;
const char* const kTemplates[] = {"Q1", "Q3", "Q5"};

uint64_t CounterValue(const ppc::MetricsRegistry::Snapshot& snap,
                      const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

const ppc::LatencyHistogram::Snapshot* Histogram(
    const ppc::MetricsRegistry::Snapshot& snap, const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

void PrintDashboard(size_t round, const ppc::PpcFramework& framework) {
  const ppc::PpcFramework::FrameworkMetrics snap = framework.MetricsSnapshot();
  std::printf("\n== round %zu: %llu queries served ==\n", round,
              static_cast<unsigned long long>(
                  CounterValue(snap.registry, "framework.queries")));
  std::printf("%-6s %10s %8s %6s %7s %6s %6s %8s\n", "tmpl", "precision",
              "recall", "beta", "fb+", "fb-", "resets", "samples");
  for (const auto& t : snap.templates) {
    std::printf("%-6s %10.3f %8.3f %6.3f %7llu %6llu %6zu %8zu\n",
                t.name.c_str(), t.stats.precision, t.stats.recall,
                t.stats.beta,
                static_cast<unsigned long long>(t.stats.feedback_positive),
                static_cast<unsigned long long>(t.stats.feedback_negative),
                t.stats.resets, t.stats.optimizer_insertions);
  }
  const double lookups =
      static_cast<double>(snap.cache.hits + snap.cache.misses);
  std::printf("cache: %llu/%llu entries, hit rate %.1f%%, "
              "%llu evictions (%llu precision-ranked)\n",
              static_cast<unsigned long long>(snap.cache.size),
              static_cast<unsigned long long>(snap.cache.capacity),
              lookups > 0.0 ? 100.0 * static_cast<double>(snap.cache.hits) /
                                  lookups
                            : 0.0,
              static_cast<unsigned long long>(snap.cache.evictions),
              static_cast<unsigned long long>(snap.cache.precision_evictions));
  const auto* predict = Histogram(snap.registry, "framework.predict_us");
  const auto* optimize = Histogram(snap.registry, "framework.optimize_us");
  if (predict != nullptr && optimize != nullptr) {
    std::printf("latency us: predict p50/p95/p99 = %.1f/%.1f/%.1f, "
                "optimize p50/p95/p99 = %.1f/%.1f/%.1f\n",
                predict->p50_us, predict->p95_us, predict->p99_us,
                optimize->p50_us, optimize->p95_us, optimize->p99_us);
  }
  std::printf("outcomes: executed=%llu null=%llu evicted=%llu "
              "negative_feedback=%llu\n",
              static_cast<unsigned long long>(CounterValue(
                  snap.registry, "framework.predictions.executed")),
              static_cast<unsigned long long>(
                  CounterValue(snap.registry, "framework.predictions.null")),
              static_cast<unsigned long long>(CounterValue(
                  snap.registry, "framework.predictions.evicted")),
              static_cast<unsigned long long>(CounterValue(
                  snap.registry, "framework.negative_feedback")));
}

}  // namespace

int main() {
  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);

  ppc::PpcFramework::Config config;
  config.online.predictor.transform_count = 5;
  config.online.predictor.histogram_buckets = 40;
  config.online.predictor.radius = 0.05;
  config.online.predictor.confidence_threshold = 0.8;
  config.online.predictor.noise_fraction = 0.002;
  config.online.estimator_window = 100;
  config.plan_cache_capacity = 16;  // small, so evictions show up
  ppc::PpcFramework framework(catalog.get(), config);
  for (const char* name : kTemplates) {
    PPC_CHECK(framework.RegisterTemplate(ppc::EvaluationTemplate(name)).ok());
  }
  framework.Seal();

  ppc::Rng rng(2024);
  for (size_t round = 1; round <= kRounds; ++round) {
    // First half of the run clusters around 0.5; the second half drifts to
    // 0.25 — a workload shift the dashboard should make visible.
    const double center = round <= kRounds / 2 ? 0.5 : 0.25;
    for (size_t i = 0; i < kQueriesPerRound; ++i) {
      const char* name = kTemplates[i % 3];
      const int dims =
          ppc::EvaluationTemplate(name).ParameterDegree();
      std::vector<double> point(static_cast<size_t>(dims));
      for (double& v : point) v = center + rng.Uniform(-0.02, 0.02);
      auto report = framework.ExecuteAtPoint(name, point);
      PPC_CHECK(report.ok());
    }
    PrintDashboard(round, framework);
  }

  std::printf("\nfinal snapshot as JSON:\n%s\n",
              framework.MetricsSnapshot().ToJson().c_str());
  return 0;
}
