// Quickstart: the smallest end-to-end use of the parametric plan cache.
//
// Builds the TPC-H-style catalog, registers a query template with the PPC
// framework, and executes a handful of query instances — watching the
// framework go from cold (every query optimized) to warm (plans served
// from the cache by the density-based predictor).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "ppc/ppc_framework.h"
#include "storage/tpch_generator.h"
#include "workload/selectivity_mapper.h"
#include "workload/templates.h"

int main() {
  // 1. A database: 8 TPC-H-style tables with data, indexes and statistics.
  ppc::TpchConfig db_config;
  db_config.scale_factor = 0.002;
  auto catalog = ppc::BuildTpchCatalog(db_config);
  std::printf("catalog ready: lineitem has %zu rows\n",
              catalog->TableRows("lineitem"));

  // 2. The PPC framework: optimizer + plan cache + one online
  //    density-based predictor per registered query template.
  ppc::PpcFramework::Config config;
  config.online.predictor.transform_count = 5;   // t randomized transforms
  config.online.predictor.histogram_buckets = 40;  // b_h per histogram
  config.online.predictor.radius = 0.1;            // query radius d
  config.online.predictor.confidence_threshold = 0.8;  // gamma
  config.plan_cache_capacity = 32;
  ppc::PpcFramework framework(catalog.get(), config);

  // 3. Register a query template. Q1 is the paper's running example:
  //    supplier JOIN lineitem with range predicates on s_date, l_partkey.
  const ppc::QueryTemplate tmpl = ppc::EvaluationTemplate("Q1");
  std::printf("\ntemplate: %s\n", tmpl.ToSql().c_str());
  PPC_CHECK(framework.RegisterTemplate(tmpl).ok());

  // 4. Execute instances. The selectivity mapper converts raw parameter
  //    values into plan-space coordinates, exactly the way the optimizer
  //    estimates selectivities.
  ppc::SelectivityMapper mapper(catalog.get(), &tmpl);
  ppc::Rng rng(7);
  size_t optimized = 0, cached = 0;
  for (int i = 0; i < 200; ++i) {
    // A workload clustered around one region of the plan space.
    const std::vector<double> point = {0.55 + rng.Uniform(-0.03, 0.03),
                                       0.55 + rng.Uniform(-0.03, 0.03)};
    auto instance = mapper.ToInstance(point);
    PPC_CHECK(instance.ok());
    auto report = framework.ExecuteInstance(instance.value());
    PPC_CHECK(report.ok());
    if (report.value().used_prediction) {
      ++cached;
    } else {
      ++optimized;
    }
    if (i < 3 || i == 199) {
      std::printf(
          "query %3d: s_date <= %.0f, l_partkey <= %.0f -> %s "
          "(cost %.1f, predict %.1f us, optimize %.1f us)\n",
          i, instance.value().param_values[0],
          instance.value().param_values[1],
          report.value().used_prediction ? "cached plan" : "optimized",
          report.value().execution_cost, report.value().predict_micros,
          report.value().optimize_micros);
    }
  }

  std::printf("\nafter 200 queries: %zu optimizer calls, %zu served from "
              "the parametric cache\n",
              optimized, cached);
  const std::shared_ptr<const ppc::OnlinePpcPredictor> online =
      framework.online_predictor("Q1");
  std::printf("predictor state: %zu samples, %zu distinct plans, %llu bytes "
              "of histogram synopses\n",
              online->predictor().TotalSamples(),
              online->predictor().DistinctPlans(),
              static_cast<unsigned long long>(
                  online->predictor().SpaceBytes()));
  std::printf("windowed precision estimate: %.2f, recall estimate: %.2f\n",
              online->tracker().TemplatePrecision(),
              online->tracker().TemplateRecall());
  return 0;
}
