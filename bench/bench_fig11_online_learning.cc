// Reproduces paper Fig. 11 and the Sec. V-B summary: online precision and
// recall of ONLINE-APPROXIMATE-LSH-HISTOGRAMS over random-trajectory
// workloads (1000 instances, 10 trajectories) at scatter radii
// r_d in {0.01, 0.02, 0.04, 0.08}. b_h = 40, t = 5, gamma = 0.8, noise
// elimination and 5% random optimizer invocations enabled; averaged over
// d in {0.05, 0.1, 0.15, 0.2}. Also prints Q8's learning curve (Fig. 11).

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

OnlinePpcPredictor::Config OnlineConfig(int dims, double d, uint64_t seed) {
  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = dims;
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = d;
  cfg.predictor.confidence_threshold = 0.8;
  cfg.predictor.noise_fraction = 0.0005;
  cfg.predictor.seed = seed;
  cfg.negative_feedback = true;
  cfg.mean_invocation_probability = 0.05;
  cfg.estimator_window = 100;
  cfg.seed = seed ^ 0x5555;
  return cfg;
}

void Run() {
  PrintHeader("Fig. 11 / Sec. V-B: online precision & recall, random "
              "trajectories");
  std::printf("1000 instances, 10 trajectories, b_h=40, t=5, gamma=0.8,\n"
              "noise elimination + 5%% random invocations, averaged over\n"
              "d in {0.05, 0.1, 0.15, 0.2}\n\n");

  const std::vector<double> scatters = {0.01, 0.02, 0.04, 0.08};
  std::printf("%-10s", "template");
  for (double rd : scatters) std::printf("   rd=%-11.2f", rd);
  std::printf("\n%-10s", "");
  for (size_t i = 0; i < scatters.size(); ++i) {
    std::printf("   %-5s %-8s", "prec", "rec");
  }
  std::printf("\n");
  PrintRule();

  for (const char* name :
       {"Q0", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"}) {
    Experiment exp(name);
    std::printf("%-10s", name);
    for (double rd : scatters) {
      MetricsAccumulator total;
      for (double d : {0.05, 0.1, 0.15, 0.2}) {
        TrajectoryConfig traj;
        traj.dimensions = exp.dims();
        traj.total_points = 1000;
        traj.scatter = rd;
        Rng rng(211 + static_cast<uint64_t>(rd * 1000));
        auto workload = RandomTrajectoriesWorkload(traj, &rng);
        OnlinePpcPredictor online(
            OnlineConfig(exp.dims(), d, 311 + static_cast<uint64_t>(d * 100)));
        auto outcome = RunOnlineWorkload(&online, workload, 250, exp);
        total.Merge(outcome.overall);
      }
      std::printf("   %5.3f %-8.3f", total.Precision(), total.Recall());
    }
    std::printf("\n");
  }

  // Fig. 11 proper: Q8 learning curve. A 6-D plan space needs the larger
  // query radius (d = 0.25) for the ball to hold sample mass; windows of
  // 50 over the first 500 queries expose the warm-up ramp.
  std::printf("\nQ8 learning curve (recall per window of 50, d = 0.25):\n");
  std::printf("%-8s", "rd");
  for (int w = 0; w < 10; ++w) std::printf("  w%-5d", w);
  std::printf("  overall prec/rec\n");
  PrintRule();
  Experiment q8("Q8");
  for (double rd : scatters) {
    TrajectoryConfig traj;
    traj.dimensions = q8.dims();
    traj.total_points = 1000;
    traj.scatter = rd;
    Rng rng(401 + static_cast<uint64_t>(rd * 1000));
    auto workload = RandomTrajectoriesWorkload(traj, &rng);
    OnlinePpcPredictor online(OnlineConfig(q8.dims(), 0.25, 733));
    auto outcome = RunOnlineWorkload(&online, workload, 50, q8);
    std::printf("%-8.2f", rd);
    for (size_t w = 0; w < 10 && w < outcome.windows.size(); ++w) {
      std::printf("  %-6.2f", outcome.windows[w].Recall());
    }
    std::printf("  %.3f/%.3f\n", outcome.overall.Precision(),
                outcome.overall.Recall());
  }
  std::printf(
      "\nExpected shape (paper): precision and recall degrade as r_d grows\n"
      "(predictions span larger distances, weakening Assumption 1), and as\n"
      "the parameter degree grows. The paper's warm-up ramp is compressed\n"
      "here: trajectory points sit so close to their predecessors that the\n"
      "predictor becomes productive within the first window; per-window\n"
      "recall afterwards tracks how often the trajectories enter unexplored\n"
      "regions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
