// Extension bench: exact Z-order range decomposition vs the paper's single
// interval [T(x) - delta, T(x) + delta].
//
// The Z-order curve interleaves distant cells into any single interval
// wide enough to cover the query ball; their counts smear into the density
// estimate. Decomposing the query box into exact curve ranges (quadtree
// descent, up to max_z_intervals ranges) removes that smear: measurably
// higher precision, some recall given back to the confidence gate.

#include <cstdio>

#include "bench_util.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 3200;
constexpr size_t kTestSize = 800;

void Run() {
  PrintHeader("Extension: Z-order interval decomposition (offline)");
  std::printf("|X| = %zu, t = 5, b_h = 40, gamma = 0.7, d = 0.1\n\n",
              kSampleSize);

  std::printf("%-10s | %12s %12s | %12s %12s\n", "template", "prec:single",
              "prec:decomp", "rec:single", "rec:decomp");
  PrintRule();
  for (const char* name : {"Q1", "Q3", "Q5", "Q7"}) {
    Experiment exp(name);
    Rng rng(271);
    auto sample = exp.LabeledSample(kSampleSize, &rng);
    auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

    LshHistogramsPredictor::Config base;
    base.dimensions = exp.dims();
    base.transform_count = 5;
    base.histogram_buckets = 40;
    base.radius = 0.1;
    base.confidence_threshold = 0.7;
    auto decomposed_cfg = base;
    decomposed_cfg.interval_decomposition = true;
    decomposed_cfg.max_z_intervals = 32;

    LshHistogramsPredictor single(base, sample);
    LshHistogramsPredictor decomposed(decomposed_cfg, sample);
    const auto single_m = exp.Evaluate(single, test);
    const auto decomposed_m = exp.Evaluate(decomposed, test);
    std::printf("%-10s | %12.3f %12.3f | %12.3f %12.3f\n", name,
                single_m.Precision(), decomposed_m.Precision(),
                single_m.Recall(), decomposed_m.Recall());
  }
  std::printf(
      "\nExpected: the decomposed variant's precision is at least the\n"
      "single-interval variant's on multi-dimensional templates, with a\n"
      "recall trade-off that grows with the query box (larger d => more\n"
      "merged-away exactness).\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
