// Reproduces paper Table I: prediction complexity and space consumption of
// BASELINE, NAIVE, APPROXIMATE-LSH and APPROXIMATE-LSH-HISTOGRAMS —
// formulas plus *measured* bytes and per-prediction latency on template Q5.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "clustering/approximate_lsh_predictor.h"
#include "clustering/density_predictor.h"
#include "clustering/naive_grid_predictor.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 3200;
constexpr int kTransforms = 5;
constexpr size_t kHistBuckets = 40;
constexpr double kRadius = 0.1;
constexpr double kGamma = 0.7;

double MeasurePredictMicros(const PlanPredictor& predictor,
                            const std::vector<std::vector<double>>& test) {
  const auto start = std::chrono::steady_clock::now();
  size_t answered = 0;
  for (const auto& x : test) {
    if (predictor.Predict(x).has_value()) ++answered;
  }
  const double micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  (void)answered;
  return micros / static_cast<double>(test.size());
}

void Run() {
  PrintHeader("Table I: complexity and space of the predictor family (Q5)");
  Experiment exp("Q5");
  Rng rng(77);
  auto sample = exp.LabeledSample(kSampleSize, &rng);
  auto test = UniformPlanSpaceSample(exp.dims(), 2000, &rng);

  DensityPredictor::Config bc;
  bc.radius = kRadius;
  bc.confidence_threshold = kGamma;
  DensityPredictor baseline(bc, sample);

  NaiveGridPredictor::Config nc;
  nc.dimensions = exp.dims();
  nc.bucket_budget = 4096;
  nc.radius = kRadius;
  nc.confidence_threshold = kGamma;
  NaiveGridPredictor naive(nc, sample);

  ApproximateLshPredictor::Config ac;
  ac.dimensions = exp.dims();
  ac.transform_count = kTransforms;
  ac.bits_per_dim = 4;
  ac.radius = kRadius;
  ac.confidence_threshold = kGamma;
  ApproximateLshPredictor lsh(ac, sample);

  LshHistogramsPredictor::Config hc;
  hc.dimensions = exp.dims();
  hc.transform_count = kTransforms;
  hc.histogram_buckets = kHistBuckets;
  hc.radius = kRadius;
  hc.confidence_threshold = kGamma;
  LshHistogramsPredictor histograms(hc, sample);

  std::printf("|X| = %zu, t = %d, b_h = %zu, d = %.2f, gamma = %.2f\n\n",
              kSampleSize, kTransforms, kHistBuckets, kRadius, kGamma);
  std::printf("%-28s %-26s %-22s %12s %12s\n", "algorithm",
              "complexity (per predict)", "space formula", "bytes",
              "us/predict");
  PrintRule();

  struct Entry {
    const PlanPredictor* predictor;
    const char* complexity;
    const char* formula;
  };
  const Entry entries[] = {
      {&baseline, "O(|X|)", "|X| * (8r + 16)"},
      {&naive, "O(1) per cell region", "n * b_g * 8"},
      {&lsh, "O(t) cell regions", "t * n * b_g * 8"},
      {&histograms, "O(t * n * b_h)", "t * n * b_h * 12"},
  };
  for (const Entry& entry : entries) {
    std::printf("%-28s %-26s %-22s %12llu %12.2f\n",
                entry.predictor->Name().c_str(), entry.complexity,
                entry.formula,
                static_cast<unsigned long long>(entry.predictor->SpaceBytes()),
                MeasurePredictMicros(*entry.predictor, test));
  }

  // Scalability claim: BASELINE's latency grows with |X|; the
  // approximations' does not.
  std::printf("\nprediction latency vs |X| (us/predict):\n");
  std::printf("%-10s %12s %12s\n", "|X|", "BASELINE", "LSH-HIST");
  PrintRule();
  for (size_t n : {400u, 1600u, 6400u}) {
    Rng sub_rng(99);
    auto sub = exp.LabeledSample(n, &sub_rng);
    DensityPredictor base_n(bc, sub);
    LshHistogramsPredictor hist_n(hc, sub);
    std::printf("%-10zu %12.2f %12.2f\n", n,
                MeasurePredictMicros(base_n, test),
                MeasurePredictMicros(hist_n, test));
  }
  std::printf(
      "\nExpected shape (paper): BASELINE cost scales with |X|; the three\n"
      "approximations are constant in |X|, with LSH variants paying t-fold\n"
      "space/time over NAIVE for better precision.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
