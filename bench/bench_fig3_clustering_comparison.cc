// Reproduces paper Fig. 3: precision (and recall) of K-MEANS PREDICT
// (c = 40), SINGLE LINKAGE PREDICT, and DENSITY PREDICT at confidence
// thresholds gamma in {0.5, 0.75, 0.95}, for varying query radius d.
// Per the paper: |X| = 1000 sample points, repeated 20 times over 1000
// test points each.

#include <cstdio>

#include "bench_util.h"
#include "clustering/density_predictor.h"
#include "clustering/kmeans_predictor.h"
#include "clustering/single_linkage_predictor.h"
#include "common/math_utils.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 1000;
constexpr size_t kTestSize = 1000;
constexpr int kRepeats = 20;

struct Row {
  std::string name;
  std::vector<double> precision;  // one per radius
  std::vector<double> recall;
};

void Run() {
  const std::vector<double> radii = {0.05, 0.1, 0.15, 0.2, 0.3};
  PrintHeader(
      "Fig. 3: k-means vs single-linkage vs density predict (template Q1)");
  std::printf("|X| = %zu, %d repeats x %zu test points\n\n", kSampleSize,
              kRepeats, kTestSize);

  Experiment exp("Q1");
  std::vector<Row> rows;
  rows.push_back({"K-MEANS (c=40)", {}, {}});
  rows.push_back({"SINGLE-LINKAGE", {}, {}});
  for (double gamma : {0.5, 0.75, 0.95}) {
    char name[64];
    std::snprintf(name, sizeof(name), "DENSITY (gamma=%.2f)", gamma);
    rows.push_back({name, {}, {}});
  }

  for (double d : radii) {
    std::vector<MetricsAccumulator> metrics(rows.size());
    for (int rep = 0; rep < kRepeats; ++rep) {
      Rng rng(1000 + static_cast<uint64_t>(rep));
      auto sample = exp.LabeledSample(kSampleSize, &rng);
      auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

      KMeansPredictor::Config kc;
      kc.clusters_per_plan = 40;
      kc.radius = d;
      kc.seed = 7 + static_cast<uint64_t>(rep);
      KMeansPredictor kmeans(kc, sample);

      SingleLinkagePredictor::Config sc;
      sc.radius = d;
      SingleLinkagePredictor linkage(sc, sample);

      std::vector<std::unique_ptr<DensityPredictor>> density;
      for (double gamma : {0.5, 0.75, 0.95}) {
        DensityPredictor::Config dc;
        dc.radius = d;
        dc.confidence_threshold = gamma;
        density.push_back(std::make_unique<DensityPredictor>(dc, sample));
      }

      metrics[0].Merge(exp.Evaluate(kmeans, test));
      metrics[1].Merge(exp.Evaluate(linkage, test));
      for (size_t g = 0; g < density.size(); ++g) {
        metrics[2 + g].Merge(exp.Evaluate(*density[g], test));
      }
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i].precision.push_back(metrics[i].Precision());
      rows[i].recall.push_back(metrics[i].Recall());
    }
  }

  std::printf("%-22s", "precision");
  for (double d : radii) std::printf("  d=%-5.2f", d);
  std::printf("\n");
  PrintRule();
  for (const Row& row : rows) {
    std::printf("%-22s", row.name.c_str());
    for (double p : row.precision) std::printf("  %6.3f ", p);
    std::printf("\n");
  }
  std::printf("\n%-22s", "recall");
  for (double d : radii) std::printf("  d=%-5.2f", d);
  std::printf("\n");
  PrintRule();
  for (const Row& row : rows) {
    std::printf("%-22s", row.name.c_str());
    for (double r : row.recall) std::printf("  %6.3f ", r);
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): density predict at high gamma achieves the\n"
      "best precision; k-means trails and degrades as d grows; raising gamma\n"
      "trades recall for precision.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
