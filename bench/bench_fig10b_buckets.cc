// Reproduces paper Fig. 10(b): recall of APPROXIMATE-LSH-HISTOGRAMS as the
// histogram bucket budget b_h grows (t = 5) — recall increases with b_h
// while precision stays roughly constant, so space is controlled largely
// through recall.

#include <cstdio>

#include "bench_util.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 3200;
constexpr size_t kTestSize = 1000;
constexpr double kGamma = 0.7;
constexpr double kRadius = 0.1;

void Run() {
  PrintHeader("Fig. 10(b): recall vs histogram buckets b_h");
  std::printf("|X| = %zu, t = 5, gamma = %.2f, d = %.2f\n\n", kSampleSize,
              kGamma, kRadius);

  std::printf("%-10s", "template");
  const std::vector<size_t> budgets = {5, 10, 20, 40, 80, 160};
  for (size_t b : budgets) std::printf("  b_h=%-4zu", b);
  std::printf("\n");
  PrintRule();

  for (const char* name : {"Q1", "Q5"}) {
    Experiment exp(name);
    Rng rng(113);
    auto sample = exp.LabeledSample(kSampleSize, &rng);
    auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

    std::printf("%-10s", (std::string(name) + " rec").c_str());
    std::vector<double> precisions;
    for (size_t b : budgets) {
      LshHistogramsPredictor::Config hc;
      hc.dimensions = exp.dims();
      hc.transform_count = 5;
      hc.histogram_buckets = b;
      hc.radius = kRadius;
      hc.confidence_threshold = kGamma;
      LshHistogramsPredictor predictor(hc, sample);
      const auto metrics = exp.Evaluate(predictor, test);
      std::printf("  %8.3f", metrics.Recall());
      precisions.push_back(metrics.Precision());
    }
    std::printf("\n%-10s", (std::string(name) + " prec").c_str());
    for (double p : precisions) std::printf("  %8.3f", p);
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): recall rises with b_h; precision remains\n"
      "(approximately) constant.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
