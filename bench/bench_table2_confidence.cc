// Reproduces paper Table II: precision of APPROXIMATE-LSH-HISTOGRAMS as
// the confidence threshold gamma increases. Template Q1, |X| = 3200,
// b_h = 40, t = 5; results averaged over query radii d in
// {0.05, 0.1, 0.15, 0.2}.

#include <cstdio>

#include "bench_util.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 3200;
constexpr size_t kTestSize = 1000;

void Run() {
  PrintHeader("Table II: precision vs confidence threshold gamma (Q1)");
  std::printf("|X| = %zu, b_h = 40, t = 5, averaged over d in "
              "{0.05, 0.1, 0.15, 0.2}\n\n",
              kSampleSize);
  Experiment exp("Q1");
  Rng rng(91);
  auto sample = exp.LabeledSample(kSampleSize, &rng);
  auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

  std::printf("%-8s %12s %12s\n", "gamma", "precision", "recall");
  PrintRule();
  for (double gamma : {0.0, 0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    MetricsAccumulator metrics;
    for (double d : {0.05, 0.1, 0.15, 0.2}) {
      LshHistogramsPredictor::Config hc;
      hc.dimensions = exp.dims();
      hc.transform_count = 5;
      hc.histogram_buckets = 40;
      hc.radius = d;
      hc.confidence_threshold = gamma;
      LshHistogramsPredictor predictor(hc, sample);
      metrics.Merge(exp.Evaluate(predictor, test));
    }
    std::printf("%-8.2f %12.3f %12.3f\n", gamma, metrics.Precision(),
                metrics.Recall());
  }
  std::printf(
      "\nExpected shape (paper Table II): precision rises monotonically\n"
      "with gamma while recall falls — the knob that trades coverage for\n"
      "safety.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
