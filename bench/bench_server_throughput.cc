// End-to-end throughput of the plan-prediction server (src/server/).
//
// Starts a real PlanServer on an ephemeral port, fronting a framework
// warmed over a clustered 4-template workload, then drives it over TCP
// with N client threads (one PpcClient each) issuing a 70/25/5 mix of
// PREDICT / EXECUTE / PING requests:
//
//   * closed loop — every client issues its next request when the
//     previous one completes, so concurrency is fixed at the client
//     count and the measured qps is the sustainable serving rate at
//     that concurrency;
//   * open loop — requests are paced at a fixed fraction of the
//     closed-loop rate using the pipelined client API, independent of
//     response times; BUSY answers (queue overflow backpressure) are
//     counted rather than retried.
//
// Prints a table and writes BENCH_server_throughput.json (schema in
// EXPERIMENTS.md); scripts/check.sh runs it and validates the file.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/alloc_counter.h"
#include "lsh/simd.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/ppc_framework.h"
#include "server/client.h"
#include "server/failpoints.h"
#include "server/server.h"
#include "workload/scenarios.h"

namespace ppc {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kWarmupQueries = 800;
constexpr int kClientThreads = 4;
constexpr int kServerWorkers = 4;
constexpr size_t kClosedPerClient = 1200;
constexpr size_t kOpenPerClient = 800;
constexpr double kOpenLoopFraction = 0.8;
constexpr size_t kOpenLoopWindow = 64;  // max outstanding pipelined ids
const char* const kTemplates[] = {"Q1", "Q3", "Q5", "Q8"};
/// Batch-comparison phase: the same PREDICT points, once as single-point
/// round trips and once as PREDICT_BATCH frames of this many points.
constexpr uint32_t kBatchSize = 32;
constexpr size_t kBatchPointsPerClient = 4096;
/// Degraded-mode phase (DESIGN.md §14): a second server with a small
/// queue, 1% short writes injected at the send failpoint, and more client
/// threads than the queue + workers can hold, so BUSY backpressure and
/// the shedding ladder actually engage; clients retry under a RetryPolicy.
constexpr int kDegradedClientThreads = 12;
constexpr int kDegradedServerWorkers = 2;
constexpr size_t kDegradedQueueCapacity = 8;
constexpr size_t kDegradedPerClient = 300;
constexpr uint32_t kDegradedShortIoPermille = 10;  // 1% of sends
constexpr int64_t kDegradedCallDeadlineMs = 2000;

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

struct Query {
  const char* tmpl;
  std::vector<double> point;
};

/// Clustered points per template, round-robin across templates (same
/// workload shape as bench_concurrent_throughput).
std::vector<Query> MakeWorkload(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(count);
  std::vector<int> dims;
  for (const char* name : kTemplates) {
    dims.push_back(EvaluationTemplate(name).ParameterDegree());
  }
  const std::vector<double> centers = {0.3, 0.5, 0.7};
  for (size_t i = 0; i < count; ++i) {
    const size_t t = i % (sizeof(kTemplates) / sizeof(kTemplates[0]));
    const double center = centers[(i / 7) % centers.size()];
    Query q;
    q.tmpl = kTemplates[t];
    q.point.resize(static_cast<size_t>(dims[t]));
    for (double& v : q.point) {
      v = std::clamp(center + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

enum RequestKind { kKindPredict = 0, kKindExecute = 1, kKindPing = 2 };
const char* const kKindNames[] = {"predict", "execute", "ping"};

/// The 70/25/5 request mix.
RequestKind PickKind(Rng* rng) {
  const double u = rng->Uniform();
  if (u < 0.70) return kKindPredict;
  if (u < 0.95) return kKindExecute;
  return kKindPing;
}

/// Per-client-thread tally, merged after the phase.
struct ClientStats {
  std::vector<double> latencies_us[3];
  size_t busy[3] = {0, 0, 0};
  size_t failures = 0;
};

/// Merged per-type summary of one phase.
struct PhaseStats {
  double seconds = 0.0;
  size_t count[3] = {0, 0, 0};
  size_t busy[3] = {0, 0, 0};
  size_t failures = 0;
  double p50_us[3] = {0, 0, 0};
  double p95_us[3] = {0, 0, 0};
  double p99_us[3] = {0, 0, 0};

  size_t total() const { return count[0] + count[1] + count[2]; }
  size_t total_busy() const { return busy[0] + busy[1] + busy[2]; }
  double qps() const {
    return seconds > 0.0 ? static_cast<double>(total()) / seconds : 0.0;
  }
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const double idx = p * static_cast<double>(sorted_in_place->size() - 1);
  return (*sorted_in_place)[static_cast<size_t>(idx + 0.5)];
}

PhaseStats Merge(std::vector<ClientStats>* clients, double seconds) {
  PhaseStats phase;
  phase.seconds = seconds;
  for (int kind = 0; kind < 3; ++kind) {
    std::vector<double> all;
    for (ClientStats& c : *clients) {
      all.insert(all.end(), c.latencies_us[kind].begin(),
                 c.latencies_us[kind].end());
      phase.busy[static_cast<size_t>(kind)] += c.busy[kind];
    }
    phase.count[kind] = all.size();
    phase.p50_us[kind] = Percentile(&all, 0.50);
    phase.p95_us[kind] = Percentile(&all, 0.95);
    phase.p99_us[kind] = Percentile(&all, 0.99);
  }
  for (const ClientStats& c : *clients) phase.failures += c.failures;
  return phase;
}

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// One synchronous request; records latency (or a busy/failure tally).
void RunOne(PpcClient* client, const Query& q, RequestKind kind,
            ClientStats* stats) {
  const auto start = Clock::now();
  Status status;
  switch (kind) {
    case kKindPredict:
      status = client->Predict(q.tmpl, q.point).status();
      break;
    case kKindExecute:
      status = client->Execute(q.tmpl, q.point).status();
      break;
    case kKindPing:
      status = client->Ping();
      break;
  }
  if (status.ok()) {
    stats->latencies_us[kind].push_back(MicrosSince(start));
  } else if (status.code() == StatusCode::kResourceExhausted) {
    ++stats->busy[kind];
  } else {
    ++stats->failures;
  }
}

PhaseStats RunClosedLoop(uint16_t port, const std::vector<Query>& workload) {
  std::vector<ClientStats> stats(kClientThreads);
  std::vector<std::thread> clients;
  const auto start = Clock::now();
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([port, t, &workload, &stats] {
      PpcClient client;
      const Status s = client.Connect("127.0.0.1", port);
      if (!s.ok()) {
        stats[static_cast<size_t>(t)].failures += kClosedPerClient;
        return;
      }
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (size_t i = 0; i < kClosedPerClient; ++i) {
        const Query& q =
            workload[(static_cast<size_t>(t) * kClosedPerClient + i) %
                     workload.size()];
        RunOne(&client, q, PickKind(&rng), &stats[static_cast<size_t>(t)]);
      }
    });
  }
  for (auto& c : clients) c.join();
  return Merge(&stats, std::chrono::duration<double>(Clock::now() - start)
                           .count());
}

/// Open loop driven by the workload zoo's zipf_tenants scenario
/// (docs/WORKLOADS.md): each client paces its pipelined sends by the
/// scenario's own Poisson arrival clock (at target_qps split evenly
/// across clients) instead of a fixed metronome, and draws
/// (template, point) from the Zipf-skewed tenant distribution instead
/// of round-robin — so the open-loop numbers cover skewed per-template
/// popularity, not just the uniform happy path.
PhaseStats RunOpenLoop(uint16_t port, double target_qps) {
  std::vector<ClientStats> stats(kClientThreads);
  std::vector<std::thread> clients;
  const double per_client_rate =
      target_qps / static_cast<double>(kClientThreads);
  const auto start = Clock::now();
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([port, t, &stats, per_client_rate] {
      ClientStats& mine = stats[static_cast<size_t>(t)];
      PpcClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        mine.failures += kOpenPerClient;
        return;
      }
      ScenarioConfig scenario_config;
      for (const char* name : kTemplates) {
        scenario_config.templates.push_back(
            {name, EvaluationTemplate(name).ParameterDegree()});
      }
      scenario_config.seed = 2000 + static_cast<uint64_t>(t);
      scenario_config.events_per_second = per_client_rate;
      auto scenario = MakeScenario("zipf_tenants", scenario_config);
      PPC_CHECK_MSG(scenario.ok(), scenario.status().ToString().c_str());
      Rng rng(2600 + static_cast<uint64_t>(t));
      struct InFlight {
        uint64_t id;
        RequestKind kind;
        Clock::time_point sent;
      };
      std::deque<InFlight> outstanding;
      auto collect = [&mine, &client](const InFlight& flight) {
        auto response = client.Wait(flight.id);
        if (!response.ok()) {
          ++mine.failures;
        } else if (response.value().status == wire::WireStatus::kBusy) {
          ++mine.busy[flight.kind];
        } else if (!response.value().ok()) {
          ++mine.failures;
        } else {
          // Latency includes queueing delay behind the pacing schedule,
          // which is the open-loop (coordinated-omission-free) measure.
          mine.latencies_us[flight.kind].push_back(MicrosSince(flight.sent));
        }
      };
      const auto pace_start = Clock::now();
      for (size_t i = 0; i < kOpenPerClient; ++i) {
        const ScenarioEvent event = scenario.value()->Next();
        std::this_thread::sleep_until(
            pace_start +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(event.arrival_seconds)));
        while (outstanding.size() >= kOpenLoopWindow) {
          collect(outstanding.front());
          outstanding.pop_front();
        }
        const std::string& tmpl =
            scenario.value()->config().templates[event.template_index].name;
        const RequestKind kind = PickKind(&rng);
        const Result<uint64_t> id = [&]() -> Result<uint64_t> {
          switch (kind) {
            case kKindPredict:
              return client.SendPredict(tmpl, event.point);
            case kKindExecute:
              return client.SendExecute(tmpl, event.point);
            case kKindPing:
              return client.SendPing();
          }
          return Status::Internal("unreachable");
        }();
        if (!id.ok()) {
          ++mine.failures;
          continue;
        }
        outstanding.push_back({id.value(), kind, Clock::now()});
      }
      while (!outstanding.empty()) {
        collect(outstanding.front());
        outstanding.pop_front();
      }
    });
  }
  for (auto& c : clients) c.join();
  return Merge(&stats, std::chrono::duration<double>(Clock::now() - start)
                           .count());
}

/// Summed PpcClient::TransportStats across the degraded phase's clients.
struct TransportTotals {
  uint64_t busy_retries = 0;
  uint64_t connect_retries = 0;
  uint64_t reconnects = 0;
  uint64_t deadlines_exceeded = 0;
};

/// Closed loop against the degraded server: every client runs with a
/// per-call deadline and a retry policy, so BUSY answers are absorbed by
/// backoff instead of being dropped on the floor.
PhaseStats RunDegradedClosedLoop(uint16_t port,
                                 const std::vector<Query>& workload,
                                 const PpcClient::Options& options,
                                 TransportTotals* transport) {
  std::vector<ClientStats> stats(kDegradedClientThreads);
  std::vector<TransportTotals> per_client(kDegradedClientThreads);
  std::vector<std::thread> clients;
  const auto start = Clock::now();
  for (int t = 0; t < kDegradedClientThreads; ++t) {
    clients.emplace_back([port, t, &workload, &stats, &per_client,
                          &options] {
      ClientStats& mine = stats[static_cast<size_t>(t)];
      PpcClient::Options my_options = options;
      // Distinct backoff streams, so the retrying clients do not march in
      // lockstep into the same queue-full window.
      my_options.retry.seed = options.retry.seed + static_cast<uint64_t>(t);
      PpcClient client(my_options);
      if (!client.Connect("127.0.0.1", port).ok()) {
        mine.failures += kDegradedPerClient;
        return;
      }
      Rng rng(3000 + static_cast<uint64_t>(t));
      for (size_t i = 0; i < kDegradedPerClient; ++i) {
        const Query& q =
            workload[(static_cast<size_t>(t) * kDegradedPerClient + i) %
                     workload.size()];
        RunOne(&client, q, PickKind(&rng), &mine);
      }
      const PpcClient::TransportStats& ts = client.transport_stats();
      per_client[static_cast<size_t>(t)] = {ts.busy_retries,
                                            ts.connect_retries,
                                            ts.reconnects,
                                            ts.deadlines_exceeded};
    });
  }
  for (auto& c : clients) c.join();
  for (const TransportTotals& ts : per_client) {
    transport->busy_retries += ts.busy_retries;
    transport->connect_retries += ts.connect_retries;
    transport->reconnects += ts.reconnects;
    transport->deadlines_exceeded += ts.deadlines_exceeded;
  }
  return Merge(&stats, std::chrono::duration<double>(Clock::now() - start)
                           .count());
}

/// One side of the scalar-vs-batch comparison: the same predictions,
/// measured as completed points per second plus request-latency tails.
struct BatchPhaseStats {
  double seconds = 0.0;
  size_t points = 0;
  size_t requests = 0;
  size_t failures = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  double points_per_second() const {
    return seconds > 0.0 ? static_cast<double>(points) / seconds : 0.0;
  }
};

/// Clustered 2-dim Q1 points, flattened row-major (the PREDICT_BATCH
/// wire layout), so both comparison phases predict the exact same set.
std::vector<double> MakeQ1Points(size_t count, uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> centers = {0.3, 0.5, 0.7};
  std::vector<double> flat;
  flat.reserve(count * 2);
  for (size_t i = 0; i < count; ++i) {
    const double center = centers[(i / 7) % centers.size()];
    flat.push_back(std::clamp(center + rng.Uniform(-0.02, 0.02), 0.0, 1.0));
    flat.push_back(std::clamp(center + rng.Uniform(-0.02, 0.02), 0.0, 1.0));
  }
  return flat;
}

/// Heap allocations one warm PredictBatchInto performs on a trained
/// default-config predictor (0 after this PR's arena change; recorded in
/// the JSON so a regression shows up in the artifact, not just in tests).
uint64_t MeasureWarmBatchPredictAllocations() {
  LshHistogramsPredictor::Config config;
  config.dimensions = 2;
  LshHistogramsPredictor predictor(config);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    LabeledPoint point;
    point.coords = {rng.Uniform(), rng.Uniform()};
    point.plan = 1 + (point.coords[0] > 0.5 ? 1 : 0);
    point.cost = rng.Uniform(1.0, 5.0);
    predictor.Insert(point);
  }
  const std::vector<double> flat = MakeQ1Points(kBatchSize, 29);
  std::vector<Prediction> out(kBatchSize);
  // Two warm-up calls: the thread-local arena consolidates its blocks at
  // the start of the second.
  predictor.PredictBatchInto(flat.data(), kBatchSize, out.data());
  predictor.PredictBatchInto(flat.data(), kBatchSize, out.data());
  const uint64_t before = ThreadAllocationCount();
  predictor.PredictBatchInto(flat.data(), kBatchSize, out.data());
  return ThreadAllocationCount() - before;
}

/// Runs the same per-client point slice either as single-point PREDICTs
/// (`batch_size` == 1) or as PREDICT_BATCH frames of `batch_size` points.
BatchPhaseStats RunPredictComparisonPhase(uint16_t port,
                                          const std::vector<double>& flat,
                                          uint32_t batch_size) {
  struct Tally {
    std::vector<double> latencies_us;
    size_t points = 0;
    size_t requests = 0;
    size_t failures = 0;
  };
  std::vector<Tally> tallies(kClientThreads);
  std::vector<std::thread> clients;
  const auto start = Clock::now();
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([port, t, batch_size, &flat, &tallies] {
      Tally& mine = tallies[static_cast<size_t>(t)];
      PpcClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        mine.failures += kBatchPointsPerClient;
        return;
      }
      // Each client owns a contiguous slice of the shared point set.
      const size_t begin = static_cast<size_t>(t) * kBatchPointsPerClient;
      for (size_t i = 0; i < kBatchPointsPerClient; i += batch_size) {
        const size_t n =
            std::min<size_t>(batch_size, kBatchPointsPerClient - i);
        const double* p = flat.data() + (begin + i) * 2;
        const auto sent = Clock::now();
        Status status;
        size_t answered = 0;
        if (batch_size == 1) {
          status = client.Predict("Q1", {p[0], p[1]}).status();
          answered = 1;
        } else {
          auto result = client.PredictBatch(
              "Q1", std::vector<double>(p, p + n * 2), 2);
          status = result.status();
          if (result.ok()) answered = result.value().size();
        }
        ++mine.requests;
        if (status.ok()) {
          mine.points += answered;
          mine.latencies_us.push_back(MicrosSince(sent));
        } else {
          ++mine.failures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  BatchPhaseStats phase;
  phase.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (Tally& tally : tallies) {
    all.insert(all.end(), tally.latencies_us.begin(),
               tally.latencies_us.end());
    phase.points += tally.points;
    phase.requests += tally.requests;
    phase.failures += tally.failures;
  }
  phase.p50_us = Percentile(&all, 0.50);
  phase.p95_us = Percentile(&all, 0.95);
  phase.p99_us = Percentile(&all, 0.99);
  return phase;
}

/// Every point answered over the scalar path and the batch path must be
/// bit-identical (the acceptance bar for the batched fast path).
bool VerifyBatchBitIdentity(uint16_t port, const std::vector<double>& flat,
                            size_t count) {
  PpcClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  auto batch = client.PredictBatch(
      "Q1", std::vector<double>(flat.begin(), flat.begin() + count * 2), 2);
  if (!batch.ok() || batch.value().size() != count) return false;
  for (size_t i = 0; i < count; ++i) {
    auto scalar = client.Predict("Q1", {flat[i * 2], flat[i * 2 + 1]});
    if (!scalar.ok()) return false;
    if (scalar.value().plan != batch.value()[i].plan) return false;
    if (scalar.value().confidence != batch.value()[i].confidence) {
      return false;
    }
  }
  return true;
}

void PrintBatchPhase(const char* name, const BatchPhaseStats& phase) {
  std::printf(
      "%s: %.2fs, %zu points in %zu requests, %.0f points/s, "
      "%zu failures\n    p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
      name, phase.seconds, phase.points, phase.requests,
      phase.points_per_second(), phase.failures, phase.p50_us, phase.p95_us,
      phase.p99_us);
}

std::string BatchPhaseJson(const BatchPhaseStats& phase) {
  std::string out = "{\"seconds\": " + JsonNumber(phase.seconds);
  out += ", \"points\": " + std::to_string(phase.points);
  out += ", \"requests\": " + std::to_string(phase.requests);
  out += ", \"points_per_second\": " + JsonNumber(phase.points_per_second());
  out += ", \"failures\": " + std::to_string(phase.failures);
  out += ", \"p50_us\": " + JsonNumber(phase.p50_us);
  out += ", \"p95_us\": " + JsonNumber(phase.p95_us);
  out += ", \"p99_us\": " + JsonNumber(phase.p99_us);
  out += "}";
  return out;
}

void PrintPhase(const char* name, const PhaseStats& phase) {
  std::printf("%s: %.2fs, %zu requests, %.0f qps, %zu busy, %zu failures\n",
              name, phase.seconds, phase.total(), phase.qps(),
              phase.total_busy(), phase.failures);
  std::printf("%10s %8s %8s %10s %10s %10s\n", "type", "count", "busy",
              "p50 us", "p95 us", "p99 us");
  for (int kind = 0; kind < 3; ++kind) {
    std::printf("%10s %8zu %8zu %10.1f %10.1f %10.1f\n", kKindNames[kind],
                phase.count[kind], phase.busy[kind], phase.p50_us[kind],
                phase.p95_us[kind], phase.p99_us[kind]);
  }
  PrintRule();
}

std::string PhaseJson(const PhaseStats& phase) {
  std::string out = "{\"seconds\": " + JsonNumber(phase.seconds);
  out += ", \"total_requests\": " + std::to_string(phase.total());
  out += ", \"qps\": " + JsonNumber(phase.qps());
  out += ", \"busy\": " + std::to_string(phase.total_busy());
  out += ", \"failures\": " + std::to_string(phase.failures);
  out += ", \"per_type\": {";
  for (int kind = 0; kind < 3; ++kind) {
    const double type_qps =
        phase.seconds > 0.0
            ? static_cast<double>(phase.count[kind]) / phase.seconds
            : 0.0;
    out += std::string(kind == 0 ? "" : ", ") + "\"" + kKindNames[kind] +
           "\": {\"count\": " + std::to_string(phase.count[kind]) +
           ", \"qps\": " + JsonNumber(type_qps) +
           ", \"busy\": " + std::to_string(phase.busy[kind]) +
           ", \"p50_us\": " + JsonNumber(phase.p50_us[kind]) +
           ", \"p95_us\": " + JsonNumber(phase.p95_us[kind]) +
           ", \"p99_us\": " + JsonNumber(phase.p99_us[kind]) + "}";
  }
  out += "}}";
  return out;
}

void Run() {
  PrintHeader("Plan-prediction server throughput (TCP, 4 templates)");
  std::printf(
      "hardware threads: %u; %d server workers, %d client threads, "
      "70/25/5 predict/execute/ping mix\n",
      std::thread::hardware_concurrency(), kServerWorkers, kClientThreads);
  PrintRule();

  PpcFramework framework(&BenchCatalog(), ServingConfig());
  for (const char* name : kTemplates) {
    const Status s = framework.RegisterTemplate(EvaluationTemplate(name));
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  framework.Seal();
  for (const Query& q : MakeWorkload(kWarmupQueries, 11)) {
    auto report = framework.ExecuteAtPoint(q.tmpl, q.point);
    PPC_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  }

  PlanServer::Config server_config;
  server_config.worker_threads = kServerWorkers;
  PlanServer server(&framework, server_config);
  {
    const Status s = server.Start();
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", server.port());

  const std::vector<Query> workload = MakeWorkload(4096, 13);
  const PhaseStats closed = RunClosedLoop(server.port(), workload);
  PrintPhase("closed loop", closed);

  const double target_qps = kOpenLoopFraction * closed.qps();
  std::printf("open loop target: %.0f qps (%.0f%% of closed loop), "
              "zipf_tenants scenario arrivals\n",
              target_qps, 100.0 * kOpenLoopFraction);
  const PhaseStats open = RunOpenLoop(server.port(), target_qps);
  PrintPhase("open loop", open);

  PPC_CHECK(closed.failures == 0);
  PPC_CHECK(open.failures == 0);

  // Scalar-vs-batch comparison: the same Q1 points, once as synchronous
  // single-point PREDICTs and once as PREDICT_BATCH frames of kBatchSize
  // points (the batched fast path, DESIGN.md §13).
  const std::vector<double> q1_points =
      MakeQ1Points(static_cast<size_t>(kClientThreads) *
                       kBatchPointsPerClient,
                   17);
  const bool bit_identical =
      VerifyBatchBitIdentity(server.port(), q1_points, 256);
  PPC_CHECK_MSG(bit_identical, "batch answers diverge from scalar answers");
  const BatchPhaseStats scalar_phase =
      RunPredictComparisonPhase(server.port(), q1_points, 1);
  PrintBatchPhase("scalar predicts", scalar_phase);
  const BatchPhaseStats batch_phase =
      RunPredictComparisonPhase(server.port(), q1_points, kBatchSize);
  PrintBatchPhase("batch predicts", batch_phase);
  const double batch_speedup =
      scalar_phase.points_per_second() > 0.0
          ? batch_phase.points_per_second() / scalar_phase.points_per_second()
          : 0.0;
  std::printf("batch size %u speedup over scalar: %.2fx (bit-identical)\n",
              kBatchSize, batch_speedup);
  PrintRule();
  PPC_CHECK(scalar_phase.failures == 0);
  PPC_CHECK(batch_phase.failures == 0);

  // Final server-side view, then an orderly remote shutdown.
  std::string metrics_json = "{}";
  {
    PpcClient client;
    const Status s = client.Connect("127.0.0.1", server.port());
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
    auto metrics = client.Metrics();
    PPC_CHECK_MSG(metrics.ok(), metrics.status().ToString().c_str());
    metrics_json = std::move(metrics).value();
    const Status down = client.Shutdown();
    PPC_CHECK_MSG(down.ok(), down.ToString().c_str());
  }
  server.Wait();

  // Degraded-mode phase (DESIGN.md §14): a fresh server with a small
  // queue, driven by more retrying clients than queue + workers can
  // hold, with 1% of send() calls clamped to one byte by the kSend
  // failpoint — the clean numbers above are untouched because the
  // failpoint is armed only while this phase runs.
  PlanServer::Config degraded_config;
  degraded_config.worker_threads = kDegradedServerWorkers;
  degraded_config.queue_capacity = kDegradedQueueCapacity;
  PlanServer degraded_server(&framework, degraded_config);
  {
    const Status s = degraded_server.Start();
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  std::printf(
      "degraded server listening on 127.0.0.1:%u "
      "(queue %zu, %d workers, %u permille short writes)\n",
      degraded_server.port(), kDegradedQueueCapacity, kDegradedServerWorkers,
      kDegradedShortIoPermille);

  failpoints::Config fault;
  fault.kind = failpoints::Kind::kShortIo;
  fault.arg = 1;
  fault.probability_permille = kDegradedShortIoPermille;
  fault.seed = 23;
  failpoints::Arm(failpoints::Site::kSend, fault);

  PpcClient::Options degraded_options;
  degraded_options.call_deadline_ms = kDegradedCallDeadlineMs;
  degraded_options.retry.max_attempts = 4;
  degraded_options.retry.initial_backoff_ms = 1;
  degraded_options.retry.max_backoff_ms = 50;

  TransportTotals transport;
  const PhaseStats degraded = RunDegradedClosedLoop(
      degraded_server.port(), workload, degraded_options, &transport);
  failpoints::DisarmAll();
  PrintPhase("degraded loop", degraded);
  std::printf(
      "degraded transport: %llu busy retries, %llu reconnects, "
      "%llu connect retries, %llu deadlines exceeded\n",
      static_cast<unsigned long long>(transport.busy_retries),
      static_cast<unsigned long long>(transport.reconnects),
      static_cast<unsigned long long>(transport.connect_retries),
      static_cast<unsigned long long>(transport.deadlines_exceeded));
  PrintRule();
  // Degradation must not become outage: the phase has to make progress.
  PPC_CHECK_MSG(degraded.total() > 0, "degraded phase made no progress");

  std::string degraded_metrics_json = "{}";
  {
    PpcClient client;
    const Status s = client.Connect("127.0.0.1", degraded_server.port());
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
    auto metrics = client.Metrics();
    PPC_CHECK_MSG(metrics.ok(), metrics.status().ToString().c_str());
    degraded_metrics_json = std::move(metrics).value();
    const Status down = client.Shutdown();
    PPC_CHECK_MSG(down.ok(), down.ToString().c_str());
  }
  degraded_server.Wait();

  std::string body = "  \"hardware_threads\": " +
                     std::to_string(std::thread::hardware_concurrency());
  body += ",\n  \"server_workers\": " + std::to_string(kServerWorkers);
  body += ",\n  \"client_threads\": " + std::to_string(kClientThreads);
  body += ",\n  \"open_loop_target_qps\": " + JsonNumber(target_qps);
  const ScenarioConfig::ZipfTenantsOptions zipf_defaults;
  body += ",\n  \"open_loop_scenario\": {\"name\": \"zipf_tenants\", "
          "\"seed_base\": 2000, \"tenant_count\": " +
          std::to_string(zipf_defaults.tenant_count) +
          ", \"exponent\": " + JsonNumber(zipf_defaults.exponent) + "}";
  body += ",\n  \"closed_loop\": " + PhaseJson(closed);
  body += ",\n  \"open_loop\": " + PhaseJson(open);
  body += ",\n  \"batch_comparison\": {\"batch_size\": " +
          std::to_string(kBatchSize);
  body += ", \"dims\": 2, \"bit_identical\": ";
  body += bit_identical ? "true" : "false";
  body += ", \"simd_tier\": \"";
  body += simd::TierName(simd::ActiveTier());
  body += "\", \"allocations_per_batch_predict\": " +
          std::to_string(MeasureWarmBatchPredictAllocations());
  body += ", \"speedup\": " + JsonNumber(batch_speedup);
  body += ", \"scalar\": " + BatchPhaseJson(scalar_phase);
  body += ", \"batch\": " + BatchPhaseJson(batch_phase);
  body += "}";
  body += ",\n  \"degraded\": {\"queue_capacity\": " +
          std::to_string(kDegradedQueueCapacity);
  body += ", \"server_workers\": " + std::to_string(kDegradedServerWorkers);
  body += ", \"client_threads\": " + std::to_string(kDegradedClientThreads);
  body += ", \"fault\": {\"site\": \"send\", \"kind\": \"short_io\", "
          "\"arg\": 1, \"probability_permille\": " +
          std::to_string(kDegradedShortIoPermille) + "}";
  body += ", \"call_deadline_ms\": " +
          std::to_string(kDegradedCallDeadlineMs);
  body += ", \"retry_policy\": {\"max_attempts\": " +
          std::to_string(degraded_options.retry.max_attempts) +
          ", \"initial_backoff_ms\": " +
          std::to_string(degraded_options.retry.initial_backoff_ms) +
          ", \"max_backoff_ms\": " +
          std::to_string(degraded_options.retry.max_backoff_ms) +
          ", \"multiplier\": " +
          JsonNumber(degraded_options.retry.multiplier) +
          ", \"jitter\": " + JsonNumber(degraded_options.retry.jitter) + "}";
  body += ", \"phase\": " + PhaseJson(degraded);
  body += ", \"transport\": {\"busy_retries\": " +
          std::to_string(transport.busy_retries) +
          ", \"connect_retries\": " + std::to_string(transport.connect_retries) +
          ", \"reconnects\": " + std::to_string(transport.reconnects) +
          ", \"deadlines_exceeded\": " +
          std::to_string(transport.deadlines_exceeded) + "}";
  body += ", \"server_metrics\": " + degraded_metrics_json;
  body += "}";
  body += ",\n  \"server_metrics\": " + metrics_json;
  WriteBenchJson("server_throughput", body);
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
