// Plan-diagram complexity report (Picasso-style, per Reddy & Haritsa whom
// the paper cites): how complex are this substrate's plan diagrams, per
// template? These metrics contextualize every prediction experiment — the
// boundary fraction at a given distance is precisely the complement of the
// paper's Assumption-1 probability.

#include <cstdio>

#include "bench_util.h"
#include "workload/plan_diagram.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kProbes = 3000;

void Run() {
  PrintHeader("Plan-diagram complexity per template (Picasso-style)");
  std::printf("%zu uniform probes + %zu neighbor pairs at distance 0.04\n\n",
              kProbes, kProbes);
  std::printf("%-8s %7s %8s %8s %9s %9s %10s %12s\n", "query", "plans",
              "top1%", "gini", "entropy", "bnd@.04", "cover 80%",
              "cover 95%");
  PrintRule();
  for (const char* name :
       {"Q0", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"}) {
    Experiment exp(name);
    auto stats = AnalyzePlanSpace(
        [&](const std::vector<double>& x) { return exp.Label(x).plan; },
        exp.dims(), kProbes, 0.04, 1001);
    std::printf("%-8s %7zu %7.1f%% %8.3f %9.3f %9.3f %10zu %12zu\n", name,
                stats.distinct_plans,
                100.0 * stats.largest_region_fraction, stats.gini,
                stats.entropy_bits, stats.boundary_fraction,
                stats.PlansCoveringFraction(0.8),
                stats.PlansCoveringFraction(0.95));
  }
  std::printf(
      "\nReading: 'plans' is a probe-count lower bound (Table III);\n"
      "'bnd@.04' = 1 - Pr(same plan | dist <= 0.04) (Fig. 14's complement);\n"
      "'cover k%%' = how few plans dominate the space — the skew that makes\n"
      "a small plan cache effective even when total plan counts are large.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
