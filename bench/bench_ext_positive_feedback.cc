// Extension bench (paper Sec. VII future work): positive feedback.
// "It would be desirable to incorporate positive feedback into the
// decision algorithm to shorten the training period and improve recall.
// ... a system of checks and balances would be needed to prevent a
// feedback spiral that destroys precision."
//
// Implemented guard rails: only predictions above a confidence bar that
// also pass the cost-predictability test are self-inserted, capped at a
// ratio of the optimizer-sourced pool. This bench sweeps the cap.

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kWorkloads = 8;
constexpr size_t kQueries = 1000;

void Run() {
  PrintHeader("Extension: positive feedback (Q5, online)");
  std::printf("%zu workloads x %zu queries, d = 0.2, gamma = 0.8, "
              "confidence bar 0.95\n\n",
              kWorkloads, kQueries);
  Experiment exp("Q5");

  struct VariantSpec {
    const char* name;
    bool enabled;
    double max_ratio;
  };
  const VariantSpec variants[] = {
      {"off (paper default)", false, 0.0},
      {"on, cap 0.5x", true, 0.5},
      {"on, cap 1x", true, 1.0},
      {"on, cap 4x", true, 4.0},
  };

  std::printf("%-22s %10s %10s %12s %14s %12s\n", "positive feedback",
              "precision", "recall", "opt calls", "self-inserted",
              "early recall");
  PrintRule();
  for (const VariantSpec& variant : variants) {
    MetricsAccumulator overall;
    MetricsAccumulator early;  // first 200 queries: warm-up window
    size_t optimizer_calls = 0;
    size_t self_inserted = 0;
    for (size_t i = 0; i < kWorkloads; ++i) {
      TrajectoryConfig traj;
      traj.dimensions = exp.dims();
      traj.total_points = kQueries;
      traj.scatter = 0.01;
      Rng rng(210 + i);
      auto workload = RandomTrajectoriesWorkload(traj, &rng);

      OnlinePpcPredictor::Config cfg;
      cfg.predictor.dimensions = exp.dims();
      cfg.predictor.transform_count = 5;
      cfg.predictor.histogram_buckets = 40;
      cfg.predictor.radius = 0.2;
      cfg.predictor.confidence_threshold = 0.8;
      cfg.predictor.noise_fraction = 0.0005;
      cfg.negative_feedback = true;
      cfg.positive_feedback = variant.enabled;
      cfg.positive_feedback_confidence = 0.95;
      cfg.positive_feedback_max_ratio = variant.max_ratio;
      cfg.seed = 220 + i;
      OnlinePpcPredictor online(cfg);
      auto outcome = RunOnlineWorkload(&online, workload, 200, exp);
      overall.Merge(outcome.overall);
      if (!outcome.windows.empty()) early.Merge(outcome.windows.front());
      optimizer_calls += outcome.optimizer_calls;
      self_inserted += online.positive_feedback_insertions();
    }
    std::printf("%-22s %10.3f %10.3f %12.1f %14.1f %12.3f\n", variant.name,
                overall.Precision(), overall.Recall(),
                static_cast<double>(optimizer_calls) / kWorkloads,
                static_cast<double>(self_inserted) / kWorkloads,
                early.Recall());
  }
  std::printf(
      "\nFinding: optimizer calls drop as the cap rises (the intended\n"
      "warm-up shortening), but precision erodes with it — self-labeled\n"
      "points carry the predictor's own boundary errors back into the\n"
      "pool. Even with a confidence bar and cost test, only small caps\n"
      "are defensible: the paper's caution about feedback spirals is\n"
      "empirically vindicated.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
