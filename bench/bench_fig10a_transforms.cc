// Reproduces paper Fig. 10(a): precision of APPROXIMATE-LSH-HISTOGRAMS as
// the number of randomized transformations t increases, across templates
// of different dimensionality. gamma = 0.7; |X| = 3200.

#include <cstdio>

#include "bench_util.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kSampleSize = 3200;
constexpr size_t kTestSize = 1000;
constexpr double kGamma = 0.7;
constexpr double kRadius = 0.1;

void Run() {
  PrintHeader("Fig. 10(a): precision vs transform count t");
  std::printf("|X| = %zu, b_h = 40, gamma = %.2f, d = %.2f\n\n", kSampleSize,
              kGamma, kRadius);

  const std::vector<int> transform_counts = {1, 3, 5, 7, 9, 11};
  std::printf("%-10s", "template");
  for (int t : transform_counts) std::printf("   t=%-5d", t);
  std::printf("  (recall at t=5)\n");
  PrintRule();

  for (const char* name : {"Q1", "Q3", "Q5", "Q7"}) {
    Experiment exp(name);
    Rng rng(101);
    auto sample = exp.LabeledSample(kSampleSize, &rng);
    auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);
    std::printf("%-10s", name);
    double recall_at_5 = 0.0;
    for (int t : transform_counts) {
      LshHistogramsPredictor::Config hc;
      hc.dimensions = exp.dims();
      hc.transform_count = t;
      hc.histogram_buckets = 40;
      hc.radius = kRadius;
      hc.confidence_threshold = kGamma;
      LshHistogramsPredictor predictor(hc, sample);
      const auto metrics = exp.Evaluate(predictor, test);
      std::printf("  %7.3f", metrics.Precision());
      if (t == 5) recall_at_5 = metrics.Recall();
    }
    std::printf("  (%.3f)\n", recall_at_5);
  }
  std::printf(
      "\nExpected shape (paper): precision improves with t (markedly at\n"
      "higher dimensions) while recall stays roughly flat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
