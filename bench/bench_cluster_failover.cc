// Fault tolerance of the sharded serving tier under shard loss
// (DESIGN.md §18).
//
// Spawns real processes — three ppc_server shards and one ppc_router
// with the health model on — and drives the workload zoo's zipf_tenants
// scenario through the router while a controller injects the failure:
//
//   1. all three shards start, the router fronts them, and the cluster
//      is warmed through the router; replication ships the warm state
//      to each template's ring-successor replica;
//   2. ground truth is recorded: for every well-warmed template, the
//      plan the cluster commits to at a fixed probe point;
//   3. load threads run the scenario open-ended while the controller
//      SIGKILLs the shard that owns the most probed templates, waits
//      for the router's breaker to open (detection), leaves the shard
//      dead through an outage window, then respawns it *cold* on the
//      same port and waits for the warm-rejoin gate to readmit it;
//   4. the whole run is scored: availability (excluding the detection
//      window), failover latency, the replica hit-rate dip, rejoin
//      warm-up time, and — via a ground-truth prober — wrong answers,
//      which must be zero: a failed-over or rejoining shard may
//      abstain, it must never contradict the pre-kill truth.
//
// Binary discovery: ../src/ppc_server and ../src/ppc_router relative to
// this binary, overridable via PPC_SERVER_BIN / PPC_ROUTER_BIN.
//
// Prints a table and writes BENCH_cluster_failover.json (schema in
// EXPERIMENTS.md); scripts/check.sh runs it and validates the file.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/errno_util.h"
#include "server/client.h"
#include "server/hash_ring.h"
#include "server/wire_protocol.h"
#include "workload/scenarios.h"

namespace ppc {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

const char* const kTemplates[] = {"Q0", "Q1", "Q2", "Q3", "Q4",
                                  "Q5", "Q6", "Q7", "Q8"};
constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);
constexpr int kShards = 3;
constexpr uint64_t kSeed = 0xfa11;
constexpr size_t kWarmEvents = 3000;
constexpr size_t kStreamEvents = 60000;
constexpr int kLoadThreads = 2;
/// A probed template must have seen at least this many warm executes to
/// serve as ground truth (rare zipf tenants never warm up — they abstain
/// by design, which says nothing about failover).
constexpr size_t kMinWarmExecutes = 150;
constexpr double kPredictFraction = 0.5;
/// Detection-window grace appended after the breaker opens: failover is
/// engaged but the first few in-flight requests may still be draining.
constexpr double kDetectionGraceSeconds = 0.25;
constexpr double kPreKillSeconds = 1.5;
constexpr double kOutageSeconds = 2.0;
constexpr double kPostRejoinSeconds = 1.5;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------
// Child-process plumbing (same shape as bench_cluster_throughput).
// ---------------------------------------------------------------------

std::string SelfDirectory() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  PPC_CHECK_MSG(n > 0, "readlink(/proc/self/exe) failed");
  buffer[n] = '\0';
  std::string path(buffer);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BinaryPath(const char* env_override, const char* relative) {
  const char* overridden = std::getenv(env_override);
  if (overridden != nullptr && overridden[0] != '\0') return overridden;
  return SelfDirectory() + relative;
}

struct ChildProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  ~ChildProcess() { Terminate(); }

  void Terminate() { Reap(SIGTERM); }
  /// The failure injection: no shutdown handler runs, no drain, the
  /// kernel just closes every socket — exactly a crashed shard.
  void Kill() { Reap(SIGKILL); }

  void Reap(int signal) {
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, signal);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

void Spawn(const std::string& binary, const std::vector<std::string>& args,
           ChildProcess* child) {
  int pipe_fds[2];
  PPC_CHECK_MSG(::pipe(pipe_fds) == 0, "pipe failed");
  const pid_t pid = ::fork();
  PPC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "exec %s: %s\n", binary.c_str(),
                 ppc::ErrnoMessage(errno).c_str());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  child->pid = pid;
  child->stdout_fd = pipe_fds[0];

  std::string line;
  char byte;
  while (true) {
    const ssize_t n = ::read(pipe_fds[0], &byte, 1);
    if (n <= 0) {
      std::fprintf(stderr, "child %s exited before LISTENING\n",
                   binary.c_str());
      PPC_CHECK_MSG(false, "child process failed to start");
    }
    if (byte == '\n') {
      unsigned parsed = 0;
      if (std::sscanf(line.c_str(), "LISTENING %u", &parsed) == 1) {
        child->port = static_cast<uint16_t>(parsed);
        return;
      }
      line.clear();
      continue;
    }
    line.push_back(byte);
  }
}

// ---------------------------------------------------------------------
// Workload: the zoo's zipf_tenants stream, pre-generated once so every
// thread (and every run with the same seed) sees the same queries.
// ---------------------------------------------------------------------

std::vector<ScenarioEvent> MakeStream() {
  ScenarioConfig cfg;
  for (const char* name : kTemplates) {
    cfg.templates.push_back({name, EvaluationTemplate(name).ParameterDegree()});
  }
  cfg.seed = kSeed;
  auto generator = MakeScenario("zipf_tenants", cfg);
  PPC_CHECK_MSG(generator.ok(), generator.status().ToString().c_str());
  return GenerateEvents(generator.value().get(), kStreamEvents);
}

/// The breaker state the router's aggregated METRICS reports for
/// `address`, or "" when the address is missing from the payload.
std::string BreakerStateIn(const std::string& metrics,
                           const std::string& address) {
  const size_t at = metrics.find("\"" + address + "\"");
  if (at == std::string::npos) return "";
  const std::string key = "\"breaker_state\":\"";
  const size_t begin = metrics.find(key, at);
  if (begin == std::string::npos) return "";
  const size_t from = begin + key.size();
  const size_t end = metrics.find('"', from);
  if (end == std::string::npos) return "";
  return metrics.substr(from, end - from);
}

/// Polls the router's METRICS until the victim's breaker reports
/// `want`, returning the elapsed-seconds timestamp of the first sighting
/// (relative to `epoch`) or a negative value on timeout.
double AwaitBreakerState(PpcClient* admin, const std::string& address,
                         const std::string& want, Clock::time_point epoch,
                         double timeout_seconds) {
  const auto give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  while (Clock::now() < give_up) {
    auto metrics = admin->Metrics();
    if (metrics.ok() &&
        BreakerStateIn(metrics.value(), address) == want) {
      return SecondsSince(epoch);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1.0;
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

/// One timed request outcome from a load thread.
struct Sample {
  double t = 0.0;
  bool ok = false;
  bool victim_owned = false;
  bool is_predict = false;
  bool hit = false;  // predict committed to a plan
};

struct Window {
  size_t total = 0;
  size_t ok_count = 0;
  size_t predicts = 0;
  size_t hits = 0;

  double availability() const {
    return total == 0 ? 1.0
                      : static_cast<double>(ok_count) /
                            static_cast<double>(total);
  }
  double hit_rate() const {
    return predicts == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(predicts);
  }
};

void Run() {
  PrintHeader("Cluster failover (router + 3 ppc_server shards, SIGKILL)");
  const std::string server_bin =
      BinaryPath("PPC_SERVER_BIN", "/../src/ppc_server");
  const std::string router_bin =
      BinaryPath("PPC_ROUTER_BIN", "/../src/ppc_router");

  ChildProcess shards[kShards];
  std::string backends;
  for (int i = 0; i < kShards; ++i) {
    Spawn(server_bin, {"--port=0"}, &shards[i]);
    if (!backends.empty()) backends += ",";
    backends += "127.0.0.1:" + std::to_string(shards[i].port);
  }
  std::printf("shards: %s\n", backends.c_str());

  ChildProcess router;
  Spawn(router_bin,
        {"--port=0", "--backends=" + backends, "--backend-deadline-ms=2000",
         "--probe-interval-ms=50", "--probe-deadline-ms=500",
         "--breaker-failure-threshold=2", "--breaker-cooldown-ms=300",
         "--replication-interval-ms=300"},
        &router);
  std::printf("router on :%u\n", router.port);

  HashRing ring;
  std::vector<HashRing::Node> shard_nodes;
  for (int i = 0; i < kShards; ++i) {
    shard_nodes.push_back({"127.0.0.1", shards[i].port});
    ring.Add(shard_nodes.back());
  }
  // template index -> owning shard index (pure placement, same as the
  // router's).
  int owner_of[kTemplateCount] = {};
  for (size_t t = 0; t < kTemplateCount; ++t) {
    const auto owner = ring.Owner(kTemplates[t]).value();
    for (int i = 0; i < kShards; ++i) {
      if (owner == shard_nodes[static_cast<size_t>(i)]) owner_of[t] = i;
    }
  }

  const std::vector<ScenarioEvent> stream = MakeStream();

  // Warm through the router, then give replication a few intervals to
  // ship the state to the replicas.
  size_t warm_executes[kTemplateCount] = {};
  {
    PpcClient warm;
    PPC_CHECK(warm.Connect("127.0.0.1", router.port).ok());
    for (size_t i = 0; i < kWarmEvents; ++i) {
      const ScenarioEvent& event = stream[i];
      const auto executed =
          warm.Execute(kTemplates[event.template_index], event.point);
      PPC_CHECK_MSG(executed.ok(), executed.status().ToString().c_str());
      ++warm_executes[event.template_index];
    }
    std::printf("warmed cluster with %zu executes\n", kWarmEvents);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(900));

  // Ground truth: for each well-warmed template, the committed plan at a
  // fixed probe point (the template's last warm query).
  struct Probe {
    size_t tmpl = 0;
    std::vector<double> point;
    uint64_t plan = kNullPlanId;
  };
  std::vector<Probe> probes;
  {
    PpcClient admin;
    PPC_CHECK(admin.Connect("127.0.0.1", router.port).ok());
    std::vector<double> last_point[kTemplateCount];
    for (size_t i = 0; i < kWarmEvents; ++i) {
      last_point[stream[i].template_index] = stream[i].point;
    }
    for (size_t t = 0; t < kTemplateCount; ++t) {
      if (warm_executes[t] < kMinWarmExecutes) continue;
      auto predicted = admin.Predict(kTemplates[t], last_point[t]);
      if (predicted.ok() && predicted.value().plan != kNullPlanId) {
        probes.push_back({t, last_point[t], predicted.value().plan});
      }
    }
  }
  PPC_CHECK_MSG(!probes.empty(), "no template warmed to a committed plan");

  // Victim: the shard owning the most probed templates (the failure that
  // hurts the most).
  int probes_per_shard[kShards] = {};
  for (const Probe& probe : probes) ++probes_per_shard[owner_of[probe.tmpl]];
  int victim = 0;
  for (int i = 1; i < kShards; ++i) {
    if (probes_per_shard[i] > probes_per_shard[victim]) victim = i;
  }
  const std::string victim_address = shard_nodes[victim].Address();
  std::printf("%zu ground-truth probes; victim %s owns %d of them\n",
              probes.size(), victim_address.c_str(),
              probes_per_shard[victim]);
  PrintRule();

  // --- Live run: load + ground-truth prober + failure controller. ---
  std::atomic<bool> stop{false};
  std::atomic<size_t> wrong_answers{0};
  std::atomic<size_t> failed_over_executes{0};
  std::vector<Sample> samples;
  std::mutex samples_mu;
  const auto epoch = Clock::now();

  std::vector<std::thread> load_threads;
  for (int t = 0; t < kLoadThreads; ++t) {
    load_threads.emplace_back([&, t] {
      PpcClient client;
      if (!client.Connect("127.0.0.1", router.port).ok()) return;
      Rng mix_rng(kSeed + 77 + static_cast<uint64_t>(t));
      std::vector<Sample> mine;
      // Stride the shared stream so threads never send the same query,
      // wrapping past the end (the stream is stationary).
      size_t i = kWarmEvents + static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const ScenarioEvent& event = stream[i % kStreamEvents];
        i += kLoadThreads;
        const char* name = kTemplates[event.template_index];
        Sample sample;
        sample.t = SecondsSince(epoch);
        sample.victim_owned = owner_of[event.template_index] == victim;
        if (mix_rng.Uniform() < kPredictFraction) {
          sample.is_predict = true;
          auto predicted = client.Predict(name, event.point);
          sample.ok = predicted.ok();
          sample.hit =
              predicted.ok() && predicted.value().plan != kNullPlanId;
        } else {
          auto executed = client.Execute(name, event.point);
          sample.ok = executed.ok();
          if (executed.ok() && executed.value().failed_over) {
            failed_over_executes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        mine.push_back(sample);
      }
      std::lock_guard<std::mutex> lock(samples_mu);
      samples.insert(samples.end(), mine.begin(), mine.end());
    });
  }

  std::thread prober([&] {
    PpcClient client;
    if (!client.Connect("127.0.0.1", router.port).ok()) return;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Probe& probe : probes) {
        auto predicted = client.Predict(kTemplates[probe.tmpl], probe.point);
        // Abstaining (null) and failing are availability problems, not
        // correctness ones; committing to a *different* plan than the
        // pre-kill truth is a wrong answer.
        if (predicted.ok() && predicted.value().plan != kNullPlanId &&
            predicted.value().plan != probe.plan) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });

  // Controller (this thread): pre-kill steady state, SIGKILL, detection,
  // outage, cold respawn, rejoin, post-rejoin steady state.
  PpcClient admin;
  PPC_CHECK(admin.Connect("127.0.0.1", router.port).ok());
  std::this_thread::sleep_for(
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(kPreKillSeconds)));

  const double t_kill = SecondsSince(epoch);
  shards[victim].Kill();
  std::printf("t=%.3fs SIGKILL %s\n", t_kill, victim_address.c_str());

  const double t_open =
      AwaitBreakerState(&admin, victim_address, "open", epoch, 15.0);
  PPC_CHECK_MSG(t_open >= 0.0, "breaker never opened after SIGKILL");
  std::printf("t=%.3fs breaker open (detection %.0f ms)\n", t_open,
              (t_open - t_kill) * 1e3);

  std::this_thread::sleep_for(
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(kOutageSeconds)));

  // Respawn cold on the same port: a crashed process restarted by an
  // operator or supervisor, with no memory of what it had learned.
  const double t_respawn = SecondsSince(epoch);
  Spawn(server_bin, {"--port=" + std::to_string(shards[victim].port)},
        &shards[victim]);
  std::printf("t=%.3fs respawned %s cold\n", SecondsSince(epoch),
              victim_address.c_str());

  const double t_rejoined =
      AwaitBreakerState(&admin, victim_address, "closed", epoch, 20.0);
  const bool auto_rejoined = t_rejoined >= 0.0;
  if (auto_rejoined) {
    std::printf("t=%.3fs rejoined (warm rejoin took %.0f ms)\n", t_rejoined,
                (t_rejoined - t_respawn) * 1e3);
  } else {
    std::printf("shard never rejoined\n");
  }

  std::this_thread::sleep_for(
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(kPostRejoinSeconds)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : load_threads) thread.join();
  prober.join();
  PrintRule();

  // --- Scoring. ---
  const double detection_end = t_open + kDetectionGraceSeconds;
  Window all, excluding_detection, victim_before, victim_outage;
  Window victim_after, others_after;
  double first_failover_ok = -1.0;
  for (const Sample& sample : samples) {
    ++all.total;
    if (sample.ok) ++all.ok_count;
    const bool in_detection = sample.t >= t_kill && sample.t < detection_end;
    if (!in_detection) {
      ++excluding_detection.total;
      if (sample.ok) ++excluding_detection.ok_count;
    }
    if (sample.victim_owned && sample.ok && sample.t >= t_kill &&
        (first_failover_ok < 0.0 || sample.t < first_failover_ok)) {
      first_failover_ok = sample.t;
    }
    Window* window = nullptr;
    if (sample.victim_owned && sample.t < t_kill) {
      window = &victim_before;
    } else if (sample.victim_owned && sample.t >= detection_end &&
               (!auto_rejoined || sample.t < t_rejoined)) {
      window = &victim_outage;
    } else if (auto_rejoined && sample.t >= t_rejoined) {
      window = sample.victim_owned ? &victim_after : &others_after;
    }
    if (window != nullptr && sample.is_predict) {
      ++window->predicts;
      if (sample.hit) ++window->hits;
    }
  }
  const double failover_latency_ms =
      first_failover_ok < 0.0 ? -1.0 : (first_failover_ok - t_kill) * 1e3;
  const double dip =
      std::max(0.0, victim_before.hit_rate() - victim_outage.hit_rate());
  const double rejoin_gap =
      std::max(0.0, victim_before.hit_rate() - victim_after.hit_rate());

  std::printf("availability: %.4f overall, %.4f excluding detection "
              "(%zu samples)\n",
              all.availability(), excluding_detection.availability(),
              all.total);
  std::printf("failover: first victim-owned answer %.0f ms after kill, "
              "%zu FAILED_OVER executes\n",
              failover_latency_ms,
              failed_over_executes.load());
  std::printf("replica hit rate on victim templates: %.3f before kill, "
              "%.3f during outage (dip %.3f)\n",
              victim_before.hit_rate(), victim_outage.hit_rate(), dip);
  std::printf("rejoin: warm-up %.3fs, victim hit rate %.3f after rejoin "
              "(gap vs pre-kill %.3f), others %.3f\n",
              auto_rejoined ? t_rejoined - t_respawn : -1.0,
              victim_after.hit_rate(), rejoin_gap,
              others_after.hit_rate());
  std::printf("wrong answers: %zu\n", wrong_answers.load());
  PrintRule();

  // The robustness claims, enforced here as well as in check.sh.
  PPC_CHECK_MSG(wrong_answers.load() == 0,
                "a failed-over or rejoined shard contradicted ground truth");
  PPC_CHECK_MSG(excluding_detection.availability() >= 0.99,
                "availability below 99% outside the detection window");
  PPC_CHECK_MSG(auto_rejoined, "killed shard was never readmitted");
  PPC_CHECK_MSG(failed_over_executes.load() >= 1,
                "no EXECUTE was answered FAILED_OVER during the outage");
  PPC_CHECK_MSG(rejoin_gap <= 0.05,
                "rejoined shard trails its pre-kill hit rate by more than "
                "5 points — warm rejoin is not working");

  std::string body = "\"availability\": " + JsonNumber(all.availability());
  body += ",\n\"availability_excluding_detection\": " +
          JsonNumber(excluding_detection.availability());
  body += ",\n\"samples\": " + std::to_string(all.total);
  body += ",\n\"detection_seconds\": " + JsonNumber(t_open - t_kill);
  body += ",\n\"wrong_answers\": " + std::to_string(wrong_answers.load());
  body += ",\n\"failed_over_executes\": " +
          std::to_string(failed_over_executes.load());
  body += ",\n\"failover\": {\"latency_ms\": " +
          JsonNumber(failover_latency_ms);
  body += ", \"victim_hit_rate_before_kill\": " +
          JsonNumber(victim_before.hit_rate());
  body += ", \"replica_hit_rate_during_outage\": " +
          JsonNumber(victim_outage.hit_rate());
  body += ", \"hit_rate_dip\": " + JsonNumber(dip);
  body += "}";
  body += ",\n\"rejoin\": {\"auto_rejoined\": ";
  body += auto_rejoined ? "true" : "false";
  body += ", \"warmup_seconds\": " +
          JsonNumber(auto_rejoined ? t_rejoined - t_respawn : -1.0);
  body += ", \"victim_hit_rate_after_rejoin\": " +
          JsonNumber(victim_after.hit_rate());
  body += ", \"others_hit_rate_after_rejoin\": " +
          JsonNumber(others_after.hit_rate());
  body += ", \"hit_rate_gap\": " + JsonNumber(rejoin_gap);
  body += "}";
  body += ",\n\"probes\": " + std::to_string(probes.size());
  body += ",\n\"load_threads\": " + std::to_string(kLoadThreads);
  body += ",\n\"scenario\": \"zipf_tenants\"";
  body += ",\n\"seed\": " + std::to_string(kSeed);
  WriteBenchJson("cluster_failover", body);

  router.Terminate();
  for (int i = 0; i < kShards; ++i) shards[i].Terminate();
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
