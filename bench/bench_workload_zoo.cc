// The workload zoo (docs/WORKLOADS.md): every named scenario of
// src/workload/scenarios.h driven end to end against a live PlanServer
// over TCP, so the perf trajectory covers more than the happy path.
//
// Per scenario: a fresh framework + server pair, a determinism check
// (two generators from the same config must emit byte-identical
// streams), a warm-up prefix executed in-process, then the measured
// event stream over the wire. Each scenario is aimed at the subsystem
// it was designed to stress, and the bench asserts the stress landed:
//
//   * zipf_tenants / correlated_predicates — closed-loop 3:1
//     PREDICT/EXECUTE mix; reported per-template precision/recall show
//     popularity skew and non-axis-aligned structure in the numbers.
//   * diurnal_flash — open-loop, paced by the scenario's arrival
//     clock, against a deliberately small server (one slowed worker,
//     tiny queue) so the flash crowds drive the EWMA shed ladder
//     through its rungs; asserts `server.shed.*` transitions happened.
//   * adversarial_drift — closed-loop EXECUTE-only against a
//     retune-enabled framework, with the drift box probed from the
//     optimizer exactly as in bench_drift_recovery; asserts the
//     concentration jump produced at least one retune refit.
//
// Prints a table and writes BENCH_workload_zoo.json (schema in
// EXPERIMENTS.md); scripts/check.sh runs it and validates the file.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ppc/ppc_framework.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/scenarios.h"

namespace ppc {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

const char* const kZooTemplates[] = {"Q1", "Q3", "Q5", "Q8"};

// Closed-loop scenarios: warm-up in-process, then the measured stream.
constexpr size_t kClosedWarmup = 800;
constexpr size_t kClosedMeasured = 3000;

// diurnal_flash sizing: the base rate must undershoot the slowed
// single worker (~1s/kWorkerDelay ≈ 6.6k requests/s) while the flash
// rate overshoots it several times over, so the queue EWMA actually
// climbs the ladder. Events land mostly inside flash windows.
constexpr size_t kDiurnalWarmup = 600;
constexpr size_t kDiurnalMeasured = 4000;
constexpr double kDiurnalBaseRate = 800.0;
constexpr size_t kDiurnalQueueCapacity = 8;
constexpr auto kWorkerDelay = std::chrono::microseconds(150);
constexpr size_t kOpenWindow = 256;  // max outstanding pipelined ids

// adversarial_drift phase sizes, mirroring bench_drift_recovery: the
// retune cooldown spans the warm-up phases so the first refit the
// controller can schedule is a genuine post-drift one.
constexpr size_t kDriftUniform = 600;
constexpr size_t kDriftHome = 800;
constexpr size_t kDriftBox = 1600;
constexpr double kDriftBoxHalfWidth = 0.05;

PpcFramework::Config ZooServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

/// The retune-enabled arm of bench_drift_recovery, reused verbatim so
/// the zoo's drift scenario measures the same machinery.
PpcFramework::Config DriftServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.2;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.0005;
  cfg.online.negative_feedback = true;
  cfg.online.cost_error_bound = 0.25;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  cfg.retune.enabled = true;
  cfg.retune.precision_trigger = 0.75;
  cfg.retune.recall_trigger = 0.6;
  cfg.retune.reservoir_capacity = 128;
  cfg.retune.min_reservoir_points = 64;
  cfg.retune.cooldown_observations = kDriftUniform + kDriftHome - 100;
  cfg.retune.range_fit_quantile = 0.15;
  return cfg;
}

ScenarioConfig BaseScenarioConfig(uint64_t seed) {
  ScenarioConfig cfg;
  for (const char* name : kZooTemplates) {
    cfg.templates.push_back(
        {name, EvaluationTemplate(name).ParameterDegree()});
  }
  cfg.seed = seed;
  return cfg;
}

/// Bit-exact stream equality — the determinism contract the zoo (and
/// the check.sh smoke) advertises.
bool SameEvent(const ScenarioEvent& a, const ScenarioEvent& b) {
  if (a.template_index != b.template_index) return false;
  if (std::memcmp(&a.arrival_seconds, &b.arrival_seconds,
                  sizeof(double)) != 0) {
    return false;
  }
  if (a.point.size() != b.point.size()) return false;
  return a.point.empty() ||
         std::memcmp(a.point.data(), b.point.data(),
                     a.point.size() * sizeof(double)) == 0;
}

bool StreamsIdentical(const std::string& name, const ScenarioConfig& config,
                      size_t count) {
  auto a = MakeScenario(name, config);
  auto b = MakeScenario(name, config);
  PPC_CHECK_MSG(a.ok() && b.ok(), "scenario construction failed");
  const std::vector<ScenarioEvent> ea = GenerateEvents(a.value().get(), count);
  const std::vector<ScenarioEvent> eb = GenerateEvents(b.value().get(), count);
  for (size_t i = 0; i < count; ++i) {
    if (!SameEvent(ea[i], eb[i])) return false;
  }
  return true;
}

struct ScenarioOutcome {
  std::string scenario;
  uint64_t seed = 0;
  const char* driver = "";
  size_t warmup_events = 0;
  size_t measured_events = 0;
  bool deterministic = false;
  double seconds = 0.0;
  size_t predicts = 0;
  size_t executes = 0;
  size_t busy = 0;
  size_t failures = 0;
  /// EXECUTEs whose served prediction stuck (used_prediction and no
  /// negative-feedback overturn), over all measured EXECUTEs.
  size_t hits = 0;
  PpcFramework::FrameworkMetrics snapshot;

  double qps() const {
    const double total = static_cast<double>(predicts + executes);
    return seconds > 0.0 ? total / seconds : 0.0;
  }
  double hit_rate() const {
    return executes == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(executes);
  }
};

/// Warm-up: the prefix executes in-process (no wire), seeding the
/// predictors and the plan cache before measurement starts.
void WarmUp(PpcFramework* framework, const ScenarioConfig& config,
            const std::vector<ScenarioEvent>& events, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const ScenarioEvent& e = events[i];
    auto report = framework->ExecuteAtPoint(
        config.templates[e.template_index].name, e.point);
    PPC_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  }
}

/// Closed loop over TCP: one synchronous request per event. Every 4th
/// event EXECUTEs (carrying feedback), the rest PREDICT —
/// `execute_all` turns the mix into pure EXECUTE (adversarial_drift
/// needs every event to feed the drift window).
void DriveClosedLoop(uint16_t port, const ScenarioConfig& config,
                     const std::vector<ScenarioEvent>& events, size_t begin,
                     bool execute_all, ScenarioOutcome* out) {
  PpcClient client;
  const Status connected = client.Connect("127.0.0.1", port);
  PPC_CHECK_MSG(connected.ok(), connected.ToString().c_str());
  const auto start = Clock::now();
  for (size_t i = begin; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    const std::string& tmpl = config.templates[e.template_index].name;
    if (execute_all || (i - begin) % 4 == 0) {
      auto result = client.Execute(tmpl, e.point);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          ++out->busy;
        } else {
          ++out->failures;
        }
        continue;
      }
      ++out->executes;
      if (result.value().used_prediction &&
          !result.value().negative_feedback_triggered) {
        ++out->hits;
      }
    } else {
      auto result = client.Predict(tmpl, e.point);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          ++out->busy;
        } else {
          ++out->failures;
        }
        continue;
      }
      ++out->predicts;
    }
  }
  out->seconds = std::chrono::duration<double>(Clock::now() - start).count();
}

/// Open loop over TCP, paced by the scenario's own arrival clock with
/// the pipelined client API (sends never wait for responses, so a
/// flash crowd's arrival rate actually reaches the server). BUSY
/// answers are counted, not retried — they are the ladder's last rung
/// doing its job.
void DriveOpenLoop(uint16_t port, const ScenarioConfig& config,
                   const std::vector<ScenarioEvent>& events, size_t begin,
                   ScenarioOutcome* out) {
  PpcClient client;
  const Status connected = client.Connect("127.0.0.1", port);
  PPC_CHECK_MSG(connected.ok(), connected.ToString().c_str());

  struct InFlight {
    uint64_t id;
    bool is_execute;
  };
  std::deque<InFlight> outstanding;
  auto collect = [out, &client](const InFlight& flight) {
    auto response = client.Wait(flight.id);
    if (!response.ok()) {
      ++out->failures;
    } else if (response.value().status == wire::WireStatus::kBusy) {
      ++out->busy;
    } else if (!response.value().ok()) {
      ++out->failures;
    } else if (flight.is_execute) {
      ++out->executes;
      if (response.value().execute.used_prediction &&
          !response.value().execute.negative_feedback_triggered) {
        ++out->hits;
      }
    } else {
      ++out->predicts;
    }
  };

  const double time_base = events[begin].arrival_seconds;
  const auto start = Clock::now();
  for (size_t i = begin; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(e.arrival_seconds -
                                                  time_base)));
    while (outstanding.size() >= kOpenWindow) {
      collect(outstanding.front());
      outstanding.pop_front();
    }
    const std::string& tmpl = config.templates[e.template_index].name;
    const bool is_execute = (i - begin) % 2 == 0;
    const Result<uint64_t> id = is_execute
                                    ? client.SendExecute(tmpl, e.point)
                                    : client.SendPredict(tmpl, e.point);
    if (!id.ok()) {
      ++out->failures;
      continue;
    }
    outstanding.push_back({id.value(), is_execute});
  }
  while (!outstanding.empty()) {
    collect(outstanding.front());
    outstanding.pop_front();
  }
  out->seconds = std::chrono::duration<double>(Clock::now() - start).count();
}

/// Stops the server through the wire (orderly remote shutdown), then
/// snapshots the framework the server was fronting.
void FinishScenario(PpcFramework* framework, PlanServer* server,
                    ScenarioOutcome* out) {
  {
    PpcClient client;
    const Status s = client.Connect("127.0.0.1", server->port());
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
    const Status down = client.Shutdown();
    PPC_CHECK_MSG(down.ok(), down.ToString().c_str());
  }
  server->Wait();
  if (framework->retune_controller() != nullptr) {
    framework->retune_controller()->WaitIdle();
  }
  out->snapshot = framework->MetricsSnapshot();
}

ScenarioOutcome RunClosedScenario(const std::string& name, uint64_t seed) {
  ScenarioOutcome out;
  out.scenario = name;
  out.seed = seed;
  out.driver = "closed_loop_mixed";
  out.warmup_events = kClosedWarmup;
  out.measured_events = kClosedMeasured;

  const ScenarioConfig config = BaseScenarioConfig(seed);
  out.deterministic =
      StreamsIdentical(name, config, kClosedWarmup + kClosedMeasured);
  auto generator = MakeScenario(name, config);
  PPC_CHECK_MSG(generator.ok(), generator.status().ToString().c_str());
  const std::vector<ScenarioEvent> events =
      GenerateEvents(generator.value().get(), kClosedWarmup + kClosedMeasured);

  PpcFramework framework(&BenchCatalog(), ZooServingConfig());
  for (const char* tmpl : kZooTemplates) {
    const Status s = framework.RegisterTemplate(EvaluationTemplate(tmpl));
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  framework.Seal();
  WarmUp(&framework, config, events, kClosedWarmup);

  PlanServer::Config server_config;
  server_config.worker_threads = 2;
  PlanServer server(&framework, server_config);
  const Status started = server.Start();
  PPC_CHECK_MSG(started.ok(), started.ToString().c_str());

  DriveClosedLoop(server.port(), config, events, kClosedWarmup,
                  /*execute_all=*/false, &out);
  FinishScenario(&framework, &server, &out);
  return out;
}

ScenarioOutcome RunDiurnalScenario(uint64_t seed) {
  ScenarioOutcome out;
  out.scenario = "diurnal_flash";
  out.seed = seed;
  out.driver = "open_loop_paced";
  out.warmup_events = kDiurnalWarmup;
  out.measured_events = kDiurnalMeasured;

  ScenarioConfig config = BaseScenarioConfig(seed);
  config.events_per_second = kDiurnalBaseRate;
  config.diurnal_flash.period_seconds = 2.0;
  config.diurnal_flash.amplitude = 0.6;
  config.diurnal_flash.first_flash_at_seconds = 0.4;
  config.diurnal_flash.flash_every_seconds = 1.2;
  config.diurnal_flash.flash_duration_seconds = 0.3;
  config.diurnal_flash.flash_multiplier = 20.0;
  out.deterministic = StreamsIdentical("diurnal_flash", config,
                                       kDiurnalWarmup + kDiurnalMeasured);
  auto generator = MakeScenario("diurnal_flash", config);
  PPC_CHECK_MSG(generator.ok(), generator.status().ToString().c_str());
  const std::vector<ScenarioEvent> events = GenerateEvents(
      generator.value().get(), kDiurnalWarmup + kDiurnalMeasured);

  PpcFramework framework(&BenchCatalog(), ZooServingConfig());
  for (const char* tmpl : kZooTemplates) {
    const Status s = framework.RegisterTemplate(EvaluationTemplate(tmpl));
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  framework.Seal();
  WarmUp(&framework, config, events, kDiurnalWarmup);

  // A deliberately small server: one worker slowed by the dispatch
  // hook (so saturation is machine-independent) behind a tiny queue.
  // The flash crowds overrun it; the base-rate valleys do not.
  PlanServer::Config server_config;
  server_config.worker_threads = 1;
  server_config.queue_capacity = kDiurnalQueueCapacity;
  server_config.pre_dispatch_hook = [](wire::MessageType) {
    std::this_thread::sleep_for(kWorkerDelay);
  };
  PlanServer server(&framework, server_config);
  const Status started = server.Start();
  PPC_CHECK_MSG(started.ok(), started.ToString().c_str());

  DriveOpenLoop(server.port(), config, events, kDiurnalWarmup, &out);
  FinishScenario(&framework, &server, &out);
  return out;
}

ScenarioOutcome RunDriftScenario(uint64_t seed) {
  ScenarioOutcome out;
  out.scenario = "adversarial_drift";
  out.seed = seed;
  out.driver = "closed_loop_execute";
  out.warmup_events = 0;
  out.measured_events = kDriftUniform + kDriftHome + kDriftBox;

  // The drift box and home cluster are probed from the optimizer (the
  // same probes bench_drift_recovery uses), then injected as the
  // scenario's phase schedule: uniform background, home cluster, jump.
  Experiment probe("Q5");
  const double box_center = FindDriftBoxCenter(probe, kDriftBoxHalfWidth);
  const double home_center =
      FindHomeCenter(probe, box_center, kDriftBoxHalfWidth);

  ScenarioConfig config;
  config.templates.push_back(
      {"Q5", EvaluationTemplate("Q5").ParameterDegree()});
  config.seed = seed;
  config.adversarial_drift.phases = {
      {kDriftUniform, 0.5, 0.48},
      {kDriftHome, home_center, kDriftBoxHalfWidth},
      {kDriftBox, box_center, kDriftBoxHalfWidth},
  };
  out.deterministic =
      StreamsIdentical("adversarial_drift", config, out.measured_events);
  auto generator = MakeScenario("adversarial_drift", config);
  PPC_CHECK_MSG(generator.ok(), generator.status().ToString().c_str());
  const std::vector<ScenarioEvent> events =
      GenerateEvents(generator.value().get(), out.measured_events);

  PpcFramework framework(&BenchCatalog(), DriftServingConfig());
  const Status registered =
      framework.RegisterTemplate(EvaluationTemplate("Q5"));
  PPC_CHECK_MSG(registered.ok(), registered.ToString().c_str());
  framework.Seal();

  PlanServer::Config server_config;
  server_config.worker_threads = 2;
  PlanServer server(&framework, server_config);
  const Status started = server.Start();
  PPC_CHECK_MSG(started.ok(), started.ToString().c_str());

  DriveClosedLoop(server.port(), config, events, 0, /*execute_all=*/true,
                  &out);
  FinishScenario(&framework, &server, &out);
  return out;
}

std::string ShedJson(const MetricsRegistry::Snapshot& snap) {
  std::string out = "{\"enter_no_microbatch\": " +
                    std::to_string(CounterValue(
                        snap, "server.shed.enter_no_microbatch"));
  out += ", \"enter_abstain\": " +
         std::to_string(CounterValue(snap, "server.shed.enter_abstain"));
  out += ", \"recovered\": " +
         std::to_string(CounterValue(snap, "server.shed.recovered"));
  out += ", \"abstained_predicts\": " +
         std::to_string(CounterValue(snap, "server.shed.abstained_predicts"));
  out += ", \"responses_busy\": " +
         std::to_string(CounterValue(snap, "server.responses.busy"));
  out += "}";
  return out;
}

std::string RetuneJson(const MetricsRegistry::Snapshot& snap) {
  std::string out = "{\"triggers\": " +
                    std::to_string(CounterValue(snap, "server.retune.triggers"));
  out += ", \"refits\": " +
         std::to_string(CounterValue(snap, "server.retune.refits"));
  out += ", \"skipped\": " +
         std::to_string(CounterValue(snap, "server.retune.skipped"));
  out += ", \"aborted\": " +
         std::to_string(CounterValue(snap, "server.retune.aborted"));
  out += ", \"points_backfilled\": " +
         std::to_string(
             CounterValue(snap, "server.retune.points_backfilled"));
  out += ", \"generations\": " +
         std::to_string(CounterValue(snap, "server.retune.generations"));
  out += "}";
  return out;
}

std::string OutcomeJson(const ScenarioOutcome& out) {
  std::string json = "{\"scenario\": \"" + out.scenario + "\"";
  json += ", \"seed\": " + std::to_string(out.seed);
  json += ", \"driver\": \"" + std::string(out.driver) + "\"";
  json += ", \"deterministic\": ";
  json += out.deterministic ? "true" : "false";
  json += ", \"warmup_events\": " + std::to_string(out.warmup_events);
  json += ", \"measured_events\": " + std::to_string(out.measured_events);
  json += ", \"seconds\": " + JsonNumber(out.seconds);
  json += ", \"qps\": " + JsonNumber(out.qps());
  json += ", \"predicts\": " + std::to_string(out.predicts);
  json += ", \"executes\": " + std::to_string(out.executes);
  json += ", \"busy\": " + std::to_string(out.busy);
  json += ", \"failures\": " + std::to_string(out.failures);
  json += ", \"hit_rate\": " + JsonNumber(out.hit_rate());
  json += ", \"templates\": [";
  for (size_t i = 0; i < out.snapshot.templates.size(); ++i) {
    const auto& tmpl = out.snapshot.templates[i];
    if (i > 0) json += ", ";
    json += "{\"name\": \"" + tmpl.name + "\"";
    json += ", \"precision\": " + JsonNumber(tmpl.stats.precision);
    json += ", \"recall\": " + JsonNumber(tmpl.stats.recall);
    json += ", \"resets\": " + std::to_string(tmpl.stats.resets);
    json += ", \"generation\": " + std::to_string(tmpl.generation);
    json += "}";
  }
  json += "]";
  json += ", \"shed\": " + ShedJson(out.snapshot.registry);
  json += ", \"retune\": " + RetuneJson(out.snapshot.registry);
  json += "}";
  return json;
}

void PrintOutcome(const ScenarioOutcome& out) {
  std::printf("%-22s %8.2fs %9.0f qps  %6zu pred %6zu exec %5zu busy "
              "%3zu fail  hit %.3f  det %s\n",
              out.scenario.c_str(), out.seconds, out.qps(), out.predicts,
              out.executes, out.busy, out.failures, out.hit_rate(),
              out.deterministic ? "yes" : "no");
}

void Run() {
  PrintHeader("Workload zoo: named scenarios against a live PlanServer");
  std::printf("scenarios: ");
  for (const std::string& name : ScenarioNames()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");
  PrintRule();

  std::vector<ScenarioOutcome> outcomes;
  outcomes.push_back(RunClosedScenario("zipf_tenants", 0xa11ce));
  PrintOutcome(outcomes.back());
  outcomes.push_back(RunDiurnalScenario(0xb0b));
  PrintOutcome(outcomes.back());
  outcomes.push_back(RunClosedScenario("correlated_predicates", 0xcafe));
  PrintOutcome(outcomes.back());
  outcomes.push_back(RunDriftScenario(0x10));
  PrintOutcome(outcomes.back());
  PrintRule();

  for (const ScenarioOutcome& out : outcomes) {
    PPC_CHECK_MSG(out.deterministic, "scenario stream not deterministic");
    PPC_CHECK_MSG(out.failures == 0, "scenario had request failures");
  }
  // The stress assertions of the zoo: diurnal_flash must climb the shed
  // ladder, adversarial_drift must force at least one retune refit.
  const ScenarioOutcome& diurnal = outcomes[1];
  const uint64_t shed_entries =
      CounterValue(diurnal.snapshot.registry,
                   "server.shed.enter_no_microbatch") +
      CounterValue(diurnal.snapshot.registry, "server.shed.enter_abstain");
  std::printf("diurnal_flash shed ladder: %llu rung entries, %llu abstained "
              "predicts, %zu busy\n",
              static_cast<unsigned long long>(shed_entries),
              static_cast<unsigned long long>(CounterValue(
                  diurnal.snapshot.registry,
                  "server.shed.abstained_predicts")),
              diurnal.busy);
  PPC_CHECK_MSG(shed_entries >= 1,
                "diurnal_flash did not engage the shed ladder");
  const ScenarioOutcome& drift = outcomes[3];
  const uint64_t refits =
      CounterValue(drift.snapshot.registry, "server.retune.refits");
  std::printf("adversarial_drift retune: %llu triggers, %llu refits, "
              "%llu skipped, %llu aborted\n",
              static_cast<unsigned long long>(CounterValue(
                  drift.snapshot.registry, "server.retune.triggers")),
              static_cast<unsigned long long>(refits),
              static_cast<unsigned long long>(CounterValue(
                  drift.snapshot.registry, "server.retune.skipped")),
              static_cast<unsigned long long>(CounterValue(
                  drift.snapshot.registry, "server.retune.aborted")));
  PPC_CHECK_MSG(refits >= 1,
                "adversarial_drift did not trigger a retune refit");

  std::string body = "  \"scenarios\": [";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) body += ",";
    body += "\n    " + OutcomeJson(outcomes[i]);
  }
  body += "\n  ]";
  WriteBenchJson("workload_zoo", body);
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
