// Reproduces paper Table III (Appendix A): the evaluation query templates,
// their parameter degrees, and estimated plan counts — obtained, like the
// paper, "by probing the optimizer at a finite number of plan space
// points; hence, these numbers show a lower bound on the number of plans".

#include <chrono>
#include <cstdio>
#include <set>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kRandomProbes = 4000;

void Run() {
  PrintHeader("Table III: query templates and estimated plan counts");
  std::printf("%zu random probes per template (plan counts are lower "
              "bounds)\n\n",
              kRandomProbes);
  std::printf("%-6s %-7s %-7s %-7s %-10s %-12s\n", "query", "tables",
              "degree", "plans", "opt us", "SQL");
  PrintRule();

  for (const char* name :
       {"Q0", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"}) {
    Experiment exp(name);
    Rng rng(1234);
    std::set<PlanId> plans;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kRandomProbes; ++i) {
      std::vector<double> point(static_cast<size_t>(exp.dims()));
      for (double& v : point) v = rng.Uniform();
      plans.insert(exp.Label(point).plan);
    }
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kRandomProbes;
    std::printf("%-6s %-7zu %-7d %-7zu %-10.1f %s\n", name,
                exp.tmpl().tables.size(), exp.dims(), plans.size(), micros,
                exp.tmpl().ToSql().c_str());
  }
  std::printf(
      "\nExpected shape (paper Table III): parameter degrees 2..6; plan\n"
      "counts grow with dimensionality and join count.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
