// Reproduces paper Fig. 9: APPROXIMATE-LSH vs APPROXIMATE-LSH-HISTOGRAMS
// on template Q5 — histogram summarization improves precision (adaptive
// bucket boundaries beat a rigid grid) while Z-ordering and bounded
// buckets cost some recall.

#include <cstdio>

#include "bench_util.h"
#include "clustering/approximate_lsh_predictor.h"
#include "ppc/lsh_histograms_predictor.h"

namespace ppc {
namespace bench {
namespace {

constexpr double kGamma = 0.7;
constexpr double kRadius = 0.1;
constexpr int kTransforms = 5;
constexpr size_t kHistBuckets = 40;
constexpr size_t kTestSize = 1000;

void Run() {
  PrintHeader("Fig. 9: APPROXIMATE-LSH vs APPROXIMATE-LSH-HISTOGRAMS (Q5)");
  std::printf("gamma = %.2f, d = %.2f, t = %d, b_h = %zu\n\n", kGamma,
              kRadius, kTransforms, kHistBuckets);
  Experiment exp("Q5");

  std::printf("%-8s | %10s %10s | %10s %10s | %12s %12s\n", "|X|",
              "prec:ALSH", "prec:HIST", "rec:ALSH", "rec:HIST", "bytes:ALSH",
              "bytes:HIST");
  PrintRule();
  for (size_t n : {200u, 400u, 800u, 1600u, 3200u, 6400u}) {
    Rng rng(57 + n);
    auto sample = exp.LabeledSample(n, &rng);
    auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

    ApproximateLshPredictor::Config ac;
    ac.dimensions = exp.dims();
    ac.transform_count = kTransforms;
    ac.bits_per_dim = 4;
    ac.radius = kRadius;
    ac.confidence_threshold = kGamma;
    ApproximateLshPredictor lsh(ac, sample);

    LshHistogramsPredictor::Config hc;
    hc.dimensions = exp.dims();
    hc.transform_count = kTransforms;
    hc.histogram_buckets = kHistBuckets;
    hc.radius = kRadius;
    hc.confidence_threshold = kGamma;
    LshHistogramsPredictor histograms(hc, sample);

    const auto lsh_m = exp.Evaluate(lsh, test);
    const auto hist_m = exp.Evaluate(histograms, test);
    std::printf("%-8zu | %10.3f %10.3f | %10.3f %10.3f | %12llu %12llu\n", n,
                lsh_m.Precision(), hist_m.Precision(), lsh_m.Recall(),
                hist_m.Recall(),
                static_cast<unsigned long long>(lsh.SpaceBytes()),
                static_cast<unsigned long long>(histograms.SpaceBytes()));
  }
  std::printf(
      "\nExpected shape (paper): the histogram variant matches or improves\n"
      "precision at a fraction of the space, giving up some recall\n"
      "(Z-order false negatives + confidence gating).\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
