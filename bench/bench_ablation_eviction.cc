// Ablation (DESIGN.md): plan-cache eviction policy under capacity pressure.
// The paper monitors clustering performance "to help decide which plans to
// evict from a full cache"; this sweep compares that precision-aware policy
// against classic LRU and LFU on a plan-rich template with a cache far
// smaller than the plan count.

#include <cstdio>

#include "bench_util.h"
#include "ppc/runtime_simulator.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 1500;
constexpr size_t kCapacity = 6;

void Run() {
  PrintHeader("Ablation: plan-cache eviction policy (Q8, capacity 6)");
  std::printf("%zu queries, random trajectories r_d = 0.02; Q8's plan space "
              "holds >100 plans,\nso the cache is under heavy pressure\n\n",
              kQueries);
  const QueryTemplate tmpl = EvaluationTemplate("Q8");

  std::printf("%-16s %12s %12s %14s %10s\n", "policy", "#opt calls",
              "#pred used", "suboptimality", "total(ms)");
  PrintRule();
  for (CacheEvictionPolicy policy :
       {CacheEvictionPolicy::kPrecisionThenLru, CacheEvictionPolicy::kLru,
        CacheEvictionPolicy::kLfu}) {
    RuntimeSimulator::Options options;
    options.cost_to_seconds = 1e-8;
    options.plan_cache_capacity = kCapacity;
    options.cache_policy = policy;
    options.online.predictor.transform_count = 5;
    options.online.predictor.histogram_buckets = 40;
    options.online.predictor.radius = 0.2;
    options.online.predictor.confidence_threshold = 0.8;
    options.online.predictor.noise_fraction = 0.0005;
    options.online.negative_feedback = true;
    RuntimeSimulator simulator(&BenchCatalog(), tmpl, options);

    TrajectoryConfig traj;
    traj.dimensions = tmpl.ParameterDegree();
    traj.total_points = kQueries;
    traj.scatter = 0.02;
    Rng rng(4242);
    auto workload = RandomTrajectoriesWorkload(traj, &rng);
    auto result = simulator.Run(CachingStrategy::kParametricCache, workload);
    PPC_CHECK(result.ok());
    std::printf("%-16s %12zu %12zu %14.3f %10.2f\n",
                CacheEvictionPolicyName(policy),
                result.value().optimizer_calls,
                result.value().predictions_used,
                result.value().MeanSuboptimality(),
                result.value().TotalSeconds() * 1e3);
  }
  std::printf(
      "\nExpected: under pressure, retaining well-predicting plans\n"
      "(precision-aware) should not trail plain recency/frequency; exact\n"
      "ordering depends on how the trajectory revisits regions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
