// Reproduces paper Fig. 13: end-to-end runtime of plan-caching strategies
// on random-trajectory workloads (r_d = 0.01): ALWAYS-OPTIMIZE,
// CONVENTIONAL-CACHE (least-specific-cost plan reused), the paper's
// ONLINE-LSH-HISTOGRAMS, and the hypothetical IDEAL predictor.
// Optimizer and predictor overheads are measured wall time; execution time
// is the cost model replayed at the true point (the paper's own simulation
// methodology, Sec. V-C).

#include <cstdio>

#include "bench_util.h"
#include "ppc/runtime_simulator.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 1000;

void Run() {
  PrintHeader("Fig. 13: end-to-end runtime by caching strategy");
  std::string json_rows;
  std::printf("%zu queries, random trajectories r_d = 0.01, b_h = 40, "
              "t = 5, gamma = 0.8,\nnoise elimination on, d = 0.15; "
              "execution charged at 10ns/cost-unit (cheap-query regime)\n",
              kQueries);

  for (const char* name : {"Q1", "Q5", "Q7", "Q8"}) {
    const QueryTemplate tmpl = EvaluationTemplate(name);
    RuntimeSimulator::Options options;
    options.cost_to_seconds = 1e-8;
    options.online.predictor.transform_count = 5;
    options.online.predictor.histogram_buckets = 40;
    options.online.predictor.radius = 0.2;
    options.online.predictor.confidence_threshold = 0.8;
    options.online.predictor.noise_fraction = 0.0005;
    options.online.negative_feedback = true;
    RuntimeSimulator simulator(&BenchCatalog(), tmpl, options);

    TrajectoryConfig traj;
    traj.dimensions = tmpl.ParameterDegree();
    traj.total_points = kQueries;
    traj.scatter = 0.01;
    Rng rng(42);
    auto workload = RandomTrajectoriesWorkload(traj, &rng);

    std::printf("\n--- template %s (r = %d) ---\n", name,
                tmpl.ParameterDegree());
    std::printf("%-24s %9s %9s %9s %9s %8s %8s %8s\n", "strategy",
                "total(ms)", "opt(ms)", "pred(ms)", "exec(ms)", "#opt",
                "#pred", "subopt");
    PrintRule();
    for (CachingStrategy strategy :
         {CachingStrategy::kAlwaysOptimize,
          CachingStrategy::kConventionalCache,
          CachingStrategy::kRobustCache,
          CachingStrategy::kParametricCache, CachingStrategy::kIdeal}) {
      auto result = simulator.Run(strategy, workload);
      PPC_CHECK(result.ok());
      const RuntimeSimResult& r = result.value();
      std::printf("%-24s %9.2f %9.2f %9.2f %9.2f %8zu %8zu %8.3f\n",
                  CachingStrategyName(strategy), r.TotalSeconds() * 1e3,
                  r.optimize_seconds * 1e3, r.predict_seconds * 1e3,
                  r.execute_seconds * 1e3, r.optimizer_calls,
                  r.predictions_used, r.MeanSuboptimality());
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += "    {\"template\": ";
      AppendJsonString(name, &json_rows);
      json_rows += ", \"strategy\": ";
      AppendJsonString(CachingStrategyName(strategy), &json_rows);
      json_rows += ", \"total_ms\": " + JsonNumber(r.TotalSeconds() * 1e3);
      json_rows +=
          ", \"optimize_ms\": " + JsonNumber(r.optimize_seconds * 1e3);
      json_rows += ", \"predict_ms\": " + JsonNumber(r.predict_seconds * 1e3);
      json_rows += ", \"execute_ms\": " + JsonNumber(r.execute_seconds * 1e3);
      json_rows += ", \"optimizer_calls\": " + std::to_string(r.optimizer_calls);
      json_rows +=
          ", \"predictions_used\": " + std::to_string(r.predictions_used);
      json_rows +=
          ", \"mean_suboptimality\": " + JsonNumber(r.MeanSuboptimality());
      json_rows += "}";
    }
  }
  WriteBenchJson("fig13_runtime", "  \"queries\": " +
                                      std::to_string(kQueries) +
                                      ",\n  \"rows\": [\n" + json_rows +
                                      "\n  ]");
  std::printf(
      "\nExpected shape (paper): the parametric cache lands between\n"
      "ALWAYS-OPTIMIZE and IDEAL, approaching IDEAL as optimization cost\n"
      "dominates (higher-degree templates); the conventional cache's single\n"
      "plan accrues suboptimal executions as the workload wanders.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
