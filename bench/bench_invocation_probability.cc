// Reproduces the paper's Sec. V-B random-invocation finding: "precision
// increases by ~0.02 for each 10% increase in mean invocation
// probability", at the cost of extra optimizer calls that eat into the
// caching benefit — so low rates should be targeted.

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kWorkloads = 8;
constexpr size_t kQueries = 1000;

void Run() {
  PrintHeader("Sec. V-B: effect of random optimizer invocations (Q5)");
  std::printf("%zu workloads x %zu queries, d = 0.2, gamma = 0.8\n\n",
              kWorkloads, kQueries);
  Experiment exp("Q5");

  std::printf("%-12s %10s %10s %14s\n", "mean prob", "precision", "recall",
              "optimizer calls");
  PrintRule();
  for (double prob : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    MetricsAccumulator overall;
    size_t optimizer_calls = 0;
    for (size_t i = 0; i < kWorkloads; ++i) {
      TrajectoryConfig traj;
      traj.dimensions = exp.dims();
      traj.total_points = kQueries;
      traj.scatter = 0.01;
      Rng rng(700 + i);
      auto workload = RandomTrajectoriesWorkload(traj, &rng);

      OnlinePpcPredictor::Config cfg;
      cfg.predictor.dimensions = exp.dims();
      cfg.predictor.transform_count = 5;
      cfg.predictor.histogram_buckets = 40;
      cfg.predictor.radius = 0.2;
      cfg.predictor.confidence_threshold = 0.8;
      cfg.predictor.noise_fraction = 0.0005;
      cfg.negative_feedback = true;
      cfg.mean_invocation_probability = prob;
      cfg.seed = 800 + i;
      OnlinePpcPredictor online(cfg);
      auto outcome = RunOnlineWorkload(&online, workload, kQueries, exp);
      overall.Merge(outcome.overall);
      optimizer_calls += outcome.optimizer_calls;
    }
    std::printf("%-12.2f %10.3f %10.3f %14.1f\n", prob, overall.Precision(),
                overall.Recall(),
                static_cast<double>(optimizer_calls) / kWorkloads);
  }
  std::printf(
      "\nExpected shape (paper): precision creeps up with invocation\n"
      "probability (~+0.02 per +10%%) while optimizer calls grow — too many\n"
      "invocations wipe out the caching gain.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
