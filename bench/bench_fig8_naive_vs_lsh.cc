// Reproduces paper Fig. 8: precision and recall of NAIVE vs
// APPROXIMATE-LSH vs BASELINE as the sample size |X| grows, on a
// low-dimensional template (Q1, r=2) and a high-dimensional one (Q7, r=5).
// gamma = 0.7, d = 0.05 (paper Sec. V-A), grid budgets matched so that
// NAIVE's single grid gets t times the cells of each LSH grid.

#include <cstdio>

#include "bench_util.h"
#include "clustering/approximate_lsh_predictor.h"
#include "clustering/density_predictor.h"
#include "clustering/naive_grid_predictor.h"
#include "lsh/transform.h"

namespace ppc {
namespace bench {
namespace {

constexpr double kGamma = 0.7;
constexpr double kRadius = 0.05;
constexpr int kTransforms = 5;
constexpr int kBitsPerDim = 4;
constexpr size_t kTestSize = 1000;

void RunTemplate(const std::string& name) {
  Experiment exp(name);
  const int s = DefaultOutputDims(exp.dims());  // s = r
  uint64_t lsh_grid_cells = 1;
  for (int i = 0; i < s; ++i) lsh_grid_cells *= (1u << kBitsPerDim);
  const uint64_t naive_budget = lsh_grid_cells * kTransforms;

  std::printf("\n--- template %s (r = %d, s = %d) ---\n", name.c_str(),
              exp.dims(), s);
  std::printf("NAIVE b_g = %llu cells, A-LSH: %d grids x %llu cells\n\n",
              static_cast<unsigned long long>(naive_budget), kTransforms,
              static_cast<unsigned long long>(lsh_grid_cells));
  std::printf("%-8s | %9s %9s %9s | %9s %9s %9s\n", "|X|", "prec:BASE",
              "prec:NAIV", "prec:ALSH", "rec:BASE", "rec:NAIV", "rec:ALSH");
  PrintRule();

  for (size_t n : {200u, 400u, 800u, 1600u, 3200u, 6400u}) {
    Rng rng(31 + n);
    auto sample = exp.LabeledSample(n, &rng);
    auto test = UniformPlanSpaceSample(exp.dims(), kTestSize, &rng);

    DensityPredictor::Config bc;
    bc.radius = kRadius;
    bc.confidence_threshold = kGamma;
    DensityPredictor baseline(bc, sample);

    NaiveGridPredictor::Config nc;
    nc.dimensions = exp.dims();
    nc.bucket_budget = naive_budget;
    nc.radius = kRadius;
    nc.confidence_threshold = kGamma;
    NaiveGridPredictor naive(nc, sample);

    ApproximateLshPredictor::Config ac;
    ac.dimensions = exp.dims();
    ac.transform_count = kTransforms;
    ac.bits_per_dim = kBitsPerDim;
    ac.radius = kRadius;
    ac.confidence_threshold = kGamma;
    ApproximateLshPredictor lsh(ac, sample);

    const auto base_m = exp.Evaluate(baseline, test);
    const auto naive_m = exp.Evaluate(naive, test);
    const auto lsh_m = exp.Evaluate(lsh, test);
    std::printf("%-8zu | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n", n,
                base_m.Precision(), naive_m.Precision(), lsh_m.Precision(),
                base_m.Recall(), naive_m.Recall(), lsh_m.Recall());
  }
}

void Run() {
  PrintHeader("Fig. 8: NAIVE vs APPROXIMATE-LSH vs BASELINE across |X|");
  std::printf("gamma = %.2f, d = %.2f\n", kGamma, kRadius);
  RunTemplate("Q1");
  RunTemplate("Q7");
  std::printf(
      "\nExpected shape (paper): on the low-dimensional template the three\n"
      "are close; on the high-dimensional one NAIVE's precision collapses\n"
      "while APPROXIMATE-LSH stays near BASELINE at reduced recall.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
