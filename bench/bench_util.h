#ifndef PPC_BENCH_BENCH_UTIL_H_
#define PPC_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clustering/predictor.h"
#include "common/math_utils.h"
#include "ppc/metrics_registry.h"
#include "ppc/online_predictor.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_evaluator.h"
#include "ppc/metrics.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"
#include "workload/workload_generator.h"

namespace ppc {
namespace bench {

/// Shared TPC-H catalog for the experiment harnesses (scale 0.002, the
/// same configuration the unit tests use; plan-space *shape* is what the
/// experiments measure and it is scale-invariant).
inline const Catalog& BenchCatalog() {
  static const Catalog* catalog = [] {
    TpchConfig cfg;
    cfg.scale_factor = 0.002;
    cfg.seed = 42;
    return BuildTpchCatalog(cfg).release();
  }();
  return *catalog;
}

/// One experiment context: a query template bound to the optimizer, acting
/// as the ground-truth oracle for the plan space (the paper's "probing the
/// optimizer").
class Experiment {
 public:
  explicit Experiment(const std::string& template_name,
                      CostModelParams cost_params = CostModelParams())
      : optimizer_(&BenchCatalog(), cost_params),
        tmpl_(EvaluationTemplate(template_name)) {
    auto prep = optimizer_.Prepare(tmpl_);
    PPC_CHECK_MSG(prep.ok(), prep.status().ToString().c_str());
    prep_ = std::move(prep).value();
  }

  const QueryTemplate& tmpl() const { return tmpl_; }
  const PreparedTemplate& prepared() const { return prep_; }
  const Optimizer& optimizer() const { return optimizer_; }
  int dims() const { return tmpl_.ParameterDegree(); }

  /// Ground truth at `point`: the optimizer's plan and its cost there.
  LabeledPoint Label(const std::vector<double>& point) const {
    auto result = optimizer_.Optimize(prep_, point);
    PPC_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    return LabeledPoint{point, result.value().plan_id,
                        result.value().estimated_cost};
  }

  /// Cost of executing `plan` at `point` (for suboptimality accounting).
  double CostOf(const PlanNode& plan, const std::vector<double>& point) const {
    auto eval =
        EvaluatePlanAtPoint(prep_, optimizer_.cost_model(), plan, point);
    PPC_CHECK_MSG(eval.ok(), eval.status().ToString().c_str());
    return eval.value().cost;
  }

  /// Uniformly sampled labeled points (the offline workflow's X / T sets).
  std::vector<LabeledPoint> LabeledSample(size_t count, Rng* rng) const {
    std::vector<LabeledPoint> points;
    points.reserve(count);
    for (auto& p : UniformPlanSpaceSample(dims(), count, rng)) {
      points.push_back(Label(p));
    }
    return points;
  }

  /// Precision/recall of `predictor` against the optimizer oracle over
  /// `test` points (paper Definition 4).
  MetricsAccumulator Evaluate(
      const PlanPredictor& predictor,
      const std::vector<std::vector<double>>& test) const {
    MetricsAccumulator metrics;
    for (const auto& x : test) {
      metrics.Record(predictor.Predict(x).plan, Label(x).plan);
    }
    return metrics;
  }

 private:
  Optimizer optimizer_;
  QueryTemplate tmpl_;
  PreparedTemplate prep_;
};

/// Outcome of driving an online predictor over a workload with the
/// optimizer as ground truth.
struct OnlineOutcome {
  /// True precision/recall of every query decision (NULL / optimizer
  /// fallback counts as a missed prediction, per Definition 4).
  MetricsAccumulator overall;
  /// Same, bucketed into consecutive windows (learning curves).
  std::vector<MetricsAccumulator> windows;
  size_t optimizer_calls = 0;
  size_t predictions_used = 0;
  size_t negative_feedback_events = 0;
  /// Binary cost-based estimator vs ground truth (the paper's ~72% claim).
  size_t estimator_agreements = 0;
  size_t estimator_total = 0;
  /// The online tracker's own windowed precision estimate, sampled at the
  /// end of each window (the signal Sec. IV-E uses for drift detection).
  std::vector<double> estimated_precision;
  /// Cumulative reset count sampled at the end of each window.
  std::vector<size_t> resets;
  /// Query index of every histogram reset, in order — drift experiments
  /// derive time-to-detect (first reset at or after the manipulation
  /// minus the manipulation index) from this.
  std::vector<size_t> reset_query_indices;

  double EstimatorAccuracy() const {
    return estimator_total == 0 ? 0.0
                                : static_cast<double>(estimator_agreements) /
                                      static_cast<double>(estimator_total);
  }
};

/// Drives `online` over `workload`, one query at a time, emulating the full
/// execution loop: predict -> (execute predicted plan | optimize) ->
/// negative feedback -> sample-pool insertion. `oracle_for(i)` supplies the
/// ground-truth experiment for query i, letting drift experiments swap the
/// underlying plan space mid-workload.
inline OnlineOutcome RunOnlineWorkload(
    OnlinePpcPredictor* online,
    const std::vector<std::vector<double>>& workload, size_t window_size,
    const std::function<const Experiment&(size_t)>& oracle_for) {
  OnlineOutcome outcome;
  std::map<PlanId, std::unique_ptr<PlanNode>> plan_trees;
  size_t seen_resets = online->reset_count();
  for (size_t i = 0; i < workload.size(); ++i) {
    const Experiment& exp = oracle_for(i);
    const std::vector<double>& x = workload[i];
    auto truth = exp.optimizer().Optimize(exp.prepared(), x);
    PPC_CHECK(truth.ok());
    const PlanId true_plan = truth.value().plan_id;
    const double true_cost = truth.value().estimated_cost;

    const size_t window = i / window_size;
    if (outcome.windows.size() <= window) {
      outcome.windows.resize(window + 1);
    }

    auto decision = online->Decide(x);
    const PlanNode* predicted_tree =
        decision.use_prediction
            ? plan_trees
                  .try_emplace(decision.prediction.plan, nullptr)
                  .first->second.get()
            : nullptr;
    if (decision.use_prediction && predicted_tree != nullptr) {
      ++outcome.predictions_used;
      outcome.overall.Record(decision.prediction.plan, true_plan);
      outcome.windows[window].Record(decision.prediction.plan, true_plan);
      const double actual_cost = exp.CostOf(*predicted_tree, x);
      const bool suspected = online->ReportPredictionExecuted(
          x, decision.prediction, actual_cost);
      // Score the binary estimator against ground truth (meaningful when
      // negative feedback is enabled; then `suspected` is exactly the
      // estimator's "wrong" verdict).
      ++outcome.estimator_total;
      const bool actually_wrong = decision.prediction.plan != true_plan;
      if (suspected == actually_wrong) ++outcome.estimator_agreements;
      if (suspected) {
        ++outcome.negative_feedback_events;
        ++outcome.optimizer_calls;
        online->ObserveOptimized({x, true_plan, true_cost});
        plan_trees[true_plan] = truth.value().plan->Clone();
      }
    } else {
      // NULL prediction, random invocation, or plan missing from the
      // cache: the optimizer answers the query.
      outcome.overall.Record(kNullPlanId, true_plan);
      outcome.windows[window].Record(kNullPlanId, true_plan);
      ++outcome.optimizer_calls;
      online->ObserveOptimized({x, true_plan, true_cost});
      plan_trees[true_plan] = truth.value().plan->Clone();
    }

    while (seen_resets < online->reset_count()) {
      outcome.reset_query_indices.push_back(i);
      ++seen_resets;
    }

    if ((i + 1) % window_size == 0 || i + 1 == workload.size()) {
      if (outcome.estimated_precision.size() <= window) {
        outcome.estimated_precision.resize(window + 1, 0.0);
        outcome.resets.resize(window + 1, 0);
      }
      outcome.estimated_precision[window] =
          online->tracker().TemplatePrecision();
      outcome.resets[window] = online->reset_count();
    }
  }
  return outcome;
}

/// Convenience overload with a fixed oracle.
inline OnlineOutcome RunOnlineWorkload(
    OnlinePpcPredictor* online,
    const std::vector<std::vector<double>>& workload, size_t window_size,
    const Experiment& exp) {
  return RunOnlineWorkload(online, workload, window_size,
                           [&exp](size_t) -> const Experiment& {
                             return exp;
                           });
}

/// Looks up one counter in a registry snapshot (0 when absent — counters
/// materialize lazily, so an instrument a phase never touched is simply
/// missing from the snapshot).
inline uint64_t CounterValue(const MetricsRegistry::Snapshot& snap,
                             const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

/// Probes the hypercube `center` ± `half_width` (every dimension) with
/// `rng`: 80 interior samples establish whether the box is single-plan
/// internally, then 150 ring samples (offsets up to ±0.25, at least one
/// coordinate outside the box) measure what fraction of the surrounding
/// territory belongs to *other* plans. Shared by the drift benches: a
/// drift box wants a majority-other ring (the generation-0 query radius
/// drowns it), a home box wants a mostly-same ring (the predictor
/// settles there).
struct BoxProbe {
  bool pure = false;
  double ring_other_fraction = 0.0;
};

inline BoxProbe ProbeBox(const Experiment& exp, double center,
                         double half_width, Rng* rng) {
  const size_t dims = static_cast<size_t>(exp.dims());
  BoxProbe probe;
  PlanId inner = kNullPlanId;
  probe.pure = true;
  for (int i = 0; i < 80 && probe.pure; ++i) {
    std::vector<double> x(dims);
    for (double& v : x) v = center + rng->Uniform(-half_width, half_width);
    const PlanId plan = exp.Label(x).plan;
    if (inner == kNullPlanId) inner = plan;
    probe.pure = plan == inner;
  }
  if (!probe.pure) return probe;
  int ring_total = 0, ring_other = 0;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> x(dims);
    bool outside = false;
    for (double& v : x) {
      const double d = rng->Uniform(-0.25, 0.25);
      if (std::abs(d) >= half_width + 0.01) outside = true;
      v = Clamp(center + d, 0.01, 0.99);
    }
    if (!outside) {
      --i;
      continue;
    }
    ++ring_total;
    if (exp.Label(x).plan != inner) ++ring_other;
  }
  probe.ring_other_fraction = ring_total == 0
                                  ? 0.0
                                  : static_cast<double>(ring_other) /
                                        static_cast<double>(ring_total);
  return probe;
}

/// Finds a drift box by probing the optimizer: a hypercube
/// c ± half_width that is single-plan *internally* while the
/// generation-0 query radius around it lands mostly in *other* plans'
/// territory. Single-plan-inside is the point of the scenario: a refit
/// that zooms the transform ranges onto the box resolves it completely,
/// while the generation-0 radius reaches past the box's plan boundary
/// and drowns it in the neighbors' density. Falls back to 0.5 if no
/// such box exists (the drift benches use templates known to have one).
inline double FindDriftBoxCenter(const Experiment& exp, double half_width) {
  Rng rng(99);
  for (double c = 0.08; c <= 0.93; c += 0.025) {
    const BoxProbe probe = ProbeBox(exp, c, half_width, &rng);
    if (probe.pure && probe.ring_other_fraction > 0.55) return c;
  }
  return 0.5;
}

/// Finds a pre-drift "home" hypercube: single-plan internally AND deep
/// inside its plan's territory (the generation-0 query radius around it
/// stays mostly same-plan), so the fixed predictor settles at a high
/// steady hit rate there — the baseline drift recovery is measured
/// against. Must also sit well away from the drift box.
inline double FindHomeCenter(const Experiment& exp, double box_center,
                             double half_width) {
  Rng rng(77);
  for (double c = 0.08; c <= 0.93; c += 0.025) {
    if (std::abs(c - box_center) < 0.3) continue;
    const BoxProbe probe = ProbeBox(exp, c, half_width, &rng);
    if (probe.pure && probe.ring_other_fraction < 0.3) return c;
  }
  return Clamp(box_center + 0.35, 0.05, 0.95);
}

/// Prints a header in the format the harnesses share.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------\n");
}

/// Writes one machine-readable result file, BENCH_<name>.json, into the
/// working directory. `body` must be the members of a JSON object, without
/// the surrounding braces; a "bench" field is prepended. scripts/check.sh
/// validates every emitted file with a real JSON parser.
inline void WriteBenchJson(const std::string& name, const std::string& body) {
  const std::string path = "BENCH_" + name + ".json";
  FILE* json = std::fopen(path.c_str(), "w");
  if (json == nullptr) {
    std::printf("warning: could not write %s\n", path.c_str());
    return;
  }
  std::string header = "{\"bench\": ";
  AppendJsonString(name, &header);
  std::fprintf(json, "%s,\n%s\n}\n", header.c_str(), body.c_str());
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

/// The per-template health block of OnlinePpcPredictor, as a JSON object —
/// the same fields PpcFramework::MetricsSnapshot() exports per template.
inline std::string OnlineStatsJson(const OnlinePpcPredictor& online) {
  const OnlinePpcPredictor::Stats s = online.GetStats();
  std::string out = "{\"precision\": " + JsonNumber(s.precision);
  out += ", \"recall\": " + JsonNumber(s.recall);
  out += ", \"beta\": " + JsonNumber(s.beta);
  out += ", \"resets\": " + std::to_string(s.resets);
  out += ", \"random_invocations\": " + std::to_string(s.random_invocations);
  out += ", \"optimizer_insertions\": " +
         std::to_string(s.optimizer_insertions);
  out += ", \"positive_feedback_insertions\": " +
         std::to_string(s.positive_feedback_insertions);
  out += ", \"feedback_positive\": " + std::to_string(s.feedback_positive);
  out += ", \"feedback_negative\": " + std::to_string(s.feedback_negative);
  out += "}";
  return out;
}

}  // namespace bench
}  // namespace ppc

#endif  // PPC_BENCH_BENCH_UTIL_H_
