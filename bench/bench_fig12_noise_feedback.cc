// Reproduces paper Fig. 12: the effect of noise elimination and negative
// feedback on online precision over time. Four variants of
// ONLINE-APPROXIMATE-LSH-HISTOGRAMS run on the same workloads:
// neither, noise elimination only, negative feedback only, both.

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kWorkloads = 10;
constexpr size_t kQueries = 1000;
constexpr size_t kWindow = 200;

OnlinePpcPredictor::Config Variant(int dims, bool noise_elim,
                                   bool negative_feedback, uint64_t seed) {
  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = dims;
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = 0.1;
  cfg.predictor.confidence_threshold = 0.8;
  cfg.predictor.noise_fraction = noise_elim ? 0.002 : 0.0;
  cfg.predictor.seed = seed;
  cfg.negative_feedback = negative_feedback;
  cfg.mean_invocation_probability = 0.0;
  cfg.estimator_window = 100;
  return cfg;
}

void Run() {
  PrintHeader("Fig. 12: noise elimination & negative feedback (Q5)");
  std::printf("%zu workloads x %zu queries, windows of %zu, d = 0.1, "
              "gamma = 0.8\n\n",
              kWorkloads, kQueries, kWindow);
  Experiment exp("Q5");

  struct VariantSpec {
    const char* name;
    bool noise_elim;
    bool negative_feedback;
  };
  const VariantSpec variants[] = {
      {"base (neither)", false, false},
      {"+noise elimination", true, false},
      {"+negative feedback", false, true},
      {"+both", true, true},
  };

  const size_t num_windows = kQueries / kWindow;
  std::printf("%-22s", "precision per window");
  for (size_t w = 0; w < num_windows; ++w) {
    std::printf("   w%-6zu", w);
  }
  std::printf("%9s %9s\n", "overall", "recall");
  PrintRule();

  for (const VariantSpec& variant : variants) {
    std::vector<MetricsAccumulator> windows(num_windows);
    MetricsAccumulator overall;
    for (size_t i = 0; i < kWorkloads; ++i) {
      TrajectoryConfig traj;
      traj.dimensions = exp.dims();
      traj.total_points = kQueries;
      traj.scatter = 0.02;
      Rng rng(500 + i);
      auto workload = RandomTrajectoriesWorkload(traj, &rng);
      OnlinePpcPredictor online(Variant(exp.dims(), variant.noise_elim,
                                        variant.negative_feedback, 600 + i));
      auto outcome = RunOnlineWorkload(&online, workload, kWindow, exp);
      for (size_t w = 0; w < num_windows && w < outcome.windows.size();
           ++w) {
        windows[w].Merge(outcome.windows[w]);
      }
      overall.Merge(outcome.overall);
    }
    std::printf("%-22s", variant.name);
    for (const auto& w : windows) std::printf("   %6.3f", w.Precision());
    std::printf("%9.3f %9.3f\n", overall.Precision(), overall.Recall());
  }
  std::printf(
      "\nExpected shape (paper): without noise elimination precision drifts\n"
      "down as false bucket co-residents accumulate; with it, precision\n"
      "holds steady; negative feedback improves precision (and can help\n"
      "recall) by erasing support for mispredicted plans.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
