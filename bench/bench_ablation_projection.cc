// Ablation (DESIGN.md): the projection dimensionality s of the randomized
// transforms. The paper prescribes s = r at low dimensions and s << r when
// dimensionality reduction is needed; this sweep quantifies the trade-off
// on a high-dimensional template in the online (trajectory) regime, where
// the predictor actually operates.

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 1000;
constexpr size_t kWorkloads = 5;

void Run() {
  PrintHeader("Ablation: projection dimensionality s (Q7, r = 5, online)");
  std::printf("%zu workloads x %zu queries, t = 5, b_h = 40, gamma = 0.8, "
              "d = 0.2, r_d = 0.01\n\n",
              kWorkloads, kQueries);
  Experiment exp("Q7");

  std::printf("%-6s %12s %12s %16s\n", "s", "precision", "recall",
              "optimizer calls");
  PrintRule();
  for (int s : {1, 2, 3, 4, 5}) {
    MetricsAccumulator overall;
    size_t optimizer_calls = 0;
    for (size_t i = 0; i < kWorkloads; ++i) {
      TrajectoryConfig traj;
      traj.dimensions = exp.dims();
      traj.total_points = kQueries;
      traj.scatter = 0.01;
      Rng rng(170 + i);
      auto workload = RandomTrajectoriesWorkload(traj, &rng);

      OnlinePpcPredictor::Config cfg;
      cfg.predictor.dimensions = exp.dims();
      cfg.predictor.output_dims = s;
      cfg.predictor.transform_count = 5;
      cfg.predictor.histogram_buckets = 40;
      cfg.predictor.radius = 0.2;
      cfg.predictor.confidence_threshold = 0.8;
      cfg.predictor.noise_fraction = 0.0005;
      cfg.negative_feedback = true;
      cfg.seed = 180 + i;
      OnlinePpcPredictor online(cfg);
      auto outcome = RunOnlineWorkload(&online, workload, kQueries, exp);
      overall.Merge(outcome.overall);
      optimizer_calls += outcome.optimizer_calls;
    }
    std::printf("%-6d %12.3f %12.3f %16.1f\n", s, overall.Precision(),
                overall.Recall(),
                static_cast<double>(optimizer_calls) / kWorkloads);
  }
  std::printf(
      "\nExpected: small s collapses distant plan regions onto each other\n"
      "(projection collisions), hurting precision and recall; s = r keeps\n"
      "full fidelity at identical histogram space (b_h is fixed).\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
