// Ablation (DESIGN.md): the streaming histogram's bucket-merge policy.
// The paper relies on "standard histogram construction techniques that
// choose boundaries to minimize estimation error"; this sweep compares the
// min-variance-increase merge against nearest-centroid and equi-width in
// the online (trajectory) regime under a tight bucket budget.

#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 1000;
constexpr size_t kWorkloads = 8;
constexpr size_t kBuckets = 10;

void Run() {
  PrintHeader("Ablation: histogram merge policy (Q5, online)");
  std::printf("%zu workloads x %zu queries, t = 5, b_h = %zu (tight budget "
              "stresses merging), gamma = 0.8, d = 0.2\n\n",
              kWorkloads, kQueries, kBuckets);
  Experiment exp("Q5");

  struct PolicySpec {
    const char* name;
    StreamingHistogram::MergePolicy policy;
  };
  const PolicySpec policies[] = {
      {"min-variance-increase",
       StreamingHistogram::MergePolicy::kMinVarianceIncrease},
      {"nearest-centroid", StreamingHistogram::MergePolicy::kNearestCentroid},
      {"equi-width", StreamingHistogram::MergePolicy::kEquiWidth},
  };

  std::printf("%-24s %12s %12s\n", "merge policy", "precision", "recall");
  PrintRule();
  for (const PolicySpec& spec : policies) {
    MetricsAccumulator overall;
    for (size_t i = 0; i < kWorkloads; ++i) {
      TrajectoryConfig traj;
      traj.dimensions = exp.dims();
      traj.total_points = kQueries;
      traj.scatter = 0.01;
      Rng rng(190 + i);
      auto workload = RandomTrajectoriesWorkload(traj, &rng);

      OnlinePpcPredictor::Config cfg;
      cfg.predictor.dimensions = exp.dims();
      cfg.predictor.transform_count = 5;
      cfg.predictor.histogram_buckets = kBuckets;
      cfg.predictor.radius = 0.2;
      cfg.predictor.confidence_threshold = 0.8;
      cfg.predictor.noise_fraction = 0.0005;
      cfg.predictor.merge_policy = spec.policy;
      cfg.negative_feedback = true;
      cfg.seed = 200 + i;
      OnlinePpcPredictor online(cfg);
      auto outcome = RunOnlineWorkload(&online, workload, kQueries, exp);
      overall.Merge(outcome.overall);
    }
    std::printf("%-24s %12.3f %12.3f\n", spec.name, overall.Precision(),
                overall.Recall());
  }
  std::printf(
      "\nExpected: differences are modest in the trajectory regime (local\n"
      "densities dominate); error-aware merging matters most for offline\n"
      "summaries of widely-spread samples. No policy should degrade\n"
      "precision below the others by a wide margin.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
