// Extension bench (paper Sec. VII future work): modeling system context as
// an optimizer parameter. The workload's memory pressure drifts over time
// (a slow random walk), moving plan boundaries. Two online predictors
// compete:
//
//   context-blind : the paper's baseline — r plan-space dimensions; the
//                   context shifts the plan space under the predictor.
//   context-aware : r + 1 dimensions, memory pressure appended as an extra
//                   coordinate, so context-dependent plan choices separate
//                   into distinct clusters.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "optimizer/contextual_optimizer.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 2000;
constexpr size_t kWindow = 500;

struct Outcome {
  MetricsAccumulator metrics;
  size_t optimizer_calls = 0;
  double suboptimality_sum = 0.0;
  size_t executed = 0;
};

OnlinePpcPredictor::Config MakeConfig(int dims, uint64_t seed) {
  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = dims;
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = 0.2;
  cfg.predictor.confidence_threshold = 0.8;
  cfg.predictor.noise_fraction = 0.0005;
  cfg.negative_feedback = true;
  cfg.seed = seed;
  return cfg;
}

/// Runs one predictor over the workload; `context_aware` selects whether
/// the predictor sees the extended (r+1)-dim point or just selectivities.
Outcome Drive(const ContextualOptimizer& optimizer,
              const PreparedTemplate& prep,
              const std::vector<std::vector<double>>& selectivity_points,
              const std::vector<double>& pressures, bool context_aware,
              uint64_t seed) {
  const int r = static_cast<int>(prep.tmpl->params.size());
  OnlinePpcPredictor online(MakeConfig(context_aware ? r + 1 : r, seed));
  std::map<PlanId, std::unique_ptr<PlanNode>> plan_trees;
  Outcome outcome;

  for (size_t i = 0; i < selectivity_points.size(); ++i) {
    std::vector<double> extended = selectivity_points[i];
    extended.push_back(pressures[i]);
    const std::vector<double>& predictor_point =
        context_aware ? extended : selectivity_points[i];

    auto truth = optimizer.OptimizeExtended(prep, extended);
    PPC_CHECK(truth.ok());
    const PlanId true_plan = truth.value().plan_id;
    const double true_cost = truth.value().estimated_cost;

    auto decision = online.Decide(predictor_point);
    const PlanNode* tree =
        decision.use_prediction
            ? plan_trees.try_emplace(decision.prediction.plan, nullptr)
                  .first->second.get()
            : nullptr;
    if (decision.use_prediction && tree != nullptr) {
      outcome.metrics.Record(decision.prediction.plan, true_plan);
      auto actual = optimizer.CostAtExtended(prep, *tree, extended);
      PPC_CHECK(actual.ok());
      outcome.suboptimality_sum +=
          true_cost > 0 ? actual.value() / true_cost : 1.0;
      ++outcome.executed;
      if (online.ReportPredictionExecuted(predictor_point,
                                          decision.prediction,
                                          actual.value())) {
        ++outcome.optimizer_calls;
        online.ObserveOptimized({predictor_point, true_plan, true_cost});
        plan_trees[true_plan] = truth.value().plan->Clone();
      }
    } else {
      outcome.metrics.Record(kNullPlanId, true_plan);
      outcome.suboptimality_sum += 1.0;
      ++outcome.executed;
      ++outcome.optimizer_calls;
      online.ObserveOptimized({predictor_point, true_plan, true_cost});
      plan_trees[true_plan] = truth.value().plan->Clone();
    }
  }
  return outcome;
}

void Run() {
  PrintHeader("Extension: system context as an optimizer parameter (Q5)");
  std::printf("%zu queries; memory pressure follows a slow random walk; "
              "d = 0.2, gamma = 0.8\n\n",
              kQueries);

  ContextualOptimizer optimizer(&BenchCatalog());
  const QueryTemplate tmpl = EvaluationTemplate("Q5");
  auto prep = optimizer.Prepare(tmpl);
  PPC_CHECK(prep.ok());

  // Workload: selectivity trajectories + a drifting context.
  TrajectoryConfig traj;
  traj.dimensions = tmpl.ParameterDegree();
  traj.total_points = kQueries;
  traj.scatter = 0.01;
  Rng rng(31337);
  auto points = RandomTrajectoriesWorkload(traj, &rng);
  std::vector<double> pressures(kQueries);
  double pressure = 0.8;
  for (size_t i = 0; i < kQueries; ++i) {
    pressure = Clamp(pressure + rng.Gaussian(0.0, 0.03), 0.0, 1.0);
    pressures[i] = pressure;
  }

  std::printf("%-16s %10s %10s %12s %14s\n", "predictor", "precision",
              "recall", "opt calls", "suboptimality");
  PrintRule();
  for (bool aware : {false, true}) {
    auto outcome = Drive(optimizer, prep.value(), points, pressures, aware,
                         aware ? 11 : 13);
    std::printf("%-16s %10.3f %10.3f %12zu %14.3f\n",
                aware ? "context-aware" : "context-blind",
                outcome.metrics.Precision(), outcome.metrics.Recall(),
                outcome.optimizer_calls,
                outcome.suboptimality_sum /
                    static_cast<double>(outcome.executed));
  }
  std::printf("%-16s window precision under drifting context:\n", "");
  for (bool aware : {false, true}) {
    // Re-run with window accounting for a per-phase view.
    const int r = tmpl.ParameterDegree();
    OnlinePpcPredictor online(MakeConfig(aware ? r + 1 : r, aware ? 11 : 13));
    std::map<PlanId, std::unique_ptr<PlanNode>> trees;
    std::vector<MetricsAccumulator> windows(kQueries / kWindow);
    for (size_t i = 0; i < kQueries; ++i) {
      std::vector<double> extended = points[i];
      extended.push_back(pressures[i]);
      const std::vector<double>& pp = aware ? extended : points[i];
      auto truth = optimizer.OptimizeExtended(prep.value(), extended);
      PPC_CHECK(truth.ok());
      auto decision = online.Decide(pp);
      const PlanNode* tree =
          decision.use_prediction
              ? trees.try_emplace(decision.prediction.plan, nullptr)
                    .first->second.get()
              : nullptr;
      MetricsAccumulator& w = windows[i / kWindow];
      if (decision.use_prediction && tree != nullptr) {
        w.Record(decision.prediction.plan, truth.value().plan_id);
        auto actual = optimizer.CostAtExtended(prep.value(), *tree, extended);
        PPC_CHECK(actual.ok());
        if (online.ReportPredictionExecuted(pp, decision.prediction,
                                            actual.value())) {
          online.ObserveOptimized({pp, truth.value().plan_id,
                                   truth.value().estimated_cost});
          trees[truth.value().plan_id] = truth.value().plan->Clone();
        }
      } else {
        w.Record(kNullPlanId, truth.value().plan_id);
        online.ObserveOptimized(
            {pp, truth.value().plan_id, truth.value().estimated_cost});
        trees[truth.value().plan_id] = truth.value().plan->Clone();
      }
    }
    std::printf("%-16s", aware ? "context-aware" : "context-blind");
    for (const auto& w : windows) {
      std::printf("  %.3f/%.3f", w.Precision(), w.Recall());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the context-aware predictor separates plan choices that\n"
      "the blind one conflates, yielding higher precision and lower\n"
      "suboptimality under a drifting context — the robustness the paper's\n"
      "future-work section anticipates.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
