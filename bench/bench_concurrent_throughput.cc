// Concurrent serving throughput of the PPC framework.
//
// Measures end-to-end queries/sec and predict-latency percentiles of
// PpcFramework::ExecuteAtPoint at 1/2/4/8 threads over a clustered
// multi-template workload (the serving regime the paper's Sec. VI runtime
// experiment studies single-threaded). Each thread count runs against a
// fresh framework, warmed with enough queries that the predictors serve
// mostly cache hits before timing starts.
//
// Prints a table and writes BENCH_concurrent_throughput.json next to the
// working directory for machine consumption. Expect the >1-thread speedup
// to track the machine's core count: on a single hardware thread the runs
// only demonstrate that concurrency adds no correctness cost.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsh/simd.h"
#include "ppc/ppc_framework.h"

namespace ppc {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kWarmupQueries = 1000;
constexpr size_t kTimedQueries = 8000;
const char* const kTemplates[] = {"Q1", "Q3", "Q5", "Q8"};

PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

struct Query {
  const char* tmpl;
  std::vector<double> point;
};

/// Clustered points per template (a few optimality regions each), round-
/// robin across templates, pre-generated so workload generation is not on
/// the timed path.
std::vector<Query> MakeWorkload(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(count);
  std::vector<int> dims;
  for (const char* name : kTemplates) {
    dims.push_back(EvaluationTemplate(name).ParameterDegree());
  }
  const std::vector<double> centers = {0.3, 0.5, 0.7};
  for (size_t i = 0; i < count; ++i) {
    const size_t t = i % (sizeof(kTemplates) / sizeof(kTemplates[0]));
    const double center = centers[(i / 7) % centers.size()];
    Query q;
    q.tmpl = kTemplates[t];
    q.point.resize(static_cast<size_t>(dims[t]));
    for (double& v : q.point) {
      v = std::clamp(center + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

struct RunResult {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double predict_p50_us = 0.0;
  double predict_p99_us = 0.0;
  /// Full observability snapshot of the run's framework (counters,
  /// latency histograms, cache stats, per-template predictor health).
  std::string metrics_json;
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const double idx = p * static_cast<double>(sorted_in_place->size() - 1);
  return (*sorted_in_place)[static_cast<size_t>(idx + 0.5)];
}

RunResult RunAtThreadCount(int threads, const std::vector<Query>& warmup,
                           const std::vector<Query>& timed) {
  PpcFramework framework(&BenchCatalog(), ServingConfig());
  for (const char* name : kTemplates) {
    const Status s = framework.RegisterTemplate(EvaluationTemplate(name));
    PPC_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  framework.Seal();

  for (const Query& q : warmup) {
    auto report = framework.ExecuteAtPoint(q.tmpl, q.point);
    PPC_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  }
  const uint64_t warm_hits = framework.plan_cache().hits();
  const uint64_t warm_misses = framework.plan_cache().misses();

  // Pre-split the timed workload: thread t serves queries t, t+T, t+2T...
  std::vector<std::vector<double>> predict_micros(
      static_cast<size_t>(threads));
  std::atomic<size_t> failures{0};
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& latencies = predict_micros[static_cast<size_t>(t)];
      latencies.reserve(timed.size() / static_cast<size_t>(threads) + 1);
      for (size_t i = static_cast<size_t>(t); i < timed.size();
           i += static_cast<size_t>(threads)) {
        auto report = framework.ExecuteAtPoint(timed[i].tmpl, timed[i].point);
        if (!report.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latencies.push_back(report.value().predict_micros);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  PPC_CHECK(failures.load() == 0);

  std::vector<double> all;
  for (const auto& per_thread : predict_micros) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  const uint64_t hits = framework.plan_cache().hits() - warm_hits;
  const uint64_t misses = framework.plan_cache().misses() - warm_misses;

  RunResult r;
  r.threads = threads;
  r.seconds = seconds;
  r.qps = static_cast<double>(timed.size()) / seconds;
  r.hit_rate = hits + misses > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(hits + misses)
                   : 0.0;
  r.predict_p50_us = Percentile(&all, 0.50);
  r.predict_p99_us = Percentile(&all, 0.99);
  r.metrics_json = framework.MetricsSnapshot().ToJson();
  return r;
}

void Run() {
  PrintHeader("Concurrent serving throughput (4 templates, clustered)");
  std::printf("hardware threads: %u; %zu warmup + %zu timed queries/run\n",
              std::thread::hardware_concurrency(), kWarmupQueries,
              kTimedQueries);
  PrintRule();
  std::printf("%8s %12s %10s %10s %14s %14s\n", "threads", "qps", "speedup",
              "hit rate", "predict p50us", "predict p99us");

  const std::vector<Query> warmup = MakeWorkload(kWarmupQueries, 11);
  const std::vector<Query> timed = MakeWorkload(kTimedQueries, 13);

  std::vector<RunResult> results;
  for (int threads : {1, 2, 4, 8}) {
    results.push_back(RunAtThreadCount(threads, warmup, timed));
    const RunResult& r = results.back();
    std::printf("%8d %12.0f %9.2fx %9.1f%% %14.2f %14.2f\n", r.threads,
                r.qps, r.qps / results.front().qps, 100.0 * r.hit_rate,
                r.predict_p50_us, r.predict_p99_us);
  }
  PrintRule();

  FILE* json = std::fopen("BENCH_concurrent_throughput.json", "w");
  if (json == nullptr) {
    std::printf("warning: could not write BENCH_concurrent_throughput.json\n");
    return;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"concurrent_throughput\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"timed_queries\": %zu,\n  \"runs\": [\n",
               std::thread::hardware_concurrency(),
               simd::TierName(simd::ActiveTier()), kTimedQueries);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"qps\": %.1f, \"speedup\": %.3f, "
                 "\"hit_rate\": %.4f, \"predict_p50_us\": %.3f, "
                 "\"predict_p99_us\": %.3f,\n     \"metrics\": %s}%s\n",
                 r.threads, r.qps, r.qps / results.front().qps, r.hit_rate,
                 r.predict_p50_us, r.predict_p99_us, r.metrics_json.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_concurrent_throughput.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
