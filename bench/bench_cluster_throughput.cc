// End-to-end throughput of the sharded serving tier (DESIGN.md §15).
//
// Spawns real processes — two ppc_server shards and one ppc_router —
// and drives the router over TCP, exercising the full scale-out story:
//
//   1. shard A starts and is warmed shard-direct with a clustered
//      workload over Q0..Q8;
//   2. a steady phase measures routed throughput with A alone on the
//      ring;
//   3. shard B starts with --warm-start-from=A, pulling A's predictor
//      snapshot over the wire before it reports ready; an adoption
//      probe predicts the same points shard-direct against A and B and
//      requires byte-identical answers (B holds A's exact state), then
//      B joins the ring via a TOPOLOGY add;
//   4. a joined phase measures aggregate throughput and the per-shard
//      predict hit rate. Because B adopted A's state, the templates the
//      ring moved to B must predict as well as they did *on A in the
//      steady phase* — the bench fails if the joiner's hit rate trails
//      the steady-phase rate on its own templates by more than five
//      points (cold-learning would trail by far more).
//
// The gap is computed per-template against the steady baseline, not as
// leader-vs-joiner aggregates: per-template hit rates differ (template
// dimensionality 2..6 trains at different speeds from the same warm-up),
// and which templates land on which shard depends on the shards'
// ephemeral ports through the hash ring — aggregate-vs-aggregate would
// compare different template mixtures and flake on unlucky splits.
//
// Binary discovery: ../src/ppc_server and ../src/ppc_router relative to
// this binary, overridable via PPC_SERVER_BIN / PPC_ROUTER_BIN.
//
// Prints a table and writes BENCH_cluster_throughput.json (schema in
// EXPERIMENTS.md); scripts/check.sh runs it and validates the file.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/errno_util.h"
#include "server/client.h"
#include "server/hash_ring.h"
#include "server/wire_protocol.h"

namespace ppc {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

const char* const kTemplates[] = {"Q0", "Q1", "Q2", "Q3", "Q4",
                                  "Q5", "Q6", "Q7", "Q8"};
constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);
constexpr size_t kWarmupPerTemplate = 120;
constexpr int kClientThreads = 3;
constexpr size_t kSteadyPerClient = 1200;
constexpr size_t kJoinedPerClient = 1800;
/// Shard-direct probe points per template for the adoption-equality
/// check (leader and joiner must answer each one identically).
constexpr size_t kAdoptionProbesPerTemplate = 30;
/// 70/30 predict/execute mix: predicts measure the hit rate, executes
/// keep the shards learning like a live system.
constexpr double kPredictFraction = 0.7;
const std::vector<double> kCenters = {0.3, 0.5, 0.7};

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------
// Child-process plumbing.
// ---------------------------------------------------------------------

/// Directory holding this bench binary, via /proc/self/exe.
std::string SelfDirectory() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  PPC_CHECK_MSG(n > 0, "readlink(/proc/self/exe) failed");
  buffer[n] = '\0';
  std::string path(buffer);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BinaryPath(const char* env_override, const char* relative) {
  const char* overridden = std::getenv(env_override);
  if (overridden != nullptr && overridden[0] != '\0') return overridden;
  return SelfDirectory() + relative;
}

/// One spawned shard/router. Its stdout is piped back so the parent can
/// parse the `LISTENING <port>` readiness line instead of sleeping.
struct ChildProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  ~ChildProcess() { Terminate(); }

  void Terminate() {
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

/// fork/exec `binary` with `args`, then block until it prints
/// `LISTENING <port>`. Aborts the bench when the child dies first (its
/// stderr goes to ours, so the cause is on the terminal).
void Spawn(const std::string& binary, const std::vector<std::string>& args,
           ChildProcess* child) {
  int pipe_fds[2];
  PPC_CHECK_MSG(::pipe(pipe_fds) == 0, "pipe failed");
  const pid_t pid = ::fork();
  PPC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "exec %s: %s\n", binary.c_str(),
                 ppc::ErrnoMessage(errno).c_str());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  child->pid = pid;
  child->stdout_fd = pipe_fds[0];

  std::string line;
  char byte;
  while (true) {
    const ssize_t n = ::read(pipe_fds[0], &byte, 1);
    if (n <= 0) {
      std::fprintf(stderr, "child %s exited before LISTENING\n",
                   binary.c_str());
      PPC_CHECK_MSG(false, "child process failed to start");
    }
    if (byte == '\n') {
      unsigned parsed = 0;
      if (std::sscanf(line.c_str(), "LISTENING %u", &parsed) == 1) {
        child->port = static_cast<uint16_t>(parsed);
        return;
      }
      line.clear();
      continue;
    }
    line.push_back(byte);
  }
}

// ---------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------

struct Query {
  size_t tmpl;  // index into kTemplates
  std::vector<double> point;
};

std::vector<int> TemplateDims() {
  std::vector<int> dims;
  for (const char* name : kTemplates) {
    dims.push_back(EvaluationTemplate(name).ParameterDegree());
  }
  return dims;
}

/// Clustered points round-robin across templates — the same shape the
/// leader was warmed with, so a confident predictor answers most of it.
std::vector<Query> MakeWorkload(size_t count, uint64_t seed) {
  Rng rng(seed);
  const std::vector<int> dims = TemplateDims();
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Query q;
    q.tmpl = i % kTemplateCount;
    const double center = kCenters[(i / 5) % kCenters.size()];
    q.point.resize(static_cast<size_t>(dims[q.tmpl]));
    for (double& v : q.point) {
      v = std::clamp(center + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

/// Per-shard-owner tallies for one phase. `hits` counts predicts the
/// predictor answered (non-null plan); abstentions and failures miss.
struct ShardTally {
  size_t predicts = 0;
  size_t hits = 0;
  size_t executes = 0;

  double hit_rate() const {
    return predicts == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(predicts);
  }
};

struct PhaseStats {
  double seconds = 0.0;
  size_t failures = 0;
  std::vector<double> predict_latencies_us;
  ShardTally per_shard[2];
  ShardTally per_template[kTemplateCount];

  size_t total() const {
    return per_shard[0].predicts + per_shard[0].executes +
           per_shard[1].predicts + per_shard[1].executes;
  }
  double qps() const {
    return seconds > 0.0 ? static_cast<double>(total()) / seconds : 0.0;
  }
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

/// Drives `per_client` queries from each of kClientThreads through the
/// router, attributing each query to its owning shard via `ring` (the
/// same pure placement function the router uses).
PhaseStats DrivePhase(uint16_t router_port, const HashRing& ring,
                      const std::vector<HashRing::Node>& shard_nodes,
                      size_t per_client, uint64_t seed) {
  std::vector<PhaseStats> per_thread(kClientThreads);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      PhaseStats& stats = per_thread[static_cast<size_t>(t)];
      PpcClient client;
      if (!client.Connect("127.0.0.1", router_port).ok()) {
        stats.failures += per_client;
        return;
      }
      Rng mix_rng(seed + static_cast<uint64_t>(t) * 7919);
      const std::vector<Query> workload = MakeWorkload(
          per_client, seed + 1000 + static_cast<uint64_t>(t));
      for (const Query& q : workload) {
        const char* name = kTemplates[q.tmpl];
        const auto owner = ring.Owner(name);
        size_t shard = 0;
        for (size_t s = 0; s < shard_nodes.size(); ++s) {
          if (owner.ok() && owner.value() == shard_nodes[s]) {
            shard = s;
            break;
          }
        }
        if (mix_rng.Uniform() < kPredictFraction) {
          const auto begin = Clock::now();
          auto predicted = client.Predict(name, q.point);
          const double us = SecondsSince(begin) * 1e6;
          if (!predicted.ok()) {
            ++stats.failures;
            continue;
          }
          stats.predict_latencies_us.push_back(us);
          ++stats.per_shard[shard].predicts;
          ++stats.per_template[q.tmpl].predicts;
          if (predicted.value().plan != kNullPlanId) {
            ++stats.per_shard[shard].hits;
            ++stats.per_template[q.tmpl].hits;
          }
        } else {
          if (client.Execute(name, q.point).ok()) {
            ++stats.per_shard[shard].executes;
            ++stats.per_template[q.tmpl].executes;
          } else {
            ++stats.failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  PhaseStats merged;
  merged.seconds = SecondsSince(start);
  for (const PhaseStats& stats : per_thread) {
    merged.failures += stats.failures;
    merged.predict_latencies_us.insert(merged.predict_latencies_us.end(),
                                       stats.predict_latencies_us.begin(),
                                       stats.predict_latencies_us.end());
    for (int s = 0; s < 2; ++s) {
      merged.per_shard[s].predicts += stats.per_shard[s].predicts;
      merged.per_shard[s].hits += stats.per_shard[s].hits;
      merged.per_shard[s].executes += stats.per_shard[s].executes;
    }
    for (size_t t = 0; t < kTemplateCount; ++t) {
      merged.per_template[t].predicts += stats.per_template[t].predicts;
      merged.per_template[t].hits += stats.per_template[t].hits;
      merged.per_template[t].executes += stats.per_template[t].executes;
    }
  }
  return merged;
}

/// Predicts the same fresh points shard-direct against both shards and
/// counts answers that differ. The joiner adopted the leader's exact
/// predictor state over the wire, and PREDICT is deterministic in that
/// state, so any mismatch means the snapshot path corrupted something —
/// this is the adoption claim checked exactly, with no sampling noise.
size_t AdoptionMismatches(uint16_t leader_port, uint16_t joiner_port,
                          size_t* probes_out) {
  PpcClient leader;
  PpcClient joiner;
  PPC_CHECK(leader.Connect("127.0.0.1", leader_port).ok());
  PPC_CHECK(joiner.Connect("127.0.0.1", joiner_port).ok());
  const std::vector<Query> probes =
      MakeWorkload(kAdoptionProbesPerTemplate * kTemplateCount, 59);
  size_t mismatches = 0;
  for (const Query& q : probes) {
    const char* name = kTemplates[q.tmpl];
    const auto from_leader = leader.Predict(name, q.point);
    const auto from_joiner = joiner.Predict(name, q.point);
    PPC_CHECK_MSG(from_leader.ok() && from_joiner.ok(),
                  "adoption probe PREDICT failed");
    if (from_leader.value().plan != from_joiner.value().plan) ++mismatches;
  }
  *probes_out = probes.size();
  return mismatches;
}

std::string TallyJson(const ShardTally& tally) {
  std::string out = "{\"predicts\": " + std::to_string(tally.predicts);
  out += ", \"hits\": " + std::to_string(tally.hits);
  out += ", \"executes\": " + std::to_string(tally.executes);
  out += ", \"hit_rate\": " + JsonNumber(tally.hit_rate());
  out += "}";
  return out;
}

std::string PhaseJson(PhaseStats* phase) {
  std::string out = "{\"seconds\": " + JsonNumber(phase->seconds);
  out += ", \"requests\": " + std::to_string(phase->total());
  out += ", \"qps\": " + JsonNumber(phase->qps());
  out += ", \"failures\": " + std::to_string(phase->failures);
  out += ", \"predict_p50_us\": " +
         JsonNumber(Percentile(&phase->predict_latencies_us, 0.50));
  out += ", \"predict_p95_us\": " +
         JsonNumber(Percentile(&phase->predict_latencies_us, 0.95));
  out += ", \"per_shard\": {\"leader\": " + TallyJson(phase->per_shard[0]);
  out += ", \"joiner\": " + TallyJson(phase->per_shard[1]);
  out += "}, \"per_template_hit_rate\": [";
  for (size_t t = 0; t < kTemplateCount; ++t) {
    if (t > 0) out += ", ";
    out += JsonNumber(phase->per_template[t].hit_rate());
  }
  out += "]}";
  return out;
}

void Run() {
  PrintHeader("Sharded cluster throughput (router + 2 ppc_server shards)");
  const std::string server_bin = BinaryPath("PPC_SERVER_BIN",
                                            "/../src/ppc_server");
  const std::string router_bin = BinaryPath("PPC_ROUTER_BIN",
                                            "/../src/ppc_router");

  // Shard A: the leader, warmed shard-direct.
  ChildProcess leader;
  Spawn(server_bin, {"--port=0"}, &leader);
  std::printf("leader shard on :%u\n", leader.port);
  {
    PpcClient warm;
    PPC_CHECK(warm.Connect("127.0.0.1", leader.port).ok());
    const std::vector<Query> warmup =
        MakeWorkload(kWarmupPerTemplate * kTemplateCount, 17);
    for (const Query& q : warmup) {
      const auto executed = warm.Execute(kTemplates[q.tmpl], q.point);
      PPC_CHECK_MSG(executed.ok(), executed.status().ToString().c_str());
    }
    std::printf("warmed leader with %zu executes over %zu templates\n",
                warmup.size(), kTemplateCount);
  }

  // Router fronting A alone.
  ChildProcess router;
  Spawn(router_bin,
        {"--port=0", "--backends=127.0.0.1:" + std::to_string(leader.port)},
        &router);
  std::printf("router on :%u\n", router.port);
  PrintRule();

  const HashRing::Node leader_node{"127.0.0.1", leader.port};
  HashRing single_ring;
  single_ring.Add(leader_node);
  PhaseStats steady =
      DrivePhase(router.port, single_ring, {leader_node, leader_node},
                 kSteadyPerClient, 23);
  std::printf("steady (1 shard): %.2fs, %zu requests, %.0f qps, "
              "hit rate %.3f, %zu failures\n",
              steady.seconds, steady.total(), steady.qps(),
              steady.per_shard[0].hit_rate(), steady.failures);

  // Shard B: warm-started from A over the wire. Its readiness line is
  // printed only after the snapshot is fetched, validated, and applied,
  // so LISTENING-time IS the warm-up-to-steady time.
  const auto join_start = Clock::now();
  ChildProcess joiner;
  Spawn(server_bin,
        {"--port=0",
         "--warm-start-from=127.0.0.1:" + std::to_string(leader.port)},
        &joiner);
  const double warmup_seconds = SecondsSince(join_start);
  std::printf("joiner shard on :%u (warm start + ready in %.3fs)\n",
              joiner.port, warmup_seconds);

  // Adoption check before any routed traffic reaches the joiner: both
  // shards hold identical state, so they must answer identically.
  size_t adoption_probes = 0;
  const size_t adoption_mismatches =
      AdoptionMismatches(leader.port, joiner.port, &adoption_probes);
  std::printf("adoption probe: %zu/%zu identical answers\n",
              adoption_probes - adoption_mismatches, adoption_probes);
  PPC_CHECK_MSG(adoption_mismatches == 0,
                "warm-started joiner answers differently from the leader "
                "— the snapshot path corrupted the adopted state");

  const HashRing::Node joiner_node{"127.0.0.1", joiner.port};
  {
    PpcClient admin;
    PPC_CHECK(admin.Connect("127.0.0.1", router.port).ok());
    const auto added =
        admin.Topology(wire::TopologyOp::kAdd, "127.0.0.1", joiner.port);
    PPC_CHECK_MSG(added.ok(), added.status().ToString().c_str());
    PPC_CHECK_MSG(added.value() == 2, "expected 2 backends after join");
  }

  HashRing joined_ring;
  joined_ring.Add(leader_node);
  joined_ring.Add(joiner_node);
  PhaseStats joined =
      DrivePhase(router.port, joined_ring, {leader_node, joiner_node},
                 kJoinedPerClient, 41);
  const double leader_rate = joined.per_shard[0].hit_rate();
  const double joiner_rate = joined.per_shard[1].hit_rate();
  std::printf("joined (2 shards): %.2fs, %zu requests, %.0f qps, "
              "%zu failures\n",
              joined.seconds, joined.total(), joined.qps(),
              joined.failures);
  std::printf("  leader: %zu predicts, hit rate %.3f\n",
              joined.per_shard[0].predicts, leader_rate);
  std::printf("  joiner: %zu predicts, hit rate %.3f\n",
              joined.per_shard[1].predicts, joiner_rate);
  PrintRule();

  PPC_CHECK_MSG(joined.failures == 0, "joined phase had failures");
  PPC_CHECK_MSG(joined.per_shard[1].predicts > 0,
                "ring placement sent the joiner no predicts");
  // The scale-out claim: a warm-started joiner serves its templates at
  // the rate the *leader* served those same templates in the steady
  // phase. A cold shard would sit near zero until its own executes
  // re-learned the workload. The baseline is per-template because hit
  // rates vary across templates and the ring's template split depends
  // on the shards' ephemeral ports — aggregate leader-vs-joiner would
  // compare different mixtures. In-phase executes keep training both
  // shards, so actual rates drift *above* the steady baseline; only a
  // genuine adoption failure pulls the joiner below it.
  double gap_vs_steady[2] = {0.0, 0.0};
  for (size_t s = 0; s < 2; ++s) {
    double expected_hits = 0.0;
    size_t predicts = 0;
    for (size_t t = 0; t < kTemplateCount; ++t) {
      const auto owner = joined_ring.Owner(kTemplates[t]);
      const HashRing::Node& node = s == 0 ? leader_node : joiner_node;
      if (!owner.ok() || !(owner.value() == node)) continue;
      expected_hits += steady.per_template[t].hit_rate() *
                       static_cast<double>(joined.per_template[t].predicts);
      predicts += joined.per_template[t].predicts;
    }
    const double expected_rate =
        predicts == 0 ? 0.0 : expected_hits / static_cast<double>(predicts);
    gap_vs_steady[s] = expected_rate - joined.per_shard[s].hit_rate();
  }
  std::printf("hit-rate gap vs steady baseline (same templates): "
              "leader %+.3f, joiner %+.3f\n",
              gap_vs_steady[0], gap_vs_steady[1]);
  PPC_CHECK_MSG(gap_vs_steady[1] <= 0.05,
                "warm-started joiner trails the steady-phase rate on its "
                "own templates by more than 5 points — warm start is not "
                "working");

  std::string body = "\"steady\": " + PhaseJson(&steady);
  body += ",\n\"joined\": " + PhaseJson(&joined);
  body += ",\n\"warmup_seconds\": " + JsonNumber(warmup_seconds);
  body += ",\n\"adoption\": {\"probes\": " +
          std::to_string(adoption_probes) +
          ", \"mismatches\": " + std::to_string(adoption_mismatches) + "}";
  body += ",\n\"hit_rate_gap\": " + JsonNumber(gap_vs_steady[1]);
  body += ",\n\"leader_gap_vs_steady\": " + JsonNumber(gap_vs_steady[0]);
  body += ",\n\"client_threads\": " + std::to_string(kClientThreads);
  body += ",\n\"templates\": " + std::to_string(kTemplateCount);
  WriteBenchJson("cluster_throughput", body);

  // Orderly teardown: router first (drains its backend connections),
  // then the shards. ~ChildProcess would do the same on scope exit.
  router.Terminate();
  joiner.Terminate();
  leader.Terminate();
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
