// Extension bench: statistics refresh as plan-space drift.
//
// The paper's Sec. V-D manipulates the plan space synthetically. In a live
// system the most common cause of exactly that event is mundane: data
// grows, ANALYZE runs, selectivity estimates shift, and the optimizer's
// plan choices move — under a predictor keyed to the *old* estimates.
//
// This bench grows every TPC-H table by ~2x mid-workload (new rows with a
// shifted date distribution, like a live system ingesting recent data),
// re-analyzes, and watches the online framework detect and absorb the
// shift via negative feedback and the precision estimator.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "optimizer/plan_evaluator.h"
#include "storage/tpch_generator.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 2000;
constexpr size_t kSwitchAt = 1000;
constexpr size_t kWindow = 100;

/// Appends `fraction` more rows to `table`, dates drawn from a shifted
/// Gaussian (recent data), other columns re-drawn like the generator's.
void GrowTable(Catalog* catalog, const std::string& table_name,
               int date_column, double fraction, Rng* rng) {
  auto table = catalog->GetMutableTable(table_name);
  PPC_CHECK(table.ok());
  Table* t = table.value();
  const size_t original_rows = t->row_count();
  const size_t new_rows =
      static_cast<size_t>(static_cast<double>(original_rows) * fraction);
  for (size_t i = 0; i < new_rows; ++i) {
    // Clone a random existing row, bump its key-ish first column past the
    // current maximum, and shift its date column toward "recent".
    const size_t src = rng->UniformInt(original_rows);
    std::vector<double> row(t->column_count());
    for (size_t c = 0; c < t->column_count(); ++c) {
      row[c] = t->column(c).AsDouble(src);
    }
    row[0] = static_cast<double>(original_rows + i + 1);
    if (date_column >= 0) {
      row[static_cast<size_t>(date_column)] =
          Clamp(rng->Gaussian(2100.0, 250.0), 0.0, 2557.0);
    }
    PPC_CHECK(t->AppendRow(row).ok());
  }
}

void Run() {
  PrintHeader("Extension: ANALYZE-induced plan-space drift (Q5)");
  std::printf("data grows ~2x with recent-shifted dates at query %zu, then "
              "ANALYZE;\nselectivity estimates and plan boundaries move "
              "under the predictor\n\n",
              kSwitchAt);

  // A private catalog (the shared bench catalog must stay immutable).
  TpchConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.seed = 42;
  auto catalog = BuildTpchCatalog(cfg);
  const QueryTemplate tmpl = EvaluationTemplate("Q5");

  Optimizer optimizer(catalog.get());
  auto prep = optimizer.Prepare(tmpl);
  PPC_CHECK(prep.ok());

  OnlinePpcPredictor::Config online_cfg;
  online_cfg.predictor.dimensions = tmpl.ParameterDegree();
  online_cfg.predictor.transform_count = 5;
  online_cfg.predictor.histogram_buckets = 40;
  online_cfg.predictor.radius = 0.2;
  online_cfg.predictor.confidence_threshold = 0.8;
  online_cfg.predictor.noise_fraction = 0.0005;
  online_cfg.negative_feedback = true;
  online_cfg.estimator_window = 100;
  online_cfg.reset_precision_threshold = 0.70;
  OnlinePpcPredictor online(online_cfg);

  TrajectoryConfig traj;
  traj.dimensions = tmpl.ParameterDegree();
  traj.total_points = kQueries;
  traj.scatter = 0.01;
  Rng rng(333);
  auto workload = RandomTrajectoriesWorkload(traj, &rng);

  std::map<PlanId, std::unique_ptr<PlanNode>> plan_trees;
  std::vector<MetricsAccumulator> windows(kQueries / kWindow);
  size_t feedback_events = 0;

  for (size_t i = 0; i < kQueries; ++i) {
    if (i == kSwitchAt) {
      Rng grow_rng(999);
      GrowTable(catalog.get(), "orders", 3, 1.0, &grow_rng);
      GrowTable(catalog.get(), "lineitem", 7, 1.0, &grow_rng);
      GrowTable(catalog.get(), "customer", 3, 1.0, &grow_rng);
      catalog->AnalyzeAll(64);
      // Statistics changed: row counts, NDVs, histograms. Re-prepare so
      // the optimizer sees them (a live system does this implicitly).
      prep = optimizer.Prepare(tmpl);
      PPC_CHECK(prep.ok());
    }
    const std::vector<double>& x = workload[i];
    auto truth = optimizer.Optimize(prep.value(), x);
    PPC_CHECK(truth.ok());
    MetricsAccumulator& w = windows[i / kWindow];

    auto decision = online.Decide(x);
    const PlanNode* tree =
        decision.use_prediction
            ? plan_trees.try_emplace(decision.prediction.plan, nullptr)
                  .first->second.get()
            : nullptr;
    if (decision.use_prediction && tree != nullptr) {
      w.Record(decision.prediction.plan, truth.value().plan_id);
      auto actual = EvaluatePlanAtPoint(prep.value(),
                                        optimizer.cost_model(), *tree, x);
      PPC_CHECK(actual.ok());
      if (online.ReportPredictionExecuted(x, decision.prediction,
                                          actual.value().cost)) {
        ++feedback_events;
        online.ObserveOptimized(
            {x, truth.value().plan_id, truth.value().estimated_cost});
        plan_trees[truth.value().plan_id] = truth.value().plan->Clone();
      }
    } else {
      w.Record(kNullPlanId, truth.value().plan_id);
      online.ObserveOptimized(
          {x, truth.value().plan_id, truth.value().estimated_cost});
      plan_trees[truth.value().plan_id] = truth.value().plan->Clone();
    }
  }

  std::printf("%-8s %12s %10s\n", "window", "true prec", "recall");
  PrintRule();
  for (size_t w = 0; w < windows.size(); ++w) {
    std::printf("%-8zu %12.3f %10.3f%s\n", w, windows[w].Precision(),
                windows[w].Recall(),
                w == kSwitchAt / kWindow ? "  <-- data grown + ANALYZE"
                                         : "");
  }
  std::printf("\nnegative-feedback re-optimizations: %zu\n", feedback_events);
  std::printf("histogram resets: %zu\n", online.reset_count());
  std::printf(
      "\nExpected: a precision/recall dent at the ANALYZE point, absorbed\n"
      "by negative feedback (and a reset if the shift is severe) — the\n"
      "operational face of the paper's Sec. V-D drift scenario.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
