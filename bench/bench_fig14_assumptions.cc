// Reproduces paper Fig. 14 (Appendix B): experimental validation of
// Assumption 1 (plan choice predictability) — the probability that two
// plan-space points within distance d share the same optimal plan,
// reported at the 95% one-sided lower confidence bound, for Q0..Q5.
// Also validates Assumption 2 (plan cost predictability): for same-plan
// pairs, the fraction whose costs agree within (1 + epsilon).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kTestPoints = 200;
constexpr size_t kPairsPerPoint = 50;  // paper uses 1000; 50 keeps runtime sane

/// A random point at distance <= d from `center`, clamped to [0,1]^r.
std::vector<double> NearbyPoint(const std::vector<double>& center, double d,
                                Rng* rng) {
  std::vector<double> direction(center.size());
  double norm = 0.0;
  for (double& v : direction) {
    v = rng->Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  const double radius = d * std::pow(rng->Uniform(), 1.0 / center.size());
  std::vector<double> point(center.size());
  for (size_t i = 0; i < center.size(); ++i) {
    point[i] = Clamp(center[i] + direction[i] / norm * radius, 0.0, 1.0);
  }
  return point;
}

void Run() {
  PrintHeader("Fig. 14 / Appendix B: validating Assumptions 1 and 2");
  std::printf("%zu test points x %zu pairs per point; 95%% one-sided lower "
              "bound\n\n",
              kTestPoints, kPairsPerPoint);

  const std::vector<double> distances = {0.01, 0.02, 0.04, 0.08, 0.16};
  std::printf("Assumption 1: Pr(plan(x1) == plan(x2) | dist <= d), lower "
              "bound\n");
  std::printf("%-10s", "template");
  for (double d : distances) std::printf("  d=%-6.2f", d);
  std::printf("\n");
  PrintRule();

  std::vector<std::vector<double>> same_plan_cost_ratio_ok(6);
  for (int q = 0; q <= 5; ++q) {
    const std::string name = "Q" + std::to_string(q);
    Experiment exp(name);
    Rng rng(1000 + static_cast<uint64_t>(q));
    std::printf("%-10s", name.c_str());
    for (double d : distances) {
      size_t same = 0, total = 0;
      size_t cost_ok = 0, cost_total = 0;
      for (size_t i = 0; i < kTestPoints; ++i) {
        std::vector<double> center(static_cast<size_t>(exp.dims()));
        for (double& v : center) v = rng.Uniform();
        const LabeledPoint base = exp.Label(center);
        for (size_t p = 0; p < kPairsPerPoint; ++p) {
          const LabeledPoint other =
              exp.Label(NearbyPoint(center, d, &rng));
          ++total;
          if (other.plan == base.plan) {
            ++same;
            ++cost_total;
            const double ratio =
                std::max(base.cost, other.cost) /
                std::max(1e-12, std::min(base.cost, other.cost));
            if (ratio <= 1.25) ++cost_ok;  // epsilon = 0.25
          }
        }
      }
      std::printf("  %8.3f", ProportionLowerBound95(same, total));
      if (d == 0.04) {
        same_plan_cost_ratio_ok[static_cast<size_t>(q)].push_back(
            cost_total > 0 ? static_cast<double>(cost_ok) / cost_total : 0.0);
      }
    }
    std::printf("\n");
  }

  std::printf("\nAssumption 2: fraction of same-plan pairs (d = 0.04) with "
              "cost within (1 + 0.25):\n");
  PrintRule();
  for (int q = 0; q <= 5; ++q) {
    std::printf("Q%-9d %8.3f\n", q,
                same_plan_cost_ratio_ok[static_cast<size_t>(q)].empty()
                    ? 0.0
                    : same_plan_cost_ratio_ok[static_cast<size_t>(q)][0]);
  }
  std::printf(
      "\nExpected shape (paper Fig. 14): probabilities near 1 at small d,\n"
      "decaying gently as d grows — the basis for density-based plan\n"
      "prediction.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
