// Reproduces paper Fig. 2: the plan diagram of query template Q1 over the
// selectivities of its two parameterized predicates (s_date, l_partkey).
// Each letter is a distinct optimal plan; the legend shows plan structure.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "plan/fingerprint.h"

namespace ppc {
namespace bench {
namespace {

constexpr int kGrid = 48;

void Run() {
  PrintHeader("Fig. 2: plan space of Q1 (x = sel(s_date), y = sel(l_partkey))");
  Experiment exp("Q1");
  std::printf("SQL: %s\n\n", exp.tmpl().ToSql().c_str());

  std::map<PlanId, char> symbol;
  std::map<PlanId, int> region_size;
  std::map<PlanId, std::string> plan_text;

  for (int y = kGrid - 1; y >= 0; --y) {
    for (int x = 0; x < kGrid; ++x) {
      const std::vector<double> point = {(x + 0.5) / kGrid,
                                         (y + 0.5) / kGrid};
      auto result = exp.optimizer().Optimize(exp.prepared(), point);
      PPC_CHECK(result.ok());
      const PlanId id = result.value().plan_id;
      if (symbol.find(id) == symbol.end()) {
        symbol[id] = static_cast<char>('A' + symbol.size());
        plan_text[id] = PrintPlan(*result.value().plan);
      }
      ++region_size[id];
      std::putchar(symbol[id]);
    }
    std::putchar('\n');
  }

  std::printf("\ndistinct plans on the %dx%d grid: %zu\n\n", kGrid, kGrid,
              symbol.size());
  std::printf("%-6s %-18s %-10s\n", "plan", "fingerprint", "area%");
  PrintRule();
  for (const auto& [id, sym] : symbol) {
    std::printf("%-6c %016llx %6.1f%%\n", sym,
                static_cast<unsigned long long>(id),
                100.0 * region_size[id] / (kGrid * kGrid));
  }
  std::printf("\nplan trees:\n");
  for (const auto& [id, sym] : symbol) {
    std::printf("\n[%c]\n%s", sym, plan_text[id].c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
