// Adversarial-drift recovery: retuning on vs. off (DESIGN.md §17).
//
// The workload is a concentration drift the fixed-transform predictor is
// resolution-bound against. Phase 1a spreads queries over the whole plan
// space, seeding every region's histograms with multi-plan density — the
// hostile background. Phase 1b settles into a "home" cluster where the
// predictor reaches a high steady hit rate: the pre-drift baseline. Then
// the drift: the workload jumps into a ~0.1-wide box (found by probing
// the optimizer) that is single-plan *internally* but whose generation-0
// query radius lands mostly in other plans' territory, so the phase-1a
// background drowns the box — mixed per-bucket densities, low
// confidence, NULLs, and a windowed-recall collapse the fixed predictor
// can only crawl out of as box observations slowly outvote the stale
// background. The adaptive retuner instead notices the recall collapse,
// re-fits the transform ranges to the retained recent points, back-fills
// the new generation from the reservoir — which by then holds the recent
// workload, not the stale background — and installs it via the warm
// handoff, recovering the hit rate almost immediately. The retune
// cooldown spans the warm-up phases, so both arms enter the drift at
// generation 0 and the comparison isolates the post-drift response.
//
// A prober thread hammers the read-only PREDICT path throughout the
// retuning-on arm: the zero-served-traffic-gap claim is that not one
// probe fails or observes a missing predictor across all generation
// handoffs. Reported in BENCH_drift_recovery.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/math_utils.h"
#include "ppc/ppc_framework.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kPhase1Uniform = 600;
constexpr size_t kPhase1 = 1400;  // uniform warm-up + home cluster
constexpr size_t kPhase2 = 1600;
constexpr size_t kWindow = 100;
constexpr double kBoxHalfWidth = 0.05;

PpcFramework::Config ArmConfig(bool retune) {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.2;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.0005;
  cfg.online.negative_feedback = true;
  cfg.online.cost_error_bound = 0.25;
  cfg.online.estimator_window = kWindow;
  cfg.plan_cache_capacity = 64;
  cfg.retune.enabled = retune;
  cfg.retune.precision_trigger = 0.75;
  cfg.retune.recall_trigger = 0.6;
  // A small reservoir turns over fast after the concentration drift, and
  // the aggressive quantile shaves the old regime's stragglers off the
  // fitted ranges — both keep the first post-drift refit from landing on
  // a home-cluster/box mixture and producing a blurry in-between
  // generation.
  cfg.retune.reservoir_capacity = 128;
  cfg.retune.min_reservoir_points = 64;
  // The warm-up phases have intrinsically low windowed recall (uniform
  // scatter) which would trip the trigger before there is any drift to
  // respond to. The cooldown covers them, so the first refit the
  // controller can possibly schedule is a genuine post-drift one.
  cfg.retune.cooldown_observations = kPhase1 - kWindow;
  cfg.retune.range_fit_quantile = 0.15;
  return cfg;
}

struct WindowPoint {
  double hit_rate = 0.0;
  uint32_t generation = 0;
};

struct ArmOutcome {
  std::vector<WindowPoint> windows;
  double pre_drift_hit_rate = 0.0;
  double post_drift_floor = 1.0;
  double final_hit_rate = 0.0;
  /// Queries after the drift until the windowed hit rate first returned
  /// to 90% of the pre-drift level; -1 = never within the workload.
  long recovery_queries = -1;
  uint64_t refits = 0;
  uint64_t generations = 0;
  uint64_t probe_count = 0;
  uint64_t probe_failures = 0;
};

ArmOutcome RunArm(const std::string& tmpl_name, double home_center,
                  double box_center, bool retune) {
  PpcFramework framework(&BenchCatalog(), ArmConfig(retune));
  const Status registered =
      framework.RegisterTemplate(EvaluationTemplate(tmpl_name));
  PPC_CHECK_MSG(registered.ok(), registered.ToString().c_str());
  framework.Seal();
  const size_t dims =
      static_cast<size_t>(EvaluationTemplate(tmpl_name).ParameterDegree());

  ArmOutcome outcome;

  // The zero-gap prober: a reader that must never see a failure or a
  // missing predictor, no matter how many handoffs land under it.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> probe_count{0};
  std::atomic<uint64_t> probe_failures{0};
  std::thread prober([&] {
    Rng rng(4242);
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<double> x(dims);
      for (double& v : x)
        v = box_center + rng.Uniform(-kBoxHalfWidth, kBoxHalfWidth);
      if (!framework.PredictAtPoint(tmpl_name, x).ok() ||
          framework.online_predictor(tmpl_name) == nullptr) {
        probe_failures.fetch_add(1, std::memory_order_relaxed);
      }
      probe_count.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  Rng rng(1891);
  size_t hits_in_window = 0, in_window = 0;
  auto close_window = [&] {
    WindowPoint point;
    point.hit_rate =
        in_window == 0 ? 0.0
                       : static_cast<double>(hits_in_window) /
                             static_cast<double>(in_window);
    const auto online = framework.online_predictor(tmpl_name);
    point.generation =
        online == nullptr ? 0 : online->predictor().transform_generation();
    outcome.windows.push_back(point);
    hits_in_window = 0;
    in_window = 0;
  };

  for (size_t i = 0; i < kPhase1 + kPhase2; ++i) {
    std::vector<double> x(dims);
    if (i < kPhase1Uniform) {
      for (double& v : x) v = rng.Uniform(0.02, 0.98);
    } else {
      const double center = i < kPhase1 ? home_center : box_center;
      for (double& v : x)
        v = center + rng.Uniform(-kBoxHalfWidth, kBoxHalfWidth);
    }
    auto report = framework.ExecuteAtPoint(tmpl_name, x);
    PPC_CHECK_MSG(report.ok(), report.status().ToString().c_str());
    // A "hit" is a served prediction that stuck: the plan cache answered
    // and negative feedback did not overturn it.
    const bool hit = report.value().used_prediction &&
                     !report.value().negative_feedback_triggered;
    hits_in_window += hit ? 1 : 0;
    ++in_window;
    if ((i + 1) % kWindow == 0) close_window();
  }
  if (in_window > 0) close_window();

  if (retune && framework.retune_controller() != nullptr) {
    framework.retune_controller()->WaitIdle();
  }
  stop.store(true, std::memory_order_release);
  prober.join();
  outcome.probe_count = probe_count.load();
  outcome.probe_failures = probe_failures.load();

  // Pre-drift baseline: the last 3 windows before the collapse.
  const size_t drift_window = kPhase1 / kWindow;
  double pre = 0.0;
  for (size_t w = drift_window - 3; w < drift_window; ++w)
    pre += outcome.windows[w].hit_rate;
  outcome.pre_drift_hit_rate = pre / 3.0;

  for (size_t w = drift_window; w < outcome.windows.size(); ++w) {
    outcome.post_drift_floor =
        std::min(outcome.post_drift_floor, outcome.windows[w].hit_rate);
  }
  // Recovery: first post-drift window back at 90% of the pre-drift rate,
  // skipping the drift window itself (it mixes both phases' behavior).
  for (size_t w = drift_window + 1; w < outcome.windows.size(); ++w) {
    if (outcome.windows[w].hit_rate >= 0.9 * outcome.pre_drift_hit_rate) {
      outcome.recovery_queries = static_cast<long>((w - drift_window) * kWindow);
      break;
    }
  }
  double fin = 0.0;
  for (size_t w = outcome.windows.size() - 3; w < outcome.windows.size(); ++w)
    fin += outcome.windows[w].hit_rate;
  outcome.final_hit_rate = fin / 3.0;

  const auto snap = framework.MetricsSnapshot();
  outcome.refits = CounterValue(snap.registry, "server.retune.refits");
  outcome.generations =
      CounterValue(snap.registry, "server.retune.generations");
  return outcome;
}

std::string ArmJson(const ArmOutcome& arm) {
  std::string out = "{\"pre_drift_hit_rate\": " +
                    JsonNumber(arm.pre_drift_hit_rate);
  out += ", \"post_drift_floor\": " + JsonNumber(arm.post_drift_floor);
  out += ", \"final_hit_rate\": " + JsonNumber(arm.final_hit_rate);
  out += ", \"recovery_queries\": " + std::to_string(arm.recovery_queries);
  out += ", \"refits\": " + std::to_string(arm.refits);
  out += ", \"generations\": " + std::to_string(arm.generations);
  out += ", \"probe_count\": " + std::to_string(arm.probe_count);
  out += ", \"probe_failures\": " + std::to_string(arm.probe_failures);
  out += ", \"hit_rate_trajectory\": [";
  for (size_t w = 0; w < arm.windows.size(); ++w) {
    if (w > 0) out += ", ";
    out += "{\"hit_rate\": " + JsonNumber(arm.windows[w].hit_rate);
    out += ", \"generation\": " + std::to_string(arm.windows[w].generation);
    out += "}";
  }
  out += "]}";
  return out;
}

void Run() {
  PrintHeader("Adaptive retuning: adversarial-drift recovery (Q5)");
  Experiment probe("Q5");
  const double box_center = FindDriftBoxCenter(probe, kBoxHalfWidth);
  const double home_center = FindHomeCenter(probe, box_center, kBoxHalfWidth);
  std::printf("drift box: center %.3f, half-width %.2f (single-plan "
              "inside; the generation-0 radius around it is majority "
              "other-plan territory); home cluster at %.3f\n",
              box_center, kBoxHalfWidth, home_center);

  const ArmOutcome off = RunArm("Q5", home_center, box_center,
                                /*retune=*/false);
  const ArmOutcome on = RunArm("Q5", home_center, box_center,
                               /*retune=*/true);

  std::printf("\n%-8s %14s %14s %10s %10s\n", "window", "hit(off)",
              "hit(on)", "gen(off)", "gen(on)");
  PrintRule();
  const size_t rows = std::max(off.windows.size(), on.windows.size());
  for (size_t w = 0; w < rows; ++w) {
    const char* marker = (w == kPhase1 / kWindow) ? "  <-- drift" : "";
    std::printf("%-8zu %14.3f %14.3f %10u %10u%s\n", w,
                w < off.windows.size() ? off.windows[w].hit_rate : 0.0,
                w < on.windows.size() ? on.windows[w].hit_rate : 0.0,
                w < off.windows.size() ? off.windows[w].generation : 0,
                w < on.windows.size() ? on.windows[w].generation : 0, marker);
  }
  std::printf("\npre-drift hit rate:  off %.3f   on %.3f\n",
              off.pre_drift_hit_rate, on.pre_drift_hit_rate);
  std::printf("post-drift floor:    off %.3f   on %.3f\n",
              off.post_drift_floor, on.post_drift_floor);
  std::printf("final hit rate:      off %.3f   on %.3f\n",
              off.final_hit_rate, on.final_hit_rate);
  std::printf("recovery (queries):  off %ld   on %ld   (-1 = never)\n",
              off.recovery_queries, on.recovery_queries);
  std::printf("refits: off %llu, on %llu; probe failures during handoffs: "
              "%llu of %llu probes\n",
              static_cast<unsigned long long>(off.refits),
              static_cast<unsigned long long>(on.refits),
              static_cast<unsigned long long>(on.probe_failures),
              static_cast<unsigned long long>(on.probe_count));

  std::string body = "  \"queries_phase1\": " + std::to_string(kPhase1);
  body += ",\n  \"queries_phase1_uniform\": " + std::to_string(kPhase1Uniform);
  body += ",\n  \"queries_phase2\": " + std::to_string(kPhase2);
  body += ",\n  \"window\": " + std::to_string(kWindow);
  body += ",\n  \"home_center\": " + JsonNumber(home_center);
  body += ",\n  \"box_center\": " + JsonNumber(box_center);
  body += ",\n  \"box_half_width\": " + JsonNumber(kBoxHalfWidth);
  body += ",\n  \"retune_off\": " + ArmJson(off);
  body += ",\n  \"retune_on\": " + ArmJson(on);
  body += ",\n  \"zero_serving_gap\": ";
  body += (on.probe_failures == 0 ? "true" : "false");
  WriteBenchJson("drift_recovery", body);
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
