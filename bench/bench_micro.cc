// Operation-level microbenchmarks (google-benchmark) backing Table I's
// complexity column: optimizer calls per template, predictor insert and
// predict latency, histogram range queries, LSH transform application,
// and Z-order interleaving.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "clustering/density_predictor.h"
#include "lsh/zorder.h"
#include "ppc/lsh_histograms_predictor.h"
#include "stats/streaming_histogram.h"

namespace ppc {
namespace bench {
namespace {

void BM_Optimize(benchmark::State& state, const char* name) {
  Experiment exp(name);
  Rng rng(1);
  std::vector<std::vector<double>> points =
      UniformPlanSpaceSample(exp.dims(), 64, &rng);
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        exp.optimizer().Optimize(exp.prepared(), points[i++ % points.size()]);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK_CAPTURE(BM_Optimize, Q1, "Q1");
BENCHMARK_CAPTURE(BM_Optimize, Q5, "Q5");
BENCHMARK_CAPTURE(BM_Optimize, Q8, "Q8");

void BM_BaselinePredict(benchmark::State& state) {
  Experiment exp("Q5");
  Rng rng(2);
  auto sample = exp.LabeledSample(static_cast<size_t>(state.range(0)), &rng);
  DensityPredictor::Config cfg;
  cfg.radius = 0.1;
  cfg.confidence_threshold = 0.7;
  DensityPredictor predictor(cfg, sample);
  auto test = UniformPlanSpaceSample(exp.dims(), 64, &rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Predict(test[i++ % test.size()]));
  }
}
BENCHMARK(BM_BaselinePredict)->Arg(400)->Arg(1600)->Arg(6400);

void BM_LshHistogramsPredict(benchmark::State& state) {
  Experiment exp("Q5");
  Rng rng(3);
  auto sample = exp.LabeledSample(static_cast<size_t>(state.range(0)), &rng);
  LshHistogramsPredictor::Config cfg;
  cfg.dimensions = exp.dims();
  cfg.transform_count = 5;
  cfg.histogram_buckets = 40;
  cfg.radius = 0.1;
  cfg.confidence_threshold = 0.7;
  LshHistogramsPredictor predictor(cfg, sample);
  auto test = UniformPlanSpaceSample(exp.dims(), 64, &rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Predict(test[i++ % test.size()]));
  }
}
BENCHMARK(BM_LshHistogramsPredict)->Arg(400)->Arg(1600)->Arg(6400);

void BM_LshHistogramsInsert(benchmark::State& state) {
  LshHistogramsPredictor::Config cfg;
  cfg.dimensions = 4;
  cfg.transform_count = 5;
  cfg.histogram_buckets = 40;
  LshHistogramsPredictor predictor(cfg);
  Rng rng(4);
  for (auto _ : state) {
    LabeledPoint p;
    p.coords = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    p.plan = 1 + rng.UniformInt(uint64_t{8});
    p.cost = rng.Uniform(1.0, 100.0);
    predictor.Insert(p);
  }
}
BENCHMARK(BM_LshHistogramsInsert);

void BM_StreamingHistogramRangeQuery(benchmark::State& state) {
  StreamingHistogram histogram(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    histogram.Insert(rng.Uniform(), rng.Uniform(1.0, 100.0));
  }
  for (auto _ : state) {
    const double lo = rng.Uniform() * 0.9;
    benchmark::DoNotOptimize(histogram.EstimateCount(lo, lo + 0.1));
  }
}
BENCHMARK(BM_StreamingHistogramRangeQuery)->Arg(40)->Arg(160);

void BM_TransformApply(benchmark::State& state) {
  TransformConfig cfg;
  cfg.input_dims = static_cast<int>(state.range(0));
  cfg.output_dims = DefaultOutputDims(cfg.input_dims);
  Rng rng(6);
  RandomizedTransform transform(cfg, &rng);
  std::vector<double> point(static_cast<size_t>(cfg.input_dims), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform.LinearizedPosition(point));
  }
}
BENCHMARK(BM_TransformApply)->Arg(2)->Arg(6);

void BM_ZOrderInterleave(benchmark::State& state) {
  ZOrderCurve curve(3, 10);
  std::vector<uint32_t> cells = {511, 277, 800};
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Interleave(cells));
  }
}
BENCHMARK(BM_ZOrderInterleave);

}  // namespace
}  // namespace bench
}  // namespace ppc

BENCHMARK_MAIN();
