// Reproduces paper Sec. V-D: handling changes in sampled plan spaces.
// Mid-way through the workload the plan space of the template is
// artificially manipulated (the cost model's page-cost ratio is perturbed,
// relocating plan optimality boundaries). The windowed precision estimator
// should drop shortly after the manipulation, triggering a histogram
// reset, after which precision recovers. Also measures the accuracy of the
// cost-based binary correctness estimator (paper: ~72% at epsilon = 0.25).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

namespace ppc {
namespace bench {
namespace {

constexpr size_t kQueries = 2000;
constexpr size_t kSwitchAt = 1000;
constexpr size_t kWindow = 100;

void Run() {
  PrintHeader("Sec. V-D: plan-space drift detection (Q5)");
  Experiment before("Q5");
  CostModelParams drifted;
  // A different I/O regime (e.g. the working set suddenly fits in the
  // buffer pool while CPU contention rises): random reads cheap,
  // sequential reads and hashing expensive — plan boundaries move
  // wholesale (~100% of points change their optimal plan).
  drifted.random_page_cost = 0.5;
  drifted.seq_page_cost = 4.0;
  drifted.hash_build_cost_per_row = 0.25;
  drifted.sort_cost_per_row_log = 0.002;
  drifted.cpu_operator_cost = 0.01;
  Experiment after("Q5", drifted);

  TrajectoryConfig traj;
  traj.dimensions = before.dims();
  traj.total_points = kQueries;
  traj.scatter = 0.01;
  Rng rng(911);
  auto workload = RandomTrajectoriesWorkload(traj, &rng);

  OnlinePpcPredictor::Config cfg;
  cfg.predictor.dimensions = before.dims();
  cfg.predictor.transform_count = 5;
  cfg.predictor.histogram_buckets = 40;
  cfg.predictor.radius = 0.2;
  cfg.predictor.confidence_threshold = 0.8;
  cfg.predictor.noise_fraction = 0.0005;
  cfg.negative_feedback = true;
  cfg.cost_error_bound = 0.25;
  cfg.estimator_window = 100;
  cfg.reset_precision_threshold = 0.70;
  OnlinePpcPredictor online(cfg);

  // Track windowed true precision and the online estimator's own view.
  auto outcome = RunOnlineWorkload(
      &online, workload, kWindow,
      [&](size_t i) -> const Experiment& {
        return i < kSwitchAt ? before : after;
      });

  std::printf("plan space manipulated at query %zu (I/O + CPU cost regime "
              "inverted; ~100%% of points change optimal plan)\n\n",
              kSwitchAt);
  std::printf("%-8s %12s %10s %12s %8s\n", "window", "true prec", "recall",
              "est. prec", "resets");
  PrintRule();
  for (size_t w = 0; w < outcome.windows.size(); ++w) {
    const char* marker =
        (w == kSwitchAt / kWindow) ? "  <-- manipulation" : "";
    std::printf("%-8zu %12.3f %10.3f %12.3f %8zu%s\n", w,
                outcome.windows[w].Precision(), outcome.windows[w].Recall(),
                w < outcome.estimated_precision.size()
                    ? outcome.estimated_precision[w]
                    : 0.0,
                w < outcome.resets.size() ? outcome.resets[w] : 0, marker);
  }
  // Time-to-detect: queries between the manipulation and the first
  // reset the degraded window triggered. Post-drift floor: the worst
  // windowed hit quality the predictor sank to before recovering.
  long time_to_detect = -1;
  for (size_t idx : outcome.reset_query_indices) {
    if (idx >= kSwitchAt) {
      time_to_detect = static_cast<long>(idx - kSwitchAt);
      break;
    }
  }
  double post_drift_precision_floor = 1.0;
  double post_drift_recall_floor = 1.0;
  for (size_t w = kSwitchAt / kWindow; w < outcome.windows.size(); ++w) {
    post_drift_precision_floor =
        std::min(post_drift_precision_floor, outcome.windows[w].Precision());
    post_drift_recall_floor =
        std::min(post_drift_recall_floor, outcome.windows[w].Recall());
  }

  std::printf("\nhistogram resets triggered: %zu\n", online.reset_count());
  std::printf("time to detect (queries from manipulation to first reset): "
              "%ld\n",
              time_to_detect);
  std::printf("post-drift floors: precision %.3f, recall %.3f\n",
              post_drift_precision_floor, post_drift_recall_floor);
  std::printf("negative-feedback re-optimizations: %zu\n",
              outcome.negative_feedback_events);
  std::printf("binary cost estimator accuracy: %.3f  (paper: ~0.72 at "
              "epsilon = 0.25)\n",
              outcome.EstimatorAccuracy());
  std::printf(
      "\nExpected shape (paper): a precision drop shortly after the\n"
      "manipulation, a reset, then recovery as the pool repopulates.\n");

  std::string body = "  \"queries\": " + std::to_string(kQueries);
  body += ",\n  \"switch_at\": " + std::to_string(kSwitchAt);
  body += ",\n  \"estimator_accuracy\": " +
          JsonNumber(outcome.EstimatorAccuracy());
  body += ",\n  \"negative_feedback_events\": " +
          std::to_string(outcome.negative_feedback_events);
  body += ",\n  \"time_to_detect_queries\": " + std::to_string(time_to_detect);
  body += ",\n  \"post_drift_precision_floor\": " +
          JsonNumber(post_drift_precision_floor);
  body += ",\n  \"post_drift_recall_floor\": " +
          JsonNumber(post_drift_recall_floor);
  body += ",\n  \"windows\": [";
  for (size_t w = 0; w < outcome.windows.size(); ++w) {
    if (w > 0) body += ", ";
    body += "{\"true_precision\": " + JsonNumber(outcome.windows[w].Precision());
    body += ", \"recall\": " + JsonNumber(outcome.windows[w].Recall());
    body += ", \"estimated_precision\": " +
            JsonNumber(w < outcome.estimated_precision.size()
                           ? outcome.estimated_precision[w]
                           : 0.0);
    body += ", \"resets\": " +
            std::to_string(w < outcome.resets.size() ? outcome.resets[w] : 0);
    body += "}";
  }
  body += "],\n  \"online\": " + OnlineStatsJson(online);
  WriteBenchJson("drift_detection", body);
}

}  // namespace
}  // namespace bench
}  // namespace ppc

int main() {
  ppc::bench::Run();
  return 0;
}
