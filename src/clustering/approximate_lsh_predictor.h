#ifndef PPC_CLUSTERING_APPROXIMATE_LSH_PREDICTOR_H_
#define PPC_CLUSTERING_APPROXIMATE_LSH_PREDICTOR_H_

#include <vector>

#include "clustering/predictor.h"
#include "lsh/grid.h"
#include "lsh/transform.h"

namespace ppc {

/// The APPROXIMATE-LSH algorithm (paper Sec. IV-B): t randomized
/// locality-preserving transformations map the plan space into t
/// intermediate s-dimensional spaces, each partitioned by a fixed grid.
/// Plan densities around a query point are estimated independently in each
/// intermediate space, and the *median* of the t estimates is used —
/// intersecting t randomly-oriented polygons approximates the circular
/// query region far better than one rigid grid. Space: t * n * b_g * 8
/// bytes (t times NAIVE).
class ApproximateLshPredictor : public PlanPredictor {
 public:
  struct Config {
    /// Plan-space dimensionality r.
    int dimensions = 2;
    /// Number of randomized transformations t.
    int transform_count = 5;
    /// Intermediate-space dimensionality s; <= 0 picks the paper default
    /// (s = r for r <= 3, else 3).
    int output_dims = 0;
    /// Grid resolution per axis as a power of two.
    int bits_per_dim = 5;
    /// Query radius d.
    double radius = 0.1;
    /// Confidence threshold gamma.
    double confidence_threshold = 0.7;
    uint64_t seed = 19;
  };

  explicit ApproximateLshPredictor(Config config);
  ApproximateLshPredictor(Config config,
                          const std::vector<LabeledPoint>& sample);

  Prediction Predict(const std::vector<double>& x) const override;
  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override;
  std::string Name() const override { return "APPROXIMATE-LSH"; }

  const TransformEnsemble& transforms() const { return transforms_; }

 private:
  Config config_;
  TransformEnsemble transforms_;
  std::vector<PlanGrid> grids_;  // one per transform
};

}  // namespace ppc

#endif  // PPC_CLUSTERING_APPROXIMATE_LSH_PREDICTOR_H_
