#ifndef PPC_CLUSTERING_PREDICTOR_H_
#define PPC_CLUSTERING_PREDICTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/fingerprint.h"

namespace ppc {

/// A labeled plan-space point: coordinates in [0,1]^r, the optimal plan at
/// those coordinates, and that plan's execution cost there (paper Sec. I:
/// "each plan space point is labeled with both the optimal query plan and
/// that plan's execution cost at that point").
struct LabeledPoint {
  std::vector<double> coords;
  PlanId plan = kNullPlanId;
  double cost = 0.0;
};

/// Output of a plan predictor: either a plan id with the confidence that
/// backed the decision, or NULL (kNullPlanId) when prediction is unsafe.
struct Prediction {
  PlanId plan = kNullPlanId;
  /// Confidence value sin(theta) in [0,1]; meaningful iff has_value().
  double confidence = 0.0;
  /// Estimated execution cost of the predicted plan near the query point
  /// (populated by the histogram-backed predictors; 0 when unavailable).
  double estimated_cost = 0.0;

  bool has_value() const { return plan != kNullPlanId; }
};

/// Interface shared by every plan-space clustering predictor in the paper:
/// the Section III candidates (k-means / single-linkage / density), the
/// Section IV BASELINE and its approximations (NAIVE, APPROXIMATE-LSH,
/// APPROXIMATE-LSH-HISTOGRAMS).
class PlanPredictor {
 public:
  virtual ~PlanPredictor() = default;

  /// Predicts the optimal plan at plan-space point `x`, or NULL.
  virtual Prediction Predict(const std::vector<double>& x) const = 0;

  /// Adds a labeled sample (online workflow). Predictors built from a
  /// fixed offline sample may keep this unimplemented-as-no-op only if
  /// documented; all predictors in this library support insertion.
  virtual void Insert(const LabeledPoint& point) = 0;

  /// Space consumption under the paper's Table I accounting.
  virtual uint64_t SpaceBytes() const = 0;

  /// Algorithm name as used in the paper ("BASELINE", "NAIVE", ...).
  virtual std::string Name() const = 0;
};

}  // namespace ppc

#endif  // PPC_CLUSTERING_PREDICTOR_H_
