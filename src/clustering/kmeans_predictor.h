#ifndef PPC_CLUSTERING_KMEANS_PREDICTOR_H_
#define PPC_CLUSTERING_KMEANS_PREDICTOR_H_

#include <map>
#include <vector>

#include "clustering/predictor.h"
#include "common/rng.h"

namespace ppc {

/// "K-Means Predict" (paper Sec. III-A a): sample points are grouped by
/// plan label; each group is independently clustered into c clusters with
/// k-means; a test point is assigned the plan of the nearest centroid, or
/// NULL if that centroid is farther than radius d.
///
/// Included as a Section III comparison baseline (Fig. 3); its centroid
/// model handles the non-convex optimality regions of real plan diagrams
/// poorly, which is the paper's argument for density-based clustering.
class KMeansPredictor : public PlanPredictor {
 public:
  struct Config {
    /// Clusters per plan group (the paper's c; Fig. 3 uses c = 40).
    int clusters_per_plan = 40;
    /// Maximum centroid distance d for a non-NULL prediction.
    double radius = 0.1;
    uint64_t seed = 11;
  };

  KMeansPredictor(Config config, std::vector<LabeledPoint> sample);

  Prediction Predict(const std::vector<double>& x) const override;
  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override;
  std::string Name() const override { return "KMEANS-PREDICT"; }

 private:
  void Rebuild() const;

  Config config_;
  std::vector<LabeledPoint> points_;
  mutable bool dirty_ = true;
  mutable Rng rng_;
  /// plan -> centroids of that plan's groups.
  mutable std::map<PlanId, std::vector<std::vector<double>>> centroids_;
};

}  // namespace ppc

#endif  // PPC_CLUSTERING_KMEANS_PREDICTOR_H_
