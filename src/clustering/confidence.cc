#include "clustering/confidence.h"

#include "common/math_utils.h"

namespace ppc {

double ConfidenceFromCounts(double max_count, double other_count) {
  if (max_count <= 0.0) return 0.0;
  if (other_count <= 0.0) return 1.0;
  if (max_count < other_count) return 0.0;
  const double minority_fraction = other_count / (max_count + other_count);
  // Chord distance for the minority segment; with minority_fraction <= 0.5
  // the distance is >= 0 and equals d*sin(theta) on the unit circle.
  const double h = ChordDistanceForAreaFraction(minority_fraction);
  return Clamp(h, 0.0, 1.0);
}

double ConfidenceFromTotalRatio(double total_over_max) {
  if (total_over_max < 1.0) return 0.0;
  // total = max + other => other/max = ratio - 1.
  const double max_count = 1.0;
  const double other_count = total_over_max - 1.0;
  return ConfidenceFromCounts(max_count, other_count);
}

}  // namespace ppc
