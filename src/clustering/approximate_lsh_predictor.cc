#include "clustering/approximate_lsh_predictor.h"

#include <algorithm>
#include <map>
#include <set>

#include "clustering/confidence.h"
#include "common/math_utils.h"

namespace ppc {

namespace {

TransformConfig MakeTransformConfig(
    const ApproximateLshPredictor::Config& config) {
  TransformConfig tc;
  tc.input_dims = config.dimensions;
  tc.output_dims = config.output_dims > 0
                       ? config.output_dims
                       : DefaultOutputDims(config.dimensions);
  tc.bits_per_dim = config.bits_per_dim;
  return tc;
}

}  // namespace

ApproximateLshPredictor::ApproximateLshPredictor(Config config)
    : config_(config),
      transforms_(MakeTransformConfig(config), config.transform_count,
                  config.seed) {
  grids_.reserve(transforms_.size());
  for (size_t i = 0; i < transforms_.size(); ++i) {
    const RandomizedTransform& t = transforms_[i];
    grids_.emplace_back(t.config().output_dims, t.curve().cells_per_dim(),
                        t.grid_lo(), t.grid_extent());
  }
}

ApproximateLshPredictor::ApproximateLshPredictor(
    Config config, const std::vector<LabeledPoint>& sample)
    : ApproximateLshPredictor(config) {
  for (const LabeledPoint& p : sample) Insert(p);
}

void ApproximateLshPredictor::Insert(const LabeledPoint& point) {
  for (size_t i = 0; i < transforms_.size(); ++i) {
    grids_[i].Insert(transforms_[i].Apply(point.coords), point.plan,
                     point.cost);
  }
}

Prediction ApproximateLshPredictor::Predict(
    const std::vector<double>& x) const {
  // Per-transform density estimates; the median over t is kept per plan.
  std::map<PlanId, std::vector<double>> counts;
  std::map<PlanId, std::vector<double>> costs;
  std::set<PlanId> plans;
  std::vector<std::map<PlanId, PlanAggregate>> per_transform;
  per_transform.reserve(transforms_.size());
  for (size_t i = 0; i < transforms_.size(); ++i) {
    // At minimum the containing cell is read ("the grid bucket that
    // contains x, and the neighboring buckets if necessary", Sec. IV-B):
    // a query ball smaller than a cell still gets cell-granular counts.
    const double half_cell =
        0.5 * transforms_[i].grid_extent() /
        static_cast<double>(transforms_[i].curve().cells_per_dim());
    const double scaled_radius = std::max(
        config_.radius * transforms_[i].distance_scale(), half_cell);
    per_transform.push_back(
        grids_[i].QueryBox(transforms_[i].Apply(x), scaled_radius));
    for (const auto& [plan, agg] : per_transform.back()) plans.insert(plan);
  }
  if (plans.empty()) return Prediction{};

  for (PlanId plan : plans) {
    for (const auto& result : per_transform) {
      auto it = result.find(plan);
      counts[plan].push_back(it == result.end() ? 0.0 : it->second.count);
      costs[plan].push_back(it == result.end() ? 0.0
                                               : it->second.AverageCost());
    }
  }

  double total = 0.0;
  PlanId max_plan = kNullPlanId;
  double max_count = 0.0;
  double max_cost = 0.0;
  for (PlanId plan : plans) {
    const double median_count = Median(counts[plan]);
    total += median_count;
    if (median_count > max_count) {
      max_count = median_count;
      max_plan = plan;
      max_cost = Median(costs[plan]);
    }
  }
  if (max_count <= 0.0) return Prediction{};

  const double confidence = ConfidenceFromCounts(max_count, total - max_count);
  if (confidence <= config_.confidence_threshold) return Prediction{};

  Prediction out;
  out.plan = max_plan;
  out.confidence = confidence;
  out.estimated_cost = max_cost;
  return out;
}

uint64_t ApproximateLshPredictor::SpaceBytes() const {
  uint64_t total = 0;
  for (const PlanGrid& grid : grids_) total += grid.SpaceBytes();
  return total;
}

}  // namespace ppc
