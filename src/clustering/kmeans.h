#ifndef PPC_CLUSTERING_KMEANS_H_
#define PPC_CLUSTERING_KMEANS_H_

#include <vector>

#include "common/rng.h"

namespace ppc {

/// Result of a k-means run: centroids and the assignment of each input
/// point to its centroid index.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<int> assignment;
};

/// Lloyd's algorithm with k-means++ seeding.
///
/// Clusters `points` (all of equal dimensionality) into at most `k`
/// clusters; fewer when there are fewer distinct points. Deterministic for
/// a fixed `rng` state. `max_iterations` bounds the Lloyd refinement.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng* rng, int max_iterations = 50);

}  // namespace ppc

#endif  // PPC_CLUSTERING_KMEANS_H_
