#include "clustering/density_predictor.h"

#include <map>

#include "clustering/confidence.h"
#include "common/math_utils.h"

namespace ppc {

DensityPredictor::DensityPredictor(Config config,
                                   std::vector<LabeledPoint> sample)
    : config_(config), points_(std::move(sample)) {}

Prediction DensityPredictor::Predict(const std::vector<double>& x) const {
  // Algorithm 1, lines 1-5: per-plan densities within radius d.
  const double radius2 = config_.radius * config_.radius;
  struct Agg {
    double count = 0.0;
    double cost_sum = 0.0;
  };
  std::map<PlanId, Agg> agg;
  for (const LabeledPoint& p : points_) {
    if (SquaredDistance(x, p.coords) <= radius2) {
      Agg& a = agg[p.plan];
      a.count += 1.0;
      a.cost_sum += p.cost;
    }
  }
  if (agg.empty()) return Prediction{};

  // Lines 6-11: total density and the max plan.
  double total = 0.0;
  PlanId max_plan = kNullPlanId;
  double max_count = 0.0;
  for (const auto& [plan, a] : agg) {
    total += a.count;
    if (a.count > max_count) {
      max_count = a.count;
      max_plan = plan;
    }
  }

  // Lines 12-16: confidence sanity check.
  const double confidence = ConfidenceFromCounts(max_count, total - max_count);
  if (confidence <= config_.confidence_threshold) return Prediction{};

  Prediction out;
  out.plan = max_plan;
  out.confidence = confidence;
  out.estimated_cost = agg[max_plan].cost_sum / max_count;
  return out;
}

void DensityPredictor::Insert(const LabeledPoint& point) {
  points_.push_back(point);
}

uint64_t DensityPredictor::SpaceBytes() const {
  const size_t dims = points_.empty() ? 0 : points_.front().coords.size();
  return points_.size() * (dims * 8 + 8 + 8);
}

}  // namespace ppc
