#include "clustering/naive_grid_predictor.h"

#include "clustering/confidence.h"

namespace ppc {

uint32_t CellsPerDimForBudget(uint64_t bucket_budget, int dimensions) {
  // The epsilon absorbs pow() rounding (e.g. 100^(1/2) = 9.999...).
  const double per_dim = std::pow(static_cast<double>(bucket_budget),
                                  1.0 / static_cast<double>(dimensions));
  return static_cast<uint32_t>(std::max(1.0, std::floor(per_dim + 1e-9)));
}

NaiveGridPredictor::NaiveGridPredictor(Config config)
    : config_(config),
      grid_(config.dimensions,
            CellsPerDimForBudget(config.bucket_budget, config.dimensions),
            /*lo=*/0.0, /*extent=*/1.0) {}

NaiveGridPredictor::NaiveGridPredictor(Config config,
                                       const std::vector<LabeledPoint>& sample)
    : NaiveGridPredictor(config) {
  for (const LabeledPoint& p : sample) Insert(p);
}

void NaiveGridPredictor::Insert(const LabeledPoint& point) {
  grid_.Insert(point.coords, point.plan, point.cost);
}

Prediction NaiveGridPredictor::Predict(const std::vector<double>& x) const {
  // "Locating the grid bucket that contains x (and the neighboring buckets
  // if necessary)": the effective region is at least the containing cell.
  const double half_cell = 0.5 / static_cast<double>(grid_.cells_per_dim());
  const auto counts =
      grid_.QueryBox(x, std::max(config_.radius, half_cell));
  if (counts.empty()) return Prediction{};

  double total = 0.0;
  PlanId max_plan = kNullPlanId;
  double max_count = 0.0;
  double max_cost_sum = 0.0;
  for (const auto& [plan, agg] : counts) {
    total += agg.count;
    if (agg.count > max_count) {
      max_count = agg.count;
      max_plan = plan;
      max_cost_sum = agg.cost_sum;
    }
  }
  if (max_count <= 0.0) return Prediction{};

  const double confidence = ConfidenceFromCounts(max_count, total - max_count);
  if (confidence <= config_.confidence_threshold) return Prediction{};

  Prediction out;
  out.plan = max_plan;
  out.confidence = confidence;
  out.estimated_cost = max_cost_sum / max_count;
  return out;
}

}  // namespace ppc
