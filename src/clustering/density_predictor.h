#ifndef PPC_CLUSTERING_DENSITY_PREDICTOR_H_
#define PPC_CLUSTERING_DENSITY_PREDICTOR_H_

#include <vector>

#include "clustering/predictor.h"

namespace ppc {

/// "Density Predict" / Algorithm 1 BASELINE.
///
/// Stores the entire sample set X. To predict the plan at point x it counts
/// the samples of each plan within radius d of x, takes the
/// highest-frequency plan P_max, and applies the confidence sanity check:
/// predict P_max iff sin(getConfidenceAngle(total/density[max])) > gamma
/// (Sec. III-A c and Algorithm 1). Exhibits excellent precision but O(|X|)
/// prediction time and O(|X|) space — the reference the approximation
/// algorithms (NAIVE, APPROXIMATE-LSH, APPROXIMATE-LSH-HISTOGRAMS) are
/// measured against.
class DensityPredictor : public PlanPredictor {
 public:
  struct Config {
    /// Query radius d.
    double radius = 0.1;
    /// Confidence threshold gamma in [0, 1].
    double confidence_threshold = 0.7;
  };

  DensityPredictor(Config config, std::vector<LabeledPoint> sample);

  Prediction Predict(const std::vector<double>& x) const override;
  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override;
  std::string Name() const override { return "BASELINE"; }

  size_t sample_size() const { return points_.size(); }

 private:
  Config config_;
  std::vector<LabeledPoint> points_;
};

}  // namespace ppc

#endif  // PPC_CLUSTERING_DENSITY_PREDICTOR_H_
