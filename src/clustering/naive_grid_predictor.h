#ifndef PPC_CLUSTERING_NAIVE_GRID_PREDICTOR_H_
#define PPC_CLUSTERING_NAIVE_GRID_PREDICTOR_H_

#include <cmath>
#include <vector>

#include "clustering/predictor.h"
#include "lsh/grid.h"

namespace ppc {

/// The NAIVE algorithm (paper Sec. IV-B): the plan space is partitioned by
/// a single fixed-orientation grid; each bucket records, per plan, the
/// sample count (32-bit int) and average cost (32-bit float). Densities
/// around a query point come from the containing bucket and its neighbors.
/// O(1) prediction and n * b_g * 8 bytes of space, but a single rigid grid
/// approximates circular neighborhoods poorly — the motivation for
/// APPROXIMATE-LSH's randomized multi-grid scheme.
class NaiveGridPredictor : public PlanPredictor {
 public:
  struct Config {
    /// Plan-space dimensionality r.
    int dimensions = 2;
    /// Total bucket budget b_g; cells per axis = floor(b_g^(1/r)).
    uint64_t bucket_budget = 4096;
    /// Query radius d.
    double radius = 0.1;
    /// Confidence threshold gamma.
    double confidence_threshold = 0.7;
  };

  explicit NaiveGridPredictor(Config config);
  NaiveGridPredictor(Config config, const std::vector<LabeledPoint>& sample);

  Prediction Predict(const std::vector<double>& x) const override;
  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override { return grid_.SpaceBytes(); }
  std::string Name() const override { return "NAIVE"; }

  uint32_t cells_per_dim() const { return grid_.cells_per_dim(); }

 private:
  Config config_;
  PlanGrid grid_;
};

/// Cells per axis for a total bucket budget over r dimensions (>= 1).
uint32_t CellsPerDimForBudget(uint64_t bucket_budget, int dimensions);

}  // namespace ppc

#endif  // PPC_CLUSTERING_NAIVE_GRID_PREDICTOR_H_
