#include "clustering/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng* rng, int max_iterations) {
  KMeansResult result;
  if (points.empty() || k <= 0) return result;
  PPC_CHECK(rng != nullptr);
  const size_t n = points.size();
  const size_t dims = points.front().size();
  const size_t clusters = std::min<size_t>(static_cast<size_t>(k), n);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(clusters);
  centroids.push_back(points[rng->UniformInt(n)]);
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < clusters) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i], SquaredDistance(points[i],
                                                    centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) break;  // all remaining points coincide with centroids
    double target = rng->Uniform() * total;
    size_t pick = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }

  // Lloyd iterations.
  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = assignment[i];
      for (size_t c = 0; c < centroids.size(); ++c) {
        const double d2 = SquaredDistance(points[i], centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      if (best_c != assignment[i]) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(centroids.size(), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(assignment[i]);
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // keep empty clusters where they were
      for (size_t d = 0; d < dims; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.centroids = std::move(centroids);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace ppc
