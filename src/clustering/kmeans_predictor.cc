#include "clustering/kmeans_predictor.h"

#include <cmath>
#include <limits>

#include "clustering/kmeans.h"
#include "common/math_utils.h"

namespace ppc {

KMeansPredictor::KMeansPredictor(Config config,
                                 std::vector<LabeledPoint> sample)
    : config_(config), points_(std::move(sample)), rng_(config.seed) {}

void KMeansPredictor::Rebuild() const {
  centroids_.clear();
  std::map<PlanId, std::vector<std::vector<double>>> groups;
  for (const LabeledPoint& p : points_) {
    groups[p.plan].push_back(p.coords);
  }
  for (auto& [plan, group] : groups) {
    KMeansResult result =
        KMeans(group, config_.clusters_per_plan, &rng_);
    centroids_[plan] = std::move(result.centroids);
  }
  dirty_ = false;
}

Prediction KMeansPredictor::Predict(const std::vector<double>& x) const {
  if (dirty_) Rebuild();
  Prediction out;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [plan, centroids] : centroids_) {
    for (const auto& centroid : centroids) {
      const double d2 = SquaredDistance(x, centroid);
      if (d2 < best) {
        best = d2;
        out.plan = plan;
      }
    }
  }
  if (out.plan == kNullPlanId || std::sqrt(best) > config_.radius) {
    return Prediction{};
  }
  // Distance-based sanity check only; report proximity as confidence.
  out.confidence = Clamp(1.0 - std::sqrt(best) / config_.radius, 0.0, 1.0);
  return out;
}

void KMeansPredictor::Insert(const LabeledPoint& point) {
  points_.push_back(point);
  dirty_ = true;
}

uint64_t KMeansPredictor::SpaceBytes() const {
  if (dirty_) Rebuild();
  uint64_t centroid_count = 0;
  size_t dims = 0;
  for (const auto& [plan, centroids] : centroids_) {
    centroid_count += centroids.size();
    if (!centroids.empty()) dims = centroids.front().size();
  }
  // Each centroid stores r coordinates (8 bytes each) plus its plan label.
  return centroid_count * (dims * 8 + 8);
}

}  // namespace ppc
