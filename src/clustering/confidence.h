#ifndef PPC_CLUSTERING_CONFIDENCE_H_
#define PPC_CLUSTERING_CONFIDENCE_H_

namespace ppc {

/// The paper's confidence model (Sec. IV-A, Fig. 4b).
///
/// Within the radius-d circle around a query point, the plan boundary
/// separating the majority plan P_max from all others is modeled as a chord.
/// The relative sample frequencies determine where that chord lies: if
/// c_max of the samples belong to P_max and c_other to other plans, the
/// minority area fraction is c_other / (c_max + c_other), which fixes the
/// chord's signed distance h = d*sin(theta) from the centre. The prediction
/// confidence is sin(theta) = h/d in [0, 1]; predictions require
/// sin(theta) > gamma *and* c_max >= c_other (ratio >= 1, i.e. the centre
/// lies inside P_max's side of the chord).

/// Confidence sin(theta) given majority and minority sample counts within
/// the query circle. Returns:
///  - 1.0 when other_count == 0 (pure region),
///  - 0.0 when max_count < other_count (centre likely outside P_max) or
///    when max_count == 0.
double ConfidenceFromCounts(double max_count, double other_count);

/// The angle-from-ratio form used in Algorithm 1: given
/// ratio = total/density[max] (so ratio >= 1, ratio == 1 for a pure
/// region), returns sin(getConfidenceAngle(ratio)).
double ConfidenceFromTotalRatio(double total_over_max);

}  // namespace ppc

#endif  // PPC_CLUSTERING_CONFIDENCE_H_
