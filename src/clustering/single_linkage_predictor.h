#ifndef PPC_CLUSTERING_SINGLE_LINKAGE_PREDICTOR_H_
#define PPC_CLUSTERING_SINGLE_LINKAGE_PREDICTOR_H_

#include <vector>

#include "clustering/predictor.h"

namespace ppc {

/// "Single Linkage Predict" (paper Sec. III-A b): a test point takes the
/// plan label of the nearest sample point, or NULL if the nearest point is
/// farther than radius d. Handles arbitrarily-shaped clusters but is
/// sensitive to outliers: it cannot distinguish the middle of a cluster
/// from a point just across a plan boundary.
class SingleLinkagePredictor : public PlanPredictor {
 public:
  struct Config {
    double radius = 0.1;
  };

  SingleLinkagePredictor(Config config, std::vector<LabeledPoint> sample);

  Prediction Predict(const std::vector<double>& x) const override;
  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override;
  std::string Name() const override { return "SINGLE-LINKAGE-PREDICT"; }

 private:
  Config config_;
  std::vector<LabeledPoint> points_;
};

}  // namespace ppc

#endif  // PPC_CLUSTERING_SINGLE_LINKAGE_PREDICTOR_H_
