#include "clustering/single_linkage_predictor.h"

#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace ppc {

SingleLinkagePredictor::SingleLinkagePredictor(Config config,
                                               std::vector<LabeledPoint> sample)
    : config_(config), points_(std::move(sample)) {}

Prediction SingleLinkagePredictor::Predict(
    const std::vector<double>& x) const {
  Prediction out;
  double best = std::numeric_limits<double>::infinity();
  for (const LabeledPoint& p : points_) {
    const double d2 = SquaredDistance(x, p.coords);
    if (d2 < best) {
      best = d2;
      out.plan = p.plan;
      out.estimated_cost = p.cost;
    }
  }
  if (out.plan == kNullPlanId || std::sqrt(best) > config_.radius) {
    return Prediction{};
  }
  out.confidence = Clamp(1.0 - std::sqrt(best) / config_.radius, 0.0, 1.0);
  return out;
}

void SingleLinkagePredictor::Insert(const LabeledPoint& point) {
  points_.push_back(point);
}

uint64_t SingleLinkagePredictor::SpaceBytes() const {
  const size_t dims = points_.empty() ? 0 : points_.front().coords.size();
  // Every sample point is retained: r coordinates, plan label, cost.
  return points_.size() * (dims * 8 + 8 + 8);
}

}  // namespace ppc
