// ppc_router: the consistent-hash front door for a fleet of ppc_server
// shards (DESIGN.md §15).
//
// Speaks the same wire protocol as the shards; PREDICT / PREDICT_BATCH /
// EXECUTE are routed by template name over the hash ring, PING/METRICS/
// TOPOLOGY are answered locally. Prints `LISTENING <port>` to stdout
// once ready (same readiness handshake as ppc_server).
//
// Health model (DESIGN.md §18): a background prober PINGs every backend,
// consecutive failures open a per-backend circuit breaker, requests for
// an open primary fail over to its ring-successor replica (EXECUTEs come
// back FAILED_OVER-flagged), replicas are kept warm by periodic snapshot
// shipping, and a returning shard is warm-started from its replicas
// before the half-open probe re-admits it.
//
// Flags (--key=value):
//   --bind=ADDR                     bind address (default 127.0.0.1)
//   --port=N                        listen port  (default 0 = ephemeral)
//   --backends=H:P,H:P,...          initial shard set (may be empty;
//                                   shards can join later via TOPOLOGY)
//   --backend-deadline-ms=N         per-forward deadline (default 5000)
//   --probe-interval-ms=N           health-probe cadence; 0 disables the
//                                   health thread (default 250)
//   --probe-deadline-ms=N           per-probe deadline (default 1000)
//   --replication-interval-ms=N     replica warm-keeping cadence; 0
//                                   disables shipping (default 2000)
//   --breaker-failure-threshold=N   consecutive failures that open a
//                                   backend's breaker (default 3)
//   --breaker-cooldown-ms=N         open-state cooldown before the
//                                   half-open probe (default 1000)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/hash_ring.h"
#include "server/router.h"

namespace {

using ppc::HashRing;
using ppc::PlanRouter;
using ppc::Status;

PlanRouter* g_router = nullptr;

/// PlanRouter::Shutdown is atomic stores only — async-signal-safe.
void HandleSignal(int) {
  if (g_router != nullptr) g_router->Shutdown();
}

bool ParseBackend(const std::string& value, HashRing::Node* node) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const long port = std::strtol(value.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) return false;
  node->host = value.substr(0, colon);
  node->port = static_cast<uint16_t>(port);
  return true;
}

bool ParseFlags(int argc, char** argv, PlanRouter::Config* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "bind") {
      config->bind_address = value;
    } else if (key == "port") {
      config->port = static_cast<uint16_t>(std::strtol(value.c_str(),
                                                       nullptr, 10));
    } else if (key == "backend-deadline-ms") {
      config->backend_deadline_ms = std::strtol(value.c_str(), nullptr, 10);
    } else if (key == "probe-interval-ms") {
      config->probe_interval_ms = std::strtol(value.c_str(), nullptr, 10);
    } else if (key == "probe-deadline-ms") {
      config->probe_deadline_ms = std::strtol(value.c_str(), nullptr, 10);
    } else if (key == "replication-interval-ms") {
      config->replication_interval_ms =
          std::strtol(value.c_str(), nullptr, 10);
    } else if (key == "breaker-failure-threshold") {
      config->breaker.failure_threshold =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "breaker-cooldown-ms") {
      config->breaker.open_cooldown_ms =
          std::strtol(value.c_str(), nullptr, 10);
    } else if (key == "backends") {
      size_t begin = 0;
      while (begin <= value.size()) {
        const size_t comma = value.find(',', begin);
        const size_t end = comma == std::string::npos ? value.size() : comma;
        if (end > begin) {
          HashRing::Node node;
          if (!ParseBackend(value.substr(begin, end - begin), &node)) {
            std::fprintf(stderr, "bad backend (want host:port): %s\n",
                         value.substr(begin, end - begin).c_str());
            return false;
          }
          config->backends.push_back(node);
        }
        if (comma == std::string::npos) break;
        begin = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  PlanRouter::Config config;
  if (!ParseFlags(argc, argv, &config)) return 2;

  PlanRouter router(config);
  const Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  g_router = &router;

  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::fprintf(stderr, "routing across %zu backend(s)\n",
               router.backend_count());
  std::printf("LISTENING %u\n", router.port());
  std::fflush(stdout);

  router.Wait();
  return 0;
}
