#include "server/failpoints.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/rng.h"

namespace ppc {
namespace failpoints {

namespace detail {
std::atomic<uint32_t> g_armed_mask{0};
}  // namespace detail

namespace {

constexpr size_t kSites = static_cast<size_t>(Site::kSiteCount);

/// Mutable per-site state, guarded by g_mu. The slow path is only taken
/// while the site's mask bit is set, so contention exists only in tests
/// that armed the site — production traffic never touches this mutex.
struct SiteState {
  Config config;
  Rng rng{1};
  uint64_t eligible_hits = 0;  // counts toward `every`
  int64_t remaining_budget = -1;
};

std::mutex g_mu;
SiteState g_sites[kSites];
std::atomic<uint64_t> g_hits[kSites];
std::atomic<uint64_t> g_fired[kSites];

}  // namespace

const char* SiteName(Site site) {
  switch (site) {
    case Site::kRecv:
      return "recv";
    case Site::kSend:
      return "send";
    case Site::kAccept:
      return "accept";
    case Site::kEnqueue:
      return "enqueue";
    case Site::kDispatch:
      return "dispatch";
    case Site::kRetune:
      return "retune";
    case Site::kSiteCount:
      break;
  }
  return "unknown";
}

void Arm(Site site, const Config& config) {
  const size_t i = static_cast<size_t>(site);
  PPC_CHECK(i < kSites);
  PPC_CHECK_MSG(config.kind != Kind::kNone, "arm with a real Kind");
  {
    std::lock_guard<std::mutex> lock(g_mu);
    SiteState& state = g_sites[i];
    state.config = config;
    if (state.config.every == 0) state.config.every = 1;
    state.rng = Rng(config.seed);
    state.eligible_hits = 0;
    state.remaining_budget = config.budget;
  }
  g_hits[i].store(0, std::memory_order_relaxed);
  g_fired[i].store(0, std::memory_order_relaxed);
  detail::g_armed_mask.fetch_or(1u << i, std::memory_order_release);
}

void Disarm(Site site) {
  const size_t i = static_cast<size_t>(site);
  PPC_CHECK(i < kSites);
  detail::g_armed_mask.fetch_and(~(1u << i), std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_mu);
  g_sites[i].config = Config{};
}

void DisarmAll() {
  detail::g_armed_mask.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_mu);
  for (SiteState& state : g_sites) state.config = Config{};
}

uint64_t HitCount(Site site) {
  return g_hits[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

uint64_t FiredCount(Site site) {
  return g_fired[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

namespace detail {

Action EvaluateSlow(Site site) {
  const size_t i = static_cast<size_t>(site);
  g_hits[i].fetch_add(1, std::memory_order_relaxed);
  Action action;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    SiteState& state = g_sites[i];
    // Disarm may have raced the mask check; treat as a miss.
    if (state.config.kind == Kind::kNone) return action;
    if (state.remaining_budget == 0) return action;
    if (++state.eligible_hits % state.config.every != 0) return action;
    if (state.config.probability_permille < 1000 &&
        state.rng.UniformInt(uint64_t{1000}) >=
            state.config.probability_permille) {
      return action;
    }
    if (state.remaining_budget > 0) --state.remaining_budget;
    action.kind = state.config.kind;
    action.arg = state.config.arg;
  }
  g_fired[i].fetch_add(1, std::memory_order_relaxed);
  return action;
}

}  // namespace detail

void MaybeStall(const Action& action) {
  if (action.kind != Kind::kStallMs) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(action.arg));
}

}  // namespace failpoints
}  // namespace ppc
