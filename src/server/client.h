#ifndef PPC_SERVER_CLIENT_H_
#define PPC_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/fingerprint.h"
#include "server/wire_protocol.h"

namespace ppc {

/// Blocking client for the plan-prediction server (server/server.h).
///
/// Two usage styles:
///
///   * Synchronous: Predict / Execute / Metrics / Ping / Shutdown — one
///     round trip per call.
///   * Pipelined: SendX() writes the request immediately and returns its
///     id without waiting; Wait(id) later collects that response.
///     Requests in flight overlap on the wire, which is what makes a
///     single connection saturate the server's worker pool. Responses
///     arriving out of order are parked until their Wait() call.
///
/// Not thread-safe: use one PpcClient per thread (the load generator in
/// bench/bench_server_throughput.cc does exactly that).
class PpcClient {
 public:
  PpcClient() = default;
  ~PpcClient() { Close(); }

  PpcClient(const PpcClient&) = delete;
  PpcClient& operator=(const PpcClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// --- Synchronous API. Non-OK wire statuses map to Status codes via
  /// wire::ToStatus (BUSY -> ResourceExhausted, etc.). ---

  struct PredictResult {
    PlanId plan = kNullPlanId;
    double confidence = 0.0;
    bool cache_hit = false;
  };
  Result<PredictResult> Predict(const std::string& template_name,
                                const std::vector<double>& point);

  /// Batched Predict: `count` points of `dims` coordinates each,
  /// flattened row-major in `points` (one PREDICT_BATCH frame, one
  /// answer per point in request order). All points must target one
  /// template; validation is all-or-nothing on the server, and a point
  /// the predictor abstains on comes back as kNullPlanId with confidence
  /// 0 rather than an error.
  Result<std::vector<PredictResult>> PredictBatch(
      const std::string& template_name, const std::vector<double>& points,
      uint32_t dims);

  Result<wire::Response::Execute> Execute(const std::string& template_name,
                                          const std::vector<double>& point);

  /// The server's MetricsSnapshot().ToJson() payload.
  Result<std::string> Metrics();

  Status Ping();

  /// Asks the server to drain and exit. Returns once the server acks.
  Status Shutdown();

  /// --- Pipelined API: send now, collect later. ---

  Result<uint64_t> SendPredict(const std::string& template_name,
                               const std::vector<double>& point);
  /// Pipelined PredictBatch (layout as in PredictBatch); collect the
  /// response with Wait(id) and read Response::batch.
  Result<uint64_t> SendPredictBatch(const std::string& template_name,
                                    const std::vector<double>& points,
                                    uint32_t dims);
  Result<uint64_t> SendExecute(const std::string& template_name,
                               const std::vector<double>& point);
  Result<uint64_t> SendPing();
  Result<uint64_t> SendShutdown();

  /// Blocks until the response for `id` arrives (responses for other
  /// outstanding ids are parked for their own Wait calls). The returned
  /// Response may itself carry a non-OK wire status (e.g. BUSY) — the
  /// Result is non-OK only for transport/protocol failures.
  Result<wire::Response> Wait(uint64_t id);

 private:
  Result<uint64_t> SendRequest(wire::MessageType type,
                               const std::string& template_name,
                               const std::vector<double>& point);
  /// Reads frames off the socket until `id`'s response shows up.
  Result<wire::Response> ReadUntil(uint64_t id);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  wire::FrameBuffer frames_;
  std::map<uint64_t, wire::Response> parked_;
};

}  // namespace ppc

#endif  // PPC_SERVER_CLIENT_H_
