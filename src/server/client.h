#ifndef PPC_SERVER_CLIENT_H_
#define PPC_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "plan/fingerprint.h"
#include "server/net_util.h"
#include "server/wire_protocol.h"

namespace ppc {

/// How a PpcClient retries recoverable failures: BUSY answers (the
/// server's backpressure — the request was *not* executed, so retrying is
/// always safe) and transient connect failures. Backoff is capped
/// exponential with multiplicative jitter, from a seeded stream so load
/// tests are reproducible. The default policy does not retry at all —
/// exactly the pre-PR-5 behavior.
struct RetryPolicy {
  /// Total attempts, including the first; 1 disables retries.
  int max_attempts = 1;
  int64_t initial_backoff_ms = 2;
  int64_t max_backoff_ms = 200;
  double multiplier = 2.0;
  /// Each backoff is scaled by a uniform draw from [1-jitter, 1+jitter].
  double jitter = 0.2;
  uint64_t seed = 0x5eed;
};

/// Blocking client for the plan-prediction server (server/server.h).
///
/// Two usage styles:
///
///   * Synchronous: Predict / Execute / Metrics / Ping / Shutdown — one
///     round trip per call.
///   * Pipelined: SendX() writes the request immediately and returns its
///     id without waiting; Wait(id) later collects that response.
///     Requests in flight overlap on the wire, which is what makes a
///     single connection saturate the server's worker pool. Responses
///     arriving out of order are parked until their Wait() call.
///
/// Resilience (DESIGN.md §14): every call observes the per-call deadline
/// in Options (DeadlineExceeded closes the connection — the stream can no
/// longer be matched to ids), synchronous calls retry BUSY answers under
/// the RetryPolicy, and Connect retries transient failures the same way.
///
/// Not thread-safe: use one PpcClient per thread (the load generator in
/// bench/bench_server_throughput.cc does exactly that).
class PpcClient {
 public:
  struct Options {
    /// Wall-clock budget per synchronous call / per Wait(), spanning all
    /// retry attempts. 0 = wait forever (the pre-PR-5 behavior).
    int64_t call_deadline_ms = 0;
    RetryPolicy retry;
  };

  PpcClient() : PpcClient(Options{}) {}
  explicit PpcClient(const Options& options);
  ~PpcClient() { Close(); }

  PpcClient(const PpcClient&) = delete;
  PpcClient& operator=(const PpcClient&) = delete;

  /// Connects (retrying transient failures per the RetryPolicy) and
  /// remembers host:port so later calls can reconnect after a loss. The
  /// per-call deadline bounds the whole attempt sequence including the
  /// TCP handshake itself — an unreachable peer fails with
  /// DeadlineExceeded instead of blocking in connect(2).
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Cumulative resilience accounting (reset by neither Close nor
  /// Connect), surfaced in the bench load generator's output.
  struct TransportStats {
    uint64_t busy_retries = 0;
    uint64_t connect_retries = 0;
    uint64_t reconnects = 0;
    uint64_t deadlines_exceeded = 0;
  };
  const TransportStats& transport_stats() const { return stats_; }

  /// --- Synchronous API. Non-OK wire statuses map to Status codes via
  /// wire::ToStatus (BUSY -> ResourceExhausted, etc.); BUSY is retried
  /// per the RetryPolicy before surfacing. ---

  struct PredictResult {
    PlanId plan = kNullPlanId;
    double confidence = 0.0;
    bool cache_hit = false;
  };
  Result<PredictResult> Predict(const std::string& template_name,
                                const std::vector<double>& point);

  /// Batched Predict: `count` points of `dims` coordinates each,
  /// flattened row-major in `points` (one PREDICT_BATCH frame, one
  /// answer per point in request order). All points must target one
  /// template; validation is all-or-nothing on the server, and a point
  /// the predictor abstains on comes back as kNullPlanId with confidence
  /// 0 rather than an error.
  Result<std::vector<PredictResult>> PredictBatch(
      const std::string& template_name, const std::vector<double>& points,
      uint32_t dims);

  Result<wire::Response::Execute> Execute(const std::string& template_name,
                                          const std::vector<double>& point);

  /// The server's MetricsSnapshot().ToJson() payload.
  Result<std::string> Metrics();

  Status Ping();

  /// Asks the server to drain and exit. Returns once the server acks.
  Status Shutdown();

  /// Pulls the server's serialized PredictorState (one SNAPSHOT round
  /// trip). The blob is opaque here; feed it to PredictorState::Restore
  /// or to ApplySnapshot on another shard.
  Result<std::string> FetchSnapshot();

  /// Ships a serialized PredictorState to the server (SNAPSHOT_APPLY);
  /// returns the number of templates the server warm-started from it.
  Result<uint32_t> ApplySnapshot(const std::string& blob);

  /// Router admin: add or remove a backend shard (TOPOLOGY). Returns the
  /// backend count after the operation. Plain shards answer BAD_REQUEST.
  Result<uint32_t> Topology(wire::TopologyOp op, const std::string& host,
                            uint16_t port);

  /// One synchronous round trip for an arbitrary pre-built request (the
  /// id is assigned here, fresh per attempt). BUSY answers are retried
  /// per the RetryPolicy; any other response comes back verbatim, wire
  /// status included. This is the router's forwarding primitive: it
  /// preserves the backend's exact answer instead of collapsing it into
  /// a Status.
  Result<wire::Response> Call(wire::Request request) {
    return RoundTrip(std::move(request));
  }

  /// --- Pipelined API: send now, collect later. ---

  Result<uint64_t> SendPredict(const std::string& template_name,
                               const std::vector<double>& point);
  /// Pipelined PredictBatch (layout as in PredictBatch); collect the
  /// response with Wait(id) and read Response::batch.
  Result<uint64_t> SendPredictBatch(const std::string& template_name,
                                    const std::vector<double>& points,
                                    uint32_t dims);
  Result<uint64_t> SendExecute(const std::string& template_name,
                               const std::vector<double>& point);
  Result<uint64_t> SendPing();
  Result<uint64_t> SendShutdown();

  /// Blocks until the response for `id` arrives or the per-call deadline
  /// expires (responses for other outstanding ids are parked for their
  /// own Wait calls). The returned Response may itself carry a non-OK
  /// wire status (e.g. BUSY) — the Result is non-OK only for
  /// transport/protocol failures and deadline expiry.
  ///
  /// An id that was sent on a connection lost since (the client
  /// reconnects transparently under synchronous calls) fails immediately
  /// with Unavailable: its response can never arrive on the current
  /// stream, and before the connection-generation bookkeeping existed
  /// such a Wait would read the *new* connection — forever, under an
  /// infinite deadline. Waiting on an id this client never issued (or
  /// already collected) is FailedPrecondition.
  Result<wire::Response> Wait(uint64_t id);

 private:
  /// One synchronous round trip with BUSY-retry and reconnect-on-loss.
  /// Assigns the request id (fresh per attempt).
  Result<wire::Response> RoundTrip(wire::Request request);
  Status SendEncoded(const std::string& frame, const net::Deadline& deadline);
  Result<uint64_t> SendRequest(wire::MessageType type,
                               const std::string& template_name,
                               const std::vector<double>& point);
  /// Reads frames off the socket until `id`'s response shows up.
  Result<wire::Response> ReadUntil(uint64_t id, const net::Deadline& deadline);
  /// Sleeps the capped-exponential backoff for 0-based retry `attempt`,
  /// bounded by `deadline`; false when the deadline cannot absorb it.
  bool BackoffBeforeRetry(int attempt, const net::Deadline& deadline);
  net::Deadline CallDeadline() const {
    return net::Deadline::AfterMsOrInfinite(options_.call_deadline_ms);
  }

  Options options_;
  Rng backoff_rng_;
  TransportStats stats_;
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
  /// Monotonic across the client's lifetime — never reset by Close() or
  /// reconnect, so ids stay unique across connections and a stale
  /// response (were one ever read) could not match a new request's id.
  uint64_t next_id_ = 1;
  /// Bumped on every successful (re)connect. Each pipelined id records
  /// the generation it was sent under; Wait() refuses ids from dead
  /// generations instead of reading the wrong stream.
  uint64_t connection_generation_ = 0;
  /// Pipelined ids awaiting Wait(): id -> generation it was sent under.
  /// Entries leave when the response is returned or parked, or when
  /// Wait() reports the generation dead.
  std::map<uint64_t, uint64_t> in_flight_;
  wire::FrameBuffer frames_;
  /// Fully received responses awaiting their Wait() call. Survives
  /// Close(): a complete, decoded answer stays collectable even after
  /// the connection that carried it is gone.
  std::map<uint64_t, wire::Response> parked_;
};

}  // namespace ppc

#endif  // PPC_SERVER_CLIENT_H_
