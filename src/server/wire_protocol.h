#ifndef PPC_SERVER_WIRE_PROTOCOL_H_
#define PPC_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/fingerprint.h"

namespace ppc {
namespace wire {

/// Length-prefixed binary protocol of the plan-prediction server
/// (DESIGN.md §12). Every message on the wire is one frame:
///
///   frame    = u32 payload_length (little-endian) | payload
///   request  = u8 type | u64 request_id | body
///   response = u8 type | u64 request_id | u8 status | body
///
/// Direction disambiguates request from response (clients only send
/// requests, servers only send responses). `request_id` is chosen by the
/// client and echoed verbatim, which is what makes pipelining work:
/// responses may be matched out of order. All integers are little-endian;
/// doubles are IEEE-754 bit patterns.
///
/// Decoding is fully bounds-checked: any truncated, oversized or
/// otherwise malformed payload yields an error Status, never undefined
/// behavior — the fuzz tests in tests/test_wire_protocol.cc hold the
/// codec to that contract under ASan.

enum class MessageType : uint8_t {
  kInvalid = 0,  ///< Only in error responses to undecodable requests.
  kPredict = 1,  ///< template + point -> plan id, confidence, cache-hit.
  kExecute = 2,  ///< template + point -> full QueryReport (with feedback).
  kMetrics = 3,  ///< -> MetricsSnapshot().ToJson().
  kPing = 4,     ///< liveness probe.
  kShutdown = 5, ///< ack, then drain-and-exit.
  kPredictBatch = 6,  ///< template + N points -> N (plan, confidence, hit).
  kSnapshot = 7,      ///< -> serialized PredictorState (replication pull).
  kSnapshotApply = 8, ///< serialized PredictorState -> templates applied.
  kTopology = 9,      ///< router admin: add/remove a backend shard.
};

/// kTopology body operation. Routers accept these; plain shards answer
/// kTopology with BAD_REQUEST.
enum class TopologyOp : uint8_t {
  kAdd = 1,
  kRemove = 2,
};

enum class WireStatus : uint8_t {
  kOk = 0,
  kBusy = 1,          ///< request queue full — backpressure, retry later.
  kBadRequest = 2,    ///< malformed frame or semantically invalid body.
  kNotFound = 3,      ///< unknown template.
  kInternal = 4,      ///< server-side failure.
  kShuttingDown = 5,  ///< server is draining; no new work accepted.
  kTimeout = 6,       ///< a server-side deadline expired (read/write).
};

const char* MessageTypeName(MessageType type);
const char* WireStatusName(WireStatus status);

/// Hard protocol limits, enforced by both codec and server.
/// kMaxFrameBytes bounds a frame's payload (a declared length above it is
/// a framing violation that closes the connection); kMaxPointDimensions
/// bounds the selectivity-vector arity so a hostile frame cannot request
/// enormous allocations that its payload length alone would permit.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;
inline constexpr uint32_t kMaxPointDimensions = 1024;
/// Bounds the point count of one PREDICT_BATCH frame. Together with
/// kMaxPointDimensions this caps a batch body's decoded size independently
/// of the declared frame length.
inline constexpr uint32_t kMaxBatchPoints = 1024;

/// One client request. `template_name` / `point` are meaningful for
/// kPredict and kExecute only; `template_name` / `batch_dims` /
/// `batch_points` for kPredictBatch only.
struct Request {
  MessageType type = MessageType::kInvalid;
  uint64_t id = 0;
  std::string template_name;
  std::vector<double> point;

  /// kPredictBatch body: `batch_points` holds N points of `batch_dims`
  /// coordinates each, flattened row-major (point i is the slice
  /// [i * batch_dims, (i + 1) * batch_dims)). The wire body is
  /// `string template | u32 count | u32 dims | count*dims f64`, so the
  /// contiguous layout survives the codec without per-point allocations.
  uint32_t batch_dims = 0;
  std::vector<double> batch_points;

  /// kSnapshotApply body: an opaque serialized PredictorState blob
  /// (validated by the PredictorState codec, not here).
  std::string snapshot_blob;

  /// kTopology body: operation + backend address.
  TopologyOp topology_op = TopologyOp::kAdd;
  std::string topology_host;
  uint16_t topology_port = 0;

  /// Number of points in a kPredictBatch body.
  uint32_t batch_count() const {
    return batch_dims == 0
               ? 0
               : static_cast<uint32_t>(batch_points.size() / batch_dims);
  }
};

/// One server response. Exactly one body section is meaningful, selected
/// by (type, status): `error` for any non-OK status, `predict` for an OK
/// kPredict, `batch` for an OK kPredictBatch, `execute` for an OK
/// kExecute, `metrics_json` for an OK kMetrics; OK kPing / kShutdown have
/// empty bodies.
struct Response {
  MessageType type = MessageType::kInvalid;
  uint64_t id = 0;
  WireStatus status = WireStatus::kOk;
  std::string error;

  struct Predict {
    PlanId plan = kNullPlanId;
    double confidence = 0.0;
    bool cache_hit = false;
  } predict;

  /// OK kPredictBatch body: one Predict per request point, in request
  /// order. A point the predictor abstains on carries kNullPlanId with
  /// confidence 0 — per-point abstention is an answer, not an error
  /// (DESIGN.md §13).
  std::vector<Predict> batch;

  struct Execute {
    PlanId executed_plan = kNullPlanId;
    PlanId optimal_plan = kNullPlanId;
    bool used_prediction = false;
    bool cache_hit = false;
    bool optimizer_invoked = false;
    bool prediction_evicted = false;
    bool negative_feedback_triggered = false;
    /// Set by the router (never by a shard) when the primary's breaker
    /// forced this EXECUTE onto the replica: the answer is live, but the
    /// corrective feedback landed on the replica's predictor, not the
    /// template's home shard (DESIGN.md §18).
    bool failed_over = false;
    double execution_cost = 0.0;
    double optimize_micros = 0.0;
    double predict_micros = 0.0;
    double execute_micros = 0.0;
  } execute;

  std::string metrics_json;

  /// OK kSnapshot body: serialized PredictorState.
  std::string snapshot_blob;
  /// OK kSnapshotApply body: templates warm-started on the server.
  uint32_t snapshot_applied = 0;
  /// OK kTopology body: backend count after the operation.
  uint32_t backend_count = 0;

  bool ok() const { return status == WireStatus::kOk; }
};

/// Appends one complete frame (length prefix included) to `out`.
void EncodeRequest(const Request& request, std::string* out);
void EncodeResponse(const Response& response, std::string* out);

/// Appends the response *payload only* — no length prefix. The server's
/// zero-copy send path uses this: the 4-byte prefix goes out as its own
/// iovec alongside the payload (net::WritevAll), so the frame is never
/// assembled contiguously.
void EncodeResponsePayload(const Response& response, std::string* out);

/// Decodes one frame *payload* (the bytes after the length prefix).
/// Returns InvalidArgument on any malformed input.
Result<Request> DecodeRequest(const std::string& payload);
Result<Response> DecodeResponse(const std::string& payload);

/// Incremental deframer: feed raw bytes as they arrive off a socket,
/// extract complete frame payloads. A declared payload length of zero or
/// above the limit poisons the buffer (framing can no longer be trusted)
/// and every subsequent call returns the same error.
class FrameBuffer {
 public:
  explicit FrameBuffer(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t size);

  /// Extracts the next complete payload into `*payload`. Returns true when
  /// one was extracted, false when more bytes are needed, or an error on a
  /// framing violation.
  Result<bool> Next(std::string* payload);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Forgets buffered bytes and clears poisoning, so the buffer can be
  /// reused for a brand-new byte stream (client reconnect).
  void Reset() {
    buffer_.clear();
    consumed_ = 0;
    poisoned_ = false;
  }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// Maps a wire status to the library's Status vocabulary (kOk -> OK,
/// kBusy -> ResourceExhausted, kBadRequest -> InvalidArgument, ...).
Status ToStatus(WireStatus status, const std::string& message);

}  // namespace wire
}  // namespace ppc

#endif  // PPC_SERVER_WIRE_PROTOCOL_H_
