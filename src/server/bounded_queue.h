#ifndef PPC_SERVER_BOUNDED_QUEUE_H_
#define PPC_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ppc {

/// Bounded multi-producer multi-consumer FIFO queue — the admission
/// control point of the serving layer. Producers never block: TryPush
/// fails immediately when the queue is at capacity (the caller answers
/// BUSY — backpressure instead of unbounded buffering). Consumers block
/// in Pop until an item arrives or the queue is closed.
///
/// Close() is the graceful-drain primitive: it rejects all further
/// pushes while items already accepted remain poppable, so consumers
/// drain the backlog and then observe end-of-stream (nullopt).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is open and
  /// empty. Returns nullopt once closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking Pop: dequeues the oldest item if one is immediately
  /// available, nullopt otherwise (empty or closed-and-drained — the
  /// caller cannot distinguish, and does not need to: this is the
  /// opportunistic drain used by worker micro-batching, where "nothing
  /// ready right now" simply ends the batch).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked consumer. Items
  /// already queued stay poppable (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ppc

#endif  // PPC_SERVER_BOUNDED_QUEUE_H_
