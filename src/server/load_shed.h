#ifndef PPC_SERVER_LOAD_SHED_H_
#define PPC_SERVER_LOAD_SHED_H_

#include <atomic>
#include <cstdint>

namespace ppc {
namespace net {

/// Graceful-degradation ladder for the serving layer (DESIGN.md §14).
///
/// The paper's predictor already degrades gracefully at the *model* level
/// — near a plan boundary it abstains and the client falls back to its
/// own optimizer. This controller extends the same idea to *queue*
/// pressure, trading work quality for admission in three rungs:
///
///   kNormal        — full service.
///   kNoMicrobatch  — workers stop opportunistic micro-batching, so one
///                    slow batch cannot grow head-of-line latency while
///                    the queue is already deep.
///   kAbstainPredict — the IO thread answers single-point PREDICTs with
///                    the predictor's abstain shape (NULL plan,
///                    confidence 0) without queueing; the client falls
///                    back to its optimizer exactly as it would for a
///                    genuine abstention. EXECUTE (feedback-carrying)
///                    still queues.
///   (queue full    — BUSY, as always: the rung past the ladder.)
///
/// Pressure is an EWMA of queue occupancy sampled at every admission by
/// the IO thread (the single writer); workers read the level with one
/// relaxed atomic load. Rung changes apply hysteresis — the EWMA must
/// fall `hysteresis` below a rung's entry threshold to leave it — so the
/// ladder cannot flap at a threshold.
class ShedController {
 public:
  enum Level : uint32_t {
    kNormal = 0,
    kNoMicrobatch = 1,
    kAbstainPredict = 2,
  };

  struct Options {
    /// EWMA weight of the newest occupancy sample, in (0, 1].
    double alpha = 0.2;
    /// Entry thresholds (EWMA occupancy in [0, 1]); <= 0 disables a rung.
    double no_microbatch_at = 0.50;
    double abstain_predict_at = 0.75;
    /// A rung is left once the EWMA drops this far below its entry bar.
    double hysteresis = 0.15;
  };

  explicit ShedController(const Options& options) : options_(options) {}

  /// Folds one occupancy sample (queued / capacity, in [0, 1]) into the
  /// EWMA and recomputes the rung. Single writer: the IO thread. Returns
  /// the level now in force.
  Level Observe(double occupancy) {
    ewma_ = options_.alpha * occupancy + (1.0 - options_.alpha) * ewma_;
    const Level current = level();
    Level next = current;
    if (current < kAbstainPredict && Enters(options_.abstain_predict_at)) {
      next = kAbstainPredict;
    } else if (current < kNoMicrobatch && Enters(options_.no_microbatch_at)) {
      next = kNoMicrobatch;
    } else if (current == kAbstainPredict &&
               Leaves(options_.abstain_predict_at)) {
      next = Enters(options_.no_microbatch_at) ? kNoMicrobatch : kNormal;
    } else if (current == kNoMicrobatch && Leaves(options_.no_microbatch_at)) {
      next = kNormal;
    }
    if (next != current) level_.store(next, std::memory_order_relaxed);
    return next;
  }

  /// Current rung; any thread, lock-free.
  Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }

  double ewma() const { return ewma_; }

 private:
  bool Enters(double threshold) const {
    return threshold > 0.0 && ewma_ >= threshold;
  }
  bool Leaves(double threshold) const {
    return threshold <= 0.0 || ewma_ < threshold - options_.hysteresis;
  }

  const Options options_;
  /// Written by the IO thread only; read anywhere.
  std::atomic<uint32_t> level_{kNormal};
  double ewma_ = 0.0;
};

}  // namespace net
}  // namespace ppc

#endif  // PPC_SERVER_LOAD_SHED_H_
