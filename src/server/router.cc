#include "server/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <utility>

#include "server/net_util.h"

namespace ppc {

namespace {

/// Maps a failed forward to the wire vocabulary: a backend deadline is
/// the client's TIMEOUT; everything else (connection loss, refused dial)
/// is INTERNAL — the router itself is healthy, the shard is not.
wire::WireStatus ForwardFailureStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded
             ? wire::WireStatus::kTimeout
             : wire::WireStatus::kInternal;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Lives on a connection thread's stack: the client-side deframer plus
/// this thread's private shard connections (keyed by shard address, so
/// no backend connection is ever shared across threads).
struct PlanRouter::ConnectionState {
  ConnectionState(int fd_in, size_t max_frame_bytes)
      : fd(fd_in), frames(max_frame_bytes) {}

  int fd;
  wire::FrameBuffer frames;
  std::map<std::string, std::unique_ptr<PpcClient>> shard_clients;

  /// Get-or-dial the client for `node`. Null when the dial fails (the
  /// caller reports the shard unavailable); a cached client for a shard
  /// that since died is dropped by the caller after the failed call, so
  /// the next request re-dials.
  PpcClient* ClientFor(const HashRing::Node& node,
                       const PlanRouter::Config& config) {
    const std::string address = node.Address();
    auto it = shard_clients.find(address);
    if (it != shard_clients.end()) return it->second.get();
    PpcClient::Options options;
    options.call_deadline_ms = config.backend_deadline_ms;
    options.retry = config.backend_retry;
    auto client = std::make_unique<PpcClient>(options);
    if (!client->Connect(node.host, node.port).ok()) return nullptr;
    return shard_clients.emplace(address, std::move(client))
        .first->second.get();
  }

  void Drop(const HashRing::Node& node) {
    shard_clients.erase(node.Address());
  }
};

PlanRouter::PlanRouter(Config config)
    : config_(std::move(config)), ring_(config_.vnodes_per_node) {
  for (const HashRing::Node& node : config_.backends) ring_.Add(node);
}

PlanRouter::~PlanRouter() { Stop(); }

Status PlanRouter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router already started");
  }
  PPC_ASSIGN_OR_RETURN(
      listen_fd_,
      net::Listen(config_.bind_address, config_.port, /*backlog=*/64, &port_));
  instruments_.connections_accepted =
      &metrics_.counter("router.connections.accepted");
  instruments_.requests_forwarded =
      &metrics_.counter("router.requests.forwarded");
  instruments_.requests_local = &metrics_.counter("router.requests.local");
  instruments_.forward_failures =
      &metrics_.counter("router.forward_failures");
  instruments_.topology_adds = &metrics_.counter("router.topology.adds");
  instruments_.topology_removes =
      &metrics_.counter("router.topology.removes");
  instruments_.frames_malformed =
      &metrics_.counter("router.frames.malformed");
  instruments_.forward_us = &metrics_.histogram("router.forward_us");
  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&PlanRouter::AcceptLoop, this);
  return Status::OK();
}

void PlanRouter::Shutdown() {
  // Atomic store only — safe from signal handlers; the accept and
  // connection loops notice at their next idle poll tick.
  draining_.store(true, std::memory_order_release);
}

void PlanRouter::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread has exited, so no new connection threads can
  // appear — joining the snapshot below drains everything.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void PlanRouter::Stop() {
  Shutdown();
  Wait();
}

size_t PlanRouter::backend_count() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.node_count();
}

std::vector<HashRing::Node> PlanRouter::backends() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.nodes();
}

void PlanRouter::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    struct pollfd entry = {listen_fd_, POLLIN, 0};
    const int ready =
        ::poll(&entry, 1, static_cast<int>(config_.idle_poll_ms));
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    instruments_.connections_accepted->Increment();
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back(&PlanRouter::ServeConnection, this, fd);
  }
}

void PlanRouter::ServeConnection(int fd) {
  ConnectionState state(fd, config_.max_frame_bytes);
  char buffer[16 * 1024];
  bool open = true;
  while (open && !draining_.load(std::memory_order_acquire)) {
    Result<size_t> received =
        net::RecvSome(fd, buffer, sizeof(buffer),
                      net::Deadline::AfterMs(config_.idle_poll_ms));
    if (!received.ok()) {
      if (received.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle tick: re-check draining_, keep listening
      }
      break;
    }
    if (received.value() == 0) break;  // clean peer close
    state.frames.Append(buffer, received.value());
    std::string payload;
    while (open) {
      Result<bool> next = state.frames.Next(&payload);
      if (!next.ok()) {
        // Framing violation: the byte stream can no longer be trusted.
        instruments_.frames_malformed->Increment();
        wire::Response error;
        error.status = wire::WireStatus::kBadRequest;
        error.error = next.status().message();
        (void)SendResponse(&state, error);
        open = false;
        break;
      }
      if (!next.value()) break;
      open = HandleFrame(&state, payload);
    }
  }
  ::close(fd);
}

bool PlanRouter::HandleFrame(ConnectionState* state,
                             const std::string& payload) {
  Result<wire::Request> decoded = wire::DecodeRequest(payload);
  if (!decoded.ok()) {
    instruments_.frames_malformed->Increment();
    wire::Response error;
    error.status = wire::WireStatus::kBadRequest;
    error.error = decoded.status().message();
    (void)SendResponse(state, error);
    return false;
  }
  const wire::Request& request = decoded.value();
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  switch (request.type) {
    case wire::MessageType::kPredict:
    case wire::MessageType::kPredictBatch:
    case wire::MessageType::kExecute:
      response = Forward(state, request);
      break;
    case wire::MessageType::kPing:
      instruments_.requests_local->Increment();
      break;
    case wire::MessageType::kMetrics:
      instruments_.requests_local->Increment();
      response = AggregateMetrics(state);
      response.id = request.id;
      break;
    case wire::MessageType::kTopology:
      instruments_.requests_local->Increment();
      response = ApplyTopology(request);
      break;
    case wire::MessageType::kSnapshot:
    case wire::MessageType::kSnapshotApply:
      instruments_.requests_local->Increment();
      response.status = wire::WireStatus::kBadRequest;
      response.error =
          "snapshot replication is shard-to-shard; connect to the shard "
          "directly";
      break;
    case wire::MessageType::kShutdown:
      instruments_.requests_local->Increment();
      (void)SendResponse(state, response);  // ack before draining
      Shutdown();
      return false;
    case wire::MessageType::kInvalid:
      response.status = wire::WireStatus::kBadRequest;
      response.error = "invalid request type";
      break;
  }
  return SendResponse(state, response).ok();
}

wire::Response PlanRouter::Forward(ConnectionState* state,
                                   const wire::Request& request) {
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  HashRing::Node owner;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mu_);
    Result<HashRing::Node> resolved = ring_.Owner(request.template_name);
    if (!resolved.ok()) {
      instruments_.forward_failures->Increment();
      response.status = wire::WireStatus::kInternal;
      response.error = "no backend shards on the ring";
      return response;
    }
    owner = resolved.value();
  }
  PpcClient* client = state->ClientFor(owner, config_);
  if (client == nullptr) {
    instruments_.forward_failures->Increment();
    response.status = wire::WireStatus::kInternal;
    response.error = "shard " + owner.Address() + " is unreachable";
    return response;
  }
  const auto start = std::chrono::steady_clock::now();
  Result<wire::Response> answer = client->Call(request);
  instruments_.forward_us->Record(MicrosSince(start));
  if (!answer.ok()) {
    // The client closed its connection on the failure; drop it so the
    // next request for this shard re-dials instead of failing forever.
    state->Drop(owner);
    instruments_.forward_failures->Increment();
    response.status = ForwardFailureStatus(answer.status());
    response.error = "shard " + owner.Address() + ": " +
                     answer.status().message();
    return response;
  }
  instruments_.requests_forwarded->Increment();
  response = std::move(answer.value());
  // The shard answered under the router's internal request id; the
  // client must see its own.
  response.id = request.id;
  return response;
}

wire::Response PlanRouter::AggregateMetrics(ConnectionState* state) {
  wire::Response response;
  response.type = wire::MessageType::kMetrics;
  std::string json = "{\"router\":";
  json += metrics_.TakeSnapshot().ToJson();
  json += ",\"shards\":{";
  bool first = true;
  for (const HashRing::Node& node : backends()) {
    if (!first) json += ",";
    first = false;
    AppendJsonString(node.Address(), &json);
    json += ":";
    PpcClient* client = state->ClientFor(node, config_);
    Result<std::string> shard_json =
        client == nullptr
            ? Result<std::string>(Status::Unavailable("unreachable"))
            : client->Metrics();
    if (shard_json.ok()) {
      // Shard payloads are themselves JSON objects; splice verbatim.
      json += shard_json.value();
    } else {
      state->Drop(node);
      json += "{\"error\":";
      AppendJsonString(shard_json.status().ToString(), &json);
      json += "}";
    }
  }
  json += "}}";
  response.metrics_json = std::move(json);
  return response;
}

wire::Response PlanRouter::ApplyTopology(const wire::Request& request) {
  wire::Response response;
  response.type = wire::MessageType::kTopology;
  response.id = request.id;
  const HashRing::Node node{request.topology_host, request.topology_port};
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  if (request.topology_op == wire::TopologyOp::kAdd) {
    ring_.Add(node);
    instruments_.topology_adds->Increment();
  } else {
    if (!ring_.Remove(node)) {
      response.status = wire::WireStatus::kNotFound;
      response.error = "backend " + node.Address() + " is not on the ring";
      response.backend_count = static_cast<uint32_t>(ring_.node_count());
      return response;
    }
    instruments_.topology_removes->Increment();
  }
  response.backend_count = static_cast<uint32_t>(ring_.node_count());
  return response;
}

Status PlanRouter::SendResponse(ConnectionState* state,
                                const wire::Response& response) {
  std::string frame;
  wire::EncodeResponse(response, &frame);
  return net::WriteAll(
      state->fd, frame.data(), frame.size(),
      net::Deadline::AfterMsOrInfinite(config_.write_deadline_ms));
}

}  // namespace ppc
