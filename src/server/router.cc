#include "server/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "ppc/predictor_state.h"
#include "server/net_util.h"

namespace ppc {

namespace {

/// Maps a failed forward to the wire vocabulary: a backend deadline is
/// the client's TIMEOUT; everything else (connection loss, refused dial)
/// is INTERNAL — the router itself is healthy, the shard is not.
wire::WireStatus ForwardFailureStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded
             ? wire::WireStatus::kTimeout
             : wire::WireStatus::kInternal;
}

/// Whether a health-path failure looks like the *transport* (peer gone,
/// refused dial, deadline) rather than the server rejecting the payload.
/// Only transport failures feed the breaker: a replica that NACKs one
/// snapshot apply (e.g. a generation conflict) is still alive and
/// serving.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kInternal;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Lives on a connection thread's stack: the client-side deframer plus
/// this thread's private shard connections (keyed by shard address, so
/// no backend connection is ever shared across threads).
struct PlanRouter::ConnectionState {
  ConnectionState(int fd_in, size_t max_frame_bytes)
      : fd(fd_in), frames(max_frame_bytes) {}

  int fd;
  wire::FrameBuffer frames;
  std::map<std::string, std::unique_ptr<PpcClient>> shard_clients;

  /// Get-or-dial the client for `node`. Null when the dial fails (the
  /// caller reports the shard unavailable); a cached client for a shard
  /// that since died is dropped by the caller after the failed call, so
  /// the next request re-dials.
  PpcClient* ClientFor(const HashRing::Node& node,
                       const PlanRouter::Config& config) {
    const std::string address = node.Address();
    auto it = shard_clients.find(address);
    if (it != shard_clients.end()) return it->second.get();
    PpcClient::Options options;
    options.call_deadline_ms = config.backend_deadline_ms;
    options.retry = config.backend_retry;
    auto client = std::make_unique<PpcClient>(options);
    if (!client->Connect(node.host, node.port).ok()) return nullptr;
    return shard_clients.emplace(address, std::move(client))
        .first->second.get();
  }

  void Drop(const HashRing::Node& node) {
    shard_clients.erase(node.Address());
  }
};

PlanRouter::PlanRouter(Config config)
    : config_(std::move(config)), ring_(config_.vnodes_per_node) {
  for (const HashRing::Node& node : config_.backends) {
    ring_.Add(node);
    auto& state = backend_states_[node.Address()];
    if (state == nullptr) {
      state = std::make_shared<BackendState>(config_.breaker);
    }
  }
}

PlanRouter::~PlanRouter() { Stop(); }

Status PlanRouter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router already started");
  }
  PPC_ASSIGN_OR_RETURN(
      listen_fd_,
      net::Listen(config_.bind_address, config_.port, /*backlog=*/64, &port_));
  instruments_.connections_accepted =
      &metrics_.counter("router.connections.accepted");
  instruments_.requests_forwarded =
      &metrics_.counter("router.requests.forwarded");
  instruments_.requests_local = &metrics_.counter("router.requests.local");
  instruments_.forward_failures =
      &metrics_.counter("router.forward_failures");
  instruments_.topology_adds = &metrics_.counter("router.topology.adds");
  instruments_.topology_removes =
      &metrics_.counter("router.topology.removes");
  instruments_.frames_malformed =
      &metrics_.counter("router.frames.malformed");
  instruments_.forward_us = &metrics_.histogram("router.forward_us");
  instruments_.health_probes = &metrics_.counter("router.health.probes");
  instruments_.health_probe_failures =
      &metrics_.counter("router.health.probe_failures");
  instruments_.breaker_opens = &metrics_.counter("router.breaker.opens");
  instruments_.breaker_closes = &metrics_.counter("router.breaker.closes");
  instruments_.failovers = &metrics_.counter("router.failovers");
  instruments_.replication_ships =
      &metrics_.counter("router.replication.ships");
  instruments_.replication_skipped =
      &metrics_.counter("router.replication.skipped");
  instruments_.replication_ship_failures =
      &metrics_.counter("router.replication.ship_failures");
  instruments_.replication_templates_shipped =
      &metrics_.counter("router.replication.templates_shipped");
  instruments_.rejoin_warm_starts =
      &metrics_.counter("router.rejoin.warm_starts");
  instruments_.rejoin_failures = &metrics_.counter("router.rejoin.failures");
  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&PlanRouter::AcceptLoop, this);
  if (config_.probe_interval_ms > 0) {
    health_thread_ = std::thread(&PlanRouter::HealthLoop, this);
  }
  return Status::OK();
}

void PlanRouter::Shutdown() {
  // Atomic store only — safe from signal handlers; the accept and
  // connection loops notice at their next idle poll tick.
  draining_.store(true, std::memory_order_release);
}

void PlanRouter::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  // The accept thread has exited, so no new connection threads can
  // appear — joining the snapshot below drains everything.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void PlanRouter::Stop() {
  Shutdown();
  Wait();
}

size_t PlanRouter::backend_count() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.node_count();
}

std::vector<HashRing::Node> PlanRouter::backends() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.nodes();
}

std::vector<PlanRouter::BackendStatus> PlanRouter::backend_status() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  std::vector<BackendStatus> statuses;
  for (const HashRing::Node& node : ring_.nodes()) {
    BackendStatus status;
    status.node = node;
    const auto it = backend_states_.find(node.Address());
    if (it != backend_states_.end()) {
      status.breaker = it->second->breaker.state();
    }
    statuses.push_back(std::move(status));
  }
  return statuses;
}

void PlanRouter::RecordBackendSuccess(BackendState* state) {
  if (state->breaker.RecordSuccess()) {
    instruments_.breaker_closes->Increment();
  }
}

void PlanRouter::RecordBackendFailure(BackendState* state) {
  if (state->breaker.RecordFailure()) {
    instruments_.breaker_opens->Increment();
  }
}

void PlanRouter::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    struct pollfd entry = {listen_fd_, POLLIN, 0};
    const int ready =
        ::poll(&entry, 1, static_cast<int>(config_.idle_poll_ms));
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    instruments_.connections_accepted->Increment();
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back(&PlanRouter::ServeConnection, this, fd);
  }
}

void PlanRouter::ServeConnection(int fd) {
  ConnectionState state(fd, config_.max_frame_bytes);
  char buffer[16 * 1024];
  bool open = true;
  while (open && !draining_.load(std::memory_order_acquire)) {
    Result<size_t> received =
        net::RecvSome(fd, buffer, sizeof(buffer),
                      net::Deadline::AfterMs(config_.idle_poll_ms));
    if (!received.ok()) {
      if (received.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle tick: re-check draining_, keep listening
      }
      break;
    }
    if (received.value() == 0) break;  // clean peer close
    state.frames.Append(buffer, received.value());
    std::string payload;
    while (open) {
      Result<bool> next = state.frames.Next(&payload);
      if (!next.ok()) {
        // Framing violation: the byte stream can no longer be trusted.
        instruments_.frames_malformed->Increment();
        wire::Response error;
        error.status = wire::WireStatus::kBadRequest;
        error.error = next.status().message();
        (void)SendResponse(&state, error);
        open = false;
        break;
      }
      if (!next.value()) break;
      open = HandleFrame(&state, payload);
    }
  }
  ::close(fd);
}

bool PlanRouter::HandleFrame(ConnectionState* state,
                             const std::string& payload) {
  Result<wire::Request> decoded = wire::DecodeRequest(payload);
  if (!decoded.ok()) {
    instruments_.frames_malformed->Increment();
    wire::Response error;
    error.status = wire::WireStatus::kBadRequest;
    error.error = decoded.status().message();
    (void)SendResponse(state, error);
    return false;
  }
  const wire::Request& request = decoded.value();
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  switch (request.type) {
    case wire::MessageType::kPredict:
    case wire::MessageType::kPredictBatch:
    case wire::MessageType::kExecute:
      response = Forward(state, request);
      break;
    case wire::MessageType::kPing:
      instruments_.requests_local->Increment();
      break;
    case wire::MessageType::kMetrics:
      instruments_.requests_local->Increment();
      response = AggregateMetrics(state);
      response.id = request.id;
      break;
    case wire::MessageType::kTopology:
      instruments_.requests_local->Increment();
      response = ApplyTopology(request);
      break;
    case wire::MessageType::kSnapshot:
    case wire::MessageType::kSnapshotApply:
      instruments_.requests_local->Increment();
      response.status = wire::WireStatus::kBadRequest;
      response.error =
          "snapshot replication is shard-to-shard; connect to the shard "
          "directly";
      break;
    case wire::MessageType::kShutdown:
      instruments_.requests_local->Increment();
      (void)SendResponse(state, response);  // ack before draining
      Shutdown();
      return false;
    case wire::MessageType::kInvalid:
      response.status = wire::WireStatus::kBadRequest;
      response.error = "invalid request type";
      break;
  }
  return SendResponse(state, response).ok();
}

Result<PlanRouter::Route> PlanRouter::ResolveRoute(
    const std::string& template_name) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  PPC_ASSIGN_OR_RETURN(HashRing::Placement placement,
                       ring_.PlacementFor(template_name));
  Route route;
  route.primary = placement.primary;
  route.has_replica = placement.has_replica;
  if (placement.has_replica) route.replica = placement.replica;
  const auto primary_it = backend_states_.find(placement.primary.Address());
  route.primary_state = primary_it != backend_states_.end()
                            ? primary_it->second
                            : std::make_shared<BackendState>(config_.breaker);
  if (placement.has_replica) {
    const auto replica_it = backend_states_.find(placement.replica.Address());
    route.replica_state = replica_it != backend_states_.end()
                              ? replica_it->second
                              : std::make_shared<BackendState>(config_.breaker);
  }
  return route;
}

wire::Response PlanRouter::Forward(ConnectionState* state,
                                   const wire::Request& request) {
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  Result<Route> resolved = ResolveRoute(request.template_name);
  if (!resolved.ok()) {
    instruments_.forward_failures->Increment();
    response.status = wire::WireStatus::kInternal;
    response.error = "no backend shards on the ring";
    return response;
  }
  const Route& route = resolved.value();

  struct Attempt {
    const HashRing::Node* node;
    BackendState* backend;
    bool is_primary;
  };
  // Candidate order: the primary unless its breaker has it out of
  // rotation, then the replica. With no distinct replica (single-shard
  // ring) the primary is attempted even through an open breaker —
  // fast-failing would trade a possible answer for a certain error.
  std::vector<Attempt> attempts;
  if (route.primary_state->breaker.AllowRequest() || !route.has_replica) {
    attempts.push_back({&route.primary, route.primary_state.get(), true});
  }
  if (route.has_replica && route.replica_state->breaker.AllowRequest()) {
    attempts.push_back({&route.replica, route.replica_state.get(), false});
  }
  if (attempts.empty()) {
    // Both breakers open: try the primary anyway rather than failing
    // without a single attempt — it may have just come back, and the
    // prober will re-admit it properly either way.
    attempts.push_back({&route.primary, route.primary_state.get(), true});
  }

  Status failure = Status::Unavailable("no backend attempt made");
  for (const Attempt& attempt : attempts) {
    // This thread's cached connection can be stale — the shard restarted
    // (or dropped idle peers) since the last exchange — in which case the
    // call fails Unavailable even though the shard is healthy again.
    // Read-only requests get one retry on a fresh dial before the
    // failure counts against the backend; an EXECUTE is never
    // auto-replayed once any bytes may have reached a shard.
    const int tries = request.type == wire::MessageType::kExecute ? 1 : 2;
    Result<wire::Response> answer = failure;
    for (int attempt_try = 0; attempt_try < tries; ++attempt_try) {
      PpcClient* client = state->ClientFor(*attempt.node, config_);
      if (client == nullptr) {
        answer = Status::Unavailable("shard " + attempt.node->Address() +
                                     " is unreachable");
        break;
      }
      const auto start = std::chrono::steady_clock::now();
      answer = client->Call(request);
      instruments_.forward_us->Record(MicrosSince(start));
      if (answer.ok()) break;
      // The client closed its connection on the failure; drop it so the
      // next request for this shard re-dials instead of failing forever.
      state->Drop(*attempt.node);
      if (answer.status().code() != StatusCode::kUnavailable) break;
    }
    if (!answer.ok()) {
      RecordBackendFailure(attempt.backend);
      failure = answer.status();
      if (request.type == wire::MessageType::kExecute &&
          answer.status().code() == StatusCode::kDeadlineExceeded) {
        // The EXECUTE may still be running on the timed-out shard;
        // replaying it on the replica could run the query twice. PREDICTs
        // are read-only and always safe to retry.
        break;
      }
      continue;
    }
    RecordBackendSuccess(attempt.backend);
    instruments_.requests_forwarded->Increment();
    response = std::move(answer.value());
    // The shard answered under the router's internal request id; the
    // client must see its own.
    response.id = request.id;
    if (!attempt.is_primary) {
      instruments_.failovers->Increment();
      if (request.type == wire::MessageType::kExecute && response.ok()) {
        // The answer is live, but the corrective feedback landed on the
        // replica — clients tracking learning locality need to know.
        response.execute.failed_over = true;
      }
    }
    return response;
  }
  instruments_.forward_failures->Increment();
  response.status = ForwardFailureStatus(failure);
  response.error =
      "shard " + route.primary.Address() + ": " + failure.message();
  return response;
}

wire::Response PlanRouter::AggregateMetrics(ConnectionState* state) {
  wire::Response response;
  response.type = wire::MessageType::kMetrics;
  std::string json = "{\"router\":";
  json += metrics_.TakeSnapshot().ToJson();
  json += ",\"shards\":{";
  std::vector<std::pair<HashRing::Node, std::shared_ptr<BackendState>>>
      targets;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mu_);
    for (const HashRing::Node& node : ring_.nodes()) {
      const auto it = backend_states_.find(node.Address());
      targets.emplace_back(
          node, it != backend_states_.end() ? it->second : nullptr);
    }
  }
  bool first = true;
  for (const auto& [node, backend] : targets) {
    if (!first) json += ",";
    first = false;
    AppendJsonString(node.Address(), &json);
    json += ":";
    const CircuitBreaker::State breaker_state =
        backend != nullptr ? backend->breaker.state()
                           : CircuitBreaker::State::kClosed;
    if (breaker_state != CircuitBreaker::State::kClosed) {
      // Already known down: report it without burning a dial + deadline —
      // aggregated METRICS must not become as slow as the outage itself.
      json += "{\"up\":false,\"breaker_state\":\"";
      json += CircuitBreaker::StateName(breaker_state);
      json += "\"}";
      continue;
    }
    PpcClient* client = state->ClientFor(node, config_);
    Result<std::string> shard_json =
        client == nullptr
            ? Result<std::string>(Status::Unavailable("unreachable"))
            : client->Metrics();
    if (shard_json.ok()) {
      if (backend != nullptr) RecordBackendSuccess(backend.get());
      // Shard payloads are themselves JSON objects; splice verbatim.
      json += "{\"up\":true,\"breaker_state\":\"closed\",\"metrics\":";
      json += shard_json.value();
      json += "}";
    } else {
      // One dead shard degrades its own entry, never the aggregate.
      state->Drop(node);
      if (backend != nullptr) RecordBackendFailure(backend.get());
      json += "{\"up\":false,\"breaker_state\":\"";
      json += CircuitBreaker::StateName(
          backend != nullptr ? backend->breaker.state()
                             : CircuitBreaker::State::kClosed);
      json += "\",\"error\":";
      AppendJsonString(shard_json.status().ToString(), &json);
      json += "}";
    }
  }
  json += "}}";
  response.metrics_json = std::move(json);
  return response;
}

wire::Response PlanRouter::ApplyTopology(const wire::Request& request) {
  wire::Response response;
  response.type = wire::MessageType::kTopology;
  response.id = request.id;
  const HashRing::Node node{request.topology_host, request.topology_port};
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  if (request.topology_op == wire::TopologyOp::kAdd) {
    ring_.Add(node);
    auto& state = backend_states_[node.Address()];
    if (state == nullptr) {
      state = std::make_shared<BackendState>(config_.breaker);
    }
    instruments_.topology_adds->Increment();
  } else {
    if (!ring_.Remove(node)) {
      response.status = wire::WireStatus::kNotFound;
      response.error = "backend " + node.Address() + " is not on the ring";
      response.backend_count = static_cast<uint32_t>(ring_.node_count());
      return response;
    }
    backend_states_.erase(node.Address());
    instruments_.topology_removes->Increment();
  }
  response.backend_count = static_cast<uint32_t>(ring_.node_count());
  return response;
}

Status PlanRouter::SendResponse(ConnectionState* state,
                                const wire::Response& response) {
  std::string frame;
  wire::EncodeResponse(response, &frame);
  return net::WriteAll(
      state->fd, frame.data(), frame.size(),
      net::Deadline::AfterMsOrInfinite(config_.write_deadline_ms));
}

PpcClient* PlanRouter::HealthClientFor(HealthClients* clients,
                                       const HashRing::Node& node) {
  const std::string address = node.Address();
  auto it = clients->find(address);
  if (it != clients->end()) return it->second.get();
  PpcClient::Options options;
  options.call_deadline_ms = config_.probe_deadline_ms;
  // Single attempt: the breaker, not a retry loop, owns failure policy
  // on the health path.
  options.retry.max_attempts = 1;
  auto client = std::make_unique<PpcClient>(options);
  // A failed dial is fine — the client remembers the endpoint and each
  // later call re-attempts the connection under its own deadline.
  (void)client->Connect(node.host, node.port);
  return clients->emplace(address, std::move(client)).first->second.get();
}

void PlanRouter::HealthLoop() {
  HealthClients clients;
  ShippedHashes shipped;
  auto last_replication = std::chrono::steady_clock::now();
  while (!draining_.load(std::memory_order_acquire)) {
    // Sleep one probe interval in idle_poll-sized slices so a drain is
    // noticed promptly even under a long interval.
    const auto tick_end =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.probe_interval_ms);
    while (!draining_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < tick_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<int64_t>(1, std::min(config_.idle_poll_ms,
                                        config_.probe_interval_ms))));
    }
    if (draining_.load(std::memory_order_acquire)) break;

    std::vector<std::pair<HashRing::Node, std::shared_ptr<BackendState>>>
        targets;
    {
      std::shared_lock<std::shared_mutex> lock(topology_mu_);
      for (const HashRing::Node& node : ring_.nodes()) {
        const auto it = backend_states_.find(node.Address());
        if (it == backend_states_.end()) continue;
        targets.emplace_back(node, it->second);
      }
    }

    // Forget clients and shipped-hash bookkeeping for shards no longer on
    // the ring.
    std::set<std::string> live;
    for (const auto& [node, backend] : targets) live.insert(node.Address());
    for (auto it = clients.begin(); it != clients.end();) {
      it = live.count(it->first) ? std::next(it) : clients.erase(it);
    }
    for (auto it = shipped.begin(); it != shipped.end();) {
      if (!live.count(it->first)) {
        it = shipped.erase(it);
        continue;
      }
      auto& per_replica = it->second;
      for (auto jt = per_replica.begin(); jt != per_replica.end();) {
        jt = live.count(jt->first) ? std::next(jt) : per_replica.erase(jt);
      }
      ++it;
    }

    for (const auto& [node, backend] : targets) {
      if (draining_.load(std::memory_order_acquire)) break;
      ProbeBackend(node, backend, &clients, &shipped);
    }

    if (config_.replication_interval_ms > 0 &&
        !draining_.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() - last_replication >=
            std::chrono::milliseconds(config_.replication_interval_ms)) {
      ReplicateOnce(&clients, &shipped);
      last_replication = std::chrono::steady_clock::now();
    }
  }
}

void PlanRouter::ProbeBackend(const HashRing::Node& node,
                              const std::shared_ptr<BackendState>& state,
                              HealthClients* clients, ShippedHashes* shipped) {
  if (state->breaker.state() == CircuitBreaker::State::kClosed) {
    instruments_.health_probes->Increment();
    PpcClient* client = HealthClientFor(clients, node);
    const Status alive = client->Ping();
    if (alive.ok()) {
      RecordBackendSuccess(state.get());
    } else {
      instruments_.health_probe_failures->Increment();
      RecordBackendFailure(state.get());
    }
    return;
  }
  if (!state->breaker.TryBeginProbe()) return;  // open, still cooling down
  // Half-open trial. The shard re-enters rotation only after a PING
  // succeeds AND a wire-level warm start from its replicas applied
  // cleanly — a rejoining shard must never be observable cold.
  instruments_.health_probes->Increment();
  PpcClient* client = HealthClientFor(clients, node);
  const Status alive = client->Ping();
  if (!alive.ok()) {
    instruments_.health_probe_failures->Increment();
    RecordBackendFailure(state.get());
    return;
  }
  if (!WarmRejoin(node, clients)) {
    instruments_.rejoin_failures->Increment();
    RecordBackendFailure(state.get());
    return;
  }
  instruments_.rejoin_warm_starts->Increment();
  // The restart lost everything ever shipped *to* this shard, and its
  // own outbound bookkeeping is equally stale: forget both directions so
  // the next replication pass re-ships from scratch.
  shipped->erase(node.Address());
  for (auto& [primary, per_replica] : *shipped) {
    per_replica.erase(node.Address());
  }
  RecordBackendSuccess(state.get());
}

bool PlanRouter::WarmRejoin(const HashRing::Node& node,
                            HealthClients* clients) {
  // Snapshot the ring + the other backends under the lock; the wire
  // transfers run outside it.
  HashRing ring_snapshot(config_.vnodes_per_node);
  std::vector<std::pair<HashRing::Node, std::shared_ptr<BackendState>>>
      sources;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mu_);
    ring_snapshot = ring_;
    for (const HashRing::Node& other : ring_.nodes()) {
      if (other == node) continue;
      const auto it = backend_states_.find(other.Address());
      if (it == backend_states_.end()) continue;
      sources.emplace_back(other, it->second);
    }
  }
  const std::string rejoining = node.Address();
  for (const auto& [source, backend] : sources) {
    // A replica that is itself down cannot warm anyone; the templates it
    // held for the rejoining shard restart cold (both copies were lost —
    // there is nothing better to restore from).
    if (backend->breaker.state() != CircuitBreaker::State::kClosed) continue;
    PpcClient* source_client = HealthClientFor(clients, source);
    Result<std::string> blob = source_client->FetchSnapshot();
    if (!blob.ok()) return false;  // retry the whole rejoin next tick
    Result<PredictorState> full = PredictorState::Restore(blob.value());
    if (!full.ok()) return false;
    const std::string source_address = source.Address();
    // Only the templates this source holds *as the designated replica* of
    // the rejoining primary — its other entries are cold or authoritative
    // elsewhere.
    const PredictorState subset = full.value().Filtered(
        [&](const PredictorState::TemplateEntry& entry) {
          Result<HashRing::Placement> placement =
              ring_snapshot.PlacementFor(entry.name);
          return placement.ok() && placement.value().has_replica &&
                 placement.value().primary.Address() == rejoining &&
                 placement.value().replica.Address() == source_address;
        });
    if (subset.entries().empty()) continue;
    PpcClient* target = HealthClientFor(clients, node);
    Result<uint32_t> applied = target->ApplySnapshot(subset.Serialize());
    if (!applied.ok()) return false;
  }
  return true;
}

void PlanRouter::ReplicateOnce(HealthClients* clients,
                               ShippedHashes* shipped) {
  HashRing ring_snapshot(config_.vnodes_per_node);
  std::vector<std::pair<HashRing::Node, std::shared_ptr<BackendState>>>
      targets;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mu_);
    ring_snapshot = ring_;
    for (const HashRing::Node& node : ring_.nodes()) {
      const auto it = backend_states_.find(node.Address());
      if (it == backend_states_.end()) continue;
      targets.emplace_back(node, it->second);
    }
  }
  if (targets.size() < 2) return;  // no distinct replica exists

  for (const auto& [primary, primary_backend] : targets) {
    if (draining_.load(std::memory_order_acquire)) return;
    if (primary_backend->breaker.state() != CircuitBreaker::State::kClosed) {
      continue;
    }
    PpcClient* source = HealthClientFor(clients, primary);
    Result<std::string> blob = source->FetchSnapshot();
    if (!blob.ok()) {
      instruments_.replication_ship_failures->Increment();
      if (IsTransportFailure(blob.status())) {
        RecordBackendFailure(primary_backend.get());
      }
      continue;
    }
    Result<PredictorState> full = PredictorState::Restore(blob.value());
    if (!full.ok()) {
      instruments_.replication_ship_failures->Increment();
      continue;
    }
    const std::string primary_address = primary.Address();
    for (const auto& [replica, replica_backend] : targets) {
      if (replica == primary) continue;
      if (replica_backend->breaker.state() !=
          CircuitBreaker::State::kClosed) {
        continue;
      }
      const std::string replica_address = replica.Address();
      auto& pair_hashes = (*shipped)[primary_address][replica_address];
      // Ship only this primary's authoritative templates whose replica is
      // this shard, and only when their content changed since the last
      // ship — the delta semantics of SerializeDelta, expressed as a
      // full-format subset because kSnapshotApply only accepts full
      // snapshots (the receiving shard keeps no base to merge against).
      const PredictorState subset = full.value().Filtered(
          [&](const PredictorState::TemplateEntry& entry) {
            Result<HashRing::Placement> placement =
                ring_snapshot.PlacementFor(entry.name);
            if (!placement.ok() || !placement.value().has_replica) {
              return false;
            }
            if (placement.value().primary.Address() != primary_address ||
                placement.value().replica.Address() != replica_address) {
              return false;
            }
            const auto it = pair_hashes.find(entry.name);
            return it == pair_hashes.end() ||
                   it->second != entry.content_hash;
          });
      if (subset.entries().empty()) {
        instruments_.replication_skipped->Increment();
        continue;
      }
      PpcClient* sink = HealthClientFor(clients, replica);
      Result<uint32_t> applied = sink->ApplySnapshot(subset.Serialize());
      if (!applied.ok()) {
        instruments_.replication_ship_failures->Increment();
        if (IsTransportFailure(applied.status())) {
          RecordBackendFailure(replica_backend.get());
        }
        continue;
      }
      instruments_.replication_ships->Increment();
      instruments_.replication_templates_shipped->Increment(
          subset.entries().size());
      for (const PredictorState::TemplateEntry& entry : subset.entries()) {
        pair_hashes[entry.name] = entry.content_hash;
      }
    }
  }
}

}  // namespace ppc
