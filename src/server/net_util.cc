#include "server/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/errno_util.h"
#include "server/failpoints.h"

namespace ppc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + ErrnoMessage(errno));
}

bool ErrnoMeansPeerGone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN ||
         err == ESHUTDOWN;
}

Result<sockaddr_in> MakeAddress(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

/// Waits for `events` on `fd` until the deadline. OK when ready,
/// DeadlineExceeded when time ran out, Internal on a poll failure.
Status PollFor(int fd, short events, const Deadline& deadline) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, deadline.PollTimeoutMs());
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (errno == EINTR) {
      if (deadline.expired()) {
        return Status::DeadlineExceeded("socket wait timed out");
      }
      continue;
    }
    return Errno("poll");
  }
}

}  // namespace

int Deadline::PollTimeoutMs() const {
  if (infinite_) return -1;
  const auto remaining = when_ - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  // Round up so a sub-millisecond remainder waits instead of spinning.
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

Result<int> Listen(const std::string& bind_address, uint16_t port,
                   int backlog, uint16_t* bound_port) {
  PPC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(bind_address, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + bind_address + ":" +
                            std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status st = Errno("getsockname");
      ::close(fd);
      return st;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

Result<int> Connect(const std::string& host, uint16_t port,
                    const Deadline& deadline) {
  PPC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  // The handshake runs non-blocking so the deadline is enforceable: a
  // blocking connect to a peer that drops SYNs would sit in the kernel's
  // own retry schedule (minutes) with no way to bail out.
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    const Status st = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    const Status ready = PollFor(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      ::close(fd);
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        return Status::DeadlineExceeded("connect " + host + ":" +
                                        std::to_string(port) + " timed out");
      }
      return ready;
    }
    // Writability only means the handshake resolved; SO_ERROR says how.
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err != 0) errno = err;
      const Status st = Errno("connect " + host + ":" + std::to_string(port));
      ::close(fd);
      return st;
    }
  }
  // Callers expect a blocking fd; per-operation deadlines are enforced by
  // the read/write wrappers.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    const Status st = Errno("fcntl(clear O_NONBLOCK)");
    ::close(fd);
    return st;
  }
  // Request/response frames are small; Nagle only adds latency here.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

namespace {

/// Copies a prefix of iov[idx..iovcnt) totaling at most `budget` bytes
/// into `dst` (at least one byte when budget > 0 and anything remains).
/// Returns the number of iovecs written. Used by the kShortIo and
/// kTruncate failpoints, which cap one send() by *bytes* regardless of
/// how those bytes straddle iovec boundaries — that is exactly the case
/// the mid-header resume test exercises.
int CappedView(const struct iovec* iov, int idx, int iovcnt, size_t budget,
               struct iovec* dst) {
  int out = 0;
  for (int i = idx; i < iovcnt && budget > 0; ++i) {
    if (iov[i].iov_len == 0) continue;
    dst[out].iov_base = iov[i].iov_base;
    dst[out].iov_len = std::min<size_t>(iov[i].iov_len, budget);
    budget -= dst[out].iov_len;
    ++out;
  }
  return out;
}

}  // namespace

Status WritevAll(int fd, const struct iovec* iov, int iovcnt,
                 const Deadline& deadline) {
  if (iovcnt <= 0 || iovcnt > kMaxWriteIovecs) {
    return Status::InvalidArgument("WritevAll: iovcnt out of range: " +
                                   std::to_string(iovcnt));
  }
  // Resume state lives in this local copy: a partial write advances
  // iov_base/iov_len here (possibly mid-iovec), never the caller's array.
  struct iovec local[kMaxWriteIovecs];
  size_t remaining = 0;
  for (int i = 0; i < iovcnt; ++i) {
    local[i] = iov[i];
    remaining += iov[i].iov_len;
  }
  int idx = 0;
  while (remaining > 0) {
    while (local[idx].iov_len == 0) ++idx;
    struct iovec capped[kMaxWriteIovecs];
    msghdr msg{};
    msg.msg_iov = local + idx;
    msg.msg_iovlen = static_cast<size_t>(iovcnt - idx);
    const failpoints::Action fault = failpoints::Hit(failpoints::Site::kSend);
    switch (fault.kind) {
      case failpoints::Kind::kShortIo:
        msg.msg_iovlen = static_cast<size_t>(CappedView(
            local, idx, iovcnt, std::max<uint32_t>(fault.arg, 1), capped));
        msg.msg_iov = capped;
        break;
      case failpoints::Kind::kEagain: {
        // A real EAGAIN means the kernel buffer is full; the socket here
        // IS writable (poll would return instantly), so emulate the
        // unready buffer by burning a tick against the deadline.
        if (deadline.expired()) {
          return Status::DeadlineExceeded("socket wait timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      case failpoints::Kind::kEintr:
        continue;
      case failpoints::Kind::kError:
        return Status::Unavailable("injected send failure");
      case failpoints::Kind::kTruncate: {
        // Deliver a prefix of the remaining bytes, then fail hard — the
        // peer sees a frame truncated mid-body.
        const size_t prefix =
            std::min<size_t>(remaining, std::max<uint32_t>(fault.arg, 0));
        if (prefix > 0) {
          msg.msg_iovlen = static_cast<size_t>(
              CappedView(local, idx, iovcnt, prefix, capped));
          msg.msg_iov = capped;
          [[maybe_unused]] const ssize_t n =
              ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
        }
        return Status::Unavailable("injected frame truncation");
      }
      case failpoints::Kind::kStallMs:
        failpoints::MaybeStall(fault);
        break;
      case failpoints::Kind::kNone:
        break;
    }
    // sendmsg, not writev: writev cannot suppress SIGPIPE. MSG_DONTWAIT
    // so a *blocking* fd (the client's) cannot park inside the syscall
    // past the deadline; EAGAIN routes through PollFor below.
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      // Advance through the local copy, stopping mid-iovec on a short
      // write so the next round resumes at the first unsent byte.
      size_t left = static_cast<size_t>(n);
      remaining -= left;
      while (left > 0) {
        if (local[idx].iov_len <= left) {
          left -= local[idx].iov_len;
          local[idx].iov_len = 0;
          ++idx;
        } else {
          local[idx].iov_base = static_cast<char*>(local[idx].iov_base) + left;
          local[idx].iov_len -= left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      PPC_RETURN_NOT_OK(PollFor(fd, POLLOUT, deadline));
      continue;
    }
    if (n < 0 && ErrnoMeansPeerGone(errno)) {
      return Status::Unavailable("send: " + ErrnoMessage(errno));
    }
    return Errno("send");
  }
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t size,
                const Deadline& deadline) {
  if (size == 0) return Status::OK();
  struct iovec iov;
  iov.iov_base = const_cast<char*>(data);
  iov.iov_len = size;
  return WritevAll(fd, &iov, 1, deadline);
}

bool SendAll(int fd, const char* data, size_t size, const Deadline& deadline) {
  return WriteAll(fd, data, size, deadline).ok();
}

Status ReadFull(int fd, char* buffer, size_t size, const Deadline& deadline) {
  size_t received = 0;
  while (received < size) {
    PPC_ASSIGN_OR_RETURN(
        size_t n, RecvSome(fd, buffer + received, size - received, deadline));
    if (n == 0) {
      return Status::Unavailable("peer closed after " +
                                 std::to_string(received) + " of " +
                                 std::to_string(size) + " bytes");
    }
    received += n;
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, char* buffer, size_t size,
                        const Deadline& deadline) {
  while (true) {
    size_t limit = size;
    const failpoints::Action fault = failpoints::Hit(failpoints::Site::kRecv);
    switch (fault.kind) {
      case failpoints::Kind::kShortIo:
        limit = std::min<size_t>(limit, std::max<uint32_t>(fault.arg, 1));
        break;
      case failpoints::Kind::kEagain: {
        // As in WriteAll: emulate the unready buffer with a slept tick —
        // the fd may actually be readable, so polling would not wait.
        if (deadline.expired()) {
          return Status::DeadlineExceeded("socket wait timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      case failpoints::Kind::kEintr:
        continue;
      case failpoints::Kind::kError:
        return Status::Unavailable("injected recv failure");
      case failpoints::Kind::kStallMs:
        failpoints::MaybeStall(fault);
        break;
      default:
        break;
    }
    if (!deadline.infinite()) {
      // Wait for readability first so a blocking fd honors the deadline.
      PPC_RETURN_NOT_OK(PollFor(fd, POLLIN, deadline));
    }
    const ssize_t n = ::recv(fd, buffer, limit, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Non-blocking fd (or a readiness race): wait, then retry.
      PPC_RETURN_NOT_OK(PollFor(fd, POLLIN, deadline));
      continue;
    }
    if (ErrnoMeansPeerGone(errno)) {
      return Status::Unavailable("recv: " + ErrnoMessage(errno));
    }
    return Errno("recv");
  }
}

RecvOutcome RecvNonBlocking(int fd, char* buffer, size_t size,
                            size_t* received) {
  while (true) {
    size_t limit = size;
    const failpoints::Action fault = failpoints::Hit(failpoints::Site::kRecv);
    switch (fault.kind) {
      case failpoints::Kind::kShortIo:
        limit = std::min<size_t>(limit, std::max<uint32_t>(fault.arg, 1));
        break;
      case failpoints::Kind::kEagain:
        // Safe with level-triggered epoll: the data is still there, the
        // next epoll_wait reports the fd readable again.
        return RecvOutcome::kWouldBlock;
      case failpoints::Kind::kEintr:
        continue;
      case failpoints::Kind::kError:
        return RecvOutcome::kError;
      case failpoints::Kind::kStallMs:
        failpoints::MaybeStall(fault);
        break;
      default:
        break;
    }
    const ssize_t n = ::recv(fd, buffer, limit, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return RecvOutcome::kData;
    }
    if (n == 0) return RecvOutcome::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return RecvOutcome::kWouldBlock;
    }
    return RecvOutcome::kError;
  }
}

}  // namespace net
}  // namespace ppc
