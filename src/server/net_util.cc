#include "server/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ppc {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + ::strerror(errno));
}

Result<sockaddr_in> MakeAddress(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> Listen(const std::string& bind_address, uint16_t port,
                   int backlog, uint16_t* bound_port) {
  PPC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(bind_address, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind " + bind_address + ":" +
                            std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status st = Errno("getsockname");
      ::close(fd);
      return st;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

Result<int> Connect(const std::string& host, uint16_t port) {
  PPC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  // Request/response frames are small; Nagle only adds latency here.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/10000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

Result<size_t> RecvSome(int fd, char* buffer, size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

RecvOutcome RecvNonBlocking(int fd, char* buffer, size_t size,
                            size_t* received) {
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return RecvOutcome::kData;
    }
    if (n == 0) return RecvOutcome::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return RecvOutcome::kWouldBlock;
    }
    return RecvOutcome::kError;
  }
}

}  // namespace net
}  // namespace ppc
