#ifndef PPC_SERVER_NET_UTIL_H_
#define PPC_SERVER_NET_UTIL_H_

#include <sys/uio.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ppc {
namespace net {

/// Thin Status-returning wrappers over the POSIX socket calls the serving
/// layer uses. IPv4 only; hosts are numeric dotted quads (no DNS — the
/// server is an internal service fronted by its own discovery).
///
/// Every blocking operation takes a Deadline, and timeouts are reported
/// distinctly from peer failures (DESIGN.md §14):
///
///   * StatusCode::kDeadlineExceeded — the deadline elapsed; the socket is
///     in an indeterminate mid-operation state and should be closed, but
///     the *peer* may be healthy (a retry on a fresh connection can work).
///   * StatusCode::kUnavailable — the peer closed or reset the connection.

/// A monotonic-clock deadline for socket operations. Infinite() never
/// expires; After(ms) expires that many milliseconds from now. Cheap to
/// copy and compare; poll timeouts derive from the remaining time.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (poll timeout -1).
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline AfterMs(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// AfterMs when ms > 0, Infinite when ms == 0 — the convention used by
  /// the "0 disables the timeout" configuration knobs.
  static Deadline AfterMsOrInfinite(int64_t ms) {
    return ms > 0 ? AfterMs(ms) : Infinite();
  }

  bool infinite() const { return infinite_; }
  bool expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Remaining time as a poll() timeout: -1 when infinite, else the
  /// milliseconds left rounded up (so a deadline 0.4 ms away still waits
  /// rather than spinning), floored at 0 once expired.
  int PollTimeoutMs() const;

 private:
  Deadline() = default;
  bool infinite_ = true;
  Clock::time_point when_{};
};

/// Creates a TCP listen socket bound to `bind_address:port` (port 0 picks
/// an ephemeral port). On success returns the fd and stores the actually
/// bound port in `*bound_port`. The socket has SO_REUSEADDR set and is
/// non-blocking.
Result<int> Listen(const std::string& bind_address, uint16_t port,
                   int backlog, uint16_t* bound_port);

/// Connects to `host:port`, bounded by `deadline`: the TCP handshake runs
/// on a non-blocking socket and is waited on with poll, so an unreachable
/// peer (SYNs dropped, no RST) cannot hold the caller past its deadline —
/// DeadlineExceeded is returned instead, and the caller may retry on a
/// fresh connection. The returned fd is blocking (per-operation deadlines
/// are enforced by the read/write wrappers above).
Result<int> Connect(const std::string& host, uint16_t port,
                    const Deadline& deadline = Deadline::Infinite());

Status SetNonBlocking(int fd);

/// Writes all of `data`, retrying on EINTR and waiting (up to the
/// deadline) for writability on EAGAIN; works for blocking and
/// non-blocking fds, SIGPIPE suppressed. DeadlineExceeded when the
/// deadline expires mid-write (the stream is then mid-frame and must be
/// closed), Unavailable when the peer is gone.
Status WriteAll(int fd, const char* data, size_t size,
                const Deadline& deadline);

/// Upper bound on iovecs per WritevAll call (the server sends two: length
/// prefix + payload).
inline constexpr int kMaxWriteIovecs = 8;

/// Scatter/gather WriteAll: writes every byte of `iov[0..iovcnt)` in
/// order via sendmsg (writev cannot suppress SIGPIPE), with the same
/// deadline, EINTR/EAGAIN, and failpoint semantics as WriteAll. This is
/// the zero-copy send path: the frame's length prefix and its payload go
/// out as two iovecs without being assembled into a contiguous buffer
/// first. A partial write — including one that ends inside the length
/// prefix — resumes exactly where it stopped, mid-iovec, never re-sending
/// bytes; the iovec array itself is not modified (the resume state lives
/// in a local copy). iovcnt must be in (0, kMaxWriteIovecs].
Status WritevAll(int fd, const struct iovec* iov, int iovcnt,
                 const Deadline& deadline);

/// Compatibility shim over WriteAll: true iff every byte was written
/// before the (default infinite) deadline.
bool SendAll(int fd, const char* data, size_t size,
             const Deadline& deadline = Deadline::Infinite());

/// Reads exactly `size` bytes. DeadlineExceeded when the deadline expires
/// first, Unavailable when the peer closes before `size` bytes arrived.
Status ReadFull(int fd, char* buffer, size_t size, const Deadline& deadline);

/// Reads up to `size` bytes (blocking fds block until at least one byte,
/// EOF, error, or the deadline). Returns the byte count — 0 means EOF —
/// DeadlineExceeded on timeout, or an error status on failure.
Result<size_t> RecvSome(int fd, char* buffer, size_t size,
                        const Deadline& deadline = Deadline::Infinite());

/// One non-blocking read attempt, for the epoll loop's level-triggered
/// drain: kData stores the byte count in `*received`, kWouldBlock means
/// the socket is drained for now, kEof a clean peer close, kError a hard
/// failure.
enum class RecvOutcome { kData, kWouldBlock, kEof, kError };
RecvOutcome RecvNonBlocking(int fd, char* buffer, size_t size,
                            size_t* received);

}  // namespace net
}  // namespace ppc

#endif  // PPC_SERVER_NET_UTIL_H_
