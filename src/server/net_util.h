#ifndef PPC_SERVER_NET_UTIL_H_
#define PPC_SERVER_NET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ppc {
namespace net {

/// Thin Status-returning wrappers over the POSIX socket calls the serving
/// layer uses. IPv4 only; hosts are numeric dotted quads (no DNS — the
/// server is an internal service fronted by its own discovery).

/// Creates a TCP listen socket bound to `bind_address:port` (port 0 picks
/// an ephemeral port). On success returns the fd and stores the actually
/// bound port in `*bound_port`. The socket has SO_REUSEADDR set and is
/// non-blocking.
Result<int> Listen(const std::string& bind_address, uint16_t port,
                   int backlog, uint16_t* bound_port);

/// Blocking connect to `host:port`. The returned fd is blocking.
Result<int> Connect(const std::string& host, uint16_t port);

Status SetNonBlocking(int fd);

/// Writes all of `data`, retrying on EINTR and waiting for writability on
/// EAGAIN (works for blocking and non-blocking fds; SIGPIPE suppressed).
/// Returns false on any hard error.
bool SendAll(int fd, const char* data, size_t size);

/// Reads up to `size` bytes (blocking fds block until at least one byte,
/// EOF, or error). Returns the byte count — 0 means EOF — or an error
/// status on failure.
Result<size_t> RecvSome(int fd, char* buffer, size_t size);

/// One non-blocking read attempt, for the epoll loop's level-triggered
/// drain: kData stores the byte count in `*received`, kWouldBlock means
/// the socket is drained for now, kEof a clean peer close, kError a hard
/// failure.
enum class RecvOutcome { kData, kWouldBlock, kEof, kError };
RecvOutcome RecvNonBlocking(int fd, char* buffer, size_t size,
                            size_t* received);

}  // namespace net
}  // namespace ppc

#endif  // PPC_SERVER_NET_UTIL_H_
