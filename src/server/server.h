#ifndef PPC_SERVER_SERVER_H_
#define PPC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ppc/metrics_registry.h"
#include "ppc/ppc_framework.h"
#include "server/bounded_queue.h"
#include "server/load_shed.h"
#include "server/wire_protocol.h"

namespace ppc {

namespace net {
class TimerWheel;
}  // namespace net

/// The network serving layer (DESIGN.md §12): a Linux epoll-based TCP
/// server fronting one PpcFramework with the wire protocol of
/// server/wire_protocol.h.
///
/// Threading model — one IO thread plus a fixed worker pool:
///
///   * The IO thread owns the epoll set: it accepts connections, reads
///     bytes, deframes and decodes requests, and enqueues work items onto
///     a bounded MPMC queue. It never executes a query.
///   * `worker_threads` workers drain the queue, run the request against
///     the framework, and write the response frame directly to the
///     connection (a per-connection write mutex serializes writers, so
///     pipelined responses interleave safely).
///
/// Robustness semantics:
///
///   * Backpressure: when the queue is full the IO thread answers BUSY
///     immediately — requests are never buffered without bound.
///   * Limits: frames above `max_frame_bytes` and connections above
///     `max_connections` are refused (error frame + close, and
///     accept-then-close respectively).
///   * Malformed input: framing violations and undecodable payloads get a
///     clean BAD_REQUEST error frame, then the connection is dropped (the
///     byte stream can no longer be trusted).
///   * Graceful shutdown: a SHUTDOWN request, Shutdown(), or an installed
///     SIGINT/SIGTERM handler stops accepting work; requests already
///     admitted to the queue drain to completion before threads exit, and
///     requests that were on the wire but never admitted get an explicit
///     SHUTTING_DOWN error reply (never a silent drop) before the
///     connection closes.
///   * Deadlines (DESIGN.md §14): a timer wheel in the epoll loop closes
///     connections that sit idle past `idle_timeout_ms` or dribble a
///     frame slower than `read_deadline_ms` (slow-loris protection);
///     response writes are bounded by `write_deadline_ms`.
///   * Graceful degradation: under sustained queue pressure a shedding
///     ladder first disables worker micro-batching, then answers PREDICT
///     with the predictor's abstain shape instead of queueing, and
///     finally (queue full) returns BUSY — every rung observable via the
///     `server.shed.*` instruments.
class PlanServer {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; see port() after Start().
    uint16_t port = 0;
    int worker_threads = 4;
    /// Bounded request-queue capacity; overflow answers BUSY.
    size_t queue_capacity = 256;
    /// Connections above this are accepted and immediately closed.
    size_t max_connections = 64;
    size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
    /// Opportunistic micro-batching: when a worker pops a single-point
    /// PREDICT, it drains up to this many total queued requests without
    /// blocking and answers runs of same-template PREDICTs with one
    /// batched predictor pass, so even non-batching clients amortize the
    /// lock/transform/histogram costs under load (DESIGN.md §13). 1 (or
    /// 0) disables draining; each answer is still written per request,
    /// so clients observe identical frames either way.
    size_t max_microbatch = 16;
    /// A connection with no inbound bytes for this long is closed
    /// (slow-loris / leaked-peer protection). 0 disables.
    int64_t idle_timeout_ms = 30000;
    /// Once the first byte of a frame has arrived, the complete frame
    /// must arrive within this window or the connection is closed (a
    /// peer dribbling one byte per poll can otherwise hold a connection
    /// forever). 0 disables.
    int64_t read_deadline_ms = 5000;
    /// Bound on writing one response frame; a peer that stops reading
    /// long enough to exceed it gets its connection poisoned and closed.
    /// 0 means wait forever (the pre-PR-5 behavior was a hard-coded 10 s).
    int64_t write_deadline_ms = 10000;
    /// Degradation-ladder thresholds (EWMA queue occupancy; DESIGN.md
    /// §14). Rungs: disable micro-batching, then abstain on PREDICT.
    net::ShedController::Options shed;
    /// Test hook, run by a worker before each request is dispatched (lets
    /// tests hold the pool to provoke backpressure deterministically).
    std::function<void(wire::MessageType)> pre_dispatch_hook;
  };

  PlanServer(PpcFramework* framework, Config config);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds, listens and spawns the IO thread + worker pool.
  Status Start();

  /// Initiates graceful drain: stop accepting connections and requests,
  /// finish everything already queued. Non-blocking and idempotent; also
  /// triggered by a SHUTDOWN request. Safe from any thread (including
  /// workers and signal-watching contexts).
  void Shutdown();

  /// Blocks until the drain completes and all threads have exited.
  void Wait();

  /// Shutdown() + Wait().
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Requests admitted but not yet picked up by a worker (observability;
  /// also lets tests wait for admission deterministically).
  size_t queued_requests() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Current rung of the degradation ladder (observability and tests).
  net::ShedController::Level shed_level() const { return shed_.level(); }

 private:
  friend Status InstallShutdownSignalHandlers(PlanServer* server);

  struct Connection;
  struct WorkItem;

  void IoLoop();
  void WorkerLoop();
  void AcceptConnections(net::TimerWheel* wheel);
  /// Timer-wheel bookkeeping (IO thread only): (re)arms a connection's
  /// wheel entry from its idle/frame deadlines, and refreshes those
  /// deadlines after inbound activity.
  void ScheduleConnDeadline(net::TimerWheel* wheel,
                            const std::shared_ptr<Connection>& conn);
  void TouchConnActivity(net::TimerWheel* wheel,
                         const std::shared_ptr<Connection>& conn);
  /// Reads everything currently available; returns false when the
  /// connection must be dropped.
  bool DrainReadable(const std::shared_ptr<Connection>& conn);
  /// Deframes + decodes + enqueues; returns false on protocol violation.
  bool ProcessFrames(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);
  /// Folds one occupancy sample into the shed controller and counts rung
  /// transitions (IO thread only).
  net::ShedController::Level UpdateShedLevel();
  /// Answers a single-point PREDICT with the predictor's abstain shape
  /// (NULL plan, confidence 0) straight from the IO thread.
  void SendShedAbstain(const std::shared_ptr<Connection>& conn, uint64_t id);
  /// Post-drain pass over the surviving connections: any request bytes
  /// that arrived after the IO loop stopped reading are answered with a
  /// SHUTTING_DOWN error instead of being silently dropped.
  void SweepUnansweredOnShutdown();
  wire::Response HandleRequest(const wire::Request& request);
  /// Answers one work item the scalar way: hook, handle, write, account.
  void ProcessSingle(WorkItem* item);
  /// Answers `count` same-template single-point PREDICT items with one
  /// batched predictor pass; falls back to per-item ProcessSingle when
  /// the batch is rejected (e.g. one point is non-finite), so grouping
  /// never changes which requests succeed.
  void ProcessPredictRun(WorkItem* items, size_t count);
  void SendError(const std::shared_ptr<Connection>& conn,
                 wire::MessageType type, uint64_t id, wire::WireStatus status,
                 const std::string& message);

  PpcFramework* const framework_;
  const Config config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  /// eventfd the IO thread sleeps on besides the sockets; Shutdown() (and
  /// the async-signal-safe signal handler) write to it to wake the loop.
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  /// Degradation ladder (DESIGN.md §14): occupancy observed by the IO
  /// thread at every admission, rung read lock-free by workers.
  net::ShedController shed_;
  /// Previous rung, for transition counting (IO thread only).
  net::ShedController::Level prev_shed_level_ = net::ShedController::kNormal;

  BoundedQueue<WorkItem> queue_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  /// Owned by the IO thread exclusively (workers hold their own
  /// shared_ptr copies inside work items).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  /// Serving-layer instruments, resolved once at Start() from the
  /// framework's registry (DESIGN.md §11 naming scheme).
  struct {
    MetricsCounter* requests_predict = nullptr;
    MetricsCounter* requests_predict_batch = nullptr;
    MetricsCounter* requests_execute = nullptr;
    MetricsCounter* requests_metrics = nullptr;
    MetricsCounter* requests_ping = nullptr;
    MetricsCounter* requests_shutdown = nullptr;
    /// Micro-batching effectiveness: batched predictor passes executed by
    /// workers, and single-point PREDICTs answered through them.
    MetricsCounter* microbatches = nullptr;
    MetricsCounter* microbatched_predicts = nullptr;
    MetricsCounter* responses_busy = nullptr;
    MetricsCounter* responses_error = nullptr;
    MetricsCounter* frames_malformed = nullptr;
    MetricsCounter* connections_accepted = nullptr;
    MetricsCounter* connections_rejected = nullptr;
    /// Deadline enforcement (server.timeouts.*): connections closed for
    /// inactivity / slow frames, and response writes cut off mid-frame.
    MetricsCounter* timeouts_idle = nullptr;
    MetricsCounter* timeouts_read = nullptr;
    MetricsCounter* timeouts_write = nullptr;
    /// Degradation ladder (server.shed.*): rung transitions, PREDICTs
    /// answered via the abstain path, and requests swept with a
    /// SHUTTING_DOWN reply during the final drain.
    MetricsCounter* shed_enter_no_microbatch = nullptr;
    MetricsCounter* shed_enter_abstain = nullptr;
    MetricsCounter* shed_recovered = nullptr;
    MetricsCounter* shed_abstained_predicts = nullptr;
    MetricsCounter* shutdown_swept = nullptr;
    /// Replication (server.replication.*): snapshots served to joining
    /// shards (count + bytes shipped), snapshots applied here via
    /// SNAPSHOT_APPLY, and apply rejections (corrupt/stale/mismatched
    /// blobs).
    MetricsCounter* requests_snapshot = nullptr;
    MetricsCounter* requests_snapshot_apply = nullptr;
    MetricsCounter* replication_snapshots_served = nullptr;
    MetricsCounter* replication_snapshot_bytes = nullptr;
    MetricsCounter* replication_applies = nullptr;
    MetricsCounter* replication_apply_failures = nullptr;
    LatencyHistogram* replication_snapshot_us = nullptr;
    LatencyHistogram* replication_apply_us = nullptr;
    LatencyHistogram* predict_us = nullptr;
    LatencyHistogram* predict_batch_us = nullptr;
    LatencyHistogram* execute_us = nullptr;
    LatencyHistogram* metrics_us = nullptr;
    LatencyHistogram* ping_us = nullptr;
  } instruments_;
};

/// Installs SIGINT/SIGTERM handlers that trigger `server->Shutdown()`
/// asynchronously (the handler only writes to the server's wake eventfd —
/// async-signal-safe). At most one server per process may install
/// handlers; call after Start(). The caller should follow with Wait().
Status InstallShutdownSignalHandlers(PlanServer* server);

}  // namespace ppc

#endif  // PPC_SERVER_SERVER_H_
