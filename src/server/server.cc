#include "server/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "ppc/predictor_state.h"
#include "server/failpoints.h"
#include "server/net_util.h"
#include "server/timer_wheel.h"

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Signal-handler plumbing: the handler may only do async-signal-safe
/// work, so it flags the request and writes the server's wake eventfd;
/// the IO thread notices and runs the ordinary Shutdown() path.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_pending{false};

void ShutdownSignalHandler(int /*signo*/) {
  g_signal_pending.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

wire::WireStatus WireStatusFrom(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return wire::WireStatus::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return wire::WireStatus::kBadRequest;
    default:
      return wire::WireStatus::kInternal;
  }
}

}  // namespace

/// Per-connection state. The IO thread owns reading (FrameBuffer) and the
/// deadline bookkeeping; any thread may write a response frame under
/// write_mu. The fd is closed only by the destructor, i.e. after the last
/// in-flight work item released its reference — so a worker never writes
/// to a recycled fd.
struct PlanServer::Connection {
  Connection(int fd_in, size_t max_frame_bytes, int64_t write_deadline_ms_in,
             MetricsCounter* timeouts_write_in)
      : fd(fd_in),
        frames(max_frame_bytes),
        write_deadline_ms(write_deadline_ms_in),
        timeouts_write(timeouts_write_in) {}
  ~Connection() { ::close(fd); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes one frame — `payload` prefixed by its u32 length — within the
  /// configured write deadline; returns false (and poisons the
  /// connection) on any transport error or on deadline expiry — a
  /// partially written frame can never be completed coherently, so the
  /// stream is done either way. The prefix and the payload go out as two
  /// iovecs (net::WritevAll), so the frame is never copied into a
  /// contiguous buffer.
  bool WriteFrame(const std::string& payload) {
    const uint32_t length = static_cast<uint32_t>(payload.size());
    char prefix[sizeof(length)];
    std::memcpy(prefix, &length, sizeof(length));
    struct iovec iov[2];
    iov[0].iov_base = prefix;
    iov[0].iov_len = sizeof(length);
    iov[1].iov_base = const_cast<char*>(payload.data());
    iov[1].iov_len = payload.size();
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_relaxed)) return false;
    const Status st =
        net::WritevAll(fd, iov, 2,
                       net::Deadline::AfterMsOrInfinite(write_deadline_ms));
    if (!st.ok()) {
      if (st.code() == StatusCode::kDeadlineExceeded &&
          timeouts_write != nullptr) {
        timeouts_write->Increment();
      }
      closed.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  const int fd;
  wire::FrameBuffer frames;
  const int64_t write_deadline_ms;
  MetricsCounter* const timeouts_write;
  std::mutex write_mu;
  std::atomic<bool> closed{false};

  /// Deadline state, IO thread only. idle_deadline advances on every
  /// inbound byte; frame_deadline is armed when a frame sits incomplete
  /// in the buffer and cleared once it completes (slow-loris guard).
  Clock::time_point idle_deadline{};
  Clock::time_point frame_deadline{};
  bool frame_pending = false;
};

struct PlanServer::WorkItem {
  std::shared_ptr<Connection> conn;
  wire::Request request;
  Clock::time_point admitted;
};

PlanServer::PlanServer(PpcFramework* framework, Config config)
    : framework_(framework),
      config_(std::move(config)),
      shed_(config_.shed),
      queue_(config_.queue_capacity) {
  PPC_CHECK(framework != nullptr);
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  PPC_ASSIGN_OR_RETURN(
      listen_fd_,
      net::Listen(config_.bind_address, config_.port, /*backlog=*/128,
                  &port_));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("eventfd failed");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    ::close(wake_fd_);
    listen_fd_ = wake_fd_ = -1;
    return Status::Internal("epoll_create1 failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  MetricsRegistry& metrics = framework_->metrics();
  instruments_.requests_predict = &metrics.counter("server.requests.predict");
  instruments_.requests_predict_batch =
      &metrics.counter("server.requests.predict_batch");
  instruments_.requests_execute = &metrics.counter("server.requests.execute");
  instruments_.requests_metrics = &metrics.counter("server.requests.metrics");
  instruments_.requests_ping = &metrics.counter("server.requests.ping");
  instruments_.requests_shutdown =
      &metrics.counter("server.requests.shutdown");
  instruments_.microbatches = &metrics.counter("server.microbatches");
  instruments_.microbatched_predicts =
      &metrics.counter("server.microbatched_predicts");
  instruments_.responses_busy = &metrics.counter("server.responses.busy");
  instruments_.responses_error = &metrics.counter("server.responses.error");
  instruments_.frames_malformed = &metrics.counter("server.frames.malformed");
  instruments_.connections_accepted =
      &metrics.counter("server.connections.accepted");
  instruments_.connections_rejected =
      &metrics.counter("server.connections.rejected");
  instruments_.timeouts_idle = &metrics.counter("server.timeouts.idle");
  instruments_.timeouts_read = &metrics.counter("server.timeouts.read");
  instruments_.timeouts_write = &metrics.counter("server.timeouts.write");
  instruments_.shed_enter_no_microbatch =
      &metrics.counter("server.shed.enter_no_microbatch");
  instruments_.shed_enter_abstain =
      &metrics.counter("server.shed.enter_abstain");
  instruments_.shed_recovered = &metrics.counter("server.shed.recovered");
  instruments_.shed_abstained_predicts =
      &metrics.counter("server.shed.abstained_predicts");
  instruments_.shutdown_swept = &metrics.counter("server.shutdown.swept");
  instruments_.requests_snapshot =
      &metrics.counter("server.requests.snapshot");
  instruments_.requests_snapshot_apply =
      &metrics.counter("server.requests.snapshot_apply");
  instruments_.replication_snapshots_served =
      &metrics.counter("server.replication.snapshots_served");
  instruments_.replication_snapshot_bytes =
      &metrics.counter("server.replication.snapshot_bytes");
  instruments_.replication_applies =
      &metrics.counter("server.replication.applies");
  instruments_.replication_apply_failures =
      &metrics.counter("server.replication.apply_failures");
  instruments_.replication_snapshot_us =
      &metrics.histogram("server.replication.snapshot_us");
  instruments_.replication_apply_us =
      &metrics.histogram("server.replication.apply_us");
  instruments_.predict_us = &metrics.histogram("server.predict_us");
  instruments_.predict_batch_us =
      &metrics.histogram("server.predict_batch_us");
  instruments_.execute_us = &metrics.histogram("server.execute_us");
  instruments_.metrics_us = &metrics.histogram("server.metrics_us");
  instruments_.ping_us = &metrics.histogram("server.ping_us");

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  const int workers = config_.worker_threads > 0 ? config_.worker_threads : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

size_t PlanServer::queued_requests() const { return queue_.size(); }

void PlanServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void PlanServer::Wait() {
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // All threads are gone. Before the connections close, answer every
  // request that reached the wire but was never admitted — a pipelined
  // client must observe a reply (here: SHUTTING_DOWN) for every id it
  // sent, never a silent drop.
  SweepUnansweredOnShutdown();
  // Closing the remaining connections (fds close in the Connection
  // destructors) and the listener is single-threaded now.
  connections_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) {
    // Detach the signal handler's fd reference before the fd dies.
    int expected = wake_fd_;
    g_signal_wake_fd.compare_exchange_strong(expected, -1);
    ::close(wake_fd_);
  }
  epoll_fd_ = listen_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void PlanServer::Stop() {
  Shutdown();
  Wait();
}

namespace {

/// Wheel geometry: 50 ms resolution is an order of magnitude below the
/// minimum sensible connection timeout, and 512 slots cover 25.6 s per
/// turn (longer deadlines survive extra turns via the lazy scheme).
constexpr size_t kWheelSlots = 512;
constexpr auto kWheelTick = std::chrono::milliseconds(50);

}  // namespace

/// Re-arms `conn`'s wheel entry from its idle/frame deadlines. IO thread
/// only. With both timeouts disabled the connection carries no timer.
void PlanServer::ScheduleConnDeadline(net::TimerWheel* wheel,
                                      const std::shared_ptr<Connection>& conn) {
  const bool have_idle = config_.idle_timeout_ms > 0;
  const bool have_frame = conn->frame_pending;
  if (!have_idle && !have_frame) {
    wheel->Cancel(conn->fd);
    return;
  }
  Clock::time_point deadline;
  if (have_idle && have_frame) {
    deadline = std::min(conn->idle_deadline, conn->frame_deadline);
  } else {
    deadline = have_idle ? conn->idle_deadline : conn->frame_deadline;
  }
  wheel->Schedule(conn->fd, deadline);
}

/// Refreshes a connection's deadlines after inbound activity: the idle
/// clock restarts, and the read deadline arms exactly when an incomplete
/// frame remains buffered (and disarms when the buffer is drained).
void PlanServer::TouchConnActivity(net::TimerWheel* wheel,
                                   const std::shared_ptr<Connection>& conn) {
  const Clock::time_point now = Clock::now();
  conn->idle_deadline =
      now + std::chrono::milliseconds(config_.idle_timeout_ms);
  if (config_.read_deadline_ms > 0 && conn->frames.buffered_bytes() > 0) {
    if (!conn->frame_pending) {
      conn->frame_pending = true;
      conn->frame_deadline =
          now + std::chrono::milliseconds(config_.read_deadline_ms);
    }
    // An already-armed frame deadline keeps ticking: progress on the
    // *same* frame must not extend it, or a slow-loris peer could dribble
    // forever.
  } else {
    conn->frame_pending = false;
  }
  ScheduleConnDeadline(wheel, conn);
}

void PlanServer::IoLoop() {
  net::TimerWheel wheel(kWheelSlots, kWheelTick);
  std::vector<epoll_event> events(64);
  std::vector<int> expired;
  while (!draining_.load(std::memory_order_acquire)) {
    const int timeout_ms = wheel.PollTimeoutMs(Clock::now());
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        if (g_signal_pending.exchange(false, std::memory_order_relaxed)) {
          Shutdown();
        }
      } else if (fd == listen_fd_) {
        AcceptConnections(&wheel);
      } else {
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        std::shared_ptr<Connection> conn = it->second;
        const bool broken =
            (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        if (broken || !DrainReadable(conn)) {
          wheel.Cancel(fd);
          CloseConnection(fd);
        } else {
          TouchConnActivity(&wheel, conn);
        }
      }
    }
    expired.clear();
    wheel.PopExpired(Clock::now(), &expired);
    for (const int fd : expired) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection>& conn = it->second;
      const Clock::time_point now = Clock::now();
      const bool frame_timed_out =
          conn->frame_pending && now >= conn->frame_deadline;
      if (frame_timed_out) {
        instruments_.timeouts_read->Increment();
      } else {
        instruments_.timeouts_idle->Increment();
      }
      // Best-effort explanation, then drop: the peer proved it cannot
      // keep the stream moving, and half-read frames cannot be resumed.
      SendError(conn, wire::MessageType::kInvalid, 0,
                wire::WireStatus::kTimeout,
                frame_timed_out ? "read deadline exceeded"
                                : "idle timeout exceeded");
      CloseConnection(fd);
    }
  }
}

void PlanServer::AcceptConnections(net::TimerWheel* wheel) {
  while (true) {
    const failpoints::Action fault =
        failpoints::Hit(failpoints::Site::kAccept);
    failpoints::MaybeStall(fault);
    if (fault.kind == failpoints::Kind::kError) {
      // Simulated transient accept failure (EMFILE and friends): give up
      // on this readiness wave; level-triggered epoll retries.
      return;
    }
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure.
    }
    if (connections_.size() >= config_.max_connections) {
      instruments_.connections_rejected->Increment();
      ::close(cfd);
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      ::close(cfd);
      continue;
    }
    auto conn = std::make_shared<Connection>(cfd, config_.max_frame_bytes,
                                             config_.write_deadline_ms,
                                             instruments_.timeouts_write);
    if (config_.idle_timeout_ms > 0) {
      conn->idle_deadline =
          Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
      ScheduleConnDeadline(wheel, conn);
    }
    connections_.emplace(cfd, std::move(conn));
    instruments_.connections_accepted->Increment();
  }
}

bool PlanServer::DrainReadable(const std::shared_ptr<Connection>& conn) {
  char buffer[16 * 1024];
  while (true) {
    size_t received = 0;
    switch (net::RecvNonBlocking(conn->fd, buffer, sizeof(buffer),
                                 &received)) {
      case net::RecvOutcome::kData:
        conn->frames.Append(buffer, received);
        if (!ProcessFrames(conn)) return false;
        break;
      case net::RecvOutcome::kWouldBlock:
        return true;
      case net::RecvOutcome::kEof:
      case net::RecvOutcome::kError:
        return false;
    }
  }
}

bool PlanServer::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  std::string payload;
  while (true) {
    Result<bool> next = conn->frames.Next(&payload);
    if (!next.ok()) {
      // Framing violation: the stream is unrecoverable. One explanatory
      // error frame, then drop the connection.
      instruments_.frames_malformed->Increment();
      SendError(conn, wire::MessageType::kInvalid, 0,
                wire::WireStatus::kBadRequest, next.status().message());
      return false;
    }
    if (!next.value()) return true;
    Result<wire::Request> request = wire::DecodeRequest(payload);
    if (!request.ok()) {
      instruments_.frames_malformed->Increment();
      SendError(conn, wire::MessageType::kInvalid, 0,
                wire::WireStatus::kBadRequest, request.status().message());
      return false;
    }
    WorkItem item{conn, std::move(request).value(), Clock::now()};
    const wire::MessageType type = item.request.type;
    const uint64_t id = item.request.id;
    // Degradation ladder: fold this admission's queue occupancy into the
    // shed controller, and at the abstain rung answer single-point
    // PREDICTs from here — the predictor's abstain shape costs nothing
    // and the client falls back to its own optimizer (DESIGN.md §14).
    const net::ShedController::Level level = UpdateShedLevel();
    if (level >= net::ShedController::kAbstainPredict &&
        type == wire::MessageType::kPredict) {
      SendShedAbstain(conn, id);
      continue;
    }
    const bool enqueue_fault =
        failpoints::Hit(failpoints::Site::kEnqueue).kind ==
        failpoints::Kind::kError;
    if (enqueue_fault || !queue_.TryPush(std::move(item))) {
      // Backpressure: reject now rather than buffer without bound.
      const bool draining = draining_.load(std::memory_order_acquire);
      instruments_.responses_busy->Increment();
      SendError(conn, type, id,
                draining ? wire::WireStatus::kShuttingDown
                         : wire::WireStatus::kBusy,
                draining ? "server shutting down" : "request queue full");
    }
  }
}

net::ShedController::Level PlanServer::UpdateShedLevel() {
  const double capacity = static_cast<double>(config_.queue_capacity);
  const double occupancy =
      capacity > 0.0
          ? std::min(1.0, static_cast<double>(queue_.size()) / capacity)
          : 1.0;
  const net::ShedController::Level level = shed_.Observe(occupancy);
  if (level != prev_shed_level_) {
    if (level > prev_shed_level_) {
      // Count every rung entered, even when pressure jumps two at once.
      if (prev_shed_level_ < net::ShedController::kNoMicrobatch &&
          level >= net::ShedController::kNoMicrobatch) {
        instruments_.shed_enter_no_microbatch->Increment();
      }
      if (level >= net::ShedController::kAbstainPredict) {
        instruments_.shed_enter_abstain->Increment();
      }
    } else {
      instruments_.shed_recovered->Increment();
    }
    prev_shed_level_ = level;
  }
  return level;
}

void PlanServer::SendShedAbstain(const std::shared_ptr<Connection>& conn,
                                 uint64_t id) {
  wire::Response response;
  response.type = wire::MessageType::kPredict;
  response.id = id;
  // Identical on the wire to a genuine predictor abstention: NULL plan,
  // zero confidence, OK status.
  std::string payload;
  wire::EncodeResponsePayload(response, &payload);
  // Count before the write: an observer who has seen the response (a
  // test polling the counter, an operator correlating with client logs)
  // must also see it counted.
  instruments_.shed_abstained_predicts->Increment();
  conn->WriteFrame(payload);
}

void PlanServer::SweepUnansweredOnShutdown() {
  char buffer[16 * 1024];
  for (auto& [fd, conn] : connections_) {
    // Pull whatever arrived after the IO loop stopped reading (bounded:
    // the kernel receive buffer), then deframe and answer each complete
    // request. Decode failures and framing violations just end the sweep
    // for this connection — it is closing anyway.
    bool reading = true;
    while (reading) {
      size_t received = 0;
      switch (net::RecvNonBlocking(fd, buffer, sizeof(buffer), &received)) {
        case net::RecvOutcome::kData:
          conn->frames.Append(buffer, received);
          break;
        case net::RecvOutcome::kWouldBlock:
        case net::RecvOutcome::kEof:
        case net::RecvOutcome::kError:
          reading = false;
          break;
      }
    }
    std::string payload;
    while (true) {
      Result<bool> next = conn->frames.Next(&payload);
      if (!next.ok() || !next.value()) break;
      Result<wire::Request> request = wire::DecodeRequest(payload);
      if (!request.ok()) break;
      SendError(conn, request.value().type, request.value().id,
                wire::WireStatus::kShuttingDown, "server shutting down");
      instruments_.shutdown_swept->Increment();
    }
  }
}

void PlanServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->closed.store(true, std::memory_order_relaxed);
  // The fd itself closes in ~Connection, once in-flight work items drop
  // their references.
  connections_.erase(it);
}

void PlanServer::SendError(const std::shared_ptr<Connection>& conn,
                           wire::MessageType type, uint64_t id,
                           wire::WireStatus status,
                           const std::string& message) {
  wire::Response response;
  response.type = type;
  response.id = id;
  response.status = status;
  response.error = message;
  std::string payload;
  wire::EncodeResponsePayload(response, &payload);
  conn->WriteFrame(payload);
}

wire::Response PlanServer::HandleRequest(const wire::Request& request) {
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  switch (request.type) {
    case wire::MessageType::kPing:
    case wire::MessageType::kShutdown:
      break;
    case wire::MessageType::kPredict: {
      Result<PpcFramework::PredictReport> report =
          framework_->PredictAtPoint(request.template_name, request.point);
      if (!report.ok()) {
        response.status = WireStatusFrom(report.status());
        response.error = report.status().message();
        break;
      }
      response.predict.plan = report.value().plan;
      response.predict.confidence = report.value().confidence;
      response.predict.cache_hit = report.value().cache_hit;
      break;
    }
    case wire::MessageType::kExecute: {
      Result<PpcFramework::QueryReport> report =
          framework_->ExecuteAtPoint(request.template_name, request.point);
      if (!report.ok()) {
        response.status = WireStatusFrom(report.status());
        response.error = report.status().message();
        break;
      }
      const PpcFramework::QueryReport& r = report.value();
      response.execute.executed_plan = r.executed_plan;
      response.execute.optimal_plan = r.optimal_plan;
      response.execute.used_prediction = r.used_prediction;
      response.execute.cache_hit = r.cache_hit;
      response.execute.optimizer_invoked = r.optimizer_invoked;
      response.execute.prediction_evicted = r.prediction_evicted;
      response.execute.negative_feedback_triggered =
          r.negative_feedback_triggered;
      response.execute.execution_cost = r.execution_cost;
      response.execute.optimize_micros = r.optimize_micros;
      response.execute.predict_micros = r.predict_micros;
      response.execute.execute_micros = r.execute_micros;
      break;
    }
    case wire::MessageType::kPredictBatch: {
      Result<std::vector<PpcFramework::PredictReport>> reports =
          framework_->PredictBatch(request.template_name,
                                   request.batch_points.data(),
                                   request.batch_count(), request.batch_dims);
      if (!reports.ok()) {
        response.status = WireStatusFrom(reports.status());
        response.error = reports.status().message();
        break;
      }
      response.batch.reserve(reports.value().size());
      for (const PpcFramework::PredictReport& r : reports.value()) {
        response.batch.push_back(
            wire::Response::Predict{r.plan, r.confidence, r.cache_hit});
      }
      break;
    }
    case wire::MessageType::kMetrics:
      response.metrics_json = framework_->MetricsSnapshot().ToJson();
      break;
    case wire::MessageType::kSnapshot: {
      // Replication pull: ship every template's predictor state. The
      // capture is read-side only (per-predictor shared locks), so
      // serving traffic is never paused by a joining shard.
      response.snapshot_blob = PredictorState::Capture(*framework_).Serialize();
      instruments_.replication_snapshots_served->Increment();
      instruments_.replication_snapshot_bytes->Increment(
          response.snapshot_blob.size());
      break;
    }
    case wire::MessageType::kSnapshotApply: {
      Result<PredictorState> state =
          PredictorState::Restore(request.snapshot_blob);
      if (!state.ok()) {
        response.status = WireStatusFrom(state.status());
        response.error = state.status().message();
        instruments_.replication_apply_failures->Increment();
        break;
      }
      Result<PredictorState::ApplyReport> report =
          state.value().ApplyTo(framework_);
      if (!report.ok()) {
        response.status = WireStatusFrom(report.status());
        response.error = report.status().message();
        instruments_.replication_apply_failures->Increment();
        break;
      }
      response.snapshot_applied =
          static_cast<uint32_t>(report.value().templates_applied);
      instruments_.replication_applies->Increment();
      break;
    }
    case wire::MessageType::kTopology:
      response.status = wire::WireStatus::kBadRequest;
      response.error = "topology operations are handled by the router";
      break;
    case wire::MessageType::kInvalid:
      response.status = wire::WireStatus::kBadRequest;
      response.error = "invalid message type";
      break;
  }
  return response;
}

void PlanServer::ProcessSingle(WorkItem* item) {
  failpoints::MaybeStall(failpoints::Hit(failpoints::Site::kDispatch));
  if (config_.pre_dispatch_hook) {
    config_.pre_dispatch_hook(item->request.type);
  }
  wire::Response response = HandleRequest(item->request);
  std::string payload;
  wire::EncodeResponsePayload(response, &payload);
  item->conn->WriteFrame(payload);
  const double micros = MicrosSince(item->admitted);
  switch (item->request.type) {
    case wire::MessageType::kPredict:
      instruments_.requests_predict->Increment();
      instruments_.predict_us->Record(micros);
      break;
    case wire::MessageType::kPredictBatch:
      instruments_.requests_predict_batch->Increment();
      instruments_.predict_batch_us->Record(micros);
      break;
    case wire::MessageType::kExecute:
      instruments_.requests_execute->Increment();
      instruments_.execute_us->Record(micros);
      break;
    case wire::MessageType::kMetrics:
      instruments_.requests_metrics->Increment();
      instruments_.metrics_us->Record(micros);
      break;
    case wire::MessageType::kPing:
      instruments_.requests_ping->Increment();
      instruments_.ping_us->Record(micros);
      break;
    case wire::MessageType::kShutdown:
      instruments_.requests_shutdown->Increment();
      break;
    case wire::MessageType::kSnapshot:
      instruments_.requests_snapshot->Increment();
      instruments_.replication_snapshot_us->Record(micros);
      break;
    case wire::MessageType::kSnapshotApply:
      instruments_.requests_snapshot_apply->Increment();
      instruments_.replication_apply_us->Record(micros);
      break;
    case wire::MessageType::kTopology:
    case wire::MessageType::kInvalid:
      break;
  }
  if (!response.ok()) instruments_.responses_error->Increment();
  if (response.type == wire::MessageType::kShutdown && response.ok()) {
    // Ack already written; now start the drain. Everything admitted
    // before this point still completes.
    Shutdown();
  }
}

void PlanServer::ProcessPredictRun(WorkItem* items, size_t count) {
  failpoints::MaybeStall(failpoints::Hit(failpoints::Site::kDispatch));
  const wire::Request& head = items[0].request;
  const size_t dims = head.point.size();
  std::vector<double> points;
  points.reserve(count * dims);
  for (size_t p = 0; p < count; ++p) {
    if (config_.pre_dispatch_hook) {
      config_.pre_dispatch_hook(items[p].request.type);
    }
    points.insert(points.end(), items[p].request.point.begin(),
                  items[p].request.point.end());
  }
  Result<std::vector<PpcFramework::PredictReport>> reports =
      framework_->PredictBatch(head.template_name, points.data(), count, dims);
  if (!reports.ok()) {
    // A batch-level rejection (unknown template, bad arity, non-finite
    // coordinate) must not fail items that would succeed alone: answer
    // each request on the scalar path instead. The hooks already ran.
    for (size_t p = 0; p < count; ++p) {
      wire::Response response = HandleRequest(items[p].request);
      std::string payload;
      wire::EncodeResponsePayload(response, &payload);
      items[p].conn->WriteFrame(payload);
      instruments_.requests_predict->Increment();
      instruments_.predict_us->Record(MicrosSince(items[p].admitted));
      if (!response.ok()) instruments_.responses_error->Increment();
    }
    return;
  }
  for (size_t p = 0; p < count; ++p) {
    wire::Response response;
    response.type = wire::MessageType::kPredict;
    response.id = items[p].request.id;
    response.predict.plan = reports.value()[p].plan;
    response.predict.confidence = reports.value()[p].confidence;
    response.predict.cache_hit = reports.value()[p].cache_hit;
    std::string payload;
    wire::EncodeResponsePayload(response, &payload);
    items[p].conn->WriteFrame(payload);
    instruments_.requests_predict->Increment();
    instruments_.predict_us->Record(MicrosSince(items[p].admitted));
  }
  instruments_.microbatches->Increment();
  instruments_.microbatched_predicts->Increment(count);
}

void PlanServer::WorkerLoop() {
  std::vector<WorkItem> batch;
  while (std::optional<WorkItem> item = queue_.Pop()) {
    batch.clear();
    batch.push_back(std::move(*item));
    // Opportunistic micro-batch: only after popping a single-point
    // PREDICT, drain whatever else is already queued (never blocking) up
    // to the cap. Runs of same-template PREDICTs then share one batched
    // predictor pass; everything else is handled in admission order. The
    // first shed rung turns this off — under sustained pressure one slow
    // batch must not grow head-of-line latency (DESIGN.md §14).
    if (config_.max_microbatch > 1 &&
        shed_.level() < net::ShedController::kNoMicrobatch &&
        batch.front().request.type == wire::MessageType::kPredict) {
      while (batch.size() < config_.max_microbatch) {
        std::optional<WorkItem> extra = queue_.TryPop();
        if (!extra.has_value()) break;
        batch.push_back(std::move(*extra));
      }
    }
    size_t index = 0;
    while (index < batch.size()) {
      size_t run = index + 1;
      if (batch[index].request.type == wire::MessageType::kPredict) {
        while (run < batch.size() &&
               batch[run].request.type == wire::MessageType::kPredict &&
               batch[run].request.template_name ==
                   batch[index].request.template_name &&
               batch[run].request.point.size() ==
                   batch[index].request.point.size()) {
          ++run;
        }
      }
      if (run - index >= 2) {
        ProcessPredictRun(&batch[index], run - index);
      } else {
        ProcessSingle(&batch[index]);
      }
      index = run;
    }
  }
}

Status InstallShutdownSignalHandlers(PlanServer* server) {
  if (server == nullptr || !server->running()) {
    return Status::FailedPrecondition(
        "install signal handlers after a successful Start()");
  }
  g_signal_wake_fd.store(server->wake_fd_, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = &ShutdownSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
      ::sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::Internal("sigaction failed");
  }
  return Status::OK();
}

}  // namespace ppc
