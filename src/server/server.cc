#include "server/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <mutex>

#include "server/net_util.h"

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Signal-handler plumbing: the handler may only do async-signal-safe
/// work, so it flags the request and writes the server's wake eventfd;
/// the IO thread notices and runs the ordinary Shutdown() path.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_pending{false};

void ShutdownSignalHandler(int /*signo*/) {
  g_signal_pending.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

wire::WireStatus WireStatusFrom(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return wire::WireStatus::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return wire::WireStatus::kBadRequest;
    default:
      return wire::WireStatus::kInternal;
  }
}

}  // namespace

/// Per-connection state. The IO thread owns reading (FrameBuffer); any
/// thread may write a response frame under write_mu. The fd is closed
/// only by the destructor, i.e. after the last in-flight work item
/// released its reference — so a worker never writes to a recycled fd.
struct PlanServer::Connection {
  Connection(int fd_in, size_t max_frame_bytes)
      : fd(fd_in), frames(max_frame_bytes) {}
  ~Connection() { ::close(fd); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes one encoded frame; returns false (and poisons the
  /// connection) on any transport error.
  bool WriteFrame(const std::string& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_relaxed)) return false;
    if (!net::SendAll(fd, frame.data(), frame.size())) {
      closed.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  const int fd;
  wire::FrameBuffer frames;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
};

struct PlanServer::WorkItem {
  std::shared_ptr<Connection> conn;
  wire::Request request;
  Clock::time_point admitted;
};

PlanServer::PlanServer(PpcFramework* framework, Config config)
    : framework_(framework),
      config_(std::move(config)),
      queue_(config_.queue_capacity) {
  PPC_CHECK(framework != nullptr);
}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  PPC_ASSIGN_OR_RETURN(
      listen_fd_,
      net::Listen(config_.bind_address, config_.port, /*backlog=*/128,
                  &port_));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("eventfd failed");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    ::close(wake_fd_);
    listen_fd_ = wake_fd_ = -1;
    return Status::Internal("epoll_create1 failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  MetricsRegistry& metrics = framework_->metrics();
  instruments_.requests_predict = &metrics.counter("server.requests.predict");
  instruments_.requests_predict_batch =
      &metrics.counter("server.requests.predict_batch");
  instruments_.requests_execute = &metrics.counter("server.requests.execute");
  instruments_.requests_metrics = &metrics.counter("server.requests.metrics");
  instruments_.requests_ping = &metrics.counter("server.requests.ping");
  instruments_.requests_shutdown =
      &metrics.counter("server.requests.shutdown");
  instruments_.microbatches = &metrics.counter("server.microbatches");
  instruments_.microbatched_predicts =
      &metrics.counter("server.microbatched_predicts");
  instruments_.responses_busy = &metrics.counter("server.responses.busy");
  instruments_.responses_error = &metrics.counter("server.responses.error");
  instruments_.frames_malformed = &metrics.counter("server.frames.malformed");
  instruments_.connections_accepted =
      &metrics.counter("server.connections.accepted");
  instruments_.connections_rejected =
      &metrics.counter("server.connections.rejected");
  instruments_.predict_us = &metrics.histogram("server.predict_us");
  instruments_.predict_batch_us =
      &metrics.histogram("server.predict_batch_us");
  instruments_.execute_us = &metrics.histogram("server.execute_us");
  instruments_.metrics_us = &metrics.histogram("server.metrics_us");
  instruments_.ping_us = &metrics.histogram("server.ping_us");

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  const int workers = config_.worker_threads > 0 ? config_.worker_threads : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

size_t PlanServer::queued_requests() const { return queue_.size(); }

void PlanServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void PlanServer::Wait() {
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // All threads are gone: closing the remaining connections (fds close in
  // the Connection destructors) and the listener is single-threaded now.
  connections_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) {
    // Detach the signal handler's fd reference before the fd dies.
    int expected = wake_fd_;
    g_signal_wake_fd.compare_exchange_strong(expected, -1);
    ::close(wake_fd_);
  }
  epoll_fd_ = listen_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void PlanServer::Stop() {
  Shutdown();
  Wait();
}

void PlanServer::IoLoop() {
  std::vector<epoll_event> events(64);
  while (!draining_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        if (g_signal_pending.exchange(false, std::memory_order_relaxed)) {
          Shutdown();
        }
      } else if (fd == listen_fd_) {
        AcceptConnections();
      } else {
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        std::shared_ptr<Connection> conn = it->second;
        const bool broken =
            (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        if (broken || !DrainReadable(conn)) CloseConnection(fd);
      }
    }
  }
}

void PlanServer::AcceptConnections() {
  while (true) {
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure.
    }
    if (connections_.size() >= config_.max_connections) {
      instruments_.connections_rejected->Increment();
      ::close(cfd);
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      ::close(cfd);
      continue;
    }
    connections_.emplace(
        cfd, std::make_shared<Connection>(cfd, config_.max_frame_bytes));
    instruments_.connections_accepted->Increment();
  }
}

bool PlanServer::DrainReadable(const std::shared_ptr<Connection>& conn) {
  char buffer[16 * 1024];
  while (true) {
    size_t received = 0;
    switch (net::RecvNonBlocking(conn->fd, buffer, sizeof(buffer),
                                 &received)) {
      case net::RecvOutcome::kData:
        conn->frames.Append(buffer, received);
        if (!ProcessFrames(conn)) return false;
        break;
      case net::RecvOutcome::kWouldBlock:
        return true;
      case net::RecvOutcome::kEof:
      case net::RecvOutcome::kError:
        return false;
    }
  }
}

bool PlanServer::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  std::string payload;
  while (true) {
    Result<bool> next = conn->frames.Next(&payload);
    if (!next.ok()) {
      // Framing violation: the stream is unrecoverable. One explanatory
      // error frame, then drop the connection.
      instruments_.frames_malformed->Increment();
      SendError(conn, wire::MessageType::kInvalid, 0,
                wire::WireStatus::kBadRequest, next.status().message());
      return false;
    }
    if (!next.value()) return true;
    Result<wire::Request> request = wire::DecodeRequest(payload);
    if (!request.ok()) {
      instruments_.frames_malformed->Increment();
      SendError(conn, wire::MessageType::kInvalid, 0,
                wire::WireStatus::kBadRequest, request.status().message());
      return false;
    }
    WorkItem item{conn, std::move(request).value(), Clock::now()};
    const wire::MessageType type = item.request.type;
    const uint64_t id = item.request.id;
    if (!queue_.TryPush(std::move(item))) {
      // Backpressure: reject now rather than buffer without bound.
      const bool draining = draining_.load(std::memory_order_acquire);
      instruments_.responses_busy->Increment();
      SendError(conn, type, id,
                draining ? wire::WireStatus::kShuttingDown
                         : wire::WireStatus::kBusy,
                draining ? "server shutting down" : "request queue full");
    }
  }
}

void PlanServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->closed.store(true, std::memory_order_relaxed);
  // The fd itself closes in ~Connection, once in-flight work items drop
  // their references.
  connections_.erase(it);
}

void PlanServer::SendError(const std::shared_ptr<Connection>& conn,
                           wire::MessageType type, uint64_t id,
                           wire::WireStatus status,
                           const std::string& message) {
  wire::Response response;
  response.type = type;
  response.id = id;
  response.status = status;
  response.error = message;
  std::string frame;
  wire::EncodeResponse(response, &frame);
  conn->WriteFrame(frame);
}

wire::Response PlanServer::HandleRequest(const wire::Request& request) {
  wire::Response response;
  response.type = request.type;
  response.id = request.id;
  switch (request.type) {
    case wire::MessageType::kPing:
    case wire::MessageType::kShutdown:
      break;
    case wire::MessageType::kPredict: {
      Result<PpcFramework::PredictReport> report =
          framework_->PredictAtPoint(request.template_name, request.point);
      if (!report.ok()) {
        response.status = WireStatusFrom(report.status());
        response.error = report.status().message();
        break;
      }
      response.predict.plan = report.value().plan;
      response.predict.confidence = report.value().confidence;
      response.predict.cache_hit = report.value().cache_hit;
      break;
    }
    case wire::MessageType::kExecute: {
      Result<PpcFramework::QueryReport> report =
          framework_->ExecuteAtPoint(request.template_name, request.point);
      if (!report.ok()) {
        response.status = WireStatusFrom(report.status());
        response.error = report.status().message();
        break;
      }
      const PpcFramework::QueryReport& r = report.value();
      response.execute.executed_plan = r.executed_plan;
      response.execute.optimal_plan = r.optimal_plan;
      response.execute.used_prediction = r.used_prediction;
      response.execute.cache_hit = r.cache_hit;
      response.execute.optimizer_invoked = r.optimizer_invoked;
      response.execute.prediction_evicted = r.prediction_evicted;
      response.execute.negative_feedback_triggered =
          r.negative_feedback_triggered;
      response.execute.execution_cost = r.execution_cost;
      response.execute.optimize_micros = r.optimize_micros;
      response.execute.predict_micros = r.predict_micros;
      response.execute.execute_micros = r.execute_micros;
      break;
    }
    case wire::MessageType::kPredictBatch: {
      Result<std::vector<PpcFramework::PredictReport>> reports =
          framework_->PredictBatch(request.template_name,
                                   request.batch_points.data(),
                                   request.batch_count(), request.batch_dims);
      if (!reports.ok()) {
        response.status = WireStatusFrom(reports.status());
        response.error = reports.status().message();
        break;
      }
      response.batch.reserve(reports.value().size());
      for (const PpcFramework::PredictReport& r : reports.value()) {
        response.batch.push_back(
            wire::Response::Predict{r.plan, r.confidence, r.cache_hit});
      }
      break;
    }
    case wire::MessageType::kMetrics:
      response.metrics_json = framework_->MetricsSnapshot().ToJson();
      break;
    case wire::MessageType::kInvalid:
      response.status = wire::WireStatus::kBadRequest;
      response.error = "invalid message type";
      break;
  }
  return response;
}

void PlanServer::ProcessSingle(WorkItem* item) {
  if (config_.pre_dispatch_hook) {
    config_.pre_dispatch_hook(item->request.type);
  }
  wire::Response response = HandleRequest(item->request);
  std::string frame;
  wire::EncodeResponse(response, &frame);
  item->conn->WriteFrame(frame);
  const double micros = MicrosSince(item->admitted);
  switch (item->request.type) {
    case wire::MessageType::kPredict:
      instruments_.requests_predict->Increment();
      instruments_.predict_us->Record(micros);
      break;
    case wire::MessageType::kPredictBatch:
      instruments_.requests_predict_batch->Increment();
      instruments_.predict_batch_us->Record(micros);
      break;
    case wire::MessageType::kExecute:
      instruments_.requests_execute->Increment();
      instruments_.execute_us->Record(micros);
      break;
    case wire::MessageType::kMetrics:
      instruments_.requests_metrics->Increment();
      instruments_.metrics_us->Record(micros);
      break;
    case wire::MessageType::kPing:
      instruments_.requests_ping->Increment();
      instruments_.ping_us->Record(micros);
      break;
    case wire::MessageType::kShutdown:
      instruments_.requests_shutdown->Increment();
      break;
    case wire::MessageType::kInvalid:
      break;
  }
  if (!response.ok()) instruments_.responses_error->Increment();
  if (response.type == wire::MessageType::kShutdown && response.ok()) {
    // Ack already written; now start the drain. Everything admitted
    // before this point still completes.
    Shutdown();
  }
}

void PlanServer::ProcessPredictRun(WorkItem* items, size_t count) {
  const wire::Request& head = items[0].request;
  const size_t dims = head.point.size();
  std::vector<double> points;
  points.reserve(count * dims);
  for (size_t p = 0; p < count; ++p) {
    if (config_.pre_dispatch_hook) {
      config_.pre_dispatch_hook(items[p].request.type);
    }
    points.insert(points.end(), items[p].request.point.begin(),
                  items[p].request.point.end());
  }
  Result<std::vector<PpcFramework::PredictReport>> reports =
      framework_->PredictBatch(head.template_name, points.data(), count, dims);
  if (!reports.ok()) {
    // A batch-level rejection (unknown template, bad arity, non-finite
    // coordinate) must not fail items that would succeed alone: answer
    // each request on the scalar path instead. The hooks already ran.
    for (size_t p = 0; p < count; ++p) {
      wire::Response response = HandleRequest(items[p].request);
      std::string frame;
      wire::EncodeResponse(response, &frame);
      items[p].conn->WriteFrame(frame);
      instruments_.requests_predict->Increment();
      instruments_.predict_us->Record(MicrosSince(items[p].admitted));
      if (!response.ok()) instruments_.responses_error->Increment();
    }
    return;
  }
  for (size_t p = 0; p < count; ++p) {
    wire::Response response;
    response.type = wire::MessageType::kPredict;
    response.id = items[p].request.id;
    response.predict.plan = reports.value()[p].plan;
    response.predict.confidence = reports.value()[p].confidence;
    response.predict.cache_hit = reports.value()[p].cache_hit;
    std::string frame;
    wire::EncodeResponse(response, &frame);
    items[p].conn->WriteFrame(frame);
    instruments_.requests_predict->Increment();
    instruments_.predict_us->Record(MicrosSince(items[p].admitted));
  }
  instruments_.microbatches->Increment();
  instruments_.microbatched_predicts->Increment(count);
}

void PlanServer::WorkerLoop() {
  std::vector<WorkItem> batch;
  while (std::optional<WorkItem> item = queue_.Pop()) {
    batch.clear();
    batch.push_back(std::move(*item));
    // Opportunistic micro-batch: only after popping a single-point
    // PREDICT, drain whatever else is already queued (never blocking) up
    // to the cap. Runs of same-template PREDICTs then share one batched
    // predictor pass; everything else is handled in admission order.
    if (config_.max_microbatch > 1 &&
        batch.front().request.type == wire::MessageType::kPredict) {
      while (batch.size() < config_.max_microbatch) {
        std::optional<WorkItem> extra = queue_.TryPop();
        if (!extra.has_value()) break;
        batch.push_back(std::move(*extra));
      }
    }
    size_t index = 0;
    while (index < batch.size()) {
      size_t run = index + 1;
      if (batch[index].request.type == wire::MessageType::kPredict) {
        while (run < batch.size() &&
               batch[run].request.type == wire::MessageType::kPredict &&
               batch[run].request.template_name ==
                   batch[index].request.template_name &&
               batch[run].request.point.size() ==
                   batch[index].request.point.size()) {
          ++run;
        }
      }
      if (run - index >= 2) {
        ProcessPredictRun(&batch[index], run - index);
      } else {
        ProcessSingle(&batch[index]);
      }
      index = run;
    }
  }
}

Status InstallShutdownSignalHandlers(PlanServer* server) {
  if (server == nullptr || !server->running()) {
    return Status::FailedPrecondition(
        "install signal handlers after a successful Start()");
  }
  g_signal_wake_fd.store(server->wake_fd_, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = &ShutdownSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (::sigaction(SIGINT, &sa, nullptr) != 0 ||
      ::sigaction(SIGTERM, &sa, nullptr) != 0) {
    return Status::Internal("sigaction failed");
  }
  return Status::OK();
}

}  // namespace ppc
