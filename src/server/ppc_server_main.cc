// ppc_server: one plan-prediction shard (DESIGN.md §12, §15).
//
// Serves the wire protocol of server/wire_protocol.h over TCP for a
// deterministic TPC-H catalog, so every shard started with the same
// --scale/--catalog-seed flags holds an identical plan space — the
// property the consistent-hash router and the snapshot replication
// protocol both rely on.
//
// Readiness handshake: after a successful bind the process prints
// exactly one line `LISTENING <port>` to stdout and flushes it. Drivers
// (scripts/check.sh, bench/bench_cluster_throughput.cc) parse that line
// instead of sleeping.
//
// Warm start: --warm-start-from=host:port pulls the leader's serialized
// PredictorState over the wire (SNAPSHOT), validates it, and applies it
// before the readiness line — a joining shard is never observable in a
// cold state.
//
// Flags (--key=value):
//   --bind=ADDR            bind address        (default 127.0.0.1)
//   --port=N               listen port         (default 0 = ephemeral)
//   --workers=N            worker threads      (default 4)
//   --templates=Q1,Q3     registered templates (default Q0..Q8)
//   --scale=F              TPC-H scale factor  (default 0.002)
//   --catalog-seed=N       TPC-H RNG seed      (default 42)
//   --warm-start-from=H:P  leader shard to pull a snapshot from
//   --retune=0|1           adaptive LSH retuning (default 0 = off)
//   --retune-precision=F   windowed-precision trigger (default 0.6)
//   --retune-reservoir=N   retained points per template (default 256)
//   --retune-cooldown=N    observations between refits (default 200)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ppc/ppc_framework.h"
#include "ppc/predictor_state.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/tpch_generator.h"
#include "workload/templates.h"

namespace {

using ppc::PlanServer;
using ppc::PpcClient;
using ppc::PpcFramework;
using ppc::PredictorState;
using ppc::Status;

struct Flags {
  std::string bind = "127.0.0.1";
  uint16_t port = 0;
  int workers = 4;
  std::vector<std::string> templates;
  double scale = 0.002;
  uint64_t catalog_seed = 42;
  std::string warm_start_host;
  uint16_t warm_start_port = 0;
  bool retune = false;
  double retune_precision = 0.6;
  size_t retune_reservoir = 256;
  size_t retune_cooldown = 200;
};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) parts.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

bool ParseHostPort(const std::string& value, std::string* host,
                   uint16_t* port) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const long parsed = std::strtol(value.c_str() + colon + 1, nullptr, 10);
  if (parsed <= 0 || parsed > 65535) return false;
  *host = value.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "bind") {
      flags->bind = value;
    } else if (key == "port") {
      flags->port = static_cast<uint16_t>(std::strtol(value.c_str(),
                                                      nullptr, 10));
    } else if (key == "workers") {
      flags->workers = static_cast<int>(std::strtol(value.c_str(),
                                                    nullptr, 10));
    } else if (key == "templates") {
      flags->templates = SplitCsv(value);
    } else if (key == "scale") {
      flags->scale = std::strtod(value.c_str(), nullptr);
    } else if (key == "catalog-seed") {
      flags->catalog_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "retune") {
      flags->retune = value != "0";
    } else if (key == "retune-precision") {
      flags->retune_precision = std::strtod(value.c_str(), nullptr);
    } else if (key == "retune-reservoir") {
      flags->retune_reservoir =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "retune-cooldown") {
      flags->retune_cooldown =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (key == "warm-start-from") {
      if (!ParseHostPort(value, &flags->warm_start_host,
                         &flags->warm_start_port)) {
        std::fprintf(stderr, "bad --warm-start-from (want host:port): %s\n",
                     value.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
  }
  if (flags->templates.empty()) {
    flags->templates = {"Q0", "Q1", "Q2", "Q3", "Q4",
                        "Q5", "Q6", "Q7", "Q8"};
  }
  return true;
}

/// The serving-stack predictor configuration shared by the shards, the
/// benches and tests/test_server.cc — AdoptState requires exact config
/// equality, so a warm-started shard must be built from the same values
/// as its leader.
PpcFramework::Config ServingConfig() {
  PpcFramework::Config cfg;
  cfg.online.predictor.transform_count = 5;
  cfg.online.predictor.histogram_buckets = 40;
  cfg.online.predictor.radius = 0.05;
  cfg.online.predictor.confidence_threshold = 0.8;
  cfg.online.predictor.noise_fraction = 0.002;
  cfg.online.estimator_window = 100;
  cfg.plan_cache_capacity = 64;
  return cfg;
}

Status WarmStart(PpcFramework* framework, const Flags& flags) {
  PpcClient::Options options;
  options.call_deadline_ms = 30000;
  options.retry.max_attempts = 5;
  PpcClient leader(options);
  PPC_RETURN_NOT_OK(
      leader.Connect(flags.warm_start_host, flags.warm_start_port));
  std::string blob;
  PPC_ASSIGN_OR_RETURN(blob, leader.FetchSnapshot());
  PredictorState state;
  PPC_ASSIGN_OR_RETURN(state, PredictorState::Restore(blob));
  PredictorState::ApplyReport report;
  PPC_ASSIGN_OR_RETURN(report, state.ApplyTo(framework));
  std::fprintf(stderr,
               "warm start from %s:%u: sequence=%llu applied=%zu "
               "skipped=%zu generations_installed=%zu (%zu bytes)\n",
               flags.warm_start_host.c_str(), flags.warm_start_port,
               static_cast<unsigned long long>(state.sequence()),
               report.templates_applied, report.templates_skipped,
               report.generations_installed, blob.size());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  ppc::TpchConfig tpch;
  tpch.scale_factor = flags.scale;
  tpch.seed = flags.catalog_seed;
  std::unique_ptr<ppc::Catalog> catalog = ppc::BuildTpchCatalog(tpch);

  PpcFramework::Config serving = ServingConfig();
  serving.retune.enabled = flags.retune;
  serving.retune.precision_trigger = flags.retune_precision;
  serving.retune.reservoir_capacity = flags.retune_reservoir;
  serving.retune.cooldown_observations = flags.retune_cooldown;
  PpcFramework framework(catalog.get(), serving);
  for (const std::string& name : flags.templates) {
    const Status registered =
        framework.RegisterTemplate(ppc::EvaluationTemplate(name));
    if (!registered.ok()) {
      std::fprintf(stderr, "template %s: %s\n", name.c_str(),
                   registered.ToString().c_str());
      return 2;
    }
  }

  PlanServer::Config config;
  config.bind_address = flags.bind;
  config.port = flags.port;
  config.worker_threads = flags.workers;
  PlanServer server(&framework, config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  if (!flags.warm_start_host.empty()) {
    const Status warmed = WarmStart(&framework, flags);
    if (!warmed.ok()) {
      std::fprintf(stderr, "warm start failed: %s\n",
                   warmed.ToString().c_str());
      server.Stop();
      return 1;
    }
  }

  // The readiness handshake: drivers wait for this exact line.
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  const Status handlers = ppc::InstallShutdownSignalHandlers(&server);
  if (!handlers.ok()) {
    std::fprintf(stderr, "signal handlers: %s\n",
                 handlers.ToString().c_str());
    server.Stop();
    return 1;
  }
  server.Wait();
  return 0;
}
