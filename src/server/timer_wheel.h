#ifndef PPC_SERVER_TIMER_WHEEL_H_
#define PPC_SERVER_TIMER_WHEEL_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ppc {
namespace net {

/// Hashed timer wheel for connection deadlines (idle timeouts and
/// per-request read deadlines), owned by the server's IO thread — no
/// locking, all calls from one thread.
///
/// The classic lazy scheme: `slots` buckets of `tick` width each; a timer
/// lands in the bucket of its deadline and an authoritative map keeps the
/// latest deadline per key. Rescheduling just overwrites the map entry —
/// stale bucket entries are skipped (or pushed forward) when their bucket
/// comes due, so re-arming a timer on every byte of traffic (the idle
/// timeout's access pattern) is O(1) with no removal cost.
///
/// Resolution is one tick: a timer fires between `deadline` and
/// `deadline + tick`. That is the right trade for connection timeouts,
/// which are hundreds of milliseconds at minimum.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimerWheel(size_t slots, Clock::duration tick)
      : slots_(slots), tick_(tick), buckets_(slots), cursor_time_(Clock::now()) {}

  /// Arms (or re-arms) the timer for `key`. A later Schedule for the same
  /// key supersedes earlier ones.
  void Schedule(int key, Clock::time_point deadline) {
    deadlines_[key] = deadline;
    // A deadline behind the sweep cursor files into the cursor's bucket —
    // it fires on the very next sweep instead of a full wheel turn later.
    const Clock::time_point slot =
        deadline < cursor_time_ ? cursor_time_ : deadline;
    buckets_[BucketOf(slot)].push_back(key);
  }

  /// Disarms `key` (stale bucket entries die lazily).
  void Cancel(int key) { deadlines_.erase(key); }

  bool armed(int key) const { return deadlines_.count(key) > 0; }
  size_t size() const { return deadlines_.size(); }

  /// Appends every key whose authoritative deadline is <= now to
  /// `*expired` (each at most once) and disarms it. Call from the event
  /// loop after epoll_wait returns.
  void PopExpired(Clock::time_point now, std::vector<int>* expired) {
    if (deadlines_.empty()) {
      // Nothing armed: fast-forward so a later burst of timers does not
      // force a sweep over every intervening bucket.
      cursor_time_ = now;
      return;
    }
    // Sweep only buckets that have fully elapsed: every deadline filed in
    // such a bucket is necessarily <= now, so a not-yet-due entry found
    // here can only mean a future turn of the wheel. Sweeping the bucket
    // `now` sits in would instead strand sub-tick-future deadlines until
    // the next full turn (slots × tick later) — the cursor has moved past
    // their bucket, and nothing would revisit it in time.
    while (cursor_time_ + tick_ <= now) {
      std::vector<int>& bucket = buckets_[BucketOf(cursor_time_)];
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        const int key = bucket[i];
        auto it = deadlines_.find(key);
        if (it == deadlines_.end()) continue;  // cancelled — drop.
        if (it->second <= now) {
          expired->push_back(key);
          deadlines_.erase(it);
        } else if (BucketOf(it->second) == BucketOf(cursor_time_)) {
          // A future turn of the same slot (this bucket is fully elapsed,
          // so the deadline cannot be in the current turn) — keep it.
          bucket[keep++] = key;
        }
        // Else: re-armed into another slot, where Schedule already filed
        // a fresh entry — drop the stale one.
      }
      bucket.resize(keep);
      cursor_time_ += tick_;
    }
  }

  /// Milliseconds until the next bucket boundary needs servicing, as an
  /// epoll_wait timeout: -1 when no timer is armed.
  int PollTimeoutMs(Clock::time_point now) const {
    if (deadlines_.empty()) return -1;
    const auto until = cursor_time_ + tick_ - now;
    if (until <= Clock::duration::zero()) return 0;
    const int64_t ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(until).count();
    return static_cast<int>(ms) + 1;  // round up — never spin.
  }

 private:
  size_t BucketOf(Clock::time_point t) const {
    const uint64_t ticks = static_cast<uint64_t>(t.time_since_epoch() / tick_);
    return static_cast<size_t>(ticks % slots_);
  }

  const size_t slots_;
  const Clock::duration tick_;
  std::vector<std::vector<int>> buckets_;
  /// Authoritative deadline per key; bucket entries are hints.
  std::unordered_map<int, Clock::time_point> deadlines_;
  /// The wheel has been swept up to (exclusive) this time.
  Clock::time_point cursor_time_;
};

}  // namespace net
}  // namespace ppc

#endif  // PPC_SERVER_TIMER_WHEEL_H_
