#ifndef PPC_SERVER_ROUTER_H_
#define PPC_SERVER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ppc/metrics_registry.h"
#include "server/circuit_breaker.h"
#include "server/client.h"
#include "server/hash_ring.h"
#include "server/wire_protocol.h"

namespace ppc {

/// The scale-out front door (DESIGN.md §15, §18): a fault-tolerant TCP
/// proxy that speaks the same wire protocol as PlanServer and
/// consistent-hashes PREDICT / PREDICT_BATCH / EXECUTE requests across N
/// shard servers by template name. Because the LSH predictor's state is
/// strictly per-template, routing by template makes each shard
/// authoritative for its arc of the ring: all feedback for a template
/// lands on the shard that predicts it, so sharding changes *where*
/// learning happens but never *what* is learned.
///
/// Fault tolerance (DESIGN.md §18): every template has a primary and a
/// ring-successor replica on a distinct shard (HashRing::PlacementFor).
/// A per-backend circuit breaker — fed by passive forward failures and a
/// background prober's PINGs — takes a dead shard out of rotation after
/// `breaker.failure_threshold` consecutive failures; requests for its
/// templates fail over to the replica, which the prober has been keeping
/// warm by periodically shipping the primary's changed predictor state
/// (content-hash-gated SNAPSHOT_APPLY). When the shard comes back, the
/// prober warm-starts it from its replicas *before* recording the
/// half-open success that re-admits it — a rejoining shard is never
/// observable cold.
///
/// Request handling:
///
///   * kPredict / kPredictBatch / kExecute — forwarded to the owning
///     shard; the shard's answer (wire status included) is relayed
///     verbatim under the client's request id. When the primary is open
///     or fails mid-call, the request is retried on the replica; an
///     EXECUTE answered by the replica carries the FAILED_OVER flag so
///     the client knows its corrective feedback landed off the template's
///     home shard. An EXECUTE that *timed out* on the primary is not
///     replayed (it may still be running there); PREDICTs are read-only
///     and always safe to retry. Only when both copies fail does the
///     client see INTERNAL / TIMEOUT.
///   * kPing — answered locally (the router's own liveness).
///   * kMetrics — aggregated: the router's own registry plus every
///     *reachable* shard's METRICS payload, keyed by shard address with
///     per-backend `up` / `breaker_state` fields; open backends are
///     reported down without burning a dial on them.
///   * kTopology — add / remove a shard at runtime (the join path of the
///     warm-start protocol). Answers with the new backend count.
///   * kSnapshot / kSnapshotApply — BAD_REQUEST: replication is
///     shard-to-shard, not routed.
///   * kShutdown — ack, then drain the router itself.
///
/// Threading model: one accept thread, one thread per client connection,
/// plus one health thread (prober + replicator + rejoin driver). Each
/// connection thread keeps its own PpcClient per shard, so backend
/// connections never need cross-thread locking; the shared state is the
/// ring + per-backend breakers behind a shared_mutex.
///
/// Shutdown()/drain: async-signal-safe (atomic stores only). The accept,
/// connection and health loops poll `idle_poll_ms`-bounded ticks and exit
/// at the next one; in-flight forwards finish under the backend deadline.
class PlanRouter {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; see port() after Start().
    uint16_t port = 0;
    /// Initial shard set; extendable at runtime via kTopology.
    std::vector<HashRing::Node> backends;
    int vnodes_per_node = 64;
    size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
    /// Per-forward wall clock, spanning the retry policy below. 0 waits
    /// forever (not recommended — a hung shard then hangs its clients).
    int64_t backend_deadline_ms = 5000;
    /// Applied to shard connects and BUSY answers (server/client.h).
    RetryPolicy backend_retry{/*max_attempts=*/3};
    /// Read-poll granularity: how quickly idle connection threads notice
    /// a drain, and how often they re-check for client bytes.
    int64_t idle_poll_ms = 50;
    /// Bound on writing one response frame back to a client.
    int64_t write_deadline_ms = 10000;

    /// --- Health model (DESIGN.md §18). ---

    /// Cadence of the background prober (active PING per backend). 0
    /// disables the health thread entirely: no probes, no replica
    /// warm-keeping, no automatic rejoin — breakers still open from
    /// passive forward failures and inline failover still engages.
    int64_t probe_interval_ms = 250;
    /// Per-probe and per-replication-call deadline (single attempt; the
    /// breaker, not a retry loop, owns failure policy here).
    int64_t probe_deadline_ms = 1000;
    /// Per-backend breaker tuning.
    CircuitBreaker::Options breaker;
    /// Cadence of replica warm-keeping: every interval the prober
    /// captures each live primary's state and ships the changed
    /// templates to their ring-successor replicas. 0 disables shipping
    /// (failover then reaches a cold replica: available, but abstaining
    /// until it learns).
    int64_t replication_interval_ms = 2000;
  };

  explicit PlanRouter(Config config);
  ~PlanRouter();

  PlanRouter(const PlanRouter&) = delete;
  PlanRouter& operator=(const PlanRouter&) = delete;

  /// Binds, listens, and spawns the accept + health threads. Does not
  /// wait on the backends — a shard is dialed lazily on its first
  /// forwarded request or probe, so the router can start ahead of its
  /// shards.
  Status Start();

  /// Initiates the drain. Async-signal-safe and idempotent.
  void Shutdown();

  /// Blocks until every connection thread has exited.
  void Wait();

  /// Shutdown() + Wait().
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t backend_count() const;
  std::vector<HashRing::Node> backends() const;

  /// Health-model observability for tests and benches: each backend with
  /// its current breaker state.
  struct BackendStatus {
    HashRing::Node node;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
  };
  std::vector<BackendStatus> backend_status() const;

  /// The router's own instruments (router.* names).
  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Per-connection-thread state: the client socket's deframer plus this
  /// thread's private shard connections.
  struct ConnectionState;

  /// Shared per-backend health state. Held by shared_ptr so a forward in
  /// flight keeps its breaker alive across a concurrent topology remove.
  struct BackendState {
    explicit BackendState(const CircuitBreaker::Options& options)
        : breaker(options) {}
    CircuitBreaker breaker;
  };

  /// One resolved routing decision: placement plus the breakers of both
  /// candidate shards, taken under a single topology read lock.
  struct Route {
    HashRing::Node primary;
    HashRing::Node replica;
    bool has_replica = false;
    std::shared_ptr<BackendState> primary_state;
    std::shared_ptr<BackendState> replica_state;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Decodes + dispatches one frame payload; false when the connection
  /// must close (protocol violation or shutdown handoff).
  bool HandleFrame(ConnectionState* state, const std::string& payload);
  wire::Response Forward(ConnectionState* state, const wire::Request& request);
  wire::Response AggregateMetrics(ConnectionState* state);
  wire::Response ApplyTopology(const wire::Request& request);
  Status SendResponse(ConnectionState* state, const wire::Response& response);

  Result<Route> ResolveRoute(const std::string& template_name) const;
  /// Breaker bookkeeping around one backend call outcome, with the open /
  /// close transition counters.
  void RecordBackendSuccess(BackendState* state);
  void RecordBackendFailure(BackendState* state);

  /// --- Health thread (prober + replicator + rejoin driver). ---

  /// The health thread's private per-backend clients (probe deadline,
  /// single attempt), keyed by address.
  using HealthClients = std::map<std::string, std::unique_ptr<PpcClient>>;
  /// Content hashes already shipped, keyed primary address -> replica
  /// address -> template name. Cleared for a shard when it rejoins (its
  /// restart lost everything previously shipped to it).
  using ShippedHashes =
      std::map<std::string, std::map<std::string, std::map<std::string, uint64_t>>>;

  void HealthLoop();
  PpcClient* HealthClientFor(HealthClients* clients,
                             const HashRing::Node& node);
  void ProbeBackend(const HashRing::Node& node,
                    const std::shared_ptr<BackendState>& state,
                    HealthClients* clients, ShippedHashes* shipped);
  /// Wire-level warm start of a rejoining shard from its replicas: for
  /// every other live backend, fetch its state and apply the subset of
  /// templates whose placement says primary == `node`. True only when
  /// every reachable replica's subset applied cleanly.
  bool WarmRejoin(const HashRing::Node& node, HealthClients* clients);
  /// One replica warm-keeping pass: capture each live primary's state,
  /// ship changed templates to their replicas (hash-gated per pair).
  void ReplicateOnce(HealthClients* clients, ShippedHashes* shipped);

  const Config config_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  /// Ring + backend set + per-backend breakers, shared across connection
  /// threads and the health thread.
  mutable std::shared_mutex topology_mu_;
  HashRing ring_;
  std::map<std::string, std::shared_ptr<BackendState>> backend_states_;

  std::thread accept_thread_;
  std::thread health_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;

  MetricsRegistry metrics_;
  struct {
    MetricsCounter* connections_accepted = nullptr;
    MetricsCounter* requests_forwarded = nullptr;
    MetricsCounter* requests_local = nullptr;
    MetricsCounter* forward_failures = nullptr;
    MetricsCounter* topology_adds = nullptr;
    MetricsCounter* topology_removes = nullptr;
    MetricsCounter* frames_malformed = nullptr;
    LatencyHistogram* forward_us = nullptr;
    /// Health model (DESIGN.md §18).
    MetricsCounter* health_probes = nullptr;
    MetricsCounter* health_probe_failures = nullptr;
    MetricsCounter* breaker_opens = nullptr;
    MetricsCounter* breaker_closes = nullptr;
    MetricsCounter* failovers = nullptr;
    MetricsCounter* replication_ships = nullptr;
    MetricsCounter* replication_skipped = nullptr;
    MetricsCounter* replication_ship_failures = nullptr;
    MetricsCounter* replication_templates_shipped = nullptr;
    MetricsCounter* rejoin_warm_starts = nullptr;
    MetricsCounter* rejoin_failures = nullptr;
  } instruments_;
};

}  // namespace ppc

#endif  // PPC_SERVER_ROUTER_H_
